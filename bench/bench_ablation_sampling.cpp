// Ablation — sampling rate vs emulation serialization error (the
// mechanism of paper Figs. 2/3, called out in DESIGN.md).
//
// Within one sample the emulator starts all resource consumptions
// concurrently, so serialization present in the application inside a
// sampling period is lost and the emulation can run FASTER than the
// profile suggests; smaller sampling periods re-introduce the original
// interleaving (paper: "Smaller sampling intervals reduce that effect",
// Emulation 2 in Fig. 2). This ablation profiles one workload at
// increasing rates and emulates each profile: the Tx error against the
// application must shrink (or at least not grow) with the rate, while
// the replayed sample count rises.

#include "bench_util.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("thinkie");
  constexpr uint64_t kSteps = 400;

  heading("Ablation: sampling rate vs emulation fidelity (thinkie)");
  row("  rate_Hz  samples  app_Tx   emu_Tx   diff%%");
  const auto reference = run_md(kSteps);
  for (const double rate : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto p = profile_md(kSteps, rate);
    const auto r = synapse::emulate_profile(p, emu_options());
    row("  %7.1f  %7zu  %6.3fs  %6.3fs  %+6.1f", rate, r.samples_replayed,
        reference.wall_seconds, r.wall_seconds,
        100.0 * (r.wall_seconds - reference.wall_seconds) /
            reference.wall_seconds);
  }

  heading("Ablation: cycle-scale override (the RADICAL-Pilot tuning knob)");
  row("  scale    emu_Tx");
  const auto p = profile_md(kSteps, 10.0);
  for (const double scale : {0.5, 1.0, 2.0}) {
    auto opts = emu_options();
    opts.cycle_scale = scale;
    const auto r = synapse::emulate_profile(p, opts);
    row("  %5.2f   %6.3fs", scale, r.wall_seconds);
  }
  row("\nexpectation: emulated Tx scales ~linearly with the cycle override"
      "\n(requirement E.3 Malleability), and the sampling-rate sweep keeps"
      "\nthe Tx error small and stable across rates.");
  synapse::resource::activate_resource("host");
  return 0;
}
