// Adaptive (edge-triggered) sampling vs fixed-rate scheduling on an
// idle-burst-idle workload (ROADMAP: "event-driven + adaptive
// sampling").
//
// The workload sleeps, spins the CPU for a burst window, then sleeps
// again. A fixed-rate profiler pays burst_hz for the whole run; the
// adaptive scheduler polls a cheap activity counter at the floor rate
// while the gate is closed and only samples at burst_hz inside (and
// shortly after) the burst. The bench profiles the same child under
// thread-per-watcher, multiplexed and adaptive scheduling and reports
// recorded samples, encoded profile bytes, and the burst-window
// coverage of the adaptive run. Expectation: the adaptive profile
// carries >= 5x fewer samples than either fixed-rate mode while the
// burst itself stays densely sampled.
//
// Usage: bench_adaptive_sampling [--smoke] [--json PATH]
//   --smoke      short phases (CI smoke run)
//   --json PATH  machine-readable results (bench_util.hpp Results)

#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "sys/clock.hpp"
#include "watchers/profiler.hpp"

namespace profile = synapse::profile;
namespace watchers = synapse::watchers;
namespace sys = synapse::sys;

namespace {

struct Phases {
  double idle_s = 5.0;   ///< each side of the burst
  double burst_s = 1.5;
  double rate_hz = 100.0;  ///< fixed rate == adaptive burst rate
  double floor_hz = 2.0;
  double hold_s = 0.25;
};

/// Profile the idle-burst-idle child under one scheduler mode.
profile::Profile run_mode(watchers::SchedulerMode mode, const Phases& ph) {
  watchers::ProfilerOptions opts;
  opts.scheduler = mode;
  opts.sample_rate_hz = ph.rate_hz;
  opts.watcher_set = {"cpu"};
  opts.gate.floor_hz = ph.floor_hz;
  opts.gate.close_hold_s = ph.hold_s;
  watchers::Profiler profiler(opts);
  const double idle_s = ph.idle_s;
  const double burst_s = ph.burst_s;
  return profiler.profile_function(
      [idle_s, burst_s] {
        sys::sleep_for(idle_s);
        const double until = sys::steady_now() + burst_s;
        volatile double x = 0.0;
        while (sys::steady_now() < until) {
          for (int i = 0; i < 200000; ++i) x += i * 0.5;
        }
        sys::sleep_for(idle_s);
        return 0;
      },
      "idle-burst-idle");
}

/// Samples of the cpu series falling inside the burst window, measured
/// from the series' own first timestamp (watcher clocks are local).
size_t burst_samples(const profile::Profile& p, const Phases& ph) {
  const auto* cpu = p.find_series("cpu");
  if (cpu == nullptr || cpu->empty()) return 0;
  const double t0 = cpu->samples.front().timestamp;
  size_t n = 0;
  for (const auto& s : cpu->samples) {
    const double rel = s.timestamp - t0;
    if (rel >= ph.idle_s && rel <= ph.idle_s + ph.burst_s + ph.hold_s) ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bench;
  results().set_bench("adaptive_sampling");
  Phases ph;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      ph.idle_s = 1.5;
      ph.burst_s = 0.4;
      ph.rate_hz = 75.0;
      ph.floor_hz = 4.0;
      ph.hold_s = 0.1;
    } else if (json_flag(argc, argv, i)) {
    } else {
      std::fprintf(stderr,
                   "usage: bench_adaptive_sampling [--smoke] [--json PATH]\n");
      return 2;
    }
  }
  synapse::resource::activate_resource("host");

  heading("Adaptive vs fixed-rate sampling (idle-burst-idle workload)");
  row("  phases: idle %.1fs | burst %.1fs | idle %.1fs at %.0f Hz "
      "(floor %.1f Hz, hold %.2fs)",
      ph.idle_s, ph.burst_s, ph.idle_s, ph.rate_hz, ph.floor_hz, ph.hold_s);
  row("  %-12s %8s %10s %12s %10s", "scheduler", "samples", "bytes",
      "burst_hits", "var_rate");

  const struct {
    const char* name;
    watchers::SchedulerMode mode;
  } modes[] = {
      {"thread", watchers::SchedulerMode::ThreadPerWatcher},
      {"multiplexed", watchers::SchedulerMode::Multiplexed},
      {"adaptive", watchers::SchedulerMode::Adaptive},
  };

  size_t fixed_samples = 0;
  size_t adaptive_samples = 0;
  size_t adaptive_burst = 0;
  for (const auto& mode : modes) {
    const auto p = run_mode(mode.mode, ph);
    const size_t samples = p.sample_count();
    const size_t bytes = p.to_binary().size();
    const size_t hits = burst_samples(p, ph);
    row("  %-12s %8zu %10zu %12zu %10s", mode.name, samples, bytes, hits,
        p.variable_rate() ? "yes" : "no");
    results().record("sampling", std::string(mode.name) + "_samples",
                     static_cast<double>(samples), "samples");
    results().record("sampling", std::string(mode.name) + "_bytes",
                     static_cast<double>(bytes), "bytes");
    results().record("sampling", std::string(mode.name) + "_burst_hits",
                     static_cast<double>(hits), "samples");
    if (mode.mode == watchers::SchedulerMode::Adaptive) {
      adaptive_samples = samples;
      adaptive_burst = hits;
    } else {
      fixed_samples = std::max(fixed_samples, samples);
    }
  }

  const double reduction =
      adaptive_samples > 0
          ? static_cast<double>(fixed_samples) /
                static_cast<double>(adaptive_samples)
          : 0.0;
  const double coverage =
      ph.burst_s > 0.0
          ? static_cast<double>(adaptive_burst) / (ph.burst_s * ph.rate_hz)
          : 0.0;
  row("\n  sample reduction (fixed/adaptive): %.1fx", reduction);
  row("  burst coverage (adaptive hits / burst periods): %.0f%%",
      100.0 * coverage);
  results().record("sampling", "reduction", reduction, "x");
  results().record("sampling", "burst_coverage", coverage, "fraction");
  row("\nexpectation: >= 5x fewer samples than fixed-rate at burst_hz on"
      "\nthe full run, with the burst window itself densely covered (the"
      "\nfloor rate only bounds edge-detection latency, closed gates take"
      "\nno samples at all).");
  results().write();
  return 0;
}
