// Ensemble throughput ablation (extension; paper section 2.3 motivates
// Synapse for Ensemble Toolkit development, where the question is how
// makespan and pilot utilization react to concurrency and task
// granularity — without burning real MD cycles).

#include "bench_util.hpp"

#include "workload/scheduler.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("supermic");

  const auto profile = profile_md(120, 10.0, /*write_output=*/false);

  heading("Ensemble ablation: 16 emulated replicas vs pilot concurrency");
  row("  workers   makespan   utilization");
  for (const int workers : {1, 2, 4, 8, 16}) {
    synapse::workload::Workload w("sweep");
    synapse::workload::TaskSpec task;
    task.name = "replica";
    task.profile = profile;
    task.options.storage.base_dir = "/tmp";
    task.options.emulate_storage = false;
    task.options.emulate_memory = false;
    w.replicate_task(task, 16);

    synapse::workload::Scheduler scheduler(
        {.max_concurrent = workers, .keep_going = true});
    const auto result = scheduler.run(w);
    row("  %7d   %7.3fs        %5.1f%%", workers, result.makespan_seconds,
        100.0 * result.utilization(workers));
  }

  heading("Ensemble ablation: task granularity at fixed total work");
  row("  tasks  iterations   makespan");
  for (const auto& [tasks, iters] : std::vector<std::pair<int, int>>{
           {16, 1}, {8, 2}, {4, 4}, {2, 8}}) {
    synapse::workload::Workload w("granularity");
    synapse::workload::TaskSpec task;
    task.name = "chunk";
    task.profile = profile;
    task.iterations = iters;
    task.options.storage.base_dir = "/tmp";
    task.options.emulate_storage = false;
    task.options.emulate_memory = false;
    w.replicate_task(task, tasks);

    synapse::workload::Scheduler scheduler(
        {.max_concurrent = 4, .keep_going = true});
    const auto result = scheduler.run(w);
    row("  %5d  %10d   %7.3fs", tasks, iters, result.makespan_seconds);
  }

  row("\nexpectation: makespan ~1/workers with high utilization until the"
      "\ntask count stops dividing evenly; coarser tasks at fixed total"
      "\nwork keep the makespan roughly constant at matching concurrency.");
  synapse::resource::activate_resource("host");
  return 0;
}
