// Figure 4 — Profiling Overhead.
//
// Paper: Tx of native Gromacs runs vs runs under the Synapse profiler at
// sampling rates 0.1..10 Hz, for iteration counts 10^4..10^7. Result:
// profiling overhead is negligible (curves coincide); the largest
// configuration loses one sample to the 16 MB database document limit.
//
// Here: mdsim on the `thinkie` virtual resource (the paper's profiling
// host), iteration axis scaled down ~50x (see bench_util.hpp), sampling
// rates 0.5..20 Hz (our sampler has no perf-stat fork, so it sustains
// rates above the paper's 10 Hz ceiling).

#include "bench_util.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("thinkie");

  const std::vector<uint64_t> step_counts = {20, 50, 100, 200, 500, 1000};
  const std::vector<double> rates = {0.5, 1.0, 2.0, 5.0, 10.0, 20.0};

  heading("Fig. 4: Profiling vs. Execution (Tx seconds, resource=thinkie)");
  std::string header = "  steps   native";
  for (const double r : rates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  %5.1fHz", r);
    header += buf;
  }
  row("%s", header.c_str());

  for (const uint64_t steps : step_counts) {
    const auto native = run_md(steps);
    std::string line;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%7llu  %6.3fs",
                  static_cast<unsigned long long>(steps),
                  native.wall_seconds);
    line = buf;
    for (const double rate : rates) {
      const auto p = profile_md(steps, rate);
      std::snprintf(buf, sizeof(buf), "  %6.3fs", p.runtime());
      line += buf;
    }
    row("%s", line.c_str());
  }

  row("\nexpectation (paper): profiled Tx tracks native Tx at every rate;"
      "\noverhead does not grow with sampling rate or problem size.");
  return 0;
}
