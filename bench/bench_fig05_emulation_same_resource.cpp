// Figure 5 — Emulation Correctness on the profiling resource.
//
// Paper: emulated Tx (green) agrees with application Tx (blue) on
// Thinkie for runtimes above the ~1 s Synapse startup delay; the second
// axis shows diff(%) which shrinks as Tx grows.
//
// Here: profile mdsim on `thinkie`, emulate on `thinkie`, print both Tx
// and diff%. Our emulator startup is tens of milliseconds (compiled
// C++, not Python), so the crossover sits proportionally lower.

#include "bench_util.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("thinkie");

  const std::vector<uint64_t> step_counts = {20, 50, 100, 200, 500, 1000};

  heading("Fig. 5: Emulation vs. Execution (thinkie)");
  row("  steps   app_Tx   emu_Tx   diff%%");
  for (const uint64_t steps : step_counts) {
    const auto p = profile_md(steps);
    const auto r = synapse::emulate_profile(p, emu_options());
    const double diff =
        100.0 * (r.wall_seconds - p.runtime()) / p.runtime();
    row("%7llu  %6.3fs  %6.3fs  %+6.1f",
        static_cast<unsigned long long>(steps), p.runtime(), r.wall_seconds,
        diff);
  }
  row("\nexpectation (paper): |diff| large only below the emulator startup"
      "\ntransient, converging to a few %% for longer runs.");
  return 0;
}
