// Figure 6 — Profiling Consistency.
//
// Paper (top): consumed CPU operations are consistent across sampling
// rates for every problem size (log/log plot, error bars).
// Paper (bottom): resident memory is underestimated when the rate
// allows only one sample within the application lifetime; with two or
// more samples the measure stabilizes.

#include "bench_util.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("thinkie");

  const std::vector<uint64_t> step_counts = {100, 300, 900};
  const std::vector<double> rates = {0.5, 2.0, 10.0, 50.0};

  heading("Fig. 6 (top): CPU operations over sampling rate and size");
  std::string header = "  steps";
  for (const double r : rates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "     %5.1fHz", r);
    header += buf;
  }
  header += "   spread%";
  row("%s", header.c_str());

  for (const uint64_t steps : step_counts) {
    std::vector<double> ops;
    std::string line;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%7llu",
                  static_cast<unsigned long long>(steps));
    line = buf;
    for (const double rate : rates) {
      const auto p = profile_md(steps, rate, /*write_output=*/false);
      const double flops = p.total(m::kFlops);
      ops.push_back(flops);
      std::snprintf(buf, sizeof(buf), "  %9.3e", flops);
      line += buf;
    }
    const auto stats = synapse::profile::compute_stats(ops);
    std::snprintf(buf, sizeof(buf), "   %6.2f",
                  100.0 * (stats.max - stats.min) / stats.mean);
    line += buf;
    row("%s", line.c_str());
  }
  row("expectation (paper): consumed operations independent of the rate"
      "\n(small spread), scaling linearly with the iteration count.");

  heading("Fig. 6 (bottom): profiled resident memory over rate and size");
  header = "  steps";
  for (const double r : rates) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "    %5.1fHz", r);
    header += buf;
  }
  row("%s", header.c_str());
  for (const uint64_t steps : step_counts) {
    std::string line;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%7llu",
                  static_cast<unsigned long long>(steps));
    line = buf;
    for (const double rate : rates) {
      const auto p = profile_md(steps, rate, /*write_output=*/false);
      const auto* mem = p.find_series("mem");
      const double resident =
          mem != nullptr ? mem->max(m::kMemResident) : 0.0;
      std::snprintf(buf, sizeof(buf), "  %6.2fMB", resident / 1e6);
      line += buf;
    }
    row("%s", line.c_str());
  }
  row("expectation (paper): low rates (~one in-lifetime sample) under-"
      "\nestimate resident memory; the estimate stabilizes with >= 2 samples.");
  return 0;
}
