// Figure 7 — Emulation Portability.
//
// Paper: a profile taken on Thinkie is emulated on Stampede (top) and
// Archer (bottom) and compared against actual application execution on
// those machines. The emulation reproduces the Tx *trend*; the absolute
// offset converges to ~40% faster on Stampede (default-flag application
// builds exploit it poorly) and ~33% slower on Archer (the Cray
// toolchain optimizes the application well).

#include "bench_util.hpp"

namespace {

void portability_on(const char* machine,
                    const std::vector<uint64_t>& step_counts) {
  using namespace bench;
  bench::heading(std::string("Fig. 7: Emulation vs. Execution (") + machine +
                 ")");
  bench::row("  steps   app_Tx   emu_Tx   diff%%");
  for (const uint64_t steps : step_counts) {
    // Profile on the paper's profiling host...
    synapse::resource::activate_resource("thinkie");
    const auto p = bench::profile_md(steps);
    // ...execute and emulate on the target machine.
    synapse::resource::activate_resource(machine);
    const auto app = bench::run_md(steps);
    const auto emu = synapse::emulate_profile(p, bench::emu_options());
    const double diff = 100.0 * (emu.wall_seconds - app.wall_seconds) /
                        app.wall_seconds;
    bench::row("%7llu  %6.3fs  %6.3fs  %+6.1f",
               static_cast<unsigned long long>(steps), app.wall_seconds,
               emu.wall_seconds, diff);
  }
}

}  // namespace

int main() {
  const std::vector<uint64_t> step_counts = {50, 100, 200, 500, 1000};
  portability_on("stampede", step_counts);
  bench::row("expectation (paper): emulation consistently FASTER, diff"
             "\nconverging to ~-40%% for long runs.");
  portability_on("archer", step_counts);
  bench::row("expectation (paper): emulation consistently SLOWER, diff"
             "\nconverging to ~+33%% for long runs.");
  synapse::resource::activate_resource("host");
  return 0;
}
