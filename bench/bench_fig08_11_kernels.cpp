// Figures 8-11 — Emulating with Different Kernels (experiment E.3).
//
// Paper: Gromacs is profiled on Comet and Supermic; Synapse then
// emulates the measured cycle consumption with the C matmul kernel
// (out-of-cache) and the ASM matmul kernel (cache-resident). Reported
// per machine and kernel:
//   Fig. 8  cycles consumed + error%   (C -> ~3.5-4%, ASM -> ~14.5/26.5%)
//   Fig. 9  Tx + error%                (mirrors the cycle error)
//   Fig. 10 instructions + error%      (C smaller than ASM)
//   Fig. 11 instructions per cycle     (app ~2.0-2.2 < C ~2.5-2.8 < ASM ~2.9-3.3)
//
// Memory and I/O emulation are off, as in the paper.

#include "bench_util.hpp"

#include "resource/cache_model.hpp"

namespace {

struct KernelRun {
  double cycles = 0.0;
  double tx = 0.0;
  double instructions = 0.0;
  double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
};

KernelRun emulate_with(const synapse::profile::Profile& p,
                       const std::string& kernel, int reps) {
  auto opts = bench::emu_options();
  opts.emulate_memory = false;
  opts.emulate_storage = false;
  opts.compute.kernel = kernel;

  const auto& traits = kernel == "c"
                           ? synapse::resource::c_kernel_traits()
                           : synapse::resource::asm_kernel_traits();
  KernelRun out;
  for (int i = 0; i < reps; ++i) {
    const auto r = synapse::emulate_profile(p, opts);
    out.cycles += r.compute.cycles / reps;
    out.tx += r.wall_seconds / reps;
    out.instructions +=
        r.compute.flops * traits.instructions_per_flop / reps;
  }
  return out;
}

void kernels_on(const char* machine) {
  using namespace bench;
  synapse::resource::activate_resource(machine);
  const std::vector<uint64_t> step_counts = {100, 200, 400, 800};
  constexpr int kReps = 2;

  heading(std::string("Figs. 8-11: app vs C/ASM kernel emulation (") +
          machine + ")");
  row("  steps |    app_cyc     c_cyc   err%%   asm_cyc   err%% |"
      "  app_Tx    c_Tx  err%%  asm_Tx  err%% |"
      "  app_ipc  c_ipc  asm_ipc");

  struct SizeResult {
    uint64_t steps;
    double app_instr;
    KernelRun c, a;
  };
  std::vector<SizeResult> results;

  for (const uint64_t steps : step_counts) {
    const auto p = profile_md(steps, 10.0, /*write_output=*/false);
    const double app_cycles = p.total(m::kCyclesUsed);
    const double app_instr = p.total(m::kInstructions);
    const double app_tx = p.runtime();

    const KernelRun c = emulate_with(p, "c", kReps);
    const KernelRun a = emulate_with(p, "asm", kReps);
    results.push_back({steps, app_instr, c, a});

    row("%7llu | %9.3e %9.3e %6.1f %9.3e %6.1f |"
        " %6.3fs %6.3fs %5.1f %6.3fs %5.1f |"
        "   %5.2f   %5.2f    %5.2f",
        static_cast<unsigned long long>(steps), app_cycles, c.cycles,
        100.0 * (c.cycles - app_cycles) / app_cycles, a.cycles,
        100.0 * (a.cycles - app_cycles) / app_cycles, app_tx, c.tx,
        100.0 * (c.tx - app_tx) / app_tx, a.tx,
        100.0 * (a.tx - app_tx) / app_tx,
        app_instr / app_cycles, c.ipc(), a.ipc());
  }

  row("\n  steps |  app_instr   c_instr   err%%  asm_instr   err%%");
  for (const auto& r : results) {
    row("%7llu | %9.3e %9.3e %6.1f  %9.3e %6.1f",
        static_cast<unsigned long long>(r.steps), r.app_instr,
        r.c.instructions,
        100.0 * (r.c.instructions - r.app_instr) / r.app_instr,
        r.a.instructions,
        100.0 * (r.a.instructions - r.app_instr) / r.app_instr);
  }
}

}  // namespace

int main() {
  kernels_on("comet");
  bench::row("expectation (paper, comet): cycle err C ~3.5%%, ASM ~14.5%%;"
             "\nIPC app ~2.17 < C ~2.80 < ASM ~3.30.");
  kernels_on("supermic");
  bench::row("expectation (paper, supermic): cycle err C ~4.0%%, ASM ~26.5%%;"
             "\nIPC app ~2.04 < C ~2.53 < ASM ~2.86."
             "\nshape: the C kernel beats the ASM kernel on every metric and"
             "\nboth machines; instruction errors are larger than cycle errors.");
  synapse::resource::activate_resource("host");
  return 0;
}
