// Figure 12 — Emulating Parallel Execution (experiment E.4).
//
// Paper: a profile obtained from a single-threaded Gromacs run is
// emulated with OpenMP (threads) or OpenMPI (processes) parallelism up
// to a full node on Titan (16 cores) and Supermic (20 cores). Scaling is
// good for small core counts with diminishing returns toward the full
// node; OpenMP wins on Titan, OpenMPI wins on Supermic.

#include "bench_util.hpp"

namespace {

void parallel_on(const char* machine, int max_cores) {
  using namespace bench;
  synapse::resource::activate_resource(machine);
  const auto p = profile_md(500, 10.0, /*write_output=*/false);

  heading(std::string("Fig. 12: parallel emulation of a serial profile (") +
          machine + ")");
  row("  cores   omp_Tx    mpi_Tx   omp_speedup  mpi_speedup");

  double t1_omp = 0.0, t1_mpi = 0.0;
  for (int cores = 1; cores <= max_cores; cores *= 2) {
    const int n = std::min(cores, max_cores);

    auto omp_opts = emu_options();
    omp_opts.emulate_memory = false;
    omp_opts.emulate_storage = false;
    omp_opts.parallel_mode = synapse::emulator::ParallelMode::OpenMp;
    omp_opts.parallel_degree = n;
    // Best of two repetitions: parallel timings on a shared box are
    // noisy and the figure plots the achievable scaling.
    const double t_omp =
        std::min(synapse::emulate_profile(p, omp_opts).wall_seconds,
                 synapse::emulate_profile(p, omp_opts).wall_seconds);

    auto mpi_opts = omp_opts;
    mpi_opts.parallel_mode = synapse::emulator::ParallelMode::Process;
    const double t_mpi =
        std::min(synapse::emulate_profile(p, mpi_opts).wall_seconds,
                 synapse::emulate_profile(p, mpi_opts).wall_seconds);

    if (n == 1) {
      t1_omp = t_omp;
      t1_mpi = t_mpi;
    }
    row("  %5d  %6.3fs   %6.3fs        %5.2fx        %5.2fx", n, t_omp,
        t_mpi, t1_omp / t_omp, t1_mpi / t_mpi);
    if (cores != n) break;
  }
  // Full node (20 is not a power of two on supermic).
  if ((max_cores & (max_cores - 1)) != 0) {
    auto omp_opts = emu_options();
    omp_opts.emulate_memory = false;
    omp_opts.emulate_storage = false;
    omp_opts.parallel_mode = synapse::emulator::ParallelMode::OpenMp;
    omp_opts.parallel_degree = max_cores;
    const double t_omp = synapse::emulate_profile(p, omp_opts).wall_seconds;
    auto mpi_opts = omp_opts;
    mpi_opts.parallel_mode = synapse::emulator::ParallelMode::Process;
    const double t_mpi = synapse::emulate_profile(p, mpi_opts).wall_seconds;
    row("  %5d  %6.3fs   %6.3fs        %5.2fx        %5.2fx", max_cores,
        t_omp, t_mpi, t1_omp / t_omp, t1_mpi / t_mpi);
  }
}

}  // namespace

int main() {
  parallel_on("titan", 16);
  bench::row("expectation (paper, titan): OpenMP outperforms OpenMPI;"
             "\ngood scaling early, diminishing returns at the full node.");
  parallel_on("supermic", 20);
  bench::row("expectation (paper, supermic): OpenMPI outperforms OpenMP"
             "\n(the model gives ranks the NUMA advantage; at this bench's"
             "\nsub-second scale fork startup masks part of that gap — see"
             "\nEXPERIMENTS.md); supermic executes faster than titan overall.");
  synapse::resource::activate_resource("host");
  return 0;
}
