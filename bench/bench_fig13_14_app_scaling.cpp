// Figures 13/14 — Gromacs scaling on Titan (OpenMP / OpenMPI).
//
// Paper: the actual application's scaling curves on Titan, shown to
// demonstrate that the emulated scaling (Fig. 12) resembles the real
// application's behaviour.
//
// Here: mdsim on the `titan` virtual resource with OpenMP threads
// (Fig. 13) and fork-parallel ranks (Fig. 14).

#include "bench_util.hpp"

int main() {
  using namespace bench;
  synapse::resource::activate_resource("titan");
  constexpr uint64_t kSteps = 250;

  heading("Fig. 13: mdsim scaling on titan with OpenMP");
  row("  threads     Tx   speedup");
  double t1 = 0.0;
  for (const int threads : {1, 2, 4, 8, 16}) {
    const auto r = run_md(kSteps, /*write_output=*/false, threads, 1);
    if (threads == 1) t1 = r.wall_seconds;
    row("  %7d  %6.3fs  %6.2fx", threads, r.wall_seconds,
        t1 / r.wall_seconds);
  }

  heading("Fig. 14: mdsim scaling on titan with fork-parallel ranks");
  row("  ranks       Tx   speedup");
  double r1 = 0.0;
  for (const int ranks : {1, 2, 4, 8, 16}) {
    const auto r = run_md(kSteps, /*write_output=*/false, 1, ranks);
    if (ranks == 1) r1 = r.wall_seconds;
    row("  %5d    %6.3fs  %6.2fx", ranks, r.wall_seconds,
        r1 / r.wall_seconds);
  }

  row("\nexpectation (paper): near-linear scaling for small worker counts,"
      "\ndiminishing returns toward the full 16-core node; the emulated"
      "\nscaling of Fig. 12 resembles these curves.");
  synapse::resource::activate_resource("host");
  return 0;
}
