// Figure 15 — Emulating Variable I/O Granularity (experiment E.5).
//
// Paper: a synthetic I/O workload emulated toward different filesystems
// (local, Lustre, NFS) with block sizes varied over orders of magnitude,
// on Titan (top) and Supermic (bottom). Findings: writes are roughly an
// order of magnitude slower than reads; small blocks are much slower
// than large blocks; Lustre performs about the same on both machines
// while local-FS performance differs significantly (Titan's local FS is
// much faster than Supermic's).

#include "bench_util.hpp"

#include "apps/iobench.hpp"

namespace {

void io_on(const char* machine, const std::vector<std::string>& filesystems) {
  using namespace bench;
  synapse::resource::activate_resource(machine);

  heading(std::string("Fig. 15: I/O emulation throughput MB/s (") + machine +
          ")");
  row("  fs       block     write_MBps   read_MBps");
  const std::vector<uint64_t> blocks = {4 * 1024, 64 * 1024, 1024 * 1024,
                                        16ull * 1024 * 1024};
  for (const auto& fs : filesystems) {
    for (const uint64_t block : blocks) {
      synapse::apps::IoBenchOptions opts;
      opts.filesystem = fs;
      opts.scratch_dir = "/tmp";
      opts.block_bytes = block;
      // Volume adapts to the block size so latency-bound cells stay fast
      // while bandwidth-bound cells still measure a steady rate.
      opts.write_bytes = std::max<uint64_t>(block * 8, 2 * 1024 * 1024);
      opts.write_bytes = std::min<uint64_t>(opts.write_bytes, 32ull << 20);
      opts.read_bytes = opts.write_bytes;
      const auto r = synapse::apps::run_iobench(opts);
      row("  %-7s %6lluKiB     %8.2f    %8.2f", fs.c_str(),
          static_cast<unsigned long long>(block / 1024),
          r.write_bps() * 1e-6, r.read_bps() * 1e-6);
    }
  }
}

}  // namespace

int main() {
  io_on("titan", {"local", "lustre"});
  io_on("supermic", {"local", "lustre"});
  io_on("comet", {"local", "nfs"});
  bench::row("\nexpectation (paper): writes ~an order of magnitude slower"
             "\nthan reads on shared filesystems; small blocks pay per-op"
             "\nlatency; lustre performs about the same on titan and"
             "\nsupermic; titan's local FS is much faster than supermic's.");
  synapse::resource::activate_resource("host");
  return 0;
}
