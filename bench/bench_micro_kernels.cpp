// Micro-benchmarks (google-benchmark) for the hot building blocks:
// compute kernels, token bucket, virtual filesystem ops, JSON, and the
// sample-delta decomposition. These are engineering benchmarks, not
// paper figures; they guard the emulator's overhead budget (paper
// section 4.5 "Overheads").

#include <benchmark/benchmark.h>

#include "atoms/kernels.hpp"
#include "json/json.hpp"
#include "profile/metrics.hpp"
#include "profile/profile.hpp"
#include "resource/throttle.hpp"
#include "resource/vfs.hpp"

namespace atoms = synapse::atoms;
namespace resource = synapse::resource;
namespace profile = synapse::profile;
namespace json = synapse::json;
namespace m = synapse::metrics;

static void BM_AsmKernelFlopRate(benchmark::State& state) {
  auto kernel = atoms::make_asm_kernel();
  double flops = 0.0;
  for (auto _ : state) {
    flops += kernel->busy(0.01);
  }
  state.counters["flops/s"] = benchmark::Counter(
      flops, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AsmKernelFlopRate)->Unit(benchmark::kMillisecond);

static void BM_CKernelFlopRate(benchmark::State& state) {
  auto kernel = atoms::make_c_kernel();
  double flops = 0.0;
  for (auto _ : state) {
    flops += kernel->busy(0.01);
  }
  state.counters["flops/s"] = benchmark::Counter(
      flops, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CKernelFlopRate)->Unit(benchmark::kMillisecond);

static void BM_TokenBucketAcquire(benchmark::State& state) {
  resource::TokenBucket bucket(1e12, 1e12);  // never blocks: measure overhead
  for (auto _ : state) {
    bucket.acquire(1024.0);
  }
}
BENCHMARK(BM_TokenBucketAcquire);

static void BM_VfsWrite64k(benchmark::State& state) {
  resource::FilesystemSpec fs;  // free model: measures the real I/O path
  fs.read_bw_bps = 1e15;
  fs.write_bw_bps = 1e15;
  resource::VirtualFilesystem vfs(fs, "/tmp/synapse_bench_vfs");
  auto file = vfs.open("bench.dat", true);
  for (auto _ : state) {
    file->write(64 * 1024);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64 *
                          1024);
  vfs.remove("bench.dat");
}
BENCHMARK(BM_VfsWrite64k);

static void BM_JsonDumpProfileSample(benchmark::State& state) {
  json::Object sample;
  sample["t"] = 1234.5678;
  json::Object values;
  values[std::string(m::kCyclesUsed)] = 1.23e9;
  values[std::string(m::kBytesWritten)] = 4.5e6;
  values[std::string(m::kMemResident)] = 6.7e8;
  sample["v"] = std::move(values);
  const json::Value v(std::move(sample));
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::dump(v));
  }
}
BENCHMARK(BM_JsonDumpProfileSample);

static void BM_JsonParseProfileSample(benchmark::State& state) {
  const std::string doc =
      R"({"t":1234.5678,"v":{"compute.cycles_used":1.23e9,)"
      R"("storage.bytes_written":4.5e6,"memory.bytes_resident":6.7e8}})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(doc));
  }
}
BENCHMARK(BM_JsonParseProfileSample);

static void BM_SampleDeltaDecomposition(benchmark::State& state) {
  profile::Profile p;
  p.sample_rate_hz = 10.0;
  profile::TimeSeries ts;
  ts.watcher = "trace";
  const auto n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    profile::Sample s;
    s.timestamp = 100.0 + static_cast<double>(i) * 0.1;
    s.set(m::kCyclesUsed, static_cast<double>(i) * 1e6);
    s.set(m::kBytesWritten, static_cast<double>(i) * 1e3);
    ts.samples.push_back(std::move(s));
  }
  p.series.push_back(std::move(ts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.sample_deltas());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SampleDeltaDecomposition)->Range(64, 4096)->Complexity();

BENCHMARK_MAIN();
