// Profile codec benchmark: JSON text vs the SYNB binary columnar
// container (profile/binary_codec.hpp) across the built-in scenario
// catalog.
//
// Per scenario, averaged over `iters` repetitions:
//
//   dump    - Profile::to_json + json::dump (compact)
//   encode  - Profile::to_binary (SYNB)
//   parse   - json::parse (heap DOM) + Profile::from_json
//   arena   - json::parse into a reused json::Arena + Profile::from_arena
//   decode  - Profile::from_binary (includes the payload copy a store
//             read would make)
//
// plus the encoded sizes and the binary/json size ratio — the codec's
// acceptance bar is ratio <= 0.50 on catalog profiles. The TOTAL row
// aggregates the whole catalog.
//
// Usage: bench_profile_codec [--smoke] [--json PATH] [ITERS]
//   --smoke      few iterations (CI smoke run)
//   --json PATH  machine-readable results (bench_util.hpp Results)
//   ITERS        repetitions per scenario (default 50, smoke 3)

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "json/arena.hpp"
#include "profile/profile.hpp"
#include "sys/clock.hpp"
#include "workload/scenario.hpp"

namespace json = synapse::json;
namespace profile = synapse::profile;
namespace workload = synapse::workload;
namespace sys = synapse::sys;

namespace {

struct CodecTiming {
  double dump_s = 0.0;
  double encode_s = 0.0;
  double parse_s = 0.0;
  double arena_s = 0.0;
  double decode_s = 0.0;
  size_t json_bytes = 0;
  size_t synb_bytes = 0;
};

CodecTiming run_one(const profile::Profile& p, size_t iters) {
  CodecTiming t;
  const std::string text = json::dump(p.to_json());
  const std::string blob = p.to_binary();
  t.json_bytes = text.size();
  t.synb_bytes = blob.size();

  sys::Stopwatch w;
  for (size_t i = 0; i < iters; ++i) {
    const std::string out = json::dump(p.to_json());
    if (out.empty()) std::abort();
  }
  t.dump_s = w.elapsed() / static_cast<double>(iters);

  w.reset();
  for (size_t i = 0; i < iters; ++i) {
    const std::string out = p.to_binary();
    if (out.empty()) std::abort();
  }
  t.encode_s = w.elapsed() / static_cast<double>(iters);

  w.reset();
  for (size_t i = 0; i < iters; ++i) {
    const profile::Profile back = profile::Profile::from_json(
        json::parse(text));
    if (back.sample_count() != p.sample_count()) std::abort();
  }
  t.parse_s = w.elapsed() / static_cast<double>(iters);

  json::Arena arena;  // reused across iterations, as the store does
  w.reset();
  for (size_t i = 0; i < iters; ++i) {
    arena.reset();
    const profile::Profile back =
        profile::Profile::from_arena(json::parse(text, arena));
    if (back.sample_count() != p.sample_count()) std::abort();
  }
  t.arena_s = w.elapsed() / static_cast<double>(iters);

  w.reset();
  for (size_t i = 0; i < iters; ++i) {
    const profile::Profile back = profile::Profile::from_binary(blob);
    if (back.sample_count() != p.sample_count()) std::abort();
  }
  t.decode_s = w.elapsed() / static_cast<double>(iters);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::results().set_bench("bench_profile_codec");
  size_t iters = 50;
  for (int i = 1; i < argc; ++i) {
    if (bench::json_flag(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = 3;
    } else {
      const long n = std::atol(argv[i]);
      if (n > 0) iters = static_cast<size_t>(n);
    }
  }

  bench::heading("Profile codec — JSON vs SYNB, " + std::to_string(iters) +
                 " iters per scenario");
  bench::row("%-22s %8s %9s %9s %6s %8s %8s %8s %8s %8s", "scenario",
             "samples", "json", "synb", "ratio", "dump", "encode", "parse",
             "arena", "decode");

  CodecTiming total;
  size_t total_samples = 0;
  for (const auto& spec : workload::builtin_scenarios()) {
    const profile::Profile p = spec.make_profile();
    const CodecTiming t = run_one(p, iters);
    bench::row("%-22s %8zu %8zuB %8zuB %5.2f %7.0fus %7.0fus %7.0fus "
               "%7.0fus %7.0fus",
               spec.name.c_str(), p.sample_count(), t.json_bytes,
               t.synb_bytes,
               static_cast<double>(t.synb_bytes) /
                   static_cast<double>(t.json_bytes),
               t.dump_s * 1e6, t.encode_s * 1e6, t.parse_s * 1e6,
               t.arena_s * 1e6, t.decode_s * 1e6);
    bench::results().record(spec.name, "json_bytes",
                            static_cast<double>(t.json_bytes), "B");
    bench::results().record(spec.name, "synb_bytes",
                            static_cast<double>(t.synb_bytes), "B");
    bench::results().record(spec.name, "dump_s", t.dump_s, "s");
    bench::results().record(spec.name, "encode_s", t.encode_s, "s");
    bench::results().record(spec.name, "parse_s", t.parse_s, "s");
    bench::results().record(spec.name, "arena_s", t.arena_s, "s");
    bench::results().record(spec.name, "decode_s", t.decode_s, "s");
    total.dump_s += t.dump_s;
    total.encode_s += t.encode_s;
    total.parse_s += t.parse_s;
    total.arena_s += t.arena_s;
    total.decode_s += t.decode_s;
    total.json_bytes += t.json_bytes;
    total.synb_bytes += t.synb_bytes;
    total_samples += p.sample_count();
  }
  bench::row("%-22s %8zu %8zuB %8zuB %5.2f %7.0fus %7.0fus %7.0fus "
             "%7.0fus %7.0fus",
             "TOTAL", total_samples, total.json_bytes, total.synb_bytes,
             static_cast<double>(total.synb_bytes) /
                 static_cast<double>(total.json_bytes),
             total.dump_s * 1e6, total.encode_s * 1e6, total.parse_s * 1e6,
             total.arena_s * 1e6, total.decode_s * 1e6);
  bench::row("(parse/arena speedup %.1fx, parse/decode %.1fx, "
             "dump/encode %.1fx, size ratio %.2f)",
             total.parse_s / total.arena_s, total.parse_s / total.decode_s,
             total.dump_s / total.encode_s,
             static_cast<double>(total.synb_bytes) /
                 static_cast<double>(total.json_bytes));
  bench::results().record("TOTAL", "size_ratio",
                          static_cast<double>(total.synb_bytes) /
                              static_cast<double>(total.json_bytes),
                          "");
  bench::results().write();
  return 0;
}
