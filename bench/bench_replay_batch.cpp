// Single-vs-batched replay throughput (ROADMAP: "batching inside the
// replay path itself").
//
// Replays one dispatch-bound synthetic profile (many samples, tiny
// per-sample budgets, the full compute+memory+storage atom mix) through
// the ReplayEngine in single mode and in batch mode across a sweep of
// batch sizes, and reports samples/s plus the speedup over single mode.
// With per-sample work this small, the single-mode cost is dominated by
// spawning one thread per atom per sample — exactly what the batched
// pipeline's persistent consumers amortize; the expectation (asserted
// by CI eyeballs, not exit codes) is batch >= 8 at least matching
// single mode.
//
// Every mode runs twice: with the legacy map feed (replay_frames off,
// the PR-over-PR baseline keys) and with the compiled frame feed
// (columnar ReplayPlan + lane masks + lock-free SPSC rings). The
// "frames" column is the frame feed's speedup over the map feed in the
// same mode.
//
// A second, decode-bound section replays the same profile out of a
// files-backed ProfileStore written once as JSON and once as SYNB
// binary: the timed path is store read (parse/decode) + sample_deltas
// (map walk vs columnar fast path) + the replay itself, so the binary
// codec's whole-pipeline win ("vs json" on the decode columns) is
// measured where it matters.
//
// A third section times the hot-cache lookup path: cold find_latest
// (read + decode) vs repeated find_latest / find_latest_shared hits on
// the store's decoded-profile cache — the repeated-emulation loop.
//
// Usage: bench_replay_batch [--smoke] [--json PATH] [N]
//   --smoke      tiny sample count (CI smoke run)
//   --json PATH  machine-readable results (bench_util.hpp Results)
//   N            samples in the synthetic profile (default 1500, smoke 150)

#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "emulator/replay_engine.hpp"
#include "profile/metrics.hpp"
#include "profile/profile_store.hpp"
#include "sys/clock.hpp"
#include "workload/scenario.hpp"

namespace emulator = synapse::emulator;
namespace profile = synapse::profile;
namespace workload = synapse::workload;
namespace sys = synapse::sys;
namespace m = synapse::metrics;

namespace {

/// Dispatch-bound scenario: per-sample budgets small enough that the
/// feed loop's own overhead, not the atoms' work, dominates.
profile::Profile make_dispatch_bound_profile(size_t samples) {
  workload::ScenarioSpec spec;
  spec.name = "replay-batch-bench";
  spec.atom_set = {"compute", "memory", "storage"};
  spec.source.samples = samples;
  spec.source.sample_rate_hz = 100.0;
  spec.source.deltas[std::string(m::kCyclesUsed)] = 2e4;
  spec.source.deltas[std::string(m::kMemAllocated)] = 64.0 * 1024;
  spec.source.deltas[std::string(m::kMemFreed)] = 64.0 * 1024;
  spec.source.deltas[std::string(m::kBytesWritten)] = 4.0 * 1024;
  return spec.make_profile();
}

double run_once(const profile::Profile& p, size_t batch, bool frames) {
  emulator::EmulatorOptions opts = bench::emu_options();
  opts.atom_set = {"compute", "memory", "storage"};
  opts.replay_batch = batch;
  opts.replay_frames = frames;
  emulator::ReplayEngine engine(opts);
  const sys::Stopwatch w;
  const auto r = engine.replay(p);
  const double elapsed = w.elapsed();
  if (r.samples_replayed != p.sample_count() / 3) {
    // 3 series (trace/mem/io watcher buckets) over the same periods.
    bench::row("!! replayed %zu of %zu samples", r.samples_replayed,
               p.sample_count() / 3);
  }
  return elapsed;
}

/// The feed-representation showcase: a memory atom with a 1 KiB
/// alloc/free per sample — sub-microsecond of real work, so per-sample
/// dispatch (map decode + wants() probing + batch latching vs lane
/// reads through recycled frames) IS the wall time. The other atoms
/// would mask the feed: storage does real file I/O per sample and the
/// compute kernel has a fixed per-call floor, bounding their pipelines
/// regardless of feed representation.
void dispatch_bound_section(size_t samples) {
  workload::ScenarioSpec spec;
  spec.name = "replay-dispatch-bench";
  spec.atom_set = {"memory"};
  spec.source.samples = samples * 20;
  spec.source.sample_rate_hz = 100.0;
  spec.source.deltas[std::string(m::kMemAllocated)] = 1024.0;
  spec.source.deltas[std::string(m::kMemFreed)] = 1024.0;
  // SYNB round trip: a stored profile arrives with its binary payload,
  // so the frame plan builds its columnar table straight off the
  // decode_columns() views — no SampleDelta maps anywhere — while the
  // map feed must still materialize one metric map per sample.
  const profile::Profile p =
      profile::Profile::from_binary(spec.make_profile().to_binary());
  const double n = static_cast<double>(spec.source.samples);

  bench::heading("Dispatch-bound feed — " +
                 std::to_string(spec.source.samples) +
                 " samples, memory atom, 1 KiB budgets");
  bench::row("%-12s %10s %12s %10s %12s  %s", "mode", "map wall", "map/s",
             "frame wall", "frames/s", "frames speedup");

  for (const size_t batch : {size_t{1}, size_t{8}, size_t{32}}) {
    emulator::EmulatorOptions opts = bench::emu_options();
    opts.atom_set = {"memory"};
    opts.replay_batch = batch;

    opts.replay_frames = false;
    sys::Stopwatch w;
    emulator::ReplayEngine(opts).replay(p);
    const double map_s = w.elapsed();

    opts.replay_frames = true;
    w.reset();
    emulator::ReplayEngine(opts).replay(p);
    const double frames_s = w.elapsed();

    const std::string mode =
        batch <= 1 ? "single" : "batch=" + std::to_string(batch);
    bench::row("%-12s %9.3fs %10.0f/s %9.3fs %10.0f/s  %4.1fx", mode.c_str(),
               map_s, n / map_s, frames_s, n / frames_s, map_s / frames_s);
    const std::string key = batch <= 1 ? "single" : std::to_string(batch);
    bench::results().record("dispatch", "map_" + key + "_per_s", n / map_s,
                            "1/s");
    bench::results().record("dispatch", "frames_" + key + "_per_s",
                            n / frames_s, "1/s");
  }
}

/// JSON-vs-binary replay out of a files store: read + sample_deltas +
/// replay per format. The decode columns (read + deltas) are where the
/// codec shows; the replay column is format-independent atom work.
void store_backed_section(size_t samples) {
  const std::string dir = "/tmp/synapse_bench_replay_store";
  const profile::Profile src = make_dispatch_bound_profile(samples);

  bench::heading("Store-backed replay — files backend, " +
                 std::to_string(samples) + " samples per series");
  bench::row("%-8s %10s %10s %10s %10s  %s", "format", "read", "deltas",
             "replay", "total", "decode vs json");

  double json_decode_s = 0.0;
  for (const std::string format : {"json", "binary"}) {
    std::system(("rm -rf " + dir).c_str());
    {
      profile::ProfileStoreOptions options;
      options.backend = "files";
      options.directory = dir;
      options.format = format;
      profile::ProfileStore store(std::move(options));
      store.put(src);
      store.flush();
    }
    profile::ProfileStoreOptions options;
    options.backend = "files";
    options.directory = dir;
    profile::ProfileStore store(std::move(options));

    sys::Stopwatch w;
    const auto stored = store.find_latest(src.command);
    const double read_s = w.elapsed();
    if (!stored) {
      bench::row("!! %s profile did not round-trip through the store",
                 format.c_str());
      continue;
    }
    w.reset();
    const auto deltas = stored->sample_deltas();
    const double deltas_s = w.elapsed();
    (void)deltas;

    emulator::EmulatorOptions opts = bench::emu_options();
    opts.atom_set = {"compute", "memory", "storage"};
    opts.replay_batch = 8;
    emulator::ReplayEngine engine(opts);
    w.reset();
    engine.replay(*stored);
    const double replay_s = w.elapsed();

    const double decode_s = read_s + deltas_s;
    if (format == "json") json_decode_s = decode_s;
    std::string vs_json = "-";
    if (format == "binary" && json_decode_s > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1fx", json_decode_s / decode_s);
      vs_json = buf;
    }
    bench::row("%-8s %9.4fs %9.4fs %9.4fs %9.4fs  %s", format.c_str(),
               read_s, deltas_s, replay_s, read_s + deltas_s + replay_s,
               vs_json.c_str());
    const std::string section = "store/" + format;
    bench::results().record(section, "read_s", read_s, "s");
    bench::results().record(section, "deltas_s", deltas_s, "s");
    bench::results().record(section, "replay_s", replay_s, "s");
  }
  std::system(("rm -rf " + dir).c_str());
}

/// Hot-cache replay: the first find_latest pays the full read + decode;
/// repeated lookups of the same workload hit the store's decoded-profile
/// cache, and find_latest_shared additionally skips the copy-out (one
/// refcount bump). This is the paper's hot loop — re-emulating the same
/// recorded workload many times.
void hot_cache_section(size_t samples) {
  const std::string dir = "/tmp/synapse_bench_replay_cache";
  const profile::Profile src = make_dispatch_bound_profile(samples);
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStoreOptions options;
    options.backend = "files";
    options.directory = dir;
    options.format = "binary";
    profile::ProfileStore store(std::move(options));
    store.put(src);
    store.flush();
  }
  profile::ProfileStoreOptions options;
  options.backend = "files";
  options.directory = dir;
  profile::ProfileStore store(std::move(options));

  bench::heading("Hot-cache lookups — files/binary, " +
                 std::to_string(samples) + " samples per series");
  bench::row("%-22s %12s %12s  %s", "path", "per lookup", "lookups/s",
             "vs cold");

  constexpr size_t kIterations = 200;
  sys::Stopwatch w;
  (void)store.find_latest(src.command);
  const double cold_s = std::max(w.elapsed(), 1e-9);
  bench::row("%-22s %11.6fs %10.0f/s  %5s", "cold (read+decode)", cold_s,
             1.0 / cold_s, "1.0x");
  bench::results().record("hot_cache", "cold_s", cold_s, "s");

  w.reset();
  for (size_t i = 0; i < kIterations; ++i) {
    (void)store.find_latest(src.command);
  }
  const double hot_copy_s = std::max(w.elapsed() / kIterations, 1e-12);
  bench::row("%-22s %11.6fs %10.0f/s  %4.0fx", "hot find_latest",
             hot_copy_s, 1.0 / hot_copy_s, cold_s / hot_copy_s);
  bench::results().record("hot_cache", "hot_copy_s", hot_copy_s, "s");

  w.reset();
  for (size_t i = 0; i < kIterations; ++i) {
    (void)store.find_latest_shared(src.command);
  }
  const double hot_shared_s = std::max(w.elapsed() / kIterations, 1e-12);
  bench::row("%-22s %11.6fs %10.0f/s  %4.0fx", "hot find_latest_shared",
             hot_shared_s, 1.0 / hot_shared_s, cold_s / hot_shared_s);
  bench::results().record("hot_cache", "hot_shared_s", hot_shared_s, "s");

  const auto stats = store.cache_stats();
  bench::row("cache: %llu hits / %llu misses, %llu bytes decoded",
             static_cast<unsigned long long>(stats.hits),
             static_cast<unsigned long long>(stats.misses),
             static_cast<unsigned long long>(stats.bytes));
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::results().set_bench("bench_replay_batch");
  size_t samples = 1500;
  for (int i = 1; i < argc; ++i) {
    if (bench::json_flag(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      samples = 150;
    } else {
      const long n = std::atol(argv[i]);
      if (n > 0) samples = static_cast<size_t>(n);
    }
  }

  const profile::Profile p = make_dispatch_bound_profile(samples);
  // Two dimensions per mode: the legacy map feed (SampleDelta maps,
  // per-sample wants() probing — the PR-over-PR baseline keys) and the
  // compiled frame feed (columnar plan + lane masks + SPSC rings,
  // replay_frames on). "frames" is the per-row speedup of the frame
  // feed over the map feed in the SAME mode; "speedup" stays the map
  // feed's gain over map single mode, as before.
  bench::heading("Replay feed modes — " + std::to_string(samples) +
                 " samples, compute+memory+storage");
  bench::row("%-12s %10s %12s %10s %12s  %8s %s", "mode", "map wall",
             "map/s", "frame wall", "frames/s", "speedup", "frames");

  const double n = static_cast<double>(samples);
  const double single_s = run_once(p, 1, false);
  const double single_frames_s = run_once(p, 1, true);
  bench::row("%-12s %9.3fs %10.0f/s %9.3fs %10.0f/s  %7s %5.1fx", "single",
             single_s, n / single_s, single_frames_s, n / single_frames_s,
             "1.0x", single_s / single_frames_s);
  bench::results().record("feed", "single_per_s", n / single_s, "1/s");
  bench::results().record("feed", "frames_single_per_s", n / single_frames_s,
                          "1/s");

  for (const size_t batch : {size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
    const double batch_s = run_once(p, batch, false);
    const double frames_s = run_once(p, batch, true);
    bench::row("%-12s %9.3fs %10.0f/s %9.3fs %10.0f/s  %6.1fx %5.1fx",
               ("batch=" + std::to_string(batch)).c_str(), batch_s,
               n / batch_s, frames_s, n / frames_s, single_s / batch_s,
               batch_s / frames_s);
    bench::results().record("feed", "batch" + std::to_string(batch) +
                            "_per_s", n / batch_s, "1/s");
    bench::results().record("feed", "frames_batch" + std::to_string(batch) +
                            "_per_s", n / frames_s, "1/s");
  }

  dispatch_bound_section(samples);
  store_backed_section(samples);
  hot_cache_section(samples);
  bench::results().write();
  return 0;
}
