// Single-vs-batched replay throughput (ROADMAP: "batching inside the
// replay path itself").
//
// Replays one dispatch-bound synthetic profile (many samples, tiny
// per-sample budgets, the full compute+memory+storage atom mix) through
// the ReplayEngine in single mode and in batch mode across a sweep of
// batch sizes, and reports samples/s plus the speedup over single mode.
// With per-sample work this small, the single-mode cost is dominated by
// spawning one thread per atom per sample — exactly what the batched
// pipeline's persistent consumers amortize; the expectation (asserted
// by CI eyeballs, not exit codes) is batch >= 8 at least matching
// single mode.
//
// Usage: bench_replay_batch [--smoke] [N]
//   --smoke  tiny sample count (CI smoke run)
//   N        samples in the synthetic profile (default 1500, smoke 150)

#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "emulator/replay_engine.hpp"
#include "profile/metrics.hpp"
#include "sys/clock.hpp"
#include "workload/scenario.hpp"

namespace emulator = synapse::emulator;
namespace profile = synapse::profile;
namespace workload = synapse::workload;
namespace sys = synapse::sys;
namespace m = synapse::metrics;

namespace {

/// Dispatch-bound scenario: per-sample budgets small enough that the
/// feed loop's own overhead, not the atoms' work, dominates.
profile::Profile make_dispatch_bound_profile(size_t samples) {
  workload::ScenarioSpec spec;
  spec.name = "replay-batch-bench";
  spec.atom_set = {"compute", "memory", "storage"};
  spec.source.samples = samples;
  spec.source.sample_rate_hz = 100.0;
  spec.source.deltas[std::string(m::kCyclesUsed)] = 2e4;
  spec.source.deltas[std::string(m::kMemAllocated)] = 64.0 * 1024;
  spec.source.deltas[std::string(m::kMemFreed)] = 64.0 * 1024;
  spec.source.deltas[std::string(m::kBytesWritten)] = 4.0 * 1024;
  return spec.make_profile();
}

double run_once(const profile::Profile& p, size_t batch) {
  emulator::EmulatorOptions opts = bench::emu_options();
  opts.atom_set = {"compute", "memory", "storage"};
  opts.replay_batch = batch;
  emulator::ReplayEngine engine(opts);
  const sys::Stopwatch w;
  const auto r = engine.replay(p);
  const double elapsed = w.elapsed();
  if (r.samples_replayed != p.sample_count() / 3) {
    // 3 series (trace/mem/io watcher buckets) over the same periods.
    bench::row("!! replayed %zu of %zu samples", r.samples_replayed,
               p.sample_count() / 3);
  }
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  size_t samples = 1500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      samples = 150;
    } else {
      const long n = std::atol(argv[i]);
      if (n > 0) samples = static_cast<size_t>(n);
    }
  }

  const profile::Profile p = make_dispatch_bound_profile(samples);
  bench::heading("Replay feed modes — " + std::to_string(samples) +
                 " samples, compute+memory+storage");
  bench::row("%-12s %10s %12s  %s", "mode", "wall", "samples/s", "speedup");

  const double single_s = run_once(p, 1);
  const double n = static_cast<double>(samples);
  bench::row("%-12s %9.3fs %10.0f/s  %5s", "single", single_s, n / single_s,
             "1.0x");

  for (const size_t batch : {size_t{4}, size_t{8}, size_t{16}, size_t{32}}) {
    const double batch_s = run_once(p, batch);
    bench::row("%-12s %9.3fs %10.0f/s  %4.1fx",
               ("batch=" + std::to_string(batch)).c_str(), batch_s,
               n / batch_s, single_s / batch_s);
  }
  return 0;
}
