// Cluster-backend scaling benchmark (ROADMAP: "multi-node backends —
// distribute shards across docstore instances").
//
// Synthesizes a profile stream from the built-in scenario catalog (the
// same stream as bench_store_ingest) and measures, at a FIXED shard
// count, how put / put_many / find_latest move as the store's shards
// are spread across 1, 2 and 4 docstore instances. The single-instance
// row is the baseline the plain docstore backend would give; extra
// instances spread the collection files (and their flush I/O) across
// independent directories.
//
// Usage: bench_store_cluster [--smoke] [N]
//   --smoke  tiny stream (CI smoke run)
//   N        profiles per scenario (default 40, smoke 4)

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "profile/profile_store.hpp"
#include "sys/clock.hpp"
#include "workload/scenario.hpp"

namespace profile = synapse::profile;
namespace workload = synapse::workload;
namespace sys = synapse::sys;

namespace {

constexpr size_t kShards = 8;
const std::string kBase = "/tmp/synapse_bench_cluster";

/// Profile stream shaped like repeated scenario recordings (distinct
/// rep tags spread the stream across shards, and therefore instances).
std::vector<profile::Profile> make_stream(size_t reps) {
  std::vector<profile::Profile> stream;
  double clock = 1.0e9;  // synthetic created_at epoch
  for (const auto& spec : workload::builtin_scenarios()) {
    const profile::Profile base = spec.make_profile();
    for (size_t rep = 0; rep < reps; ++rep) {
      profile::Profile p = base;
      p.tags.push_back("rep=" + std::to_string(rep));
      p.created_at = clock += 1.0;
      stream.push_back(std::move(p));
    }
  }
  return stream;
}

std::string write_spec(size_t instances) {
  const std::string path = kBase + "/cluster.json";
  std::ofstream spec(path);
  spec << "{\"instances\": [";
  for (size_t i = 0; i < instances; ++i) {
    if (i > 0) spec << ",";
    spec << "{\"name\": \"inst-" << i << "\", \"root\": \"" << kBase
         << "/inst-" << i << "\"}";
  }
  spec << "]}";
  return path;
}

profile::ProfileStore make_store(size_t instances) {
  std::system(("rm -rf " + kBase).c_str());
  ::system(("mkdir -p " + kBase).c_str());
  profile::ProfileStoreOptions options;
  options.backend = "cluster";
  options.directory = kBase + "/store";
  options.cluster_spec = write_spec(instances);
  options.shards = kShards;
  return profile::ProfileStore(std::move(options));
}

struct ClusterTiming {
  double put_s = 0.0;
  double put_many_s = 0.0;
  double flush_s = 0.0;
  double find_latest_s = 0.0;
};

ClusterTiming run_one(size_t instances,
                      const std::vector<profile::Profile>& stream) {
  ClusterTiming t;
  {
    auto store = make_store(instances);
    sys::Stopwatch w;
    for (const auto& p : stream) store.put(p);
    t.put_s = w.elapsed();
    w.reset();
    store.flush();
    t.flush_s = w.elapsed();
    // Uncached lookups: every workload once, cache cold for the first
    // pass over a shard's key (cache_entries_per_shard default holds
    // only some of the keys, so this mixes hits and misses like a real
    // reader fleet).
    w.reset();
    for (const auto& p : stream) {
      if (!store.find_latest(p.command, p.tags)) std::abort();
    }
    t.find_latest_s = w.elapsed();
  }
  {
    auto store = make_store(instances);
    sys::Stopwatch w;
    store.put_many(stream);
    t.put_many_s = w.elapsed();
  }
  std::system(("rm -rf " + kBase).c_str());
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::results().set_bench("bench_store_cluster");
  size_t reps = 40;
  for (int i = 1; i < argc; ++i) {
    if (bench::json_flag(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      reps = 4;
    } else {
      const long n = std::atol(argv[i]);
      if (n > 0) reps = static_cast<size_t>(n);
    }
  }

  const auto stream = make_stream(reps);
  bench::heading("ProfileStore cluster backend — " +
                 std::to_string(stream.size()) + " profiles across " +
                 std::to_string(kShards) + " shards");
  bench::row("%-9s %10s %10s %10s %12s", "instances", "put", "put_many",
             "flush", "find_latest");

  const double n = static_cast<double>(stream.size());
  for (const size_t instances : {size_t{1}, size_t{2}, size_t{4}}) {
    ClusterTiming t = run_one(instances, stream);
    t.put_s = std::max(t.put_s, 1e-9);
    t.put_many_s = std::max(t.put_many_s, 1e-9);
    t.find_latest_s = std::max(t.find_latest_s, 1e-9);
    bench::row("%-9zu %8.0f/s %8.0f/s %9.3fs %10.0f/s", instances,
               n / t.put_s, n / t.put_many_s, t.flush_s,
               n / t.find_latest_s);
    const std::string section =
        "instances=" + std::to_string(instances);
    bench::results().record(section, "put_per_s", n / t.put_s, "1/s");
    bench::results().record(section, "put_many_per_s", n / t.put_many_s,
                            "1/s");
    bench::results().record(section, "find_latest_per_s",
                            n / t.find_latest_s, "1/s");
  }
  bench::results().write();
  return 0;
}
