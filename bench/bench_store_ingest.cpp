// Scenario-driven ProfileStore ingest benchmark (ROADMAP: "scenario-
// driven store ingest benchmarks").
//
// Synthesizes a profile stream from the built-in scenario catalog (each
// repetition re-tagged so the stream spreads across shards, as a fleet
// of concurrent recorders would) and measures, per backend and shard
// count:
//
//   put        - one store insert per profile (one lock each)
//   put_many   - the whole stream in one batched insert
//   flush      - synchronous persistence of the batch
//   flush_async- foreground cost of handing persistence to the worker
//                (the drain is timed separately as "drain")
//
// Persistent backends run once per profile format (json, binary): the
// encoder sits on the put path, so the SYNB-vs-JSON ingest speedup
// shows up directly in the put/put_many columns ("vs json" is the
// binary row's put_many rate over the json row's). The memory backend
// stores Profile objects and never encodes, so it runs once.
//
// A second section sweeps ProfileStoreOptions::threads (1/2/4/shared
// pool) over a 16-shard binary files store and times the pool-parallel
// cross-shard operations: put_many, the list() scan, and convert_all.
//
// Usage: bench_store_ingest [--smoke] [--json PATH] [N]
//   --smoke      tiny stream (CI smoke run)
//   --json PATH  machine-readable results (bench_util.hpp Results)
//   N            profiles per scenario (default 40, smoke 4)

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "profile/profile_store.hpp"
#include "sys/clock.hpp"
#include "workload/scenario.hpp"

namespace profile = synapse::profile;
namespace workload = synapse::workload;
namespace sys = synapse::sys;

namespace {

/// Profile stream shaped like repeated scenario recordings: every
/// catalog entry contributes `reps` profiles with distinct rep tags and
/// monotonically increasing timestamps.
std::vector<profile::Profile> make_stream(size_t reps) {
  std::vector<profile::Profile> stream;
  double clock = 1.0e9;  // synthetic created_at epoch
  for (const auto& spec : workload::builtin_scenarios()) {
    const profile::Profile base = spec.make_profile();
    for (size_t rep = 0; rep < reps; ++rep) {
      profile::Profile p = base;
      p.tags.push_back("rep=" + std::to_string(rep));
      p.created_at = clock += 1.0;
      stream.push_back(std::move(p));
    }
  }
  return stream;
}

struct IngestTiming {
  double put_s = 0.0;
  double put_many_s = 0.0;
  double flush_s = 0.0;
  double async_fg_s = 0.0;  ///< foreground put_many + flush_async
  double drain_s = 0.0;     ///< waiting for the background worker
};

profile::ProfileStore make_store(const std::string& backend,
                                 const std::string& dir, size_t shards,
                                 const std::string& format,
                                 size_t threads = 1) {
  profile::ProfileStoreOptions options;
  options.shards = shards;
  options.backend = backend;
  options.format = format;
  options.threads = threads;
  if (backend == "memory") {
    return profile::ProfileStore(std::move(options));
  }
  std::system(("rm -rf " + dir).c_str());
  options.directory = dir;
  return profile::ProfileStore(std::move(options));
}

IngestTiming run_one(const std::string& backend, size_t shards,
                     const std::string& format,
                     const std::vector<profile::Profile>& stream) {
  const std::string dir = "/tmp/synapse_bench_ingest";
  IngestTiming t;

  {
    auto store = make_store(backend, dir, shards, format);
    sys::Stopwatch w;
    for (const auto& p : stream) store.put(p);
    t.put_s = w.elapsed();
    w.reset();
    store.flush();
    t.flush_s = w.elapsed();
  }
  {
    auto store = make_store(backend, dir, shards, format);
    sys::Stopwatch w;
    store.put_many(stream);
    t.put_many_s = w.elapsed();
  }
  {
    auto store = make_store(backend, dir, shards, format);
    sys::Stopwatch w;
    store.put_many(stream);
    store.flush_async();
    t.async_fg_s = w.elapsed();
    w.reset();
    store.flush();  // bounded: waits for everything queued above
    t.drain_s = w.elapsed();
  }
  std::system(("rm -rf " + dir).c_str());
  return t;
}

/// Cross-shard parallelism sweep: the same binary files-backed stream,
/// shards fixed at 16, worker threads 1 (fully serial store), 2, 4 and
/// 0 (the process-wide shared pool at its default width). put_many
/// fans out one task per shard; list() is the full-store scan; the
/// speedup column is each row's put_many rate over the threads=1 row.
void parallel_section(const std::vector<profile::Profile>& stream) {
  const std::string dir = "/tmp/synapse_bench_ingest_par";
  const double n = static_cast<double>(stream.size());
  constexpr size_t kShards = 16;

  bench::heading("Cross-shard parallelism — files/binary, " +
                 std::to_string(kShards) + " shards");
  bench::row("%-12s %10s %10s %12s %9s", "threads", "put_many", "scan",
             "convert_all", "speedup");

  double serial_put_many_s = 0.0;
  for (const size_t threads :
       {size_t{1}, size_t{2}, size_t{4}, size_t{0}}) {
    auto store = make_store("files", dir, kShards, "binary", threads);
    sys::Stopwatch w;
    store.put_many(stream);
    const double put_many_s = std::max(w.elapsed(), 1e-9);
    w.reset();
    const size_t listed = store.list().size();
    const double scan_s = std::max(w.elapsed(), 1e-9);
    w.reset();
    store.convert_all();
    const double convert_s = std::max(w.elapsed(), 1e-9);
    if (listed != stream.size()) {
      bench::row("!! scan saw %zu of %zu profiles", listed, stream.size());
    }

    if (threads == 1) serial_put_many_s = put_many_s;
    const std::string label =
        threads == 0 ? "pool(" + std::to_string(store.task_threads()) + ")"
                     : std::to_string(threads);
    bench::row("%-12s %8.0f/s %9.3fs %11.3fs %8.1fx", label.c_str(),
               n / put_many_s, scan_s, convert_s,
               serial_put_many_s / put_many_s);
    const std::string section = "parallel/threads=" + label;
    bench::results().record(section, "put_many_per_s", n / put_many_s,
                            "1/s");
    bench::results().record(section, "scan_s", scan_s, "s");
    bench::results().record(section, "convert_all_s", convert_s, "s");
  }
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::results().set_bench("bench_store_ingest");
  size_t reps = 40;
  for (int i = 1; i < argc; ++i) {
    if (bench::json_flag(argc, argv, i)) {
      continue;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      reps = 4;
    } else {
      const long n = std::atol(argv[i]);
      if (n > 0) reps = static_cast<size_t>(n);
    }
  }

  const auto stream = make_stream(reps);
  bench::heading("ProfileStore ingest — " + std::to_string(stream.size()) +
                 " profiles (" + std::to_string(reps) + " reps x " +
                 std::to_string(workload::builtin_scenarios().size()) +
                 " scenarios)");
  bench::row("%-9s %-7s %6s %10s %10s %10s %12s %10s %8s %s", "backend",
             "format", "shards", "put", "put_many", "flush", "async(fg)",
             "drain", "speedup", "vs json");

  const double n = static_cast<double>(stream.size());
  for (const std::string backend : {"memory", "docstore", "files"}) {
    for (const size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      double json_put_many_s = 0.0;
      const std::vector<std::string> formats =
          backend == "memory" ? std::vector<std::string>{"binary"}
                              : std::vector<std::string>{"json", "binary"};
      for (const std::string& format : formats) {
        IngestTiming t = run_one(backend, shards, format, stream);
        // Sub-microsecond phases (tiny smoke streams) would divide to inf.
        t.put_s = std::max(t.put_s, 1e-9);
        t.put_many_s = std::max(t.put_many_s, 1e-9);
        if (format == "json") json_put_many_s = t.put_many_s;
        std::string vs_json = "-";
        if (format == "binary" && json_put_many_s > 0.0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.1fx",
                        json_put_many_s / t.put_many_s);
          vs_json = buf;
        }
        const std::string shown =
            backend == "memory" ? std::string("-") : format;
        bench::row(
            "%-9s %-7s %6zu %8.0f/s %8.0f/s %9.3fs %11.3fs %9.3fs %7.1fx %s",
            backend.c_str(), shown.c_str(), shards, n / t.put_s,
            n / t.put_many_s, t.flush_s, t.async_fg_s, t.drain_s,
            t.put_s / t.put_many_s, vs_json.c_str());
        const std::string section = backend + "/" + shown + "/shards=" +
                                    std::to_string(shards);
        bench::results().record(section, "put_per_s", n / t.put_s, "1/s");
        bench::results().record(section, "put_many_per_s", n / t.put_many_s,
                                "1/s");
        bench::results().record(section, "flush_s", t.flush_s, "s");
        bench::results().record(section, "async_fg_s", t.async_fg_s, "s");
        bench::results().record(section, "drain_s", t.drain_s, "s");
      }
    }
  }
  parallel_section(stream);
  bench::results().write();
  return 0;
}
