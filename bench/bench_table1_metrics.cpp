// Table 1 — List of Synapse metrics and their usage.
//
// Regenerates the support matrix exactly as printed in the paper:
// columns Tot./Samp./Der./Emul. with "+", "(+)", "(-)", "-" markers.

#include <cstdio>

#include "profile/metrics.hpp"

int main() {
  namespace m = synapse::metrics;

  std::printf("Table 1: List of Synapse metrics and their usage\n\n");
  std::printf("%-8s  %-26s %-5s %-6s %-5s %-5s\n", "Resource", "Metric",
              "Tot.", "Samp.", "Der.", "Emul.");
  std::printf("%s\n", std::string(62, '-').c_str());

  std::string_view current;
  for (const auto& row : m::support_matrix()) {
    const bool new_group = row.resource != current;
    current = row.resource;
    std::printf("%-8s  %-26s %-5s %-6s %-5s %-5s\n",
                new_group ? std::string(row.resource).c_str() : "",
                std::string(row.metric).c_str(),
                std::string(m::support_symbol(row.total)).c_str(),
                std::string(m::support_symbol(row.sampled)).c_str(),
                std::string(m::support_symbol(row.derived)).c_str(),
                std::string(m::support_symbol(row.emulated)).c_str());
  }
  std::printf(
      "\nSampl.: sampled over time; Der.: derived from other metrics;\n"
      "Tot.: integrated total over runtime; Emul.: used in emulation;\n"
      "(+): partial; (-): planned.\n");
  return 0;
}
