#pragma once
// Shared helpers for the figure-reproduction benches.
//
// The paper's Gromacs runs span 10^4..10^7 iterations (Tx roughly 1 s to
// several hundred seconds). The benches scale the iteration axis down by
// ~50x so a full figure regenerates in seconds while preserving the
// log-axis spread; EXPERIMENTS.md records the mapping.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "profile/stats.hpp"
#include "resource/resource_spec.hpp"

namespace bench {

namespace m = synapse::metrics;

/// Profile one mdsim run (in a forked child) on the active resource.
inline synapse::profile::Profile profile_md(uint64_t steps,
                                            double rate_hz = 10.0,
                                            bool write_output = true) {
  synapse::watchers::ProfilerOptions opts;
  opts.sample_rate_hz = rate_hz;
  synapse::watchers::Profiler profiler(opts);
  synapse::apps::MdOptions md;
  md.steps = steps;
  md.scratch_dir = "/tmp";
  md.write_output = write_output;
  return profiler.profile_function(
      [md] {
        synapse::apps::run_md(md);
        return 0;
      },
      "mdsim --steps " + std::to_string(steps),
      {"steps=" + std::to_string(steps)});
}

/// Run mdsim natively (no profiler) on the active resource.
inline synapse::apps::MdReport run_md(uint64_t steps,
                                      bool write_output = true,
                                      int threads = 1, int ranks = 1) {
  synapse::apps::MdOptions md;
  md.steps = steps;
  md.scratch_dir = "/tmp";
  md.write_output = write_output;
  md.threads = threads;
  md.ranks = ranks;
  return synapse::apps::run_md(md);
}

/// Default emulation options with /tmp-backed storage.
inline synapse::emulator::EmulatorOptions emu_options() {
  synapse::emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  return opts;
}

/// Section header in the output.
inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// printf a row, flushing so partial output survives interrupts.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace bench
