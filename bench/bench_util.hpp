#pragma once
// Shared helpers for the figure-reproduction benches.
//
// The paper's Gromacs runs span 10^4..10^7 iterations (Tx roughly 1 s to
// several hundred seconds). The benches scale the iteration axis down by
// ~50x so a full figure regenerates in seconds while preserving the
// log-axis spread; EXPERIMENTS.md records the mapping.

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "json/json.hpp"
#include "profile/metrics.hpp"
#include "profile/stats.hpp"
#include "resource/resource_spec.hpp"

namespace bench {

namespace m = synapse::metrics;

/// Profile one mdsim run (in a forked child) on the active resource.
inline synapse::profile::Profile profile_md(uint64_t steps,
                                            double rate_hz = 10.0,
                                            bool write_output = true) {
  synapse::watchers::ProfilerOptions opts;
  opts.sample_rate_hz = rate_hz;
  synapse::watchers::Profiler profiler(opts);
  synapse::apps::MdOptions md;
  md.steps = steps;
  md.scratch_dir = "/tmp";
  md.write_output = write_output;
  return profiler.profile_function(
      [md] {
        synapse::apps::run_md(md);
        return 0;
      },
      "mdsim --steps " + std::to_string(steps),
      {"steps=" + std::to_string(steps)});
}

/// Run mdsim natively (no profiler) on the active resource.
inline synapse::apps::MdReport run_md(uint64_t steps,
                                      bool write_output = true,
                                      int threads = 1, int ranks = 1) {
  synapse::apps::MdOptions md;
  md.steps = steps;
  md.scratch_dir = "/tmp";
  md.write_output = write_output;
  md.threads = threads;
  md.ranks = ranks;
  return synapse::apps::run_md(md);
}

/// Default emulation options with /tmp-backed storage.
inline synapse::emulator::EmulatorOptions emu_options() {
  synapse::emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  return opts;
}

/// Section header in the output.
inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// printf a row, flushing so partial output survives interrupts.
inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// Machine-readable results sink behind the benches' `--json PATH`
/// flag. The human tables stay on stdout; every measurement a bench
/// also record()s lands in one JSON document:
///
///   {"bench": "...", "results": [
///     {"section": "...", "name": "...", "value": N, "unit": "..."}]}
///
/// so figure scripts and before/after comparisons diff numbers instead
/// of scraping printf columns. With no --json flag, record() and
/// write() are no-ops.
class Results {
 public:
  void set_bench(std::string name) { bench_ = std::move(name); }
  void set_path(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  void record(const std::string& section, const std::string& name,
              double value, const std::string& unit) {
    if (!enabled()) return;
    synapse::json::Object entry;
    entry["section"] = section;
    entry["name"] = name;
    entry["value"] = value;
    entry["unit"] = unit;
    entries_.push_back(synapse::json::Value(std::move(entry)));
  }

  /// Dump the document; exits loudly when the path is unwritable so a
  /// CI step collecting results fails rather than silently losing them.
  void write() {
    if (!enabled()) return;
    synapse::json::Object doc;
    doc["bench"] = bench_;
    doc["results"] = synapse::json::Value(std::move(entries_));
    const std::string text =
        synapse::json::dump(synapse::json::Value(std::move(doc)), 2);
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
      if (f != nullptr) std::fclose(f);
      std::fprintf(stderr, "bench: cannot write --json results to %s\n",
                   path_.c_str());
      std::exit(1);
    }
    std::fputc('\n', f);
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string path_;
  synapse::json::Array entries_;
};

/// Process-wide sink shared by a bench's helpers.
inline Results& results() {
  static Results instance;
  return instance;
}

/// Recognize `--json PATH` at argv[i] inside a bench's own flag loop;
/// consumes the path operand and returns true when it matched.
inline bool json_flag(int argc, char** argv, int& i) {
  if (std::strcmp(argv[i], "--json") != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "bench: --json needs an output path\n");
    std::exit(2);
  }
  results().set_path(argv[++i]);
  return true;
}

}  // namespace bench
