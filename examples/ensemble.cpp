// Ensemble workload (paper section 2.3, Ensemble Toolkit): a two-stage
// pipeline of emulated tasks — a simulation stage of MD replicas
// followed by an analysis stage — executed with bounded concurrency,
// exactly the pattern advanced-sampling applications use.

#include <cstdio>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "resource/resource_spec.hpp"
#include "workload/scheduler.hpp"

int main() {
  synapse::resource::activate_resource("stampede");

  // Profile the two task types once.
  synapse::watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 10.0;
  synapse::watchers::Profiler profiler(popts);

  synapse::apps::MdOptions sim;
  sim.steps = 150;
  sim.scratch_dir = "/tmp";
  std::printf("profiling the simulation task...\n");
  const auto sim_profile = profiler.profile_function(
      [sim] {
        synapse::apps::run_md(sim);
        return 0;
      },
      "md-replica");

  synapse::apps::MdOptions ana = sim;
  ana.steps = 40;
  std::printf("profiling the analysis task...\n");
  const auto ana_profile = profiler.profile_function(
      [ana] {
        synapse::apps::run_md(ana);
        return 0;
      },
      "analysis");

  // Build the ensemble: 8 replicas, then 2 analysis tasks.
  synapse::workload::Workload ensemble("advanced-sampling");
  synapse::workload::TaskSpec replica;
  replica.name = "replica";
  replica.profile = sim_profile;
  replica.options.storage.base_dir = "/tmp";
  ensemble.add_stage("simulation");
  ensemble.replicate_task(replica, 8);

  auto& analysis = ensemble.add_stage("analysis");
  for (int i = 0; i < 2; ++i) {
    synapse::workload::TaskSpec task;
    task.name = "analysis-" + std::to_string(i);
    task.profile = ana_profile;
    task.options.storage.base_dir = "/tmp";
    analysis.tasks.push_back(std::move(task));
  }

  // Execute on a 4-core pilot.
  synapse::workload::Scheduler scheduler(
      {.max_concurrent = 4, .keep_going = true});
  std::printf("running %zu tasks over 2 stages, 4 concurrent...\n\n",
              ensemble.task_count());
  const auto result = scheduler.run(ensemble);

  std::printf("%-12s %-11s %8s %8s %8s\n", "task", "stage", "start",
              "end", "busy");
  for (const auto& t : result.tasks) {
    std::printf("%-12s %-11s %7.3fs %7.3fs %7.3fs\n", t.name.c_str(),
                t.stage.c_str(), t.start_seconds, t.end_seconds,
                t.busy_seconds);
  }
  std::printf("\nmakespan    : %.3f s\n", result.makespan_seconds);
  std::printf("utilization : %.0f%% of the 4-core pilot\n",
              100.0 * result.utilization(4));
  std::printf("failures    : %zu\n", result.failed_count());

  synapse::resource::activate_resource("host");
  return result.all_ok() ? 0 : 1;
}
