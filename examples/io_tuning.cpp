// I/O malleability (experiment E.5): the same profiled workload emulated
// with different I/O block sizes and toward different filesystems —
// dimensions the original application does not expose.

#include <cstdio>

#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "profile/profile.hpp"
#include "resource/resource_spec.hpp"

namespace m = synapse::metrics;

namespace {

/// A synthetic write-heavy profile (an application that emitted 8 MiB
/// over two sampling periods).
synapse::profile::Profile write_heavy_profile() {
  synapse::profile::Profile p;
  p.command = "synthetic-writer";
  p.sample_rate_hz = 10.0;
  synapse::profile::TimeSeries io;
  io.watcher = "io";
  for (int i = 0; i < 2; ++i) {
    synapse::profile::Sample s;
    s.timestamp = 100.0 + i * 0.1;
    s.set(m::kBytesWritten, (i + 1) * 4.0 * 1024 * 1024);
    io.samples.push_back(std::move(s));
  }
  p.series.push_back(std::move(io));
  return p;
}

}  // namespace

int main() {
  const auto profile = write_heavy_profile();

  std::printf("emulating an 8 MiB write workload on supermic:\n\n");
  synapse::resource::activate_resource("supermic");

  std::printf("%-8s %10s %12s\n", "fs", "block", "emulated Tx");
  for (const char* fs : {"local", "lustre"}) {
    for (const uint64_t block_kib : {64ull, 512ull, 4096ull}) {
      synapse::emulator::EmulatorOptions opts;
      opts.emulate_compute = false;
      opts.emulate_memory = false;
      opts.storage.base_dir = "/tmp";
      opts.storage.filesystem = fs;
      opts.storage.write_block_bytes = block_kib * 1024;
      const auto r = synapse::emulate_profile(profile, opts);
      std::printf("%-8s %7lluKiB %10.3f s\n", fs,
                  static_cast<unsigned long long>(block_kib),
                  r.wall_seconds);
    }
  }
  std::printf(
      "\nsmaller blocks pay the per-operation latency more often, and the\n"
      "shared filesystem (lustre) is slower than the node-local disk —\n"
      "without touching the profiled application.\n");
  synapse::resource::activate_resource("host");
  return 0;
}
