// The paper's core scenario (experiments E.1/E.2): profile a molecular-
// dynamics application once, then emulate it anywhere — here on the
// profiling machine and on two machines with different performance
// characteristics, reproducing the Fig. 5/7 comparisons at small scale.

#include <cstdio>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"

namespace m = synapse::metrics;
using synapse::resource::activate_resource;

int main() {
  // Profile mdsim on "thinkie", the paper's profiling laptop.
  activate_resource("thinkie");
  synapse::watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 10.0;
  synapse::watchers::Profiler profiler(popts);

  synapse::apps::MdOptions md;
  md.steps = 300;
  md.scratch_dir = "/tmp";
  std::printf("profiling mdsim (%llu steps) on thinkie...\n",
              static_cast<unsigned long long>(md.steps));
  const auto profile = profiler.profile_function(
      [md] {
        synapse::apps::run_md(md);
        return 0;
      },
      "mdsim --steps 300", {"example"});
  std::printf("  app Tx  : %.3f s\n", profile.runtime());
  std::printf("  cycles  : %.3e\n", profile.total(m::kCyclesUsed));
  std::printf("  written : %.0f bytes\n", profile.total(m::kBytesWritten));

  synapse::emulator::EmulatorOptions eopts;
  eopts.storage.base_dir = "/tmp";

  // Emulate on the same machine: Tx matches (Fig. 5)...
  const auto same = synapse::emulate_profile(profile, eopts);
  std::printf("emulation on thinkie : Tx %.3f s (diff %+.1f%%)\n",
              same.wall_seconds,
              100.0 * (same.wall_seconds - profile.runtime()) /
                  profile.runtime());

  // ...and on other machines: the trend is preserved, the offset is
  // machine-specific (Fig. 7).
  for (const char* machine : {"stampede", "archer"}) {
    activate_resource(machine);
    synapse::apps::MdReport app = synapse::apps::run_md(md);
    const auto emu = synapse::emulate_profile(profile, eopts);
    std::printf("%-8s: app %.3f s, emulation %.3f s (diff %+.1f%%)\n",
                machine, app.wall_seconds, emu.wall_seconds,
                100.0 * (emu.wall_seconds - app.wall_seconds) /
                    app.wall_seconds);
  }
  activate_resource("host");
  return 0;
}
