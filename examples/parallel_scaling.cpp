// Parallel malleability (experiment E.4): a profile taken from a
// SINGLE-THREADED run is emulated as an OpenMP or multi-process
// workload — the RADICAL-Pilot use case of paper section 2.1 (tune a
// proxy application in dimensions the real application was never run in).

#include <cstdio>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "resource/resource_spec.hpp"

using synapse::emulator::ParallelMode;

int main() {
  synapse::resource::activate_resource("titan");

  // One serial profile...
  synapse::watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 10.0;
  synapse::watchers::Profiler profiler(popts);
  synapse::apps::MdOptions md;
  md.steps = 250;
  md.scratch_dir = "/tmp";
  md.write_output = false;
  std::printf("profiling a single-threaded mdsim run on titan...\n");
  const auto profile = profiler.profile_function(
      [md] {
        synapse::apps::run_md(md);
        return 0;
      },
      "mdsim serial");
  std::printf("  serial Tx: %.3f s\n\n", profile.runtime());

  // ...emulated at increasing parallelism, in both modes.
  std::printf("%7s %12s %12s\n", "workers", "OpenMP Tx", "process Tx");
  for (const int workers : {1, 2, 4, 8, 16}) {
    synapse::emulator::EmulatorOptions omp;
    omp.storage.base_dir = "/tmp";
    omp.emulate_storage = false;
    omp.emulate_memory = false;
    omp.parallel_mode = ParallelMode::OpenMp;
    omp.parallel_degree = workers;
    const auto t_omp = synapse::emulate_profile(profile, omp).wall_seconds;

    auto mpi = omp;
    mpi.parallel_mode = ParallelMode::Process;
    const auto t_mpi = synapse::emulate_profile(profile, mpi).wall_seconds;

    std::printf("%7d %10.3f s %10.3f s\n", workers, t_omp, t_mpi);
  }
  std::printf(
      "\nthe emulated workload scales like a parallel application even\n"
      "though the profile came from a serial run (paper Fig. 12).\n");
  synapse::resource::activate_resource("host");
  return 0;
}
