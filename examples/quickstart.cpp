// Quickstart: the paper's basic usage mode —
//
//   radical.synapse.profile(command, tags)
//   radical.synapse.emulate(command, tags)
//
// Profile a shell command, store the profile, and replay it. Run from
// anywhere; state goes to a temporary store directory.

#include <cstdio>

#include "core/synapse.hpp"
#include "profile/metrics.hpp"

int main() {
  namespace m = synapse::metrics;

  synapse::SessionOptions options;
  options.store_backend = "files";
  options.store_dir = "/tmp/synapse_quickstart_store";
  options.emulator.storage.base_dir = "/tmp";
  synapse::Session session(options);

  // 1. Profile: run the application under the sampling profiler.
  const std::string command =
      "sh -c 'i=0; while [ $i -lt 150000 ]; do i=$((i+1)); done'";
  std::printf("profiling: %s\n", command.c_str());
  const auto profile = session.profile(command, {"quickstart"});

  std::printf("  Tx            : %.3f s\n", profile.runtime());
  std::printf("  cycles        : %.3e\n", profile.total(m::kCyclesUsed));
  std::printf("  peak RSS      : %.1f MB\n",
              profile.total(m::kMemPeak) / 1e6);
  std::printf("  samples       : %zu\n", profile.sample_count());
  std::printf("  efficiency    : %.2f\n", profile.get_derived(m::kEfficiency));

  // 2. Emulate: look the profile up by command+tags and replay it.
  std::printf("emulating from the stored profile...\n");
  const auto result = session.emulate(command, {"quickstart"});
  std::printf("  emulated Tx   : %.3f s\n", result.wall_seconds);
  std::printf("  samples played: %zu\n", result.samples_replayed);
  std::printf("  cycles burned : %.3e\n", result.compute.cycles);

  std::printf("done — profile persisted under %s\n",
              options.store_dir.c_str());
  return 0;
}
