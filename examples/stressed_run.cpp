// Stressed-environment emulation (paper section 4.3): Synapse can force
// an artificial CPU/memory/disk load onto the system while emulating,
// similar to the Linux `stress` utility. The paper implements but does
// not evaluate this; here we demonstrate the effect on emulated Tx.

#include <cstdio>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "emulator/load_generator.hpp"
#include "resource/resource_spec.hpp"
#include "sys/cpuinfo.hpp"

int main() {
  synapse::resource::activate_resource("thinkie");

  synapse::watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 10.0;
  synapse::watchers::Profiler profiler(popts);
  synapse::apps::MdOptions md;
  md.steps = 200;
  md.scratch_dir = "/tmp";
  const auto profile = profiler.profile_function(
      [md] {
        synapse::apps::run_md(md);
        return 0;
      },
      "mdsim stressed-example");

  synapse::emulator::EmulatorOptions eopts;
  eopts.storage.base_dir = "/tmp";

  // Quiet system.
  const auto quiet = synapse::emulate_profile(profile, eopts);
  std::printf("emulation on a quiet system   : %.3f s\n",
              quiet.wall_seconds);

  // Saturate every core with burner threads plus memory ballast and
  // disk churn, then emulate again.
  synapse::emulator::LoadSpec load;
  load.cpu_threads = synapse::sys::cpu_info().logical_cores;
  load.cpu_duty = 1.0;
  load.memory_bytes = 256ull * 1024 * 1024;
  load.disk_write_bps = 64e6;
  load.scratch_dir = "/tmp";
  synapse::emulator::LoadGenerator generator(load);
  generator.start();
  const auto stressed = synapse::emulate_profile(profile, eopts);
  generator.stop();

  std::printf("emulation under artificial load: %.3f s (%.2fx)\n",
              stressed.wall_seconds,
              stressed.wall_seconds / quiet.wall_seconds);
  std::printf(
      "\nthe load generator lets middleware developers study workload\n"
      "behaviour on busy nodes without needing a busy cluster.\n");
  synapse::resource::activate_resource("host");
  return 0;
}
