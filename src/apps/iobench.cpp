#include "apps/iobench.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "resource/vfs.hpp"
#include "sys/clock.hpp"

namespace synapse::apps {

IoBenchReport run_iobench(const IoBenchOptions& options) {
  IoBenchReport report;
  const sys::Stopwatch clock;

  resource::VirtualFilesystem vfs =
      resource::VirtualFilesystem::for_active_resource(options.filesystem,
                                                       options.scratch_dir);
  const std::string name =
      "iobench_" + std::to_string(::getpid()) + ".dat";
  auto file = vfs.open(name, /*for_write=*/true);

  uint64_t remaining = options.write_bytes;
  while (remaining > 0) {
    const uint64_t chunk = std::min(options.block_bytes, remaining);
    report.write_seconds += file->write(chunk);
    remaining -= chunk;
    ++report.write_ops;
  }
  report.bytes_written = options.write_bytes;
  file->sync();

  remaining = options.read_bytes;
  while (remaining > 0) {
    const uint64_t chunk = std::min(options.block_bytes, remaining);
    report.read_seconds += file->read(chunk);
    remaining -= chunk;
    ++report.read_ops;
  }
  report.bytes_read = options.read_bytes;

  file.reset();
  vfs.remove(name);
  report.wall_seconds = clock.elapsed();
  return report;
}

int iobench_main(int argc, char** argv) {
  IoBenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--write") {
      options.write_bytes =
          std::strtoull(next(), nullptr, 10) * 1024 * 1024;
    } else if (arg == "--read") {
      options.read_bytes = std::strtoull(next(), nullptr, 10) * 1024 * 1024;
    } else if (arg == "--block") {
      options.block_bytes = std::strtoull(next(), nullptr, 10) * 1024;
    } else if (arg == "--fs") {
      options.filesystem = next();
    } else if (arg == "--scratch") {
      options.scratch_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "iobench: synthetic I/O workload\n"
          "  --write MiB   bytes to write (default 16)\n"
          "  --read MiB    bytes to read (default 16)\n"
          "  --block KiB   operation block size (default 1024)\n"
          "  --fs NAME     virtual filesystem\n"
          "  --scratch DIR backing directory\n");
      return 0;
    } else {
      std::fprintf(stderr, "iobench: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.block_bytes == 0) {
    std::fprintf(stderr, "iobench: block size must be positive\n");
    return 2;
  }
  const IoBenchReport report = run_iobench(options);
  std::printf(
      "iobench wrote=%llu read=%llu write_MBps=%.2f read_MBps=%.2f "
      "tx=%.3fs\n",
      static_cast<unsigned long long>(report.bytes_written),
      static_cast<unsigned long long>(report.bytes_read),
      report.write_bps() * 1e-6, report.read_bps() * 1e-6,
      report.wall_seconds);
  return 0;
}

}  // namespace synapse::apps
