#pragma once
// iobench — synthetic I/O workload (experiment E.5's "synthetic workload
// designed to characterize Synapse's I/O emulation capabilities in
// isolation").
//
// Performs a configurable volume of writes then reads with a fixed block
// size against a chosen (virtual) filesystem, and reports per-direction
// throughput.

#include <cstdint>
#include <string>

namespace synapse::apps {

struct IoBenchOptions {
  uint64_t write_bytes = 16 * 1024 * 1024;
  uint64_t read_bytes = 16 * 1024 * 1024;
  uint64_t block_bytes = 1024 * 1024;
  std::string filesystem;   ///< "" = resource default
  std::string scratch_dir;  ///< "" = $TMPDIR or /tmp
};

struct IoBenchReport {
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t write_ops = 0;
  uint64_t read_ops = 0;
  double write_seconds = 0.0;  ///< modelled wall time of the write phase
  double read_seconds = 0.0;
  double wall_seconds = 0.0;

  double write_bps() const {
    return write_seconds > 0 ? static_cast<double>(bytes_written) / write_seconds : 0;
  }
  double read_bps() const {
    return read_seconds > 0 ? static_cast<double>(bytes_read) / read_seconds : 0;
  }
};

IoBenchReport run_iobench(const IoBenchOptions& options);

/// CLI: iobench [--write MiB] [--read MiB] [--block KiB] [--fs NAME]
/// [--scratch DIR]
int iobench_main(int argc, char** argv);

}  // namespace synapse::apps
