#include "apps/iobench.hpp"

int main(int argc, char** argv) {
  return synapse::apps::iobench_main(argc, argv);
}
