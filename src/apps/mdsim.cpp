#include "apps/mdsim.hpp"

#include <omp.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "emulator/procgroup.hpp"
#include "resource/cache_model.hpp"
#include "resource/resource_spec.hpp"
#include "resource/vfs.hpp"
#include "sys/clock.hpp"
#include "watchers/trace.hpp"

namespace synapse::apps {

namespace {

/// Minimal Lennard-Jones system in a periodic cubic box, reduced units
/// (sigma = epsilon = mass = 1), density 0.8, cutoff 2.5.
class LjSystem {
 public:
  explicit LjSystem(int n, unsigned seed = 12345)
      : n_(n),
        box_(std::cbrt(static_cast<double>(n) / 0.8)),
        x_(3 * static_cast<size_t>(n)),
        v_(3 * static_cast<size_t>(n), 0.0),
        f_(3 * static_cast<size_t>(n), 0.0) {
    // Lattice start positions + small thermal velocities.
    const int cells = static_cast<int>(std::ceil(std::cbrt(n)));
    const double a = box_ / cells;
    std::mt19937 rng(seed);
    std::normal_distribution<double> vel(0.0, 0.5);
    int idx = 0;
    for (int i = 0; i < cells && idx < n; ++i) {
      for (int j = 0; j < cells && idx < n; ++j) {
        for (int k = 0; k < cells && idx < n; ++k) {
          x_[3 * idx + 0] = (i + 0.5) * a;
          x_[3 * idx + 1] = (j + 0.5) * a;
          x_[3 * idx + 2] = (k + 0.5) * a;
          v_[3 * idx + 0] = vel(rng);
          v_[3 * idx + 1] = vel(rng);
          v_[3 * idx + 2] = vel(rng);
          ++idx;
        }
      }
    }
  }

  /// Rebuild the Verlet neighbour list (skin 0.3 over the 2.5 cutoff).
  void build_neighbours() {
    constexpr double kListRadius = 2.8;
    const double r2max = kListRadius * kListRadius;
    pairs_.clear();
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        if (dist2(i, j) < r2max) {
          pairs_.push_back({i, j});
        }
      }
    }
  }

  /// One velocity-Verlet step over the neighbour list; returns the
  /// number of in-cutoff interactions evaluated.
  uint64_t step(int threads) {
    constexpr double kDt = 0.004;
    constexpr double kCut2 = 2.5 * 2.5;

    // Half kick + drift.
    for (size_t i = 0; i < x_.size(); ++i) {
      v_[i] += 0.5 * kDt * f_[i];
      x_[i] += kDt * v_[i];
    }
    wrap();

    std::fill(f_.begin(), f_.end(), 0.0);
    energy_ = 0.0;
    uint64_t interactions = 0;

    const auto npairs = static_cast<long>(pairs_.size());
    double energy = 0.0;
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(+ : energy, interactions) if (threads > 1)
    for (long p = 0; p < npairs; ++p) {
      const auto [i, j] = pairs_[static_cast<size_t>(p)];
      double dx = x_[3 * i] - x_[3 * j];
      double dy = x_[3 * i + 1] - x_[3 * j + 1];
      double dz = x_[3 * i + 2] - x_[3 * j + 2];
      dx -= box_ * std::nearbyint(dx / box_);
      dy -= box_ * std::nearbyint(dy / box_);
      dz -= box_ * std::nearbyint(dz / box_);
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 >= kCut2 || r2 < 1e-12) continue;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double force = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
      energy += 4.0 * inv6 * (inv6 - 1.0);
      // Force accumulation is racy across threads only if two pairs
      // share a particle; for the emulation workload the tiny error is
      // irrelevant (documented deviation from a production integrator),
      // and atomics here would serialize the loop we time.
      f_[3 * i] += force * dx;
      f_[3 * i + 1] += force * dy;
      f_[3 * i + 2] += force * dz;
      f_[3 * j] -= force * dx;
      f_[3 * j + 1] -= force * dy;
      f_[3 * j + 2] -= force * dz;
      ++interactions;
    }
    energy_ = energy;

    // Second half kick.
    for (size_t i = 0; i < v_.size(); ++i) {
      v_[i] += 0.5 * kDt * f_[i];
    }
    return interactions;
  }

  /// Serialize positions into `out` (one trajectory frame).
  void frame(std::vector<char>& out) const {
    out.resize(x_.size() * sizeof(double));
    std::memcpy(out.data(), x_.data(), out.size());
  }

  double energy() const { return energy_; }
  int size() const { return n_; }

 private:
  double dist2(int i, int j) const {
    double dx = x_[3 * i] - x_[3 * j];
    double dy = x_[3 * i + 1] - x_[3 * j + 1];
    double dz = x_[3 * i + 2] - x_[3 * j + 2];
    dx -= box_ * std::nearbyint(dx / box_);
    dy -= box_ * std::nearbyint(dy / box_);
    dz -= box_ * std::nearbyint(dz / box_);
    return dx * dx + dy * dy + dz * dz;
  }

  void wrap() {
    for (auto& c : x_) {
      c -= box_ * std::floor(c / box_);
    }
  }

  int n_;
  double box_;
  std::vector<double> x_, v_, f_;
  std::vector<std::pair<int, int>> pairs_;
  double energy_ = 0.0;
};

/// Burn CPU until `deadline` (steady time) with real arithmetic, so the
/// paced application's CPU time matches its wall time.
void spin_until(double deadline) {
  volatile double sink = 1.0;
  while (sys::steady_now() < deadline) {
    double x = sink;
    for (int i = 0; i < 2000; ++i) {
      x = x * 1.0000000001 + 1e-12;
    }
    sink = x;
  }
}

/// Parallel time factor of the *application* on the active resource:
/// near-linear for few workers, saturating toward a full node (the
/// Fig. 13/14 shape). `omp` picks the thread vs process overhead knob.
/// The factor multiplies the time derived from the TOTAL model work.
double app_parallel_factor(int workers, bool omp) {
  if (workers <= 1) return 1.0;
  const auto& spec = resource::active_resource();
  const double alpha =
      omp ? spec.omp_overhead_per_worker : spec.mpi_overhead_per_worker;
  constexpr double kSerialFraction = 0.02;  // MD force loops scale well
  const double n = static_cast<double>(workers);
  return (kSerialFraction + (1.0 - kSerialFraction) / n) *
         (1.0 + alpha * (n - 1.0));
}

/// Rank variant: each rank only evaluates its 1/n share of the model
/// work, so the per-rank pacing factor is the total-time factor times n
/// (otherwise the Amdahl discount would be applied twice and rank
/// scaling would come out superlinear).
double rank_parallel_factor(int ranks) {
  return app_parallel_factor(ranks, /*omp=*/false) *
         static_cast<double>(std::max(1, ranks));
}

MdReport run_md_single(const MdOptions& options, int rank) {
  MdReport report;
  report.particles = options.particles;
  const sys::Stopwatch clock;

  const auto& spec = resource::active_resource();
  const auto& traits = resource::app_md_traits();
  const bool paced = spec.name != "host";

  auto trace = watchers::TraceWriter::from_env();

  // Domain decomposition stand-in: each rank owns an equal share of the
  // particles (no halo exchange — documented simplification; the paper's
  // Synapse does not capture MPI communication either).
  const int local_particles =
      std::max(32, options.particles / std::max(1, options.ranks));
  LjSystem system(local_particles, 12345u + static_cast<unsigned>(rank));
  if (trace) {
    trace->add_alloc(static_cast<uint64_t>(local_particles) * 9 *
                     sizeof(double));
  }

  // Trajectory output: rank 0 only, through the virtual filesystem.
  std::unique_ptr<resource::VirtualFilesystem> vfs;
  std::unique_ptr<resource::VirtualFile> out;
  if (options.write_output && rank == 0) {
    vfs = std::make_unique<resource::VirtualFilesystem>(
        resource::VirtualFilesystem::for_active_resource(
            options.filesystem, options.scratch_dir));
    out = vfs->open(options.out_name, /*for_write=*/true);
  }

  const int threads = std::max(1, options.threads);
  const double parallel_factor =
      options.ranks > 1 ? rank_parallel_factor(options.ranks)
                        : app_parallel_factor(threads, /*omp=*/true);

  constexpr uint64_t kNeighbourInterval = 20;
  std::vector<char> frame;

  uint64_t done = 0;
  while (done < options.steps) {
    if (done % kNeighbourInterval == 0) system.build_neighbours();

    const double chunk_start = sys::steady_now();
    // Pace in chunks of up to 16 steps to keep spin granularity small.
    const uint64_t chunk =
        std::min<uint64_t>(16, options.steps - done);
    uint64_t interactions = 0;
    for (uint64_t s = 0; s < chunk; ++s) {
      interactions += system.step(threads);
      ++done;
      if (options.write_output && rank == 0 &&
          done % options.write_interval == 0) {
        system.frame(frame);
        out->write(frame.size());
        report.bytes_written += frame.size();
      }
    }
    report.interactions += interactions;
    report.real_flops += static_cast<double>(interactions) * 30.0;

    // Model accounting + virtual-resource pacing.
    const double model_flops = static_cast<double>(interactions) *
                               options.model_flops_per_interaction;
    report.model_flops += model_flops;
    if (trace) trace->add_work(model_flops, traits);

    if (paced) {
      const double cycles =
          resource::cycles_for_flops(traits, spec, model_flops);
      const double target = resource::seconds_for_cycles(spec, cycles) /
                            spec.app_optimization * parallel_factor;
      const double deadline = chunk_start + target;
      if (sys::steady_now() < deadline) spin_until(deadline);
    }
  }

  if (out) out->sync();
  report.steps = options.steps;
  report.energy = system.energy();
  report.wall_seconds = clock.elapsed();
  return report;
}

}  // namespace

MdReport run_md(const MdOptions& options) {
  if (options.ranks <= 1) {
    return run_md_single(options, 0);
  }
  // Fork-parallel execution (the OpenMPI substitute): every rank runs
  // its share; the parent reports wall time. Per-rank reports stay in
  // the children; callers profile rank-parallel runs externally.
  MdReport report;
  report.particles = options.particles;
  report.steps = options.steps;
  const sys::Stopwatch clock;
  emulator::run_process_group(options.ranks, [&options](int rank) {
    const MdReport r = run_md_single(options, rank);
    return r.steps == options.steps ? 0 : 1;
  });
  report.wall_seconds = clock.elapsed();
  return report;
}

int md_main(int argc, char** argv) {
  MdOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--steps") {
      options.steps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--particles") {
      options.particles = std::atoi(next());
    } else if (arg == "--threads") {
      options.threads = std::atoi(next());
    } else if (arg == "--ranks") {
      options.ranks = std::atoi(next());
    } else if (arg == "--write-interval") {
      options.write_interval = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fs") {
      options.filesystem = next();
    } else if (arg == "--scratch") {
      options.scratch_dir = next();
    } else if (arg == "--no-output") {
      options.write_output = false;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "mdsim: synthetic Lennard-Jones MD application\n"
          "  --steps N           iteration count (default 1000)\n"
          "  --particles N       system size (default 400)\n"
          "  --threads N         OpenMP threads (default 1)\n"
          "  --ranks N           fork-parallel ranks (default 1)\n"
          "  --write-interval N  trajectory frame every N steps\n"
          "  --fs NAME           virtual filesystem for output\n"
          "  --scratch DIR       backing directory\n"
          "  --no-output         disable trajectory output\n");
      return 0;
    } else {
      std::fprintf(stderr, "mdsim: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.steps == 0 || options.particles < 2) {
    std::fprintf(stderr, "mdsim: invalid configuration\n");
    return 2;
  }
  const MdReport report = run_md(options);
  std::printf(
      "mdsim steps=%llu particles=%d interactions=%llu "
      "model_gflop=%.3f bytes_out=%llu energy=%.4f tx=%.3fs\n",
      static_cast<unsigned long long>(report.steps), report.particles,
      static_cast<unsigned long long>(report.interactions),
      report.model_flops * 1e-9,
      static_cast<unsigned long long>(report.bytes_written), report.energy,
      report.wall_seconds);
  return 0;
}

}  // namespace synapse::apps
