#pragma once
// mdsim — the synthetic molecular-dynamics application (Gromacs
// substitute, DESIGN.md section 1).
//
// A real Lennard-Jones MD engine: periodic box, neighbour lists,
// velocity-Verlet integration, LJ pair forces, trajectory output. Like
// the paper's Gromacs configuration, the iteration count scales CPU
// consumption and disk output linearly while leaving input and memory
// constant (paper section 5, "Application").
//
// Virtual-resource behaviour: on a non-host resource the engine paces
// itself to the model step cost (cycles from the cache/IPC model for
// app_md_traits, scaled by the machine's app_optimization factor) by
// spinning on extra force work — so the wall time, CPU time and the
// cooperative counter trace all reflect the simulated machine. On the
// bare host it runs unpaced.
//
// The model accounts kFlopsPerInteraction floating-point operations per
// pair interaction (the full force-field cost a production MD code pays);
// the executed LJ inner loop is lighter, and the pacing spin fills the
// difference with genuine CPU work.

#include <cstdint>
#include <string>

namespace synapse::apps {

struct MdOptions {
  uint64_t steps = 1000;        ///< iteration count (the paper's knob)
  int particles = 400;          ///< system size (fixed per experiment)
  int threads = 1;              ///< OpenMP threads (1 = serial)
  int ranks = 1;                ///< fork-parallel ranks (MPI substitute)
  uint64_t write_interval = 100;  ///< trajectory frame every N steps
  std::string out_name = "traj.dat";  ///< trajectory file name
  std::string filesystem;       ///< VFS name ("" = resource default)
  std::string scratch_dir;      ///< backing dir ("" = $TMPDIR or /tmp)
  bool write_output = true;
  /// Model FLOPs accounted per pair interaction (force field cost).
  double model_flops_per_interaction = 400.0;
};

struct MdReport {
  uint64_t steps = 0;
  int particles = 0;
  uint64_t interactions = 0;    ///< pair interactions computed
  double model_flops = 0.0;     ///< published to the counter trace
  double real_flops = 0.0;      ///< actually executed in the LJ loop
  uint64_t bytes_written = 0;
  double wall_seconds = 0.0;
  double energy = 0.0;          ///< final potential energy (sanity check)
};

/// Run the simulation in-process (rank-parallel runs fork internally).
MdReport run_md(const MdOptions& options);

/// CLI entry point: mdsim --steps N [--particles N] [--threads N]
/// [--ranks N] [--write-interval N] [--no-output] [--fs NAME]
/// [--scratch DIR]. Prints a one-line report; returns 0 on success.
int md_main(int argc, char** argv);

}  // namespace synapse::apps
