#include "apps/mdsim.hpp"

int main(int argc, char** argv) { return synapse::apps::md_main(argc, argv); }
