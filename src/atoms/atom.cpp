#include "atoms/atom.hpp"

#include <exception>

namespace synapse::atoms {

void Atom::consume_frame(const profile::DeltaFrame& frame,
                         const LaneMask& mask) {
  (void)mask;
  // The compatibility adapter: atoms that never learned about frames see
  // exactly the per-sample maps the legacy feed loop would have built —
  // same keys (sorted), same values, same wants() gating, same per-row
  // exception contract.
  for (size_t row = 0; row < frame.rows(); ++row) {
    const profile::SampleDelta delta = frame.unbox(row);
    if (!wants(delta)) continue;
    try {
      consume(delta);
    } catch (const std::exception&) {
      // Failures are recorded in the atom's stats, never propagated —
      // one atom cannot wedge the frame barrier.
    }
  }
}

}  // namespace synapse::atoms
