#include "atoms/atom.hpp"

// Atom is header-only today; this translation unit anchors the vtable.

namespace synapse::atoms {}
