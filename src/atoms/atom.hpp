#pragma once
// Emulation atom base (paper Fig. 1 right half, section 4.2).
//
// An atom consumes one type of system resource. The emulator's global
// loop feeds per-sample consumption deltas to every atom concurrently;
// a sample ends when the last atom finishes (Fig. 2 semantics — the
// barrier lives in the emulator, not the atom).

#include <cstdint>
#include <map>
#include <string>

#include "profile/profile.hpp"
#include "watchers/trace.hpp"

namespace synapse::atoms {

/// Cumulative accounting of what an atom consumed.
struct AtomStats {
  double busy_seconds = 0.0;  ///< wall time spent consuming
  double cycles = 0.0;
  double flops = 0.0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_allocated = 0;
  uint64_t bytes_freed = 0;
  uint64_t net_bytes_sent = 0;
  uint64_t net_bytes_received = 0;
  uint64_t samples_consumed = 0;
};

/// Field-wise accumulation, used wherever per-rank or per-repetition
/// stats are summed (process-parallel aggregation, scenario runs).
inline void accumulate(AtomStats& into, const AtomStats& from) {
  into.busy_seconds += from.busy_seconds;
  into.cycles += from.cycles;
  into.flops += from.flops;
  into.bytes_read += from.bytes_read;
  into.bytes_written += from.bytes_written;
  into.bytes_allocated += from.bytes_allocated;
  into.bytes_freed += from.bytes_freed;
  into.net_bytes_sent += from.net_bytes_sent;
  into.net_bytes_received += from.net_bytes_received;
  into.samples_consumed += from.samples_consumed;
}

class Atom {
 public:
  explicit Atom(std::string name) : name_(std::move(name)) {}
  virtual ~Atom() = default;

  const std::string& name() const { return name_; }

  /// True when this sample contains work for this atom (lets the
  /// emulator skip dispatch for idle atoms).
  virtual bool wants(const profile::SampleDelta& delta) const = 0;

  /// Consume the resources recorded in one sampling period. Called from
  /// the atom's dedicated thread; must be exception-safe (failures are
  /// recorded, not propagated, so one atom cannot wedge the barrier).
  virtual void consume(const profile::SampleDelta& delta) = 0;

  const AtomStats& stats() const { return stats_; }

  /// Attach the cooperative trace (emulation runs are themselves
  /// profile-able; the atoms publish the counters they consume).
  void set_trace(watchers::TraceWriter* trace) { trace_ = trace; }

 protected:
  AtomStats stats_;
  watchers::TraceWriter* trace_ = nullptr;  ///< not owned, may be null

 private:
  std::string name_;
};

}  // namespace synapse::atoms
