#pragma once
// Emulation atom base (paper Fig. 1 right half, section 4.2).
//
// An atom consumes one type of system resource. The emulator's global
// loop feeds per-sample consumption deltas to every atom concurrently;
// a sample ends when the last atom finishes (Fig. 2 semantics — the
// barrier lives in the emulator, not the atom).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "profile/delta_frame.hpp"
#include "profile/profile.hpp"
#include "watchers/trace.hpp"

namespace synapse::atoms {

/// Cumulative accounting of what an atom consumed.
struct AtomStats {
  double busy_seconds = 0.0;  ///< wall time spent consuming
  double cycles = 0.0;
  double flops = 0.0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_allocated = 0;
  uint64_t bytes_freed = 0;
  uint64_t net_bytes_sent = 0;
  uint64_t net_bytes_received = 0;
  uint64_t samples_consumed = 0;
};

/// Field-wise accumulation, used wherever per-rank or per-repetition
/// stats are summed (process-parallel aggregation, scenario runs).
inline void accumulate(AtomStats& into, const AtomStats& from) {
  into.busy_seconds += from.busy_seconds;
  into.cycles += from.cycles;
  into.flops += from.flops;
  into.bytes_read += from.bytes_read;
  into.bytes_written += from.bytes_written;
  into.bytes_allocated += from.bytes_allocated;
  into.bytes_freed += from.bytes_freed;
  into.net_bytes_sent += from.net_bytes_sent;
  into.net_bytes_received += from.net_bytes_received;
  into.samples_consumed += from.samples_consumed;
}

/// One atom's compiled dispatch decision over one DeltaTable, resolved
/// once per replay by the emulator's ReplayPlan. A row is wanted when
/// any trigger lane is positive — the exact predicate every built-in
/// wants() implements, evaluated on dense lanes instead of map probes.
/// Atoms that do not declare wanted_metrics() get `adapter = true`: the
/// engine falls back to per-row unbox + wants()/consume().
struct LaneMask {
  std::vector<uint32_t> triggers;  ///< lanes whose value > 0 means "wanted"
  bool adapter = false;  ///< dispatch through the legacy SampleDelta path
  bool idle = false;     ///< none of the atom's metrics were recorded at all

  bool row_wanted(const profile::DeltaFrame& frame, size_t row) const {
    for (const uint32_t lane : triggers) {
      if (frame.get(lane, row) > 0) return true;
    }
    return false;
  }
};

class Atom {
 public:
  explicit Atom(std::string name) : name_(std::move(name)) {}
  virtual ~Atom() = default;

  const std::string& name() const { return name_; }

  /// True when this sample contains work for this atom (lets the
  /// emulator skip dispatch for idle atoms).
  virtual bool wants(const profile::SampleDelta& delta) const = 0;

  /// Consume the resources recorded in one sampling period. Called from
  /// the atom's dedicated thread; must be exception-safe (failures are
  /// recorded, not propagated, so one atom cannot wedge the barrier).
  virtual void consume(const profile::SampleDelta& delta) = 0;

  /// The metric names whose positive per-sample delta means this atom
  /// has work — the declarative form of wants(), resolved into a
  /// LaneMask once per replay. An empty list (the default) means "not
  /// declared": the engine keeps probing wants() per sample and frames
  /// reach the atom through the unboxing consume_frame below.
  virtual std::vector<std::string> wanted_metrics() const { return {}; }

  /// Called once per replay with the profile's interned lane table,
  /// before any frame is fed. Atoms that consume frames natively cache
  /// their lane IDs here (atoms are built per replay, so the binding
  /// cannot go stale).
  virtual void bind_lanes(const profile::LaneTable& lanes) { (void)lanes; }

  /// Consume every wanted row of one frame. Same exception contract as
  /// consume(): failures are recorded, never propagated. The default
  /// implementation is the compatibility adapter — it re-boxes each row
  /// into a legacy SampleDelta and routes it through wants()/consume(),
  /// so registry-registered custom atoms replay unmodified.
  virtual void consume_frame(const profile::DeltaFrame& frame,
                             const LaneMask& mask);

  const AtomStats& stats() const { return stats_; }

  /// Attach the cooperative trace (emulation runs are themselves
  /// profile-able; the atoms publish the counters they consume).
  void set_trace(watchers::TraceWriter* trace) { trace_ = trace; }

 protected:
  AtomStats stats_;
  watchers::TraceWriter* trace_ = nullptr;  ///< not owned, may be null

 private:
  std::string name_;
};

}  // namespace synapse::atoms
