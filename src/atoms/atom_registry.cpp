#include "atoms/atom_registry.hpp"

#include "sys/error.hpp"

namespace synapse::atoms {

AtomRegistry::AtomRegistry() {
  factories_["compute"] = [](const AtomBuildContext& ctx) {
    return std::make_unique<ComputeAtom>(ctx.compute);
  };
  factories_["memory"] = [](const AtomBuildContext& ctx) {
    return std::make_unique<MemoryAtom>(ctx.memory);
  };
  factories_["storage"] = [](const AtomBuildContext& ctx) {
    return std::make_unique<StorageAtom>(ctx.storage);
  };
  factories_["network"] = [](const AtomBuildContext& ctx) {
    return std::make_unique<NetworkAtom>(ctx.network);
  };
}

AtomRegistry& AtomRegistry::instance() {
  static AtomRegistry registry;
  return registry;
}

void AtomRegistry::register_atom(const std::string& name, Factory factory) {
  if (name.empty()) throw sys::ConfigError("atom name must not be empty");
  if (!factory) throw sys::ConfigError("atom factory must not be empty");
  factories_[name] = std::move(factory);
}

std::unique_ptr<Atom> AtomRegistry::create(
    const std::string& name, const AtomBuildContext& context) const {
  ensure_registered(name);
  return factories_.at(name)(context);
}

void AtomRegistry::ensure_registered(const std::string& name) const {
  if (factories_.count(name) != 0) return;
  std::string known;
  for (const auto& [key, unused] : factories_) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw sys::ConfigError("unknown emulation atom: " + name +
                         " (registered: " + known + ")");
}

bool AtomRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> AtomRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) out.push_back(key);
  return out;
}

const std::vector<std::string>& AtomRegistry::builtin_names() {
  static const std::vector<std::string> names = {"compute", "memory",
                                                 "storage", "network"};
  return names;
}

}  // namespace synapse::atoms
