#pragma once
// Atom registry: name -> factory for emulation atoms.
//
// Decouples the replay engine from concrete atom types the same way
// KernelRegistry decouples ComputeAtom from concrete kernels: the
// emulator asks for atoms by name, and anything registered here — the
// four built-ins or a user-registered custom atom — participates in
// replay without the emulator knowing its type (requirement E.3
// Malleability, section 4.5 user-pluggable emulation).
//
// Factories receive an AtomBuildContext holding the per-atom option
// structs; a factory reads the options it cares about and ignores the
// rest. Built-ins are pre-registered under "compute", "memory",
// "storage" and "network".

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "atoms/atom.hpp"
#include "atoms/compute_atom.hpp"
#include "atoms/memory_atom.hpp"
#include "atoms/network_atom.hpp"
#include "atoms/storage_atom.hpp"

namespace synapse::atoms {

/// Per-run configuration handed to atom factories. The emulator fills
/// it from EmulatorOptions; standalone users fill it directly.
struct AtomBuildContext {
  ComputeAtomOptions compute;
  MemoryAtomOptions memory;
  StorageAtomOptions storage;
  NetworkAtomOptions network;
};

class AtomRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Atom>(const AtomBuildContext&)>;

  /// The process-wide registry with the built-ins pre-registered.
  /// Runtime registrations here are visible to every Emulator that does
  /// not inject its own registry.
  static AtomRegistry& instance();

  /// A fresh registry seeded with the built-in factories. Use this (and
  /// inject it into the Emulator) to scope custom atoms to one run.
  AtomRegistry();

  /// Register or replace a factory. Registering a name that already
  /// exists overrides it — this is how a user swaps a built-in for a
  /// custom implementation.
  void register_atom(const std::string& name, Factory factory);

  /// Instantiate one atom. Throws sys::ConfigError for unknown names
  /// (the message lists what is registered).
  std::unique_ptr<Atom> create(const std::string& name,
                               const AtomBuildContext& context) const;

  /// Throw the same ConfigError as create() for an unknown name,
  /// without instantiating anything — lets drivers validate a whole
  /// atom set up front (e.g. before forking ranks).
  void ensure_registered(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// The built-in atom set, in barrier-dispatch order.
  static const std::vector<std::string>& builtin_names();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace synapse::atoms
