#include "atoms/compute_atom.hpp"

#include <exception>

#include "profile/metrics.hpp"
#include "resource/cache_model.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

ComputeAtom::ComputeAtom(ComputeAtomOptions options)
    : Atom("compute"), options_(std::move(options)) {
  if (options_.kernel == "omp" && options_.omp_threads > 0) {
    kernel_ = make_omp_kernel(options_.omp_threads);
  } else {
    kernel_ = KernelRegistry::instance().create(options_.kernel);
  }
}

bool ComputeAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kCyclesUsed) > 0;
}

std::vector<std::string> ComputeAtom::wanted_metrics() const {
  return {std::string(m::kCyclesUsed)};
}

void ComputeAtom::bind_lanes(const profile::LaneTable& lanes) {
  lane_cycles_ = lanes.id(m::kCyclesUsed);
}

void ComputeAtom::consume_frame(const profile::DeltaFrame& frame,
                                const LaneMask& mask) {
  for (size_t row = 0; row < frame.rows(); ++row) {
    if (!mask.row_wanted(frame, row)) continue;
    try {
      consume_cycles(frame.get(lane_cycles_, row));
    } catch (const std::exception&) {
      // Same contract as consume(): record, never propagate.
    }
  }
}

void ComputeAtom::consume(const profile::SampleDelta& delta) {
  consume_cycles(delta.get(m::kCyclesUsed));
}

void ComputeAtom::consume_cycles(double cycles) {
  if (cycles <= 0) return;

  const auto& spec = resource::active_resource();
  const auto& traits = kernel_->traits();
  const double bias = resource::calibration_bias(traits, spec);
  const double actual_cycles = cycles * bias;
  const double seconds =
      resource::seconds_for_cycles(spec, actual_cycles) * options_.time_scale;

  const double start = sys::steady_now();
  kernel_->busy(seconds);
  stats_.busy_seconds += sys::steady_now() - start;

  const double ipc = resource::effective_ipc(traits, spec);
  const double flops = actual_cycles * ipc / traits.instructions_per_flop;
  const double instructions =
      resource::instructions_for_flops(traits, flops);
  stats_.cycles += actual_cycles;
  stats_.flops += flops;
  stats_.samples_consumed += 1;

  if (trace_ != nullptr) {
    trace_->add_counters(static_cast<uint64_t>(flops),
                         static_cast<uint64_t>(instructions),
                         static_cast<uint64_t>(actual_cycles));
  }
}

}  // namespace synapse::atoms
