#pragma once
// Compute atom: consumes CPU cycles through a pluggable kernel.
//
// Given a per-sample cycle budget N (from the profile), the atom:
//   1. converts N to wall time on the active virtual resource:
//      t = N x bias / turbo_hz, where bias is the kernel's calibration
//      bias on that resource (resource/cache_model.hpp) — the mechanism
//      behind the per-kernel emulation error of paper Fig. 8/9;
//   2. runs the kernel's real computation for t (on the bare host,
//      bias = 1 and t = N / clock: it genuinely burns ~N cycles);
//   3. publishes the model counters (FLOPs from the kernel's effective
//      IPC, instructions from its instruction mix, cycles N x bias) to
//      the cooperative trace, so profiling the emulation reports what a
//      PMU would have measured on that machine.

#include <memory>

#include "atoms/atom.hpp"
#include "atoms/kernels.hpp"

namespace synapse::atoms {

struct ComputeAtomOptions {
  /// Kernel name in the KernelRegistry ("asm" is the paper's default).
  std::string kernel = "asm";
  /// OpenMP threads for the "omp" kernel (0 = all).
  int omp_threads = 0;
  /// Multiplier on the wall time spent per sample (NOT on the counters):
  /// the emulator sets this to the parallel-efficiency factor when the
  /// cycle budget is spread over several workers (experiment E.4).
  double time_scale = 1.0;
};

class ComputeAtom final : public Atom {
 public:
  explicit ComputeAtom(ComputeAtomOptions options = {});

  bool wants(const profile::SampleDelta& delta) const override;
  void consume(const profile::SampleDelta& delta) override;

  std::vector<std::string> wanted_metrics() const override;
  void bind_lanes(const profile::LaneTable& lanes) override;
  void consume_frame(const profile::DeltaFrame& frame,
                     const LaneMask& mask) override;

  const ComputeKernel& kernel() const { return *kernel_; }

 private:
  /// The shared per-period arithmetic: both consume paths funnel the
  /// cycle budget through here so map and frame replays are bit-equal.
  void consume_cycles(double cycles);

  ComputeAtomOptions options_;
  std::unique_ptr<ComputeKernel> kernel_;
  uint32_t lane_cycles_ = profile::LaneTable::kNoLane;
};

}  // namespace synapse::atoms
