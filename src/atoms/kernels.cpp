#include "atoms/kernels.hpp"

#include <omp.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse::atoms {

namespace {

/// Register-blocked 32x32 matmul; the working set (three 32x32 double
/// matrices = 24 KiB) stays in L1. The unrolled inner loop compiles to a
/// dense FMA chain — the C++ rendering of the paper's assembly kernel.
class AsmKernel final : public ComputeKernel {
 public:
  AsmKernel() : a_(kN * kN, 1.0001), b_(kN * kN, 0.9999), c_(kN * kN, 0.0) {}

  const std::string& name() const override {
    static const std::string n = "asm";
    return n;
  }
  const resource::KernelTraits& traits() const override {
    return resource::asm_kernel_traits();
  }

  double busy(double seconds) override {
    const double deadline = sys::steady_now() + seconds;
    double flops = 0.0;
    do {
      multiply_once();
      flops += 2.0 * kN * kN * kN;
    } while (sys::steady_now() < deadline);
    return flops;
  }

 private:
  static constexpr size_t kN = 32;

  void multiply_once() {
    double* __restrict c = c_.data();
    const double* __restrict a = a_.data();
    const double* __restrict b = b_.data();
    for (size_t i = 0; i < kN; ++i) {
      for (size_t k = 0; k < kN; ++k) {
        const double aik = a[i * kN + k];
        // Unrolled by 4: the compiler vectorizes this into FMA lanes.
        for (size_t j = 0; j < kN; j += 4) {
          c[i * kN + j + 0] += aik * b[k * kN + j + 0];
          c[i * kN + j + 1] += aik * b[k * kN + j + 1];
          c[i * kN + j + 2] += aik * b[k * kN + j + 2];
          c[i * kN + j + 3] += aik * b[k * kN + j + 3];
        }
      }
    }
    // Keep values bounded so the loop never hits subnormals/infs (which
    // would change the execution speed mid-run).
    c_[0] = c_[0] > 1e100 ? 1.0 : c_[0];
  }

  std::vector<double> a_, b_, c_;
};

/// Naive triple-loop matmul whose matrices exceed the last-level cache;
/// strided B accesses miss continuously — the paper's C kernel.
class CKernel final : public ComputeKernel {
 public:
  CKernel() : a_(kN * kN, 1.0001), b_(kN * kN, 0.9999), c_(kN * kN, 0.0) {}

  const std::string& name() const override {
    static const std::string n = "c";
    return n;
  }
  const resource::KernelTraits& traits() const override {
    return resource::c_kernel_traits();
  }

  double busy(double seconds) override {
    const double deadline = sys::steady_now() + seconds;
    double flops = 0.0;
    size_t row = 0;
    do {
      // One output row per deadline check keeps the check cheap relative
      // to the work (2*kN*kN flops per row).
      multiply_row(row);
      row = (row + 1) % kN;
      flops += 2.0 * kN * kN;
    } while (sys::steady_now() < deadline);
    return flops;
  }

 private:
  static constexpr size_t kN = 1024;  // 3 matrices x 8 MiB = 24 MiB

  void multiply_row(size_t i) {
    double* __restrict c = c_.data() + i * kN;
    const double* __restrict a = a_.data() + i * kN;
    const double* __restrict b = b_.data();
    for (size_t j = 0; j < kN; ++j) {
      double acc = c[j];
      // Column-strided walk over B: the cache-hostile access pattern is
      // the point of this kernel.
      for (size_t k = 0; k < kN; ++k) {
        acc += a[k] * b[k * kN + j];
      }
      c[j] = acc > 1e100 ? 1.0 : acc;
    }
  }

  std::vector<double> a_, b_, c_;
};

/// OpenMP matmul: the C kernel's loop parallelized over rows.
class OmpKernel final : public ComputeKernel {
 public:
  explicit OmpKernel(int threads)
      : threads_(threads > 0 ? threads : omp_get_max_threads()),
        a_(kN * kN, 1.0001),
        b_(kN * kN, 0.9999),
        c_(kN * kN, 0.0) {}

  const std::string& name() const override {
    static const std::string n = "omp";
    return n;
  }
  const resource::KernelTraits& traits() const override {
    return resource::c_kernel_traits();
  }

  double busy(double seconds) override {
    const double deadline = sys::steady_now() + seconds;
    double flops = 0.0;
    do {
      double* __restrict c = c_.data();
      const double* __restrict a = a_.data();
      const double* __restrict b = b_.data();
#pragma omp parallel for num_threads(threads_) schedule(static)
      for (size_t i = 0; i < kN; ++i) {
        for (size_t j = 0; j < kN; ++j) {
          double acc = c[i * kN + j];
          for (size_t k = 0; k < kN; ++k) {
            acc += a[i * kN + k] * b[k * kN + j];
          }
          c[i * kN + j] = acc > 1e100 ? 1.0 : acc;
        }
      }
      flops += 2.0 * kN * kN * kN;
    } while (sys::steady_now() < deadline);
    return flops;
  }

  int threads() const { return threads_; }

 private:
  static constexpr size_t kN = 256;  // small enough for sub-second rounds
  int threads_;
  std::vector<double> a_, b_, c_;
};

/// No CPU at all: models sleep(3)-dominated applications (section 4.5).
class SleepKernel final : public ComputeKernel {
 public:
  const std::string& name() const override {
    static const std::string n = "sleep";
    return n;
  }
  const resource::KernelTraits& traits() const override {
    static const resource::KernelTraits t = {
        .name = "sleep",
        .working_set_bytes = 0,
        .memory_boundedness = 1.0,  // insensitive to clock by definition
        .instructions_per_flop = 1.0,
        .mem_refs_per_instruction = 0.0,
        .locality = 1.0,
    };
    return t;
  }

  double busy(double seconds) override {
    sys::sleep_for(seconds);
    return 0.0;
  }
};

}  // namespace

std::unique_ptr<ComputeKernel> make_asm_kernel() {
  return std::make_unique<AsmKernel>();
}
std::unique_ptr<ComputeKernel> make_c_kernel() {
  return std::make_unique<CKernel>();
}
std::unique_ptr<ComputeKernel> make_omp_kernel(int threads) {
  return std::make_unique<OmpKernel>(threads);
}
std::unique_ptr<ComputeKernel> make_sleep_kernel() {
  return std::make_unique<SleepKernel>();
}

KernelRegistry::KernelRegistry() {
  factories_["asm"] = [] { return make_asm_kernel(); };
  factories_["c"] = [] { return make_c_kernel(); };
  factories_["omp"] = [] { return make_omp_kernel(0); };
  factories_["sleep"] = [] { return make_sleep_kernel(); };
}

KernelRegistry& KernelRegistry::instance() {
  static KernelRegistry registry;
  return registry;
}

namespace {
std::mutex g_registry_mutex;
}

void KernelRegistry::register_kernel(const std::string& name,
                                     Factory factory) {
  std::lock_guard lock(g_registry_mutex);
  factories_[name] = std::move(factory);
}

std::unique_ptr<ComputeKernel> KernelRegistry::create(
    const std::string& name) const {
  std::lock_guard lock(g_registry_mutex);
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw sys::ConfigError("unknown compute kernel: " + name);
  }
  return it->second();
}

std::vector<std::string> KernelRegistry::names() const {
  std::lock_guard lock(g_registry_mutex);
  std::vector<std::string> out;
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

double calibrate_kernel_flops(ComputeKernel& kernel, double seconds) {
  const double start = sys::steady_now();
  const double flops = kernel.busy(seconds);
  const double elapsed = sys::steady_now() - start;
  return elapsed > 0 ? flops / elapsed : 0.0;
}

}  // namespace synapse::atoms
