#pragma once
// Compute emulation kernels (paper section 4.2).
//
// A kernel is the piece of code a ComputeAtom runs to consume CPU. The
// paper ships two built-in matrix-multiplication kernels — an assembly
// one whose matrices fit the cache ("maximum efficiency") and a C one
// whose matrices do not ("represents actual application codes more
// realistically") — plus an OpenMP variant and user-pluggable kernels
// (e.g. a sleep kernel for applications whose Tx is not CPU-bound,
// section 4.5). All of that is reproduced here; "assembly" is a tightly
// register-blocked C++ loop the compiler reduces to the same FMA chain.
//
// Kernels burn *time* with a characteristic memory-access pattern; the
// translation from cycles to time and the counter accounting live in
// ComputeAtom (see compute_atom.hpp).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "resource/cache_model.hpp"

namespace synapse::atoms {

class ComputeKernel {
 public:
  virtual ~ComputeKernel() = default;

  virtual const std::string& name() const = 0;

  /// Analytic execution characteristics, used by the cache/IPC model.
  virtual const resource::KernelTraits& traits() const = 0;

  /// Execute real work for approximately `seconds` of wall time;
  /// returns the number of floating-point operations actually executed
  /// (used by calibration and the micro-benchmarks).
  virtual double busy(double seconds) = 0;
};

/// Cache-resident register-blocked matmul — the paper's ASM kernel.
std::unique_ptr<ComputeKernel> make_asm_kernel();

/// Out-of-cache naive matmul — the paper's C kernel.
std::unique_ptr<ComputeKernel> make_c_kernel();

/// OpenMP-parallel matmul over `threads` threads (0 = all cores).
std::unique_ptr<ComputeKernel> make_omp_kernel(int threads = 0);

/// Consumes wall time without CPU (the paper's sleep(3) user-kernel
/// example for applications whose Tx is not compute).
std::unique_ptr<ComputeKernel> make_sleep_kernel();

/// Kernel registry: built-ins are pre-registered under "asm", "c",
/// "omp", "sleep"; users add factories for their own kernels
/// (requirement E.3 Malleability / section 4.5 kernel selection).
class KernelRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ComputeKernel>()>;

  static KernelRegistry& instance();

  void register_kernel(const std::string& name, Factory factory);
  std::unique_ptr<ComputeKernel> create(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  KernelRegistry();
  std::map<std::string, Factory> factories_;
};

/// Measured sustained FLOP rate of a kernel on the host (microbench).
double calibrate_kernel_flops(ComputeKernel& kernel, double seconds = 0.05);

}  // namespace synapse::atoms
