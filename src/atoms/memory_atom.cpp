#include "atoms/memory_atom.hpp"

#include <algorithm>

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

MemoryAtom::MemoryAtom(MemoryAtomOptions options)
    : Atom("memory"), options_(options) {}

MemoryAtom::~MemoryAtom() = default;

bool MemoryAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kMemAllocated) > 0 || delta.get(m::kMemFreed) > 0;
}

void MemoryAtom::allocate(uint64_t bytes) {
  const long page = sys::page_size();
  while (bytes > 0) {
    const uint64_t chunk = std::min(bytes, options_.block_bytes);
    blocks_.emplace_back();
    auto& block = blocks_.back();
    block.resize(chunk);
    if (options_.touch_pages) {
      for (uint64_t off = 0; off < chunk; off += static_cast<uint64_t>(page)) {
        block[off] = static_cast<char>(off);
      }
    }
    held_bytes_ += chunk;
    stats_.bytes_allocated += chunk;
    if (trace_ != nullptr) trace_->add_alloc(chunk);
    bytes -= chunk;

    // Enforce the residency budget by retiring the oldest blocks.
    while (held_bytes_ > options_.max_held_bytes && !blocks_.empty()) {
      const uint64_t freed = blocks_.front().size();
      blocks_.pop_front();
      held_bytes_ -= freed;
      stats_.bytes_freed += freed;
      if (trace_ != nullptr) trace_->add_free(freed);
    }
  }
}

void MemoryAtom::release(uint64_t bytes) {
  while (bytes > 0 && !blocks_.empty()) {
    const uint64_t freed = blocks_.front().size();
    blocks_.pop_front();
    held_bytes_ -= freed;
    stats_.bytes_freed += freed;
    if (trace_ != nullptr) trace_->add_free(freed);
    bytes -= std::min(bytes, freed);
  }
}

void MemoryAtom::consume(const profile::SampleDelta& delta) {
  const auto to_alloc = static_cast<uint64_t>(delta.get(m::kMemAllocated));
  const auto to_free = static_cast<uint64_t>(delta.get(m::kMemFreed));
  if (to_alloc > 0) allocate(to_alloc);
  if (to_free > 0) release(to_free);
  stats_.samples_consumed += 1;
}

}  // namespace synapse::atoms
