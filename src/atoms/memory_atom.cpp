#include "atoms/memory_atom.hpp"

#include <algorithm>
#include <exception>

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

MemoryAtom::MemoryAtom(MemoryAtomOptions options)
    : Atom("memory"), options_(options) {}

MemoryAtom::~MemoryAtom() = default;

bool MemoryAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kMemAllocated) > 0 || delta.get(m::kMemFreed) > 0;
}

void MemoryAtom::allocate(uint64_t bytes) {
  const long page = sys::page_size();
  while (bytes > 0) {
    const uint64_t chunk = std::min(bytes, options_.block_bytes);
    blocks_.emplace_back();
    auto& block = blocks_.back();
    block.resize(chunk);
    if (options_.touch_pages) {
      for (uint64_t off = 0; off < chunk; off += static_cast<uint64_t>(page)) {
        block[off] = static_cast<char>(off);
      }
    }
    held_bytes_ += chunk;
    stats_.bytes_allocated += chunk;
    if (trace_ != nullptr) trace_->add_alloc(chunk);
    bytes -= chunk;

    // Enforce the residency budget by retiring the oldest blocks.
    while (held_bytes_ > options_.max_held_bytes && !blocks_.empty()) {
      const uint64_t freed = blocks_.front().size();
      blocks_.pop_front();
      held_bytes_ -= freed;
      stats_.bytes_freed += freed;
      if (trace_ != nullptr) trace_->add_free(freed);
    }
  }
}

void MemoryAtom::release(uint64_t bytes) {
  while (bytes > 0 && !blocks_.empty()) {
    const uint64_t freed = blocks_.front().size();
    blocks_.pop_front();
    held_bytes_ -= freed;
    stats_.bytes_freed += freed;
    if (trace_ != nullptr) trace_->add_free(freed);
    bytes -= std::min(bytes, freed);
  }
}

void MemoryAtom::consume(const profile::SampleDelta& delta) {
  consume_bytes(delta.get(m::kMemAllocated), delta.get(m::kMemFreed));
}

std::vector<std::string> MemoryAtom::wanted_metrics() const {
  return {std::string(m::kMemAllocated), std::string(m::kMemFreed)};
}

void MemoryAtom::bind_lanes(const profile::LaneTable& lanes) {
  lane_allocated_ = lanes.id(m::kMemAllocated);
  lane_freed_ = lanes.id(m::kMemFreed);
}

void MemoryAtom::consume_frame(const profile::DeltaFrame& frame,
                               const LaneMask& mask) {
  for (size_t row = 0; row < frame.rows(); ++row) {
    if (!mask.row_wanted(frame, row)) continue;
    try {
      consume_bytes(frame.get(lane_allocated_, row),
                    frame.get(lane_freed_, row));
    } catch (const std::exception&) {
      // Same contract as consume(): record, never propagate.
    }
  }
}

void MemoryAtom::consume_bytes(double allocated, double freed) {
  const auto to_alloc = static_cast<uint64_t>(allocated);
  const auto to_free = static_cast<uint64_t>(freed);
  if (to_alloc > 0) allocate(to_alloc);
  if (to_free > 0) release(to_free);
  stats_.samples_consumed += 1;
}

}  // namespace synapse::atoms
