#pragma once
// Memory atom: canonical malloc/free emulation (paper section 4.2).
//
// Consumes the per-sample allocation and free byte counts with a
// tunable block size ("those block sizes are not related to the
// recorded profiles" — same deliberate simplification as the paper;
// tunable per requirement E.3). Allocated blocks are touched page by
// page so they become resident and visible to the memory watcher of a
// profiler observing the emulation.

#include <cstdint>
#include <deque>
#include <vector>

#include "atoms/atom.hpp"

namespace synapse::atoms {

struct MemoryAtomOptions {
  uint64_t block_bytes = 4 * 1024 * 1024;  ///< allocation granularity
  /// Upper bound on memory held at once; oldest blocks are freed first
  /// when the budget is exceeded (keeps emulation safe on small hosts —
  /// the paper's "memory emulation is limited by available memory").
  uint64_t max_held_bytes = 1ull << 30;
  bool touch_pages = true;  ///< write one byte per page after malloc
};

class MemoryAtom final : public Atom {
 public:
  explicit MemoryAtom(MemoryAtomOptions options = {});
  ~MemoryAtom() override;

  bool wants(const profile::SampleDelta& delta) const override;
  void consume(const profile::SampleDelta& delta) override;

  std::vector<std::string> wanted_metrics() const override;
  void bind_lanes(const profile::LaneTable& lanes) override;
  void consume_frame(const profile::DeltaFrame& frame,
                     const LaneMask& mask) override;

  uint64_t held_bytes() const { return held_bytes_; }

 private:
  void allocate(uint64_t bytes);
  void release(uint64_t bytes);
  /// Shared per-period body of both consume paths.
  void consume_bytes(double allocated, double freed);

  MemoryAtomOptions options_;
  std::deque<std::vector<char>> blocks_;
  uint64_t held_bytes_ = 0;
  uint32_t lane_allocated_ = profile::LaneTable::kNoLane;
  uint32_t lane_freed_ = profile::LaneTable::kNoLane;
};

}  // namespace synapse::atoms
