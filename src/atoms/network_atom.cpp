#include "atoms/network_atom.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <vector>

#include "profile/metrics.hpp"
#include "sys/error.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

NetworkAtom::NetworkAtom(NetworkAtomOptions options)
    : Atom("network"), options_(options) {
  // Loopback TCP: listener on an ephemeral port, one connect/accept.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) throw sys::SystemError("socket", errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    ::close(listener);
    throw sys::SystemError("bind/listen", errno);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listener);
    throw sys::SystemError("getsockname", errno);
  }

  send_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (send_fd_ < 0 ||
      ::connect(send_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(listener);
    if (send_fd_ >= 0) ::close(send_fd_);
    throw sys::SystemError("connect(loopback)", errno);
  }
  recv_fd_ = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw sys::SystemError("accept", errno);
  }

  drain_thread_ = std::thread([this] {
    std::vector<char> buf(256 * 1024);
    for (;;) {
      const ssize_t n = ::recv(recv_fd_, buf.data(), buf.size(), 0);
      if (n <= 0) break;  // peer EOF or error: end of emulation
      drained_.fetch_add(static_cast<uint64_t>(n),
                         std::memory_order_relaxed);
    }
  });
}

NetworkAtom::~NetworkAtom() {
  // Finish the stream instead of dropping it: send() only queues bytes
  // in the socket buffer, and closing both directions here used to
  // discard whatever the drain thread had not received yet — those
  // bytes never traversed the loopback device, so the emulated traffic
  // was silently truncated (and invisible to the net watcher).
  // Shutting down the write side sends EOF; the drain thread reads the
  // queued remainder until it sees it, which bounds the join.
  if (send_fd_ >= 0) ::shutdown(send_fd_, SHUT_WR);
  if (drain_thread_.joinable()) drain_thread_.join();
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

bool NetworkAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kNetBytesWritten) > 0 || delta.get(m::kNetBytesRead) > 0;
}

void NetworkAtom::consume(const profile::SampleDelta& delta) {
  consume_traffic(delta.get(m::kNetBytesWritten), delta.get(m::kNetBytesRead));
}

std::vector<std::string> NetworkAtom::wanted_metrics() const {
  return {std::string(m::kNetBytesWritten), std::string(m::kNetBytesRead)};
}

void NetworkAtom::bind_lanes(const profile::LaneTable& lanes) {
  lane_written_ = lanes.id(m::kNetBytesWritten);
  lane_read_ = lanes.id(m::kNetBytesRead);
}

void NetworkAtom::consume_frame(const profile::DeltaFrame& frame,
                                const LaneMask& mask) {
  for (size_t row = 0; row < frame.rows(); ++row) {
    if (!mask.row_wanted(frame, row)) continue;
    try {
      consume_traffic(frame.get(lane_written_, row),
                      frame.get(lane_read_, row));
    } catch (const std::exception&) {
      // Same contract as consume(): record, never propagate.
    }
  }
}

void NetworkAtom::consume_traffic(double bytes_written, double bytes_read) {
  // Reads and writes collapse onto the same loopback stream: the atom
  // emulates traffic volume, not topology (paper: partial support).
  const auto total = static_cast<uint64_t>(bytes_written) +
                     static_cast<uint64_t>(bytes_read);
  if (total == 0) return;

  std::vector<char> buf(std::min<uint64_t>(options_.block_bytes, total));
  uint64_t sent = 0;
  while (sent < total) {
    const auto chunk =
        static_cast<size_t>(std::min<uint64_t>(buf.size(), total - sent));
    const ssize_t n = ::send(send_fd_, buf.data(), chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // record what was sent; do not wedge the sample barrier
    }
    sent += static_cast<uint64_t>(n);
  }
  stats_.net_bytes_sent += sent;
  stats_.net_bytes_received += static_cast<uint64_t>(bytes_read);
  stats_.samples_consumed += 1;
}

}  // namespace synapse::atoms
