#pragma once
// Network atom: simple socket-based communication emulation.
//
// The paper implements "emulation of simple socket-based network
// communication" (section 4.5 IPC/MPI) while network *profiling* remains
// planned (Table 1's "(-)" rows). This atom reproduces that state: it
// replays byte counts over a real loopback TCP connection (a dedicated
// drain thread consumes the peer side), so the traffic exercises genuine
// socket paths.

#include <atomic>
#include <cstdint>
#include <thread>

#include "atoms/atom.hpp"

namespace synapse::atoms {

struct NetworkAtomOptions {
  uint64_t block_bytes = 64 * 1024;  ///< send/recv granularity
};

class NetworkAtom final : public Atom {
 public:
  explicit NetworkAtom(NetworkAtomOptions options = {});
  ~NetworkAtom() override;

  bool wants(const profile::SampleDelta& delta) const override;
  void consume(const profile::SampleDelta& delta) override;

  std::vector<std::string> wanted_metrics() const override;
  void bind_lanes(const profile::LaneTable& lanes) override;
  void consume_frame(const profile::DeltaFrame& frame,
                     const LaneMask& mask) override;

 private:
  /// Shared per-period body of both consume paths.
  void consume_traffic(double bytes_written, double bytes_read);

  uint32_t lane_written_ = profile::LaneTable::kNoLane;
  uint32_t lane_read_ = profile::LaneTable::kNoLane;
  NetworkAtomOptions options_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
  /// Drains the receive side until the destructor's SHUT_WR EOF.
  std::thread drain_thread_;
  std::atomic<uint64_t> drained_{0};
};

}  // namespace synapse::atoms
