#include "atoms/storage_atom.hpp"

#include <unistd.h>

#include <algorithm>

#include "profile/metrics.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

StorageAtom::StorageAtom(StorageAtomOptions options)
    : Atom("storage"),
      options_(options),
      vfs_(resource::VirtualFilesystem::for_active_resource(
          options.filesystem, options.base_dir)) {
  file_name_ = "storage_atom_" + std::to_string(::getpid()) + ".dat";
  file_ = vfs_.open(file_name_, /*for_write=*/true);
}

StorageAtom::~StorageAtom() {
  file_.reset();
  vfs_.remove(file_name_);
}

bool StorageAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kBytesRead) > 0 || delta.get(m::kBytesWritten) > 0;
}

void StorageAtom::consume(const profile::SampleDelta& delta) {
  const auto to_write = static_cast<uint64_t>(delta.get(m::kBytesWritten));
  const auto to_read = static_cast<uint64_t>(delta.get(m::kBytesRead));

  uint64_t wblock = options_.write_block_bytes;
  if (wblock == 0) {
    const double estimated = delta.get(m::kBlockSizeWrite);
    wblock = estimated >= 1.0 ? static_cast<uint64_t>(estimated)
                              : kDefaultBlock;
  }
  uint64_t rblock = options_.read_block_bytes;
  if (rblock == 0) {
    const double estimated = delta.get(m::kBlockSizeRead);
    rblock = estimated >= 1.0 ? static_cast<uint64_t>(estimated)
                              : kDefaultBlock;
  }

  const double cost_before =
      file_->stats().read_seconds + file_->stats().write_seconds;

  // Writes first: they create the data subsequent reads consume (the
  // common dependency direction; cross-sample ordering is preserved by
  // the emulator's sample barrier either way).
  uint64_t written = 0;
  while (written < to_write) {
    const uint64_t chunk = std::min(wblock, to_write - written);
    file_->write(chunk);
    written += chunk;
  }
  if (to_write > 0) file_->sync();

  uint64_t read = 0;
  while (read < to_read) {
    const uint64_t chunk = std::min(rblock, to_read - read);
    file_->read(chunk);
    read += chunk;
  }

  stats_.bytes_written += to_write;
  stats_.bytes_read += to_read;
  stats_.busy_seconds += file_->stats().read_seconds +
                         file_->stats().write_seconds - cost_before;
  stats_.samples_consumed += 1;
}

}  // namespace synapse::atoms
