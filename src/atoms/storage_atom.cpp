#include "atoms/storage_atom.hpp"

#include <unistd.h>

#include <algorithm>
#include <exception>

#include "profile/metrics.hpp"

namespace synapse::atoms {

namespace m = synapse::metrics;

StorageAtom::StorageAtom(StorageAtomOptions options)
    : Atom("storage"),
      options_(options),
      vfs_(resource::VirtualFilesystem::for_active_resource(
          options.filesystem, options.base_dir)) {
  file_name_ = "storage_atom_" + std::to_string(::getpid()) + ".dat";
  file_ = vfs_.open(file_name_, /*for_write=*/true);
}

StorageAtom::~StorageAtom() {
  file_.reset();
  vfs_.remove(file_name_);
}

bool StorageAtom::wants(const profile::SampleDelta& delta) const {
  return delta.get(m::kBytesRead) > 0 || delta.get(m::kBytesWritten) > 0;
}

void StorageAtom::consume(const profile::SampleDelta& delta) {
  consume_io(delta.get(m::kBytesWritten), delta.get(m::kBytesRead),
             delta.get(m::kBlockSizeWrite), delta.get(m::kBlockSizeRead));
}

std::vector<std::string> StorageAtom::wanted_metrics() const {
  return {std::string(m::kBytesRead), std::string(m::kBytesWritten)};
}

void StorageAtom::bind_lanes(const profile::LaneTable& lanes) {
  lane_read_ = lanes.id(m::kBytesRead);
  lane_written_ = lanes.id(m::kBytesWritten);
  lane_block_read_ = lanes.id(m::kBlockSizeRead);
  lane_block_write_ = lanes.id(m::kBlockSizeWrite);
}

void StorageAtom::consume_frame(const profile::DeltaFrame& frame,
                                const LaneMask& mask) {
  for (size_t row = 0; row < frame.rows(); ++row) {
    if (!mask.row_wanted(frame, row)) continue;
    try {
      consume_io(frame.get(lane_written_, row), frame.get(lane_read_, row),
                 frame.get(lane_block_write_, row),
                 frame.get(lane_block_read_, row));
    } catch (const std::exception&) {
      // Same contract as consume(): record, never propagate.
    }
  }
}

void StorageAtom::consume_io(double bytes_written, double bytes_read,
                             double block_write_estimate,
                             double block_read_estimate) {
  const auto to_write = static_cast<uint64_t>(bytes_written);
  const auto to_read = static_cast<uint64_t>(bytes_read);

  uint64_t wblock = options_.write_block_bytes;
  if (wblock == 0) {
    wblock = block_write_estimate >= 1.0
                 ? static_cast<uint64_t>(block_write_estimate)
                 : kDefaultBlock;
  }
  uint64_t rblock = options_.read_block_bytes;
  if (rblock == 0) {
    rblock = block_read_estimate >= 1.0
                 ? static_cast<uint64_t>(block_read_estimate)
                 : kDefaultBlock;
  }

  const double cost_before =
      file_->stats().read_seconds + file_->stats().write_seconds;

  // Writes first: they create the data subsequent reads consume (the
  // common dependency direction; cross-sample ordering is preserved by
  // the emulator's sample barrier either way).
  uint64_t written = 0;
  while (written < to_write) {
    const uint64_t chunk = std::min(wblock, to_write - written);
    file_->write(chunk);
    written += chunk;
  }
  if (to_write > 0) file_->sync();

  uint64_t read = 0;
  while (read < to_read) {
    const uint64_t chunk = std::min(rblock, to_read - read);
    file_->read(chunk);
    read += chunk;
  }

  stats_.bytes_written += to_write;
  stats_.bytes_read += to_read;
  stats_.busy_seconds += file_->stats().read_seconds +
                         file_->stats().write_seconds - cost_before;
  stats_.samples_consumed += 1;
}

}  // namespace synapse::atoms
