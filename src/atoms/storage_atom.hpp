#pragma once
// Storage atom: disk read/write emulation (paper sections 4.2, E.5).
//
// Replays per-sample byte counts through a virtual filesystem with a
// tunable block size. By default the block size follows the profile's
// estimated granularity when present (our blktrace stand-in), otherwise
// a configurable static size — the paper's default behaviour. Both the
// target filesystem and the block sizes are user-tunable (experiment
// E.5's two dimensions of malleability).

#include <memory>
#include <string>

#include "atoms/atom.hpp"
#include "resource/vfs.hpp"

namespace synapse::atoms {

struct StorageAtomOptions {
  /// Filesystem name on the active resource ("" = resource default).
  std::string filesystem;
  /// Static block sizes; 0 = follow the profile's per-sample estimate,
  /// falling back to 1 MiB.
  uint64_t read_block_bytes = 0;
  uint64_t write_block_bytes = 0;
  /// Backing directory ("" = $TMPDIR or /tmp).
  std::string base_dir;
};

class StorageAtom final : public Atom {
 public:
  explicit StorageAtom(StorageAtomOptions options = {});
  ~StorageAtom() override;

  bool wants(const profile::SampleDelta& delta) const override;
  void consume(const profile::SampleDelta& delta) override;

  const resource::VirtualFilesystem& filesystem() const { return vfs_; }

 private:
  static constexpr uint64_t kDefaultBlock = 1024 * 1024;

  StorageAtomOptions options_;
  resource::VirtualFilesystem vfs_;
  std::unique_ptr<resource::VirtualFile> file_;
  std::string file_name_;
};

}  // namespace synapse::atoms
