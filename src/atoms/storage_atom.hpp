#pragma once
// Storage atom: disk read/write emulation (paper sections 4.2, E.5).
//
// Replays per-sample byte counts through a virtual filesystem with a
// tunable block size. By default the block size follows the profile's
// estimated granularity when present (our blktrace stand-in), otherwise
// a configurable static size — the paper's default behaviour. Both the
// target filesystem and the block sizes are user-tunable (experiment
// E.5's two dimensions of malleability).

#include <memory>
#include <string>

#include "atoms/atom.hpp"
#include "resource/vfs.hpp"

namespace synapse::atoms {

struct StorageAtomOptions {
  /// Filesystem name on the active resource ("" = resource default).
  std::string filesystem;
  /// Static block sizes; 0 = follow the profile's per-sample estimate,
  /// falling back to 1 MiB.
  uint64_t read_block_bytes = 0;
  uint64_t write_block_bytes = 0;
  /// Backing directory ("" = $TMPDIR or /tmp).
  std::string base_dir;
};

class StorageAtom final : public Atom {
 public:
  explicit StorageAtom(StorageAtomOptions options = {});
  ~StorageAtom() override;

  bool wants(const profile::SampleDelta& delta) const override;
  void consume(const profile::SampleDelta& delta) override;

  std::vector<std::string> wanted_metrics() const override;
  void bind_lanes(const profile::LaneTable& lanes) override;
  void consume_frame(const profile::DeltaFrame& frame,
                     const LaneMask& mask) override;

  const resource::VirtualFilesystem& filesystem() const { return vfs_; }

 private:
  static constexpr uint64_t kDefaultBlock = 1024 * 1024;

  /// Shared per-period body of both consume paths; block-size estimates
  /// come from the profile when the options leave them 0.
  void consume_io(double bytes_written, double bytes_read,
                  double block_write_estimate, double block_read_estimate);

  StorageAtomOptions options_;
  resource::VirtualFilesystem vfs_;
  std::unique_ptr<resource::VirtualFile> file_;
  std::string file_name_;
  uint32_t lane_read_ = profile::LaneTable::kNoLane;
  uint32_t lane_written_ = profile::LaneTable::kNoLane;
  uint32_t lane_block_read_ = profile::LaneTable::kNoLane;
  uint32_t lane_block_write_ = profile::LaneTable::kNoLane;
};

}  // namespace synapse::atoms
