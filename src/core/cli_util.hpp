#pragma once
// Small argument-parsing helpers shared by the synapse-* CLI mains.

#include <string>
#include <vector>

namespace synapse::cli {

/// Split a comma-separated name list ("compute, storage,my-atom"),
/// trimming whitespace around each entry; empty entries are dropped.
inline std::vector<std::string> split_name_list(const std::string& list) {
  std::vector<std::string> names;
  std::string current;
  auto flush = [&] {
    const auto begin = current.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const auto end = current.find_last_not_of(" \t");
      names.push_back(current.substr(begin, end - begin + 1));
    }
    current.clear();
  };
  for (const char c : list) {
    if (c == ',') {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return names;
}

}  // namespace synapse::cli
