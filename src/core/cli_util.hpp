#pragma once
// Small argument-parsing helpers shared by the synapse-* CLI mains.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "profile/store_backend.hpp"

namespace synapse::cli {

/// --list-store-backends, shared so every CLI prints the same table.
inline int list_store_backends() {
  using profile::StoreBackendRegistry;
  const auto& builtins = StoreBackendRegistry::builtin_names();
  std::printf("%-10s %s\n", "name", "built-in");
  for (const auto& name : StoreBackendRegistry::instance().names()) {
    const bool builtin = std::find(builtins.begin(), builtins.end(), name) !=
                         builtins.end();
    std::printf("%-10s %s\n", name.c_str(), builtin ? "yes" : "no");
  }
  std::printf(
      "\nnote: 'cluster' distributes the store's shards across the\n"
      "docstore instances of a --store-cluster spec.json\n");
  return 0;
}

/// Split a comma-separated name list ("compute, storage,my-atom"),
/// trimming whitespace around each entry; empty entries are dropped.
inline std::vector<std::string> split_name_list(const std::string& list) {
  std::vector<std::string> names;
  std::string current;
  auto flush = [&] {
    const auto begin = current.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const auto end = current.find_last_not_of(" \t");
      names.push_back(current.substr(begin, end - begin + 1));
    }
    current.clear();
  };
  for (const char c : list) {
    if (c == ',') {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return names;
}

}  // namespace synapse::cli
