#pragma once
// Small argument-parsing helpers shared by the synapse-* CLI mains.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "profile/store_backend.hpp"
#include "watchers/watcher.hpp"

namespace synapse::cli {

/// --list-store-backends, shared so every CLI prints the same table.
inline int list_store_backends() {
  using profile::StoreBackendRegistry;
  const auto& builtins = StoreBackendRegistry::builtin_names();
  std::printf("%-10s %s\n", "name", "built-in");
  for (const auto& name : StoreBackendRegistry::instance().names()) {
    const bool builtin = std::find(builtins.begin(), builtins.end(), name) !=
                         builtins.end();
    std::printf("%-10s %s\n", name.c_str(), builtin ? "yes" : "no");
  }
  std::printf(
      "\nnote: 'cluster' distributes the store's shards across the\n"
      "docstore instances of a --store-cluster spec.json\n");
  return 0;
}

/// Split a comma-separated name list ("compute, storage,my-atom"),
/// trimming whitespace around each entry; empty entries are dropped.
inline std::vector<std::string> split_name_list(const std::string& list) {
  std::vector<std::string> names;
  std::string current;
  auto flush = [&] {
    const auto begin = current.find_first_not_of(" \t");
    if (begin != std::string::npos) {
      const auto end = current.find_last_not_of(" \t");
      names.push_back(current.substr(begin, end - begin + 1));
    }
    current.clear();
  };
  for (const char c : list) {
    if (c == ',') {
      flush();
    } else {
      current += c;
    }
  }
  flush();
  return names;
}

/// Parse a per-watcher gate override "NAME=FLOOR:BURST:THRESHOLD:HOLD"
/// (--watcher-gate): four numbers — floor rate (Hz), burst rate (Hz,
/// 0 = the watcher's sampling rate), open threshold, and quiet hold (s).
/// Returns false on a malformed spec (shape only); range validation is
/// Profiler::prepare_run's job, with a diagnostic naming the watcher.
inline bool parse_gate_spec(const std::string& spec, std::string& name,
                            watchers::GateParams& gate) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  name = spec.substr(0, eq);
  double* fields[4] = {&gate.floor_hz, &gate.burst_hz, &gate.open_threshold,
                       &gate.close_hold_s};
  size_t pos = eq + 1;
  for (int k = 0; k < 4; ++k) {
    const size_t sep = k < 3 ? spec.find(':', pos) : spec.size();
    if (sep == std::string::npos) return false;
    const std::string field = spec.substr(pos, sep - pos);
    if (field.empty()) return false;
    char* end = nullptr;
    *fields[k] = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0') return false;
    pos = sep + 1;
  }
  return true;
}

}  // namespace synapse::cli
