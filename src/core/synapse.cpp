#include "core/synapse.hpp"

#include <utility>

#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse {

namespace {

profile::ProfileStore make_store(const SessionOptions& options) {
  // Any registered StoreBackend name resolves here; unknown names fail
  // inside the store with a ConfigError listing what is registered.
  profile::ProfileStoreOptions store_options = options.store_options;
  store_options.backend = options.store_backend;
  store_options.directory = options.store_dir;
  return profile::ProfileStore(std::move(store_options));
}

}  // namespace

Session::Session(SessionOptions options)
    : options_(std::move(options)), store_(make_store(options_)) {}

Session::~Session() {
  // Destruction is the last exit path for queued recordings; a store
  // failure here cannot propagate (throwing destructor), so fall back
  // to per-profile puts and swallow what still fails — flush_pending()
  // re-queued exactly the profiles that did not land.
  try {
    flush_pending();
  } catch (...) {
    std::vector<profile::Profile> leftover;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      leftover.swap(pending_);
    }
    for (const auto& p : leftover) {
      try {
        store_.put(p);
      } catch (...) {
        // Unstorable (backend gone); nothing safe left to do in a dtor.
      }
    }
  }
}

profile::Profile Session::profile(const std::string& command,
                                  const std::vector<std::string>& tags) {
  watchers::Profiler profiler(options_.profiler);
  profile::Profile p = profiler.profile(command, tags);
  if (options_.store_batch >= 2) {
    // Async-batching ingest: queue recordings and hand each full batch
    // to put_many (one lock per shard instead of one per profile). The
    // flush itself is shared with every other exit path
    // (flush_pending), so the tail of an interrupted run follows the
    // same exactly-once contract as a full batch.
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      if (pending_.empty()) oldest_pending_ = sys::steady_now();
      pending_.push_back(p);
      due = pending_.size() >= options_.store_batch;
      const double max_age = options_.store_options.flush_policy.max_age_s;
      if (!due && max_age > 0.0) {
        // Time trigger: a trickle of recordings must not let a partial
        // batch sit unstored beyond the configured age.
        due = sys::steady_now() - oldest_pending_ >= max_age;
      }
    }
    if (due) flush_pending();
    return p;
  }
  store_.put(p);
  // Persistence rides the store's background flush worker so repeated
  // recordings don't serialize on docstore writes; the store drains
  // pending flushes on destruction, and callers needing immediate
  // durability can still call store().flush().
  store_.flush_async();
  return p;
}

void Session::flush_pending() {
  std::vector<profile::Profile> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;
  std::vector<bool> stored;
  try {
    store_.put_many(batch, &stored);
  } catch (...) {
    // Exactly-once: re-queue precisely the profiles that did not land,
    // ahead of anything queued meanwhile, so a later flush retries them
    // in order without duplicating the ones put_many already wrote.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    std::vector<profile::Profile> keep;
    keep.reserve(batch.size() + pending_.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i >= stored.size() || !stored[i]) keep.push_back(std::move(batch[i]));
    }
    for (auto& p : pending_) keep.push_back(std::move(p));
    pending_ = std::move(keep);
    oldest_pending_ = sys::steady_now();
    throw;
  }
  store_.flush_async();
}

emulator::EmulationResult Session::emulate(
    const std::string& command, const std::vector<std::string>& tags) {
  // Batched recordings must be visible to the lookup below.
  flush_pending();
  // Shared snapshot, not a copy: repeated emulation of a hot workload
  // hits the store's decoded-profile cache and pays one refcount bump
  // per replay instead of a decode (or a deep Profile copy).
  const auto p = store_.find_latest_shared(command, tags);
  if (!p) {
    throw sys::ProfileNotFound("no profile stored for command '" + command +
                               "'");
  }
  emulator::Emulator emu(options_.emulator, options_.atom_registry);
  return emu.emulate(*p);
}

profile::Profile profile_once(const std::string& command,
                              const std::vector<std::string>& tags,
                              watchers::ProfilerOptions options) {
  watchers::Profiler profiler(std::move(options));
  return profiler.profile(command, tags);
}

emulator::EmulationResult emulate_profile(const profile::Profile& profile,
                                          emulator::EmulatorOptions options,
                                          const atoms::AtomRegistry* registry) {
  emulator::Emulator emu(std::move(options), registry);
  return emu.emulate(profile);
}

const char* version() { return "0.10.0-cpp"; }

}  // namespace synapse
