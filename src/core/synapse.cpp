#include "core/synapse.hpp"

#include "sys/error.hpp"

namespace synapse {

namespace {

profile::ProfileStore make_store(const SessionOptions& options) {
  if (options.store_backend == "memory") {
    return profile::ProfileStore(options.store_options);
  }
  if (options.store_backend == "docstore") {
    return profile::ProfileStore(profile::ProfileStore::Backend::DocStore,
                                 options.store_dir, options.store_options);
  }
  if (options.store_backend == "files") {
    return profile::ProfileStore(profile::ProfileStore::Backend::Files,
                                 options.store_dir, options.store_options);
  }
  throw sys::ConfigError("unknown store backend: " + options.store_backend);
}

}  // namespace

Session::Session(SessionOptions options)
    : options_(std::move(options)), store_(make_store(options_)) {}

Session::~Session() { flush_pending(); }

profile::Profile Session::profile(const std::string& command,
                                  const std::vector<std::string>& tags) {
  watchers::Profiler profiler(options_.profiler);
  profile::Profile p = profiler.profile(command, tags);
  if (options_.store_batch >= 2) {
    // Async-batching ingest: queue recordings and hand each full batch
    // to put_many (one lock per shard instead of one per profile).
    std::vector<profile::Profile> batch;
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      pending_.push_back(p);
      if (pending_.size() >= options_.store_batch) {
        batch.swap(pending_);
      }
    }
    if (!batch.empty()) {
      store_.put_many(batch);
      store_.flush_async();
    }
    return p;
  }
  store_.put(p);
  // Persistence rides the store's background flush worker so repeated
  // recordings don't serialize on docstore writes; the store drains
  // pending flushes on destruction, and callers needing immediate
  // durability can still call store().flush().
  store_.flush_async();
  return p;
}

void Session::flush_pending() {
  std::vector<profile::Profile> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;
  store_.put_many(batch);
  store_.flush_async();
}

emulator::EmulationResult Session::emulate(
    const std::string& command, const std::vector<std::string>& tags) {
  // Batched recordings must be visible to the lookup below.
  flush_pending();
  const auto p = store_.find_latest(command, tags);
  if (!p) {
    throw sys::ProfileNotFound("no profile stored for command '" + command +
                               "'");
  }
  emulator::Emulator emu(options_.emulator, options_.atom_registry);
  return emu.emulate(*p);
}

profile::Profile profile_once(const std::string& command,
                              const std::vector<std::string>& tags,
                              watchers::ProfilerOptions options) {
  watchers::Profiler profiler(std::move(options));
  return profiler.profile(command, tags);
}

emulator::EmulationResult emulate_profile(const profile::Profile& profile,
                                          emulator::EmulatorOptions options,
                                          const atoms::AtomRegistry* registry) {
  emulator::Emulator emu(std::move(options), registry);
  return emu.emulate(profile);
}

const char* version() { return "0.10.0-cpp"; }

}  // namespace synapse
