#pragma once
// synapse — the public API (paper section 4):
//
//   radical.synapse.profile(command, tags) -> synapse::profile(...)
//   radical.synapse.emulate(command, tags) -> synapse::emulate(...)
//
// A Session owns the profile store (file-backed, docstore-backed or
// in-memory) and the default profiler/emulator configuration. profile()
// runs and profiles the command, stores the profile, and returns it;
// emulate() looks the command+tags combination up in the store and
// replays the most recent profile on the active (virtual) resource.
//
// Everything the session does can also be done with the lower-level
// modules directly (watchers::Profiler, emulator::Emulator); the session
// is the convenience layer the command-line tools use.

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "emulator/emulator.hpp"
#include "profile/profile_store.hpp"
#include "watchers/profiler.hpp"

namespace synapse {

struct SessionOptions {
  /// Store backend: any name registered with the StoreBackendRegistry
  /// — built-ins "memory", "files", "docstore", "cluster", or a custom
  /// registration. Overrides store_options.backend.
  std::string store_backend = "files";
  /// Store directory for persistent backends. Overrides
  /// store_options.directory.
  std::string store_dir = ".synapse";
  /// Sharding/caching/flush knobs of the profile store (persistent
  /// backends keep the shard count they were created with; see
  /// ProfileStoreOptions). store_options.flush_policy drives the
  /// store's background worker (docstore backend): flush after
  /// max_pending writes or once the oldest write is max_age_s old.
  profile::ProfileStoreOptions store_options;
  /// Batch size for profile() recordings: >= 2 queues profiles and
  /// hands each full batch to ProfileStore::put_many + flush_async in
  /// one go (one lock per shard instead of one per profile — the
  /// async-batching ingest path); 1 stores each profile immediately.
  /// Queued profiles are flushed by flush_pending(), emulate(), and on
  /// destruction — and, when store_options.flush_policy.max_age_s is
  /// set, a partially filled batch is handed to the store as soon as a
  /// recording arrives after its oldest queued profile exceeded that
  /// age (so the same knob bounds staleness at both layers).
  size_t store_batch = 1;
  watchers::ProfilerOptions profiler;
  emulator::EmulatorOptions emulator;
  /// Atom registry emulation resolves atom names through (nullptr = the
  /// process-wide AtomRegistry::instance()); must outlive the session.
  const atoms::AtomRegistry* atom_registry = nullptr;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();  ///< flushes any batched profiles

  /// Profile `command`, store and return the profile. Repeated calls
  /// accumulate repetitions for statistics (ProfileStore::stats).
  /// Persistence is handed to the store's background flush worker
  /// (drained on Session destruction); call store().flush() to force
  /// immediate durability.
  profile::Profile profile(const std::string& command,
                           const std::vector<std::string>& tags = {});

  /// Emulate the latest stored profile for command+tags on the active
  /// resource. Throws sys::ProfileNotFound when nothing matches.
  emulator::EmulationResult emulate(const std::string& command,
                                    const std::vector<std::string>& tags = {});

  /// Hand any batched profiles (store_batch >= 2) to the store now
  /// (put_many + flush_async). Thread-safe; no-op when nothing pends.
  /// Exactly-once contract: when the store throws mid-batch, the
  /// profiles that did NOT land are re-queued (ahead of newer arrivals)
  /// before the exception propagates, so a later flush retries them
  /// without duplicating the ones that landed.
  void flush_pending();

  /// Direct access for advanced use.
  profile::ProfileStore& store() { return store_; }
  const SessionOptions& options() const { return options_; }

 private:
  SessionOptions options_;
  profile::ProfileStore store_;
  std::mutex pending_mutex_;
  std::vector<profile::Profile> pending_;  ///< batched recordings
  double oldest_pending_ = 0.0;  ///< steady-clock age anchor of pending_
};

/// One-shot helpers with default options (the basic usage mode shown in
/// the paper). Both use an in-memory store; `profile_once` returns the
/// profile so the caller can hand it to `emulate_profile`.
profile::Profile profile_once(const std::string& command,
                              const std::vector<std::string>& tags = {},
                              watchers::ProfilerOptions options = {});

emulator::EmulationResult emulate_profile(
    const profile::Profile& profile, emulator::EmulatorOptions options = {},
    const atoms::AtomRegistry* registry = nullptr);

/// Library version string ("0.10.0-cpp", after the reproduced v0.10).
const char* version();

}  // namespace synapse
