// synapse-emulate: command-line wrapper around Session::emulate and the
// scenario library.
//
// Usage:
//   synapse-emulate [--tag TAG]... [--store DIR] [--resource NAME]
//                   [--store-backend NAME] [--store-cluster SPEC.json]
//                   [--kernel NAME] [--omp N | --ranks N]
//                   [--atoms NAME[,NAME...]] [--net] [--replay-batch N]
//                   [--pace auto|off|on] [--replay-frames on|off]
//                   [--store-flush-ms MS] [--store-flush-max N]
//                   [--store-format json|binary]
//                   [--read-block KiB] [--write-block KiB] [--fs NAME]
//                   -- COMMAND [ARGS...]
//   synapse-emulate --scenario NAME|FILE [--profile] [tuning flags...]
//   synapse-emulate --list-scenarios
//
// --replay-batch >= 2 replays through the async batched pipeline
// (identical non-timing stats, amortized dispatch); --store-flush-ms /
// --store-flush-max set the store's FlushPolicy (age / size triggers
// for the background flush worker). --pace controls replay pacing by
// the recorded inter-sample gaps: auto (default) paces variable-rate
// (adaptively recorded) profiles only, on paces everything, off never.
//
// --profile runs the scenario's emulation under the profiler (watcher
// set from the scenario's `watchers` field) and stores the recorded
// profile as "scenario:<name>" — the profile-then-emulate round trip.
// The profiler's --scheduler (thread|multiplexed|adaptive) and gate
// flags (--gate-floor/--gate-burst/--gate-threshold/--gate-hold,
// --watcher-gate NAME=F:B:T:H) apply to such runs.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "atoms/atom_registry.hpp"
#include "core/cli_util.hpp"
#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "workload/scenario.hpp"

namespace {

/// One line per atom so scripts (and tests) can assert per-atom stats.
void print_atom_stats(const synapse::emulator::EmulationResult& result) {
  for (const auto& [atom, s] : result.atom_stats) {
    std::printf(
        "  atom %-10s samples=%llu cycles=%.3e flops=%.3e "
        "bytes r/w=%llu/%llu alloc/free=%llu/%llu net s/r=%llu/%llu\n",
        atom.c_str(), static_cast<unsigned long long>(s.samples_consumed),
        s.cycles, s.flops, static_cast<unsigned long long>(s.bytes_read),
        static_cast<unsigned long long>(s.bytes_written),
        static_cast<unsigned long long>(s.bytes_allocated),
        static_cast<unsigned long long>(s.bytes_freed),
        static_cast<unsigned long long>(s.net_bytes_sent),
        static_cast<unsigned long long>(s.net_bytes_received));
  }
}

int list_scenarios() {
  std::printf("%-18s %-28s %8s  %s\n", "name", "atoms", "samples",
              "description");
  for (const auto& s : synapse::workload::builtin_scenarios()) {
    std::string atoms;
    for (const auto& a : s.atom_set) {
      if (!atoms.empty()) atoms += ',';
      atoms += a;
    }
    std::printf("%-18s %-28s %8zu  %s\n", s.name.c_str(), atoms.c_str(),
                s.source.samples, s.description.c_str());
  }
  return 0;
}

int run_scenario_mode(const std::string& scenario_arg,
                      const synapse::SessionOptions& options,
                      bool profile_run) {
  using namespace synapse;
  const workload::ScenarioSpec spec =
      workload::resolve_scenario(scenario_arg);
  if (profile_run) {
    // Profile-then-emulate round trip: run the scenario's emulation in
    // a child with the profiler attached (watcher set from the
    // scenario's own `watchers` field) and store the recorded profile
    // so `synapse-emulate --store DIR -- scenario:<name>` replays it.
    const profile::Profile p =
        workload::profile_scenario(spec, options.profiler, options.emulator);
    Session session(options);
    session.store().put(p);
    session.store().flush();
    namespace m = synapse::metrics;
    std::printf("profiled scenario : %s (%d reps in one run)\n",
                spec.name.c_str(), spec.repetitions);
    std::printf("  Tx        : %.3f s\n", p.runtime());
    std::printf("  samples   : %zu\n", p.sample_count());
    std::printf("  net rx/tx : %.0f/%.0f\n", p.total(m::kNetBytesRead),
                p.total(m::kNetBytesWritten));
    std::printf("  stored as : %s (in %s)\n", p.command.c_str(),
                session.options().store_dir.c_str());
    return 0;
  }
  const auto run = workload::run_scenario(spec, options.emulator);
  std::printf("scenario : %s (%zu samples x %d reps)\n", spec.name.c_str(),
              spec.source.samples, run.repetitions);
  std::printf("  resource : %s\n", resource::active_resource().name.c_str());
  std::printf("  Tx       : %.3f s\n", run.result.wall_seconds);
  std::printf("  samples  : %zu\n", run.result.samples_replayed);
  print_atom_stats(run.result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace synapse;

  SessionOptions options;
  std::vector<std::string> tags;
  std::string command;
  std::string resource_name;
  std::string scenario;
  bool store_flag = false;
  bool backend_flag = false;
  bool profile_flag = false;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--tag") {
      tags.push_back(next());
    } else if (arg == "--store") {
      options.store_dir = next();
      store_flag = true;
    } else if (arg == "--store-backend") {
      // Any name registered with the StoreBackendRegistry ("files" is
      // the default); unknown names fail with a ConfigError listing
      // what is registered. The FlushPolicy flags only have a worker to
      // drive on buffering backends (docstore, cluster).
      options.store_backend = next();
      backend_flag = true;
    } else if (arg == "--store-cluster") {
      // Cluster-spec file for the multi-instance backend; implies
      // --store-backend cluster unless one was named explicitly.
      options.store_options.cluster_spec = next();
      if (options.store_options.cluster_spec.empty()) {
        std::fprintf(stderr,
                     "synapse-emulate: --store-cluster needs a spec file\n");
        return 2;
      }
      if (!backend_flag) options.store_backend = "cluster";
    } else if (arg == "--store-format") {
      // Profile encoding for new writes: "binary" (SYNB, the default
      // for new stores) or "json". Reopened stores keep their recorded
      // format unless this overrides it; reads sniff, so mixing is fine.
      options.store_options.format = next();
      if (options.store_options.format != "json" &&
          options.store_options.format != "binary") {
        std::fprintf(stderr,
                     "synapse-emulate: --store-format wants json or binary, "
                     "got '%s'\n",
                     options.store_options.format.c_str());
        return 2;
      }
    } else if (arg == "--list-store-backends") {
      return cli::list_store_backends();
    } else if (arg == "--resource") {
      resource_name = next();
    } else if (arg == "--kernel") {
      options.emulator.compute.kernel = next();
    } else if (arg == "--omp") {
      options.emulator.parallel_mode = emulator::ParallelMode::OpenMp;
      options.emulator.parallel_degree = std::atoi(next());
    } else if (arg == "--ranks") {
      options.emulator.parallel_mode = emulator::ParallelMode::Process;
      options.emulator.parallel_degree = std::atoi(next());
    } else if (arg == "--atoms") {
      options.emulator.atom_set = cli::split_name_list(next());
      if (options.emulator.atom_set.empty()) {
        // An explicit-but-empty list must not silently fall back to
        // the full default set — the opposite of the user's intent.
        std::fprintf(stderr,
                     "synapse-emulate: --atoms needs at least one name\n");
        return 2;
      }
    } else if (arg == "--net") {
      options.emulator.emulate_network = true;
    } else if (arg == "--replay-batch") {
      const long n = std::atol(next());
      if (n < 1) {
        std::fprintf(stderr,
                     "synapse-emulate: --replay-batch needs a batch size "
                     ">= 1\n");
        return 2;
      }
      options.emulator.replay_batch = static_cast<size_t>(n);
    } else if (arg == "--pace") {
      try {
        options.emulator.pace = emulator::replay_pace_from_string(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "synapse-emulate: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--replay-frames") {
      const std::string mode = next();
      if (mode == "on") {
        options.emulator.replay_frames = true;
      } else if (mode == "off") {
        options.emulator.replay_frames = false;
      } else {
        std::fprintf(stderr,
                     "synapse-emulate: --replay-frames expects on or off "
                     "(got '%s')\n",
                     mode.c_str());
        return 2;
      }
    } else if (arg == "--scheduler") {
      try {
        options.profiler.scheduler =
            watchers::scheduler_mode_from_string(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "synapse-emulate: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--gate-floor") {
      options.profiler.gate.floor_hz = std::atof(next());
    } else if (arg == "--gate-burst") {
      options.profiler.gate.burst_hz = std::atof(next());
    } else if (arg == "--gate-threshold") {
      options.profiler.gate.open_threshold = std::atof(next());
    } else if (arg == "--gate-hold") {
      options.profiler.gate.close_hold_s = std::atof(next());
    } else if (arg == "--watcher-gate") {
      const std::string spec = next();
      std::string name;
      watchers::GateParams gate;
      if (!cli::parse_gate_spec(spec, name, gate)) {
        std::fprintf(stderr,
                     "synapse-emulate: --watcher-gate expects "
                     "NAME=FLOOR:BURST:THRESHOLD:HOLD (got '%s')\n",
                     spec.c_str());
        return 2;
      }
      options.profiler.watcher_gates[name] = gate;
    } else if (arg == "--store-flush-ms") {
      const double ms = std::atof(next());
      if (ms <= 0.0) {
        std::fprintf(stderr,
                     "synapse-emulate: --store-flush-ms needs a positive "
                     "duration in milliseconds\n");
        return 2;
      }
      options.store_options.flush_policy.max_age_s = ms / 1000.0;
    } else if (arg == "--store-flush-max") {
      const long n = std::atol(next());
      if (n < 1) {
        std::fprintf(stderr,
                     "synapse-emulate: --store-flush-max needs a pending-"
                     "write count >= 1\n");
        return 2;
      }
      options.store_options.flush_policy.max_pending =
          static_cast<size_t>(n);
    } else if (arg == "--store-threads") {
      const long n = std::atol(next());
      if (n < 0) {
        std::fprintf(stderr,
                     "synapse-emulate: --store-threads needs a thread "
                     "count >= 0 (0 = shared pool)\n");
        return 2;
      }
      options.store_options.threads = static_cast<size_t>(n);
    } else if (arg == "--store-cache-mb") {
      const long mb = std::atol(next());
      if (mb < 0) {
        std::fprintf(stderr,
                     "synapse-emulate: --store-cache-mb needs a budget "
                     ">= 0 MiB\n");
        return 2;
      }
      options.store_options.cache_max_bytes =
          static_cast<size_t>(mb) * 1024 * 1024;
    } else if (arg == "--scenario") {
      scenario = next();
      if (scenario.empty()) {
        std::fprintf(stderr,
                     "synapse-emulate: --scenario needs a name or file\n");
        return 2;
      }
    } else if (arg == "--list-scenarios") {
      return list_scenarios();
    } else if (arg == "--profile") {
      profile_flag = true;
    } else if (arg == "--read-block") {
      options.emulator.storage.read_block_bytes =
          std::strtoull(next(), nullptr, 10) * 1024;
    } else if (arg == "--write-block") {
      options.emulator.storage.write_block_bytes =
          std::strtoull(next(), nullptr, 10) * 1024;
    } else if (arg == "--fs") {
      options.emulator.storage.filesystem = next();
    } else if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "synapse-emulate [--tag TAG]... [--store DIR] [--resource NAME]\n"
          "                [--store-backend NAME | --list-store-backends]\n"
          "                [--store-cluster SPEC.json]\n"
          "                [--kernel asm|c|omp|sleep] [--omp N | --ranks N]\n"
          "                [--atoms NAME[,NAME...]] [--net]\n"
          "                [--replay-batch N] (N >= 2: async batched replay\n"
          "                 pipeline; same non-timing stats)\n"
          "                [--pace auto|off|on] (pace replay by recorded\n"
          "                 inter-sample gaps; auto = variable-rate only)\n"
          "                [--replay-frames on|off] (compiled columnar\n"
          "                 replay plan; off = legacy map-based feed)\n"
          "                [--store-flush-ms MS] [--store-flush-max N]\n"
          "                (store FlushPolicy: docstore background flush\n"
          "                 by age/size)\n"
          "                [--store-threads N] (cross-shard store "
          "parallelism;\n"
          "                 0 = shared pool, 1 = serial)\n"
          "                [--store-cache-mb MB] (decoded-profile cache "
          "byte\n"
          "                 budget; 0 = unbounded)\n"
          "                [--store-format json|binary] (encoding for new\n"
          "                 writes; new stores default to binary SYNB)\n"
          "                [--read-block KiB] [--write-block KiB]\n"
          "                [--fs NAME] -- COMMAND...\n"
          "synapse-emulate --scenario NAME|FILE [--profile] [tuning...]\n"
          "                (--profile records the scenario run through the\n"
          "                 profiler and stores it as scenario:<name>;\n"
          "                 [--scheduler thread|multiplexed|adaptive]\n"
          "                 [--gate-floor HZ] [--gate-burst HZ]\n"
          "                 [--gate-threshold X] [--gate-hold S]\n"
          "                 [--watcher-gate NAME=F:B:T:H] tune it)\n"
          "synapse-emulate --list-scenarios\n"
          "registered atoms:");
      for (const auto& name : synapse::atoms::AtomRegistry::instance().names()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      return 0;
    } else {
      std::fprintf(stderr, "synapse-emulate: unknown option %s\n",
                   arg.c_str());
      return 2;
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }
  if (command.empty() && scenario.empty()) {
    std::fprintf(stderr,
                 "synapse-emulate: no command given (use -- or --scenario)\n");
    return 2;
  }
  if (!command.empty() && !scenario.empty()) {
    // Running a scenario would silently ignore the command (and any
    // store lookup the user expected for it); refuse the ambiguity.
    std::fprintf(stderr,
                 "synapse-emulate: --scenario and -- COMMAND are mutually "
                 "exclusive\n");
    return 2;
  }

  // An explicit --atoms list overrides the enable flags, so honour
  // --net by appending the network atom to it.
  auto& atom_set = options.emulator.atom_set;
  if (options.emulator.emulate_network && !atom_set.empty() &&
      std::find(atom_set.begin(), atom_set.end(), "network") ==
          atom_set.end()) {
    atom_set.push_back("network");
  }

  if (!resource_name.empty()) {
    resource::activate_resource(resource_name);
  }

  if (profile_flag && scenario.empty()) {
    std::fprintf(stderr,
                 "synapse-emulate: --profile only applies to --scenario "
                 "runs\n");
    return 2;
  }

  if (!scenario.empty()) {
    // Plain scenario runs synthesize their own samples and neither read
    // nor write the profile store; say so instead of silently ignoring
    // these flags. With --profile the store is the destination and the
    // profile carries the scenario's own tags.
    if (!profile_flag && (store_flag || !tags.empty())) {
      std::fprintf(stderr,
                   "synapse-emulate: note: --store/--tag have no effect "
                   "with --scenario (scenarios do not touch the store)\n");
    }
    if (profile_flag && !tags.empty()) {
      std::fprintf(stderr,
                   "synapse-emulate: note: --profile stores the scenario's "
                   "own tags; --tag is ignored\n");
    }
    try {
      return run_scenario_mode(scenario, options, profile_flag);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "synapse-emulate: %s\n", e.what());
      return 1;
    }
  }

  try {
    Session session(options);
    const auto result = session.emulate(command, tags);
    std::printf("emulated: %s\n", command.c_str());
    std::printf("  resource : %s\n",
                resource::active_resource().name.c_str());
    std::printf("  Tx       : %.3f s\n", result.wall_seconds);
    std::printf("  samples  : %zu\n", result.samples_replayed);
    std::printf("  cycles   : %.3e\n", result.compute.cycles);
    std::printf("  flops    : %.3e\n", result.compute.flops);
    std::printf("  bytes out: %llu\n",
                static_cast<unsigned long long>(result.storage.bytes_written));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synapse-emulate: %s\n", e.what());
    return 1;
  }
}
