// synapse-inspect: examine a profile store.
//
// Subcommands:
//   list                       every stored profile: format, size, identity
//   show    -- COMMAND         totals + derived of the latest profile
//   stats   -- COMMAND         mean/stddev/CI99 across repetitions
//   diff    -- COMMAND         latest vs previous profile, diff% per total
//   export  FILE -- COMMAND    totals CSV of all repetitions
//   export-series FILE -- CMD  tidy per-sample CSV of the latest profile
//
// Options before the subcommand: --store DIR (default .synapse),
// --tag TAG (repeatable), --store-cluster SPEC.json (cluster stores:
// override the persisted instance roots), --convert json|binary
// (re-encode every stored profile in place and record the format in
// the store meta; runs on its own, no subcommand needed), --stats
// (after the subcommand, report the store backend by registry name,
// the write format, per-format stored counts and the read cache
// counters the run accumulated).
//
// The store opens with whatever backend its meta file records
// (ProfileStore::detect_backend); a meta naming an unregistered
// backend is a hard error listing what is registered. Reads sniff each
// profile's stored bytes, so mixed-format stores inspect fine.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "profile/export.hpp"
#include "profile/profile_store.hpp"
#include "profile/stats.hpp"

using synapse::profile::Profile;
using synapse::profile::ProfileStore;

namespace {

int cmd_list(const ProfileStore& store, const std::string& dir) {
  std::printf("store: %s (backend %s, writes %s)\n", dir.c_str(),
              store.backend().c_str(), store.format().c_str());
  auto entries = store.list();
  if (entries.empty()) {
    std::printf("(no profiles)\n");
    return 0;
  }
  std::sort(entries.begin(), entries.end(),
            [](const synapse::profile::StoredProfileEntry& a,
               const synapse::profile::StoredProfileEntry& b) {
              if (a.command != b.command) return a.command < b.command;
              return a.created_at < b.created_at;
            });
  std::printf("%-7s %12s  %s\n", "format", "bytes", "command [tags]");
  std::map<std::string, size_t> by_format;
  for (const auto& e : entries) {
    ++by_format[e.format];
    std::string tags;
    for (const auto& t : e.tags) {
      tags += tags.empty() ? " [" : ", ";
      tags += t;
    }
    if (!tags.empty()) tags += ']';
    std::printf("%-7s %12zu  %s%s\n", e.format.c_str(), e.encoded_bytes,
                e.command.c_str(), tags.c_str());
  }
  std::string breakdown;
  for (const auto& [format, n] : by_format) {
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += std::to_string(n) + " " + format;
  }
  std::printf("%zu profiles (%s)\n", entries.size(), breakdown.c_str());
  return 0;
}

void print_profile(const Profile& p) {
  std::printf("command      : %s\n", p.command.c_str());
  std::string tags;
  for (const auto& t : p.tags) {
    if (!tags.empty()) tags += ", ";
    tags += t;
  }
  std::printf("tags         : %s\n", tags.c_str());
  std::printf("resource     : %s\n", p.system.resource_name.c_str());
  std::printf("sample rate  : %.1f Hz\n", p.sample_rate_hz);
  std::printf("samples      : %zu\n", p.sample_count());
  std::printf("series:\n");
  for (const auto& ts : p.series) {
    // Per-series rates may diverge from the profile-level rate
    // (WatcherConfig::rate_overrides); 0 means "not recorded".
    const double rate =
        ts.sample_rate_hz > 0 ? ts.sample_rate_hz : p.sample_rate_hz;
    if (ts.variable_rate) {
      // Adaptively recorded: the nominal rate is just the burst ceiling,
      // so show the realized spacing instead.
      const auto gaps = ts.gap_stats();
      std::printf(
          "  %-10s %6zu samples, variable rate (eff %.1f Hz, "
          "gap min/mean/max %.3f/%.3f/%.3f s)\n",
          ts.watcher.c_str(), ts.size(), ts.effective_rate_hz(), gaps.min_s,
          gaps.mean_s, gaps.max_s);
    } else {
      std::printf("  %-10s %6zu samples @ %.1f Hz\n", ts.watcher.c_str(),
                  ts.size(), rate);
    }
  }
  std::printf("totals:\n");
  for (const auto& [metric, value] : p.totals) {
    std::printf("  %-36s %.6g\n", metric.c_str(), value);
  }
  if (!p.derived.empty()) {
    std::printf("derived:\n");
    for (const auto& [metric, value] : p.derived) {
      std::printf("  %-36s %.6g\n", metric.c_str(), value);
    }
  }
}

int cmd_show(const ProfileStore& store, const std::string& command,
             const std::vector<std::string>& tags) {
  const auto p = store.find_latest(command, tags);
  if (!p) {
    std::fprintf(stderr, "no profile for '%s'\n", command.c_str());
    return 1;
  }
  print_profile(*p);
  return 0;
}

int cmd_stats(const ProfileStore& store, const std::string& command,
              const std::vector<std::string>& tags) {
  const auto profiles = store.find(command, tags);
  if (profiles.empty()) {
    std::fprintf(stderr, "no profile for '%s'\n", command.c_str());
    return 1;
  }
  std::printf("repetitions: %zu\n", profiles.size());
  std::printf("%-36s %12s %12s %8s\n", "metric", "mean", "stddev",
              "ci99%%");
  for (const auto& [metric, s] : store.stats(command, tags)) {
    std::printf("%-36s %12.6g %12.6g %7.2f%%\n", metric.c_str(), s.mean,
                s.stddev, 100.0 * s.ci99_relative());
  }
  return 0;
}

/// --stats: the backend (by registry name), layout, and the read-cache
/// counters accumulated by the queries this invocation ran.
void print_store_stats(const ProfileStore& store) {
  const auto cache = store.cache_stats();
  std::printf("store stats:\n");
  std::printf("  backend             : %s\n", store.backend().c_str());
  std::printf("  write format        : %s\n", store.format().c_str());
  // What is actually at rest may mix formats (conversion, legacy data):
  // count per format across all shards.
  std::map<std::string, size_t> by_format;
  for (const auto& e : store.list()) ++by_format[e.format];
  for (const auto& [format, n] : by_format) {
    std::printf("  stored %-12s : %zu profiles\n", format.c_str(), n);
  }
  std::printf("  shards              : %zu\n", store.shard_count());
  std::printf("  store threads       : %zu\n", store.task_threads());
  // Per-instance shard placement (the cluster backend reports one
  // instance per shard; single-instance backends have no such field).
  std::map<std::string, size_t> instances;
  for (const auto& meta : store.shard_meta()) {
    const std::string instance = meta.get_or("instance", std::string());
    if (!instance.empty()) ++instances[instance];
  }
  for (const auto& [name, shards] : instances) {
    std::printf("  instance %-10s : %zu shards\n", name.c_str(), shards);
  }
  std::printf("  cache hits          : %llu\n",
              static_cast<unsigned long long>(cache.hits));
  std::printf("  cache misses        : %llu\n",
              static_cast<unsigned long long>(cache.misses));
  std::printf("  cache invalidations : %llu\n",
              static_cast<unsigned long long>(cache.invalidations));
  std::printf("  cache bytes         : %llu\n",
              static_cast<unsigned long long>(cache.bytes));
}

int cmd_diff(const ProfileStore& store, const std::string& command,
             const std::vector<std::string>& tags) {
  const auto profiles = store.find(command, tags);
  if (profiles.size() < 2) {
    std::fprintf(stderr, "need at least two profiles of '%s' to diff\n",
                 command.c_str());
    return 1;
  }
  const Profile& prev = profiles[profiles.size() - 2];
  const Profile& last = profiles.back();
  std::printf("%-36s %12s %12s %8s\n", "metric", "previous", "latest",
              "diff%%");
  std::set<std::string> metrics;
  for (const auto& [k, v] : prev.totals) metrics.insert(k);
  for (const auto& [k, v] : last.totals) metrics.insert(k);
  for (const auto& metric : metrics) {
    const double a = prev.total(metric);
    const double b = last.total(metric);
    const double diff = a != 0 ? 100.0 * (b - a) / a : 0.0;
    std::printf("%-36s %12.6g %12.6g %+7.2f%%\n", metric.c_str(), a, b,
                diff);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir = ".synapse";
  std::string cluster_spec;
  std::string convert_format;
  std::vector<std::string> tags;
  std::string subcommand;
  std::string export_path;
  std::string command;
  bool stats_flag = false;
  size_t store_threads = 0;
  long store_cache_mb = -1;  ///< -1 = keep the store default

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--store-cluster") {
      cluster_spec = next();
    } else if (arg == "--convert") {
      convert_format = next();
      if (convert_format != "json" && convert_format != "binary") {
        std::fprintf(stderr,
                     "synapse-inspect: --convert wants json or binary, got "
                     "'%s'\n",
                     convert_format.c_str());
        return 2;
      }
    } else if (arg == "--stats") {
      stats_flag = true;
    } else if (arg == "--store-threads") {
      const long n = std::atol(next());
      if (n < 0) {
        std::fprintf(stderr,
                     "synapse-inspect: --store-threads needs a thread "
                     "count >= 0 (0 = shared pool)\n");
        return 2;
      }
      store_threads = static_cast<size_t>(n);
    } else if (arg == "--store-cache-mb") {
      const long mb = std::atol(next());
      if (mb < 0) {
        std::fprintf(stderr,
                     "synapse-inspect: --store-cache-mb needs a budget "
                     ">= 0 MiB\n");
        return 2;
      }
      store_cache_mb = mb;
    } else if (arg == "--tag") {
      tags.push_back(next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "synapse-inspect [--store DIR] [--store-cluster SPEC.json]\n"
          "                [--convert json|binary] [--tag TAG]... [--stats]\n"
          "                [--store-threads N] (cross-shard parallelism;\n"
          "                 0 = shared pool, 1 = serial)\n"
          "                [--store-cache-mb MB] (decoded-profile cache\n"
          "                 byte budget; 0 = unbounded)\n"
          "                [SUBCOMMAND]\n"
          "  list | show -- CMD | stats -- CMD | diff -- CMD\n"
          "  export FILE -- CMD | export-series FILE -- CMD\n"
          "  (--convert re-encodes every stored profile in place and\n"
          "   records the format in the store meta; runs without a\n"
          "   subcommand. --stats appends the store backend name, write\n"
          "   format, per-format counts, shard/instance layout and\n"
          "   read-cache counters)\n");
      return 0;
    } else if (subcommand.empty()) {
      subcommand = arg;
      if (subcommand == "export" || subcommand == "export-series") {
        export_path = next();
      }
    } else if (arg == "--") {
      ++i;
      break;
    } else {
      std::fprintf(stderr, "synapse-inspect: unexpected argument %s\n",
                   arg.c_str());
      return 2;
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }

  if (subcommand.empty() && convert_format.empty()) {
    std::fprintf(stderr, "synapse-inspect: no subcommand (try --help)\n");
    return 2;
  }

  try {
    // Open with the backend the store was created with (the meta file
    // records its registered name): hard-coding "files" here used to
    // make every docstore-backed store uninspectable. Cluster stores
    // reopen from their persisted placement; --store-cluster overrides
    // the instance roots when they moved.
    synapse::profile::ProfileStoreOptions store_options;
    store_options.backend = ProfileStore::detect_backend(store_dir);
    store_options.directory = store_dir;
    store_options.cluster_spec = cluster_spec;
    // --convert: the explicit format override makes new writes use the
    // target encoding; convert_all() below then rewrites what is stored.
    store_options.format = convert_format;
    store_options.threads = store_threads;
    if (store_cache_mb >= 0) {
      store_options.cache_max_bytes =
          static_cast<size_t>(store_cache_mb) * 1024 * 1024;
    }
    if (!cluster_spec.empty() && store_options.backend != "cluster") {
      // Dropping an explicitly given spec would hide a mistyped
      // --store path (a fresh directory detects as "files") behind an
      // empty-looking store.
      std::fprintf(stderr,
                   "synapse-inspect: --store-cluster given, but '%s' is a "
                   "%s store, not a cluster store\n",
                   store_dir.c_str(), store_options.backend.c_str());
      return 2;
    }
    ProfileStore store(std::move(store_options));

    if (!convert_format.empty()) {
      const size_t rewritten = store.convert_all();
      std::printf("converted %zu profiles in %s to %s\n", rewritten,
                  store_dir.c_str(), convert_format.c_str());
      if (subcommand.empty()) {
        if (stats_flag) print_store_stats(store);
        return 0;
      }
    }

    int rc = 2;
    if (subcommand == "list") {
      rc = cmd_list(store, store_dir);
    } else if (command.empty()) {
      std::fprintf(stderr, "synapse-inspect: missing -- COMMAND\n");
      return 2;
    } else if (subcommand == "show") {
      rc = cmd_show(store, command, tags);
    } else if (subcommand == "stats") {
      rc = cmd_stats(store, command, tags);
    } else if (subcommand == "diff") {
      rc = cmd_diff(store, command, tags);
    } else if (subcommand == "export") {
      const auto profiles = store.find(command, tags);
      if (profiles.empty()) {
        std::fprintf(stderr, "no profile for '%s'\n", command.c_str());
        return 1;
      }
      synapse::profile::write_file(
          export_path, synapse::profile::totals_to_csv(profiles));
      std::printf("wrote %zu profiles to %s\n", profiles.size(),
                  export_path.c_str());
      rc = 0;
    } else if (subcommand == "export-series") {
      const auto p = store.find_latest(command, tags);
      if (!p) {
        std::fprintf(stderr, "no profile for '%s'\n", command.c_str());
        return 1;
      }
      synapse::profile::write_file(export_path,
                                   synapse::profile::series_to_csv(*p));
      std::printf("wrote series to %s\n", export_path.c_str());
      rc = 0;
    } else {
      std::fprintf(stderr, "synapse-inspect: unknown subcommand %s\n",
                   subcommand.c_str());
      return 2;
    }
    // After the subcommand, so the counters reflect the queries it ran.
    if (stats_flag) print_store_stats(store);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synapse-inspect: %s\n", e.what());
    return 1;
  }
}
