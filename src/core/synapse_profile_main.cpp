// synapse-profile: command-line wrapper around Session::profile
// (the paper ships "a set of command line tools which are wrappers
// around certain configurations ... of the profile and emulate methods").
//
// Usage:
//   synapse-profile [--rate HZ] [--tag TAG]... [--store DIR]
//                   [--store-backend NAME] [--store-cluster SPEC.json]
//                   [--watchers LIST] [--watcher-rate NAME=HZ]...
//                   [--scheduler thread|multiplexed|adaptive]
//                   [--gate-floor HZ] [--gate-burst HZ]
//                   [--gate-threshold X] [--gate-hold S]
//                   [--watcher-gate NAME=FLOOR:BURST:THRESHOLD:HOLD]...
//                   [--store-batch N]
//                   [--store-flush-ms MS] [--store-flush-max N]
//                   [--store-threads N] [--store-cache-mb MB]
//                   [--store-format json|binary]
//                   [--resource NAME] -- COMMAND [ARGS...]
//   synapse-profile --list-watchers | --list-store-backends
//
// The gate flags shape --scheduler adaptive (edge-triggered sampling):
// closed gates poll at FLOOR Hz, an activity delta above THRESHOLD
// opens the gate to BURST Hz (0 = the watcher's sampling rate), and
// HOLD seconds of quiet closes it again. The recorded series are
// variable-rate: their timestamps carry the effective rate trajectory.
//
// --store-flush-ms / --store-flush-max set the store's FlushPolicy:
// the background worker flushes once the oldest unflushed write is MS
// old or N writes accumulated, and a partially filled --store-batch is
// handed to the store once it exceeds the same age.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/cli_util.hpp"
#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "watchers/watcher_registry.hpp"

namespace {

int list_watchers() {
  using synapse::watchers::WatcherRegistry;
  const auto& defaults = WatcherRegistry::default_set();
  std::printf("%-10s %s\n", "name", "attached by default");
  for (const auto& name : WatcherRegistry::instance().names()) {
    const bool dflt = std::find(defaults.begin(), defaults.end(), name) !=
                      defaults.end();
    std::printf("%-10s %s\n", name.c_str(), dflt ? "yes" : "no");
  }
  std::printf(
      "\nnote: 'net' attributes system-wide /proc/net/dev deltas to the\n"
      "profiled process (accurate when it dominates traffic); opt in\n"
      "with --watchers ...,net\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace synapse;

  SessionOptions options;
  std::vector<std::string> tags;
  std::string command;
  std::string resource_name;
  bool backend_flag = false;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--rate") {
      options.profiler.sample_rate_hz = std::atof(next());
    } else if (arg == "--tag") {
      tags.push_back(next());
    } else if (arg == "--store") {
      options.store_dir = next();
    } else if (arg == "--store-backend") {
      // Any name registered with the StoreBackendRegistry ("files" is
      // the default); unknown names fail with a ConfigError listing
      // what is registered. The FlushPolicy flags below only have a
      // worker to drive on buffering backends (docstore, cluster).
      options.store_backend = next();
      backend_flag = true;
    } else if (arg == "--store-cluster") {
      // Cluster-spec file for the multi-instance backend; implies
      // --store-backend cluster unless one was named explicitly.
      options.store_options.cluster_spec = next();
      if (options.store_options.cluster_spec.empty()) {
        std::fprintf(stderr,
                     "synapse-profile: --store-cluster needs a spec file\n");
        return 2;
      }
      if (!backend_flag) options.store_backend = "cluster";
    } else if (arg == "--store-format") {
      // Profile encoding for new writes: "binary" (SYNB, the default
      // for new stores) or "json". Reopened stores keep their recorded
      // format unless this overrides it; reads sniff, so mixing is fine.
      options.store_options.format = next();
      if (options.store_options.format != "json" &&
          options.store_options.format != "binary") {
        std::fprintf(stderr,
                     "synapse-profile: --store-format wants json or binary, "
                     "got '%s'\n",
                     options.store_options.format.c_str());
        return 2;
      }
    } else if (arg == "--list-store-backends") {
      return cli::list_store_backends();
    } else if (arg == "--resource") {
      resource_name = next();
    } else if (arg == "--adaptive") {
      options.profiler.adaptive = true;
    } else if (arg == "--watchers") {
      options.profiler.watcher_set = cli::split_name_list(next());
      if (options.profiler.watcher_set.empty()) {
        // An explicit-but-empty list must not silently fall back to
        // the default set — the opposite of the user's intent.
        std::fprintf(stderr,
                     "synapse-profile: --watchers needs at least one name\n");
        return 2;
      }
    } else if (arg == "--list-watchers") {
      return list_watchers();
    } else if (arg == "--watcher-rate") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      const double hz =
          eq == std::string::npos ? 0.0 : std::atof(spec.c_str() + eq + 1);
      if (eq == std::string::npos || eq == 0 || hz <= 0.0) {
        std::fprintf(stderr,
                     "synapse-profile: --watcher-rate expects NAME=HZ "
                     "with HZ > 0 (got '%s')\n",
                     spec.c_str());
        return 2;
      }
      options.profiler.watcher_rates[spec.substr(0, eq)] = hz;
    } else if (arg == "--scheduler") {
      try {
        options.profiler.scheduler =
            watchers::scheduler_mode_from_string(next());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "synapse-profile: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--gate-floor") {
      options.profiler.gate.floor_hz = std::atof(next());
    } else if (arg == "--gate-burst") {
      options.profiler.gate.burst_hz = std::atof(next());
    } else if (arg == "--gate-threshold") {
      options.profiler.gate.open_threshold = std::atof(next());
    } else if (arg == "--gate-hold") {
      options.profiler.gate.close_hold_s = std::atof(next());
    } else if (arg == "--watcher-gate") {
      const std::string spec = next();
      std::string name;
      watchers::GateParams gate;
      if (!cli::parse_gate_spec(spec, name, gate)) {
        std::fprintf(stderr,
                     "synapse-profile: --watcher-gate expects "
                     "NAME=FLOOR:BURST:THRESHOLD:HOLD (got '%s')\n",
                     spec.c_str());
        return 2;
      }
      options.profiler.watcher_gates[name] = gate;
    } else if (arg == "--store-batch") {
      options.store_batch = std::strtoull(next(), nullptr, 10);
      if (options.store_batch == 0) options.store_batch = 1;
    } else if (arg == "--store-flush-ms") {
      const double ms = std::atof(next());
      if (ms <= 0.0) {
        std::fprintf(stderr,
                     "synapse-profile: --store-flush-ms needs a positive "
                     "duration in milliseconds\n");
        return 2;
      }
      options.store_options.flush_policy.max_age_s = ms / 1000.0;
    } else if (arg == "--store-flush-max") {
      const long n = std::atol(next());
      if (n < 1) {
        std::fprintf(stderr,
                     "synapse-profile: --store-flush-max needs a pending-"
                     "write count >= 1\n");
        return 2;
      }
      options.store_options.flush_policy.max_pending =
          static_cast<size_t>(n);
    } else if (arg == "--store-threads") {
      // Cross-shard store parallelism: 0 = process-wide sys::TaskPool
      // (default), 1 = serial, N = private pool of N threads.
      const long n = std::atol(next());
      if (n < 0) {
        std::fprintf(stderr,
                     "synapse-profile: --store-threads needs a thread "
                     "count >= 0 (0 = shared pool)\n");
        return 2;
      }
      options.store_options.threads = static_cast<size_t>(n);
    } else if (arg == "--store-cache-mb") {
      // Decoded-profile cache budget in MiB; 0 removes the byte bound
      // (the per-shard entry count still applies).
      const long mb = std::atol(next());
      if (mb < 0) {
        std::fprintf(stderr,
                     "synapse-profile: --store-cache-mb needs a budget "
                     ">= 0 MiB\n");
        return 2;
      }
      options.store_options.cache_max_bytes =
          static_cast<size_t>(mb) * 1024 * 1024;
    } else if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "synapse-profile [--rate HZ] [--tag TAG]... [--store DIR]\n"
          "                [--store-backend NAME] (registered backend; see\n"
          "                 --list-store-backends)\n"
          "                [--store-cluster SPEC.json] (multi-instance\n"
          "                 cluster backend; implies --store-backend "
          "cluster)\n"
          "                [--watchers LIST] [--watcher-rate NAME=HZ]...\n"
          "                [--scheduler thread|multiplexed|adaptive]\n"
          "                [--gate-floor HZ] [--gate-burst HZ]\n"
          "                [--gate-threshold X] [--gate-hold S]\n"
          "                (adaptive-gate defaults: closed gates poll at\n"
          "                 FLOOR Hz, an edge above THRESHOLD bursts at\n"
          "                 BURST Hz, HOLD s of quiet closes again)\n"
          "                [--watcher-gate NAME=FLOOR:BURST:THRESHOLD:HOLD]\n"
          "                (per-watcher gate override)\n"
          "                [--store-batch N]\n"
          "                [--store-flush-ms MS] [--store-flush-max N]\n"
          "                (store FlushPolicy: background flush by\n"
          "                 age/size on buffering backends)\n"
          "                [--store-threads N] (cross-shard store "
          "parallelism;\n"
          "                 0 = shared pool, 1 = serial)\n"
          "                [--store-cache-mb MB] (decoded-profile cache "
          "byte\n"
          "                 budget; 0 = unbounded)\n"
          "                [--store-format json|binary] (encoding for new\n"
          "                 writes; new stores default to binary SYNB)\n"
          "                [--resource NAME] [--adaptive] -- COMMAND...\n"
          "synapse-profile --list-watchers | --list-store-backends\n");
      return 0;
    } else {
      std::fprintf(stderr, "synapse-profile: unknown option %s\n",
                   arg.c_str());
      return 2;
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }
  if (command.empty()) {
    std::fprintf(stderr, "synapse-profile: no command given (use --)\n");
    return 2;
  }

  // A rate override for a watcher that will not run is a typo, not a
  // no-op: diagnose it with the same loudness as an unknown --watchers
  // name.
  {
    const auto set =
        watchers::Profiler(options.profiler).effective_watcher_set();
    for (const auto& [name, hz] : options.profiler.watcher_rates) {
      if (std::find(set.begin(), set.end(), name) == set.end()) {
        std::fprintf(stderr,
                     "synapse-profile: --watcher-rate names '%s', which is "
                     "not in the watcher set (running:",
                     name.c_str());
        for (const auto& w : set) std::fprintf(stderr, " %s", w.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
    for (const auto& [name, gate] : options.profiler.watcher_gates) {
      if (std::find(set.begin(), set.end(), name) == set.end()) {
        std::fprintf(stderr,
                     "synapse-profile: --watcher-gate names '%s', which is "
                     "not in the watcher set (running:",
                     name.c_str());
        for (const auto& w : set) std::fprintf(stderr, " %s", w.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
  }

  if (!resource_name.empty()) {
    resource::activate_resource(resource_name);
  }

  try {
    Session session(options);
    const profile::Profile p = session.profile(command, tags);

    namespace m = synapse::metrics;
    std::printf("profiled: %s\n", command.c_str());
    std::printf("  resource    : %s\n", p.system.resource_name.c_str());
    std::printf("  Tx          : %.3f s\n", p.runtime());
    std::printf("  samples     : %zu\n", p.sample_count());
    std::printf("  cycles      : %.3e\n", p.total(m::kCyclesUsed));
    std::printf("  instructions: %.3e\n", p.total(m::kInstructions));
    std::printf("  bytes read  : %.0f\n", p.total(m::kBytesRead));
    std::printf("  bytes written: %.0f\n", p.total(m::kBytesWritten));
    std::printf("  peak RSS    : %.0f\n", p.total(m::kMemPeak));
    if (p.find_series("net") != nullptr) {
      std::printf("  net rx/tx   : %.0f/%.0f\n", p.total(m::kNetBytesRead),
                  p.total(m::kNetBytesWritten));
    }
    std::printf("  stored in   : %s\n", session.options().store_dir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "synapse-profile: %s\n", e.what());
    return 1;
  }
}
