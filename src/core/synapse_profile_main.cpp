// synapse-profile: command-line wrapper around Session::profile
// (the paper ships "a set of command line tools which are wrappers
// around certain configurations ... of the profile and emulate methods").
//
// Usage:
//   synapse-profile [--rate HZ] [--tag TAG]... [--store DIR]
//                   [--resource NAME] -- COMMAND [ARGS...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"

int main(int argc, char** argv) {
  using namespace synapse;

  SessionOptions options;
  std::vector<std::string> tags;
  std::string command;
  std::string resource_name;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--rate") {
      options.profiler.sample_rate_hz = std::atof(next());
    } else if (arg == "--tag") {
      tags.push_back(next());
    } else if (arg == "--store") {
      options.store_dir = next();
    } else if (arg == "--resource") {
      resource_name = next();
    } else if (arg == "--adaptive") {
      options.profiler.adaptive = true;
    } else if (arg == "--") {
      ++i;
      break;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "synapse-profile [--rate HZ] [--tag TAG]... [--store DIR]\n"
          "                [--resource NAME] [--adaptive] -- COMMAND...\n");
      return 0;
    } else {
      std::fprintf(stderr, "synapse-profile: unknown option %s\n",
                   arg.c_str());
      return 2;
    }
  }
  for (; i < argc; ++i) {
    if (!command.empty()) command += ' ';
    command += argv[i];
  }
  if (command.empty()) {
    std::fprintf(stderr, "synapse-profile: no command given (use --)\n");
    return 2;
  }

  if (!resource_name.empty()) {
    resource::activate_resource(resource_name);
  }

  Session session(options);
  const profile::Profile p = session.profile(command, tags);

  namespace m = synapse::metrics;
  std::printf("profiled: %s\n", command.c_str());
  std::printf("  resource    : %s\n", p.system.resource_name.c_str());
  std::printf("  Tx          : %.3f s\n", p.runtime());
  std::printf("  samples     : %zu\n", p.sample_count());
  std::printf("  cycles      : %.3e\n", p.total(m::kCyclesUsed));
  std::printf("  instructions: %.3e\n", p.total(m::kInstructions));
  std::printf("  bytes read  : %.0f\n", p.total(m::kBytesRead));
  std::printf("  bytes written: %.0f\n", p.total(m::kBytesWritten));
  std::printf("  peak RSS    : %.0f\n", p.total(m::kMemPeak));
  std::printf("  stored in   : %s\n", session.options().store_dir.c_str());
  return 0;
}
