#include "docstore/docstore.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <dirent.h>

#include <algorithm>

namespace synapse::docstore {

const json::Value* lookup_path(const json::Value& doc,
                               const std::string& path) {
  const json::Value* current = &doc;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t dot = path.find('.', start);
    const std::string key =
        path.substr(start, dot == std::string::npos ? std::string::npos
                                                    : dot - start);
    if (!current->is_object() || !current->contains(key)) return nullptr;
    current = &(*current)[key];
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return current;
}

size_t Collection::size() const {
  std::lock_guard lock(mutex_);
  return docs_.size();
}

namespace {

/// Find the largest array anywhere in the document (depth-first).
json::Array* largest_array(json::Value& v) {
  json::Array* best = nullptr;
  if (v.is_array()) best = &v.as_array();
  if (v.is_array()) {
    for (auto& elem : v.as_array()) {
      json::Array* sub = largest_array(elem);
      if (sub && (!best || sub->size() > best->size())) best = sub;
    }
  } else if (v.is_object()) {
    for (auto& [key, val] : v.as_object()) {
      json::Array* sub = largest_array(val);
      if (sub && (!best || sub->size() > best->size())) best = sub;
    }
  }
  return best;
}

}  // namespace

InsertResult Collection::insert(json::Value doc) {
  if (!doc.is_object()) {
    throw json::JsonError("docstore: only object documents are supported");
  }
  InsertResult result;
  std::string serialized = json::dump(doc);
  // Reproduce the MongoDB 16 MB cap: trim the largest array until the
  // document fits. This is what loses the final sample of the largest
  // Fig. 4 run in the paper.
  while (serialized.size() > kMaxDocumentBytes) {
    json::Array* arr = largest_array(doc);
    if (arr == nullptr || arr->empty()) {
      throw json::JsonError(
          "docstore: document exceeds 16MB and has no trimmable array");
    }
    // Drop a proportional chunk from the tail to converge quickly, but at
    // least one element.
    const size_t overshoot = serialized.size() - kMaxDocumentBytes;
    const size_t avg_elem = std::max<size_t>(1, serialized.size() / std::max<size_t>(1, arr->size()));
    const size_t drop = std::max<size_t>(1, overshoot / avg_elem);
    arr->resize(arr->size() - std::min(drop, arr->size()));
    result.truncated = true;
    serialized = json::dump(doc);
  }
  std::lock_guard lock(mutex_);
  result.id = next_id_++;
  result.stored_bytes = serialized.size();
  doc["_id"] = result.id;
  docs_[result.id] = std::move(doc);
  return result;
}

bool Collection::matches(const json::Value& doc,
                         const std::vector<FieldEquals>& query) const {
  for (const auto& pred : query) {
    const json::Value* v = lookup_path(doc, pred.field);
    if (v == nullptr || !(*v == pred.value)) return false;
  }
  return true;
}

std::vector<json::Value> Collection::find(
    const std::vector<FieldEquals>& query) const {
  std::lock_guard lock(mutex_);
  std::vector<json::Value> out;
  for (const auto& [id, doc] : docs_) {
    if (matches(doc, query)) out.push_back(doc);
  }
  return out;
}

std::optional<json::Value> Collection::find_one(
    const std::vector<FieldEquals>& query) const {
  std::lock_guard lock(mutex_);
  for (const auto& [id, doc] : docs_) {
    if (matches(doc, query)) return doc;
  }
  return std::nullopt;
}

std::optional<json::Value> Collection::get(uint64_t id) const {
  std::lock_guard lock(mutex_);
  const auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

size_t Collection::remove(const std::vector<FieldEquals>& query) {
  std::lock_guard lock(mutex_);
  size_t removed = 0;
  for (auto it = docs_.begin(); it != docs_.end();) {
    if (matches(it->second, query)) {
      it = docs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<json::Value> Collection::all() const {
  std::lock_guard lock(mutex_);
  std::vector<json::Value> out;
  out.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) out.push_back(doc);
  return out;
}

Store::Store(const std::string& directory) : directory_(directory) {
  ::mkdir(directory.c_str(), 0755);  // EEXIST is fine
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) {
    throw sys::SystemError("opendir(" + directory + ")", errno);
  }
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    const std::string suffix = ".collection.json";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      load_collection(name.substr(0, name.size() - suffix.size()),
                      directory + "/" + name);
    }
  }
  ::closedir(dir);
}

void Store::load_collection(const std::string& name, const std::string& path) {
  json::Value data = json::load_file(path);
  auto coll = std::make_unique<Collection>(name);
  uint64_t max_id = 0;
  for (auto& doc : data["docs"].as_array()) {
    const uint64_t id = doc["_id"].as_uint();
    max_id = std::max(max_id, id);
    coll->docs_[id] = std::move(doc);
  }
  coll->next_id_ = max_id + 1;
  std::lock_guard lock(mutex_);
  collections_[name] = std::move(coll);
}

Collection& Store::collection(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

std::vector<std::string> Store::collection_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, coll] : collections_) names.push_back(name);
  return names;
}

void Store::flush() {
  if (directory_.empty()) return;
  std::lock_guard lock(mutex_);
  for (const auto& [name, coll] : collections_) {
    json::Object root;
    root["name"] = name;
    json::Array docs;
    {
      std::lock_guard coll_lock(coll->mutex_);
      for (const auto& [id, doc] : coll->docs_) docs.push_back(doc);
    }
    root["docs"] = std::move(docs);
    json::save_file(directory_ + "/" + name + ".collection.json",
                    json::Value(std::move(root)), /*indent=*/0);
  }
}

}  // namespace synapse::docstore
