#pragma once
// Embedded JSON document store — the MongoDB substitute.
//
// The original Synapse pushes profiles into MongoDB, indexed by the
// application command line and user tags, and suffers from MongoDB's
// 16 MB per-document limit (paper section 4.5 "DB limitations": at most
// ~250,000 samples per profile; the largest Fig. 4 configuration drops a
// sample). This module reproduces the same API role and the same
// observable limitation without a network service:
//
//  - named collections of JSON documents,
//  - insert / find-by-field-equality / remove,
//  - a hard 16 MB serialized-size limit per document (InsertResult tells
//    callers whether truncation was applied),
//  - optional directory persistence, one JSON file per collection.
//
// Thread safety: all public methods lock a single mutex; the store is a
// coordination point, not a throughput-critical path.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace synapse::docstore {

/// MongoDB's classic BSON document cap, reproduced deliberately.
inline constexpr size_t kMaxDocumentBytes = 16 * 1024 * 1024;

/// Outcome of an insert.
struct InsertResult {
  uint64_t id = 0;          ///< assigned document id
  bool truncated = false;   ///< true when sample arrays were trimmed to fit
  size_t stored_bytes = 0;  ///< serialized size actually stored
};

/// Equality predicate on a top-level (or dotted nested) field.
struct FieldEquals {
  std::string field;  ///< e.g. "command" or "meta.tag"
  json::Value value;
};

class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const;

  /// Insert a document (object). Documents larger than kMaxDocumentBytes
  /// are made to fit by trimming the *largest array* found anywhere in the
  /// document (mirroring how the paper's largest run loses its final
  /// sample); if no array exists the insert throws.
  InsertResult insert(json::Value doc);

  /// All documents matching every predicate (AND semantics).
  std::vector<json::Value> find(const std::vector<FieldEquals>& query) const;

  /// First match, if any.
  std::optional<json::Value> find_one(
      const std::vector<FieldEquals>& query) const;

  /// Document by id.
  std::optional<json::Value> get(uint64_t id) const;

  /// Remove matching documents; returns the number removed.
  size_t remove(const std::vector<FieldEquals>& query);

  /// All documents (snapshot copy).
  std::vector<json::Value> all() const;

 private:
  friend class Store;
  bool matches(const json::Value& doc,
               const std::vector<FieldEquals>& query) const;

  std::string name_;
  mutable std::mutex mutex_;
  std::map<uint64_t, json::Value> docs_;
  uint64_t next_id_ = 1;
};

/// A set of named collections with optional disk persistence.
class Store {
 public:
  /// In-memory store.
  Store() = default;

  /// Persistent store rooted at `directory` (created if missing);
  /// existing collection files are loaded eagerly.
  explicit Store(const std::string& directory);

  /// Get or create a collection.
  Collection& collection(const std::string& name);

  /// Names of all collections currently present.
  std::vector<std::string> collection_names() const;

  /// Write every collection to disk (no-op for in-memory stores).
  void flush();

  const std::string& directory() const { return directory_; }

 private:
  void load_collection(const std::string& name, const std::string& path);

  std::string directory_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

/// Navigate a dotted path ("meta.tag") inside a document; nullptr when
/// any component is missing or a non-object is traversed.
const json::Value* lookup_path(const json::Value& doc, const std::string& path);

}  // namespace synapse::docstore
