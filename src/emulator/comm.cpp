#include "emulator/comm.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <algorithm>

#include "sys/error.hpp"

namespace synapse::emulator {

CommRing::CommRing(int ranks) : ranks_(std::max(1, ranks)) {
  pipes_.resize(static_cast<size_t>(ranks_));
  for (auto& p : pipes_) {
    int fds[2];
    if (::pipe(fds) != 0) throw sys::SystemError("pipe", errno);
    p.read_fd = fds[0];
    p.write_fd = fds[1];
  }
}

CommRing::~CommRing() {
  for (const auto& p : pipes_) {
    if (p.read_fd >= 0) ::close(p.read_fd);
    if (p.write_fd >= 0) ::close(p.write_fd);
  }
}

void CommRing::attach(int rank) {
  const int left = (rank - 1 + ranks_) % ranks_;
  for (int i = 0; i < ranks_; ++i) {
    auto& p = pipes_[static_cast<size_t>(i)];
    // Keep: our write end (pipes_[rank]) and our read end (pipes_[left]).
    if (i != rank && p.write_fd >= 0) {
      ::close(p.write_fd);
      p.write_fd = -1;
    }
    if (i != left && p.read_fd >= 0) {
      ::close(p.read_fd);
      p.read_fd = -1;
    }
  }
}

uint64_t CommRing::exchange(int rank, uint64_t bytes) {
  if (ranks_ < 2 || bytes == 0) return 0;
  const int left = (rank - 1 + ranks_) % ranks_;
  const int out_fd = pipes_[static_cast<size_t>(rank)].write_fd;
  const int in_fd = pipes_[static_cast<size_t>(left)].read_fd;
  if (out_fd < 0 || in_fd < 0) return 0;

  // Interleave bounded writes and reads so the ring cannot deadlock on
  // full pipe buffers (every rank runs the same loop).
  constexpr size_t kChunk = 32 * 1024;  // < half the default pipe buffer
  std::vector<char> buf(kChunk, 'S');
  uint64_t sent = 0, received = 0;
  while (sent < bytes || received < bytes) {
    if (sent < bytes) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, bytes - sent));
      const ssize_t w = ::write(out_fd, buf.data(), n);
      if (w < 0 && errno != EINTR) break;
      if (w > 0) sent += static_cast<uint64_t>(w);
    }
    if (received < bytes) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(kChunk, bytes - received));
      const ssize_t r = ::read(in_fd, buf.data(), n);
      if (r == 0) break;  // neighbour closed: ring torn down
      if (r < 0 && errno != EINTR) break;
      if (r > 0) received += static_cast<uint64_t>(r);
    }
  }
  return received;
}

}  // namespace synapse::emulator
