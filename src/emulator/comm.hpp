#pragma once
// Rank-to-rank communication emulation (extension).
//
// The paper's Synapse "makes no attempt to emulate any communication"
// between ranks (section 5, E.4) and lists MPI communication replay as
// the most significant future improvement (section 6). This module
// implements the simplest useful form: a ring exchange — each rank
// sends a configurable number of bytes to its right neighbour and
// receives from its left neighbour once per replayed sample, over real
// pipes created before the fork. That reproduces the halo-exchange
// pattern of domain-decomposed codes (the dominant MPI pattern in the
// MD applications Synapse targets) without requiring an MPI stack.

#include <cstdint>
#include <memory>
#include <vector>

namespace synapse::emulator {

/// Pre-forked pipe ring connecting `ranks` processes.
class CommRing {
 public:
  /// Create all pipes in the parent, before forking.
  explicit CommRing(int ranks);
  ~CommRing();
  CommRing(const CommRing&) = delete;
  CommRing& operator=(const CommRing&) = delete;

  int ranks() const { return ranks_; }

  /// Called by rank `rank` after the fork: closes the descriptors that
  /// belong to other ranks (hygiene, like MPI runtimes do).
  void attach(int rank);

  /// One ring step: send `bytes` to (rank+1) % ranks, receive the same
  /// amount from (rank-1) % ranks. Blocks until both complete; returns
  /// the bytes actually exchanged (0 on peer failure — never throws, a
  /// dead neighbour must not wedge the ring).
  uint64_t exchange(int rank, uint64_t bytes);

 private:
  struct Pipe {
    int read_fd = -1;
    int write_fd = -1;
  };

  int ranks_;
  /// pipes_[i]: written by rank i, read by rank (i+1) % ranks.
  std::vector<Pipe> pipes_;
};

}  // namespace synapse::emulator
