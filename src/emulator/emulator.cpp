#include "emulator/emulator.hpp"

#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>

#include "emulator/comm.hpp"
#include "emulator/procgroup.hpp"
#include "emulator/replay_engine.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse::emulator {

Emulator::Emulator(EmulatorOptions options, const atoms::AtomRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &atoms::AtomRegistry::instance()) {
  if (options_.parallel_degree < 1) options_.parallel_degree = 1;
}

namespace {

/// Shared-memory counters for process-parallel runs. Per-atom stats
/// travel in trivially-copyable AtomStats slots behind this header
/// (one slot per atom per rank; each rank writes only its own slots,
/// the parent sums after waitpid, so no atomics are needed there).
struct SharedHeader {
  std::atomic<uint64_t> samples;
  std::atomic<uint64_t> comm_bytes;
};

}  // namespace

EmulationResult Emulator::run_single(const profile::Profile& profile) {
  return ReplayEngine(options_, registry_).replay(profile);
}

EmulationResult Emulator::run_process_parallel(
    const profile::Profile& profile) {
  const int ranks = options_.parallel_degree;
  const sys::Stopwatch total;

  // Validate the atom set in the parent: an unknown name must throw
  // ConfigError here, not kill every forked rank silently.
  const std::vector<std::string> atom_names =
      ReplayEngine::resolve_atom_set(options_);
  for (const auto& name : atom_names) registry_->ensure_registered(name);

  // Shared accumulator + per-sample barrier across ranks (the intra-node
  // part of MPI_Barrier semantics).
  static_assert(std::is_trivially_copyable_v<atoms::AtomStats>,
                "AtomStats crosses the fork boundary through raw shared "
                "memory; adding a non-trivially-copyable field would "
                "silently corrupt it");
  const size_t slot_count = atom_names.size() * static_cast<size_t>(ranks);
  const size_t shm_bytes =
      sizeof(SharedHeader) + slot_count * sizeof(atoms::AtomStats);
  void* mem = ::mmap(nullptr, shm_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw sys::SystemError("mmap(stats)", errno);
  const std::unique_ptr<void, std::function<void(void*)>> mem_guard(
      mem, [shm_bytes](void* p) { ::munmap(p, shm_bytes); });
  auto* header = new (mem) SharedHeader();
  auto* slots = reinterpret_cast<atoms::AtomStats*>(static_cast<char*>(mem) +
                                                    sizeof(SharedHeader));
  for (size_t i = 0; i < slot_count; ++i) new (&slots[i]) atoms::AtomStats();
  SharedBarrier barrier(static_cast<unsigned>(ranks));

  const double time_factor = ReplayEngine::parallel_time_factor(
      ranks, resource::active_resource().mpi_overhead_per_worker);

  // Ring pipes must exist before the fork so every rank inherits them.
  std::unique_ptr<CommRing> ring;
  if (options_.comm_bytes_per_sample > 0 && ranks > 1) {
    ring = std::make_unique<CommRing>(ranks);
  }

  EmulationResult result;
  result.ranks_ok = run_process_group(ranks, [&](int rank) {
    // Compute is spread across ranks; memory and storage consumption is
    // duplicated per rank — exactly the paper's "naive way" (E.4).
    EmulatorOptions child = options_;
    child.parallel_mode = ParallelMode::None;
    child.parallel_degree = 1;
    child.cycle_scale /= static_cast<double>(ranks);
    child.compute.time_scale = time_factor * static_cast<double>(ranks);

    ReplayEngine engine(child, registry_);

    // Halo-exchange extension: one ring step per replayed sample.
    ReplayEngine::SampleHook hook;
    if (ring) {
      ring->attach(rank);
      auto* ring_ptr = ring.get();
      const uint64_t bytes = options_.comm_bytes_per_sample;
      auto* stats = header;
      hook = [ring_ptr, rank, bytes, stats](size_t) {
        const uint64_t exchanged = ring_ptr->exchange(rank, bytes);
        stats->comm_bytes.fetch_add(exchanged, std::memory_order_relaxed);
      };
    }

    const EmulationResult r = engine.replay(profile, hook);
    for (size_t i = 0; i < atom_names.size(); ++i) {
      const auto it = r.atom_stats.find(atom_names[i]);
      if (it != r.atom_stats.end()) {
        slots[static_cast<size_t>(rank) * atom_names.size() + i] = it->second;
      }
    }
    header->samples.fetch_add(r.samples_replayed, std::memory_order_relaxed);
    barrier.wait();  // ranks end together, like MPI_Finalize
    return 0;
  });

  // run_process_group waited on every rank, so the slot writes of all
  // exited children are visible; sum them per atom.
  for (size_t i = 0; i < atom_names.size(); ++i) {
    atoms::AtomStats aggregate;
    for (int rank = 0; rank < ranks; ++rank) {
      accumulate(aggregate,
                 slots[static_cast<size_t>(rank) * atom_names.size() + i]);
    }
    result.atom_stats[atom_names[i]] = aggregate;
    ReplayEngine::mirror_builtin_stats(result, atom_names[i], aggregate);
  }

  result.wall_seconds = total.elapsed();
  result.samples_replayed =
      header->samples.load(std::memory_order_relaxed) /
      std::max<uint64_t>(1, static_cast<uint64_t>(ranks));
  result.comm_bytes = header->comm_bytes.load(std::memory_order_relaxed);

  header->~SharedHeader();
  return result;
}

EmulationResult Emulator::emulate(const profile::Profile& profile) {
  if (options_.parallel_mode == ParallelMode::Process &&
      options_.parallel_degree > 1) {
    return run_process_parallel(profile);
  }
  return run_single(profile);
}

}  // namespace synapse::emulator
