#include "emulator/emulator.hpp"

#include <sys/mman.h>

#include <atomic>
#include <cerrno>
#include <functional>
#include <thread>

#include "atoms/network_atom.hpp"
#include "emulator/comm.hpp"
#include "emulator/procgroup.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"
#include "watchers/trace.hpp"

namespace synapse::emulator {

namespace m = synapse::metrics;

Emulator::Emulator(EmulatorOptions options) : options_(std::move(options)) {
  if (options_.parallel_degree < 1) options_.parallel_degree = 1;
}

double Emulator::parallel_time_factor(int workers,
                                      double overhead_per_worker) {
  if (workers <= 1) return 1.0;
  // Amdahl serial fraction (the emulator's sample feed is sequential)
  // plus linear per-worker coordination cost: time(N) =
  // T1 * (f + (1-f)/N) * (1 + a*(N-1)). Good scaling for small N,
  // diminishing returns toward a full node — the Fig. 12 shape.
  constexpr double kSerialFraction = 0.03;
  const double n = static_cast<double>(workers);
  return (kSerialFraction + (1.0 - kSerialFraction) / n) *
         (1.0 + overhead_per_worker * (n - 1.0));
}

namespace {

/// Apply the emulator's workload overrides to one sample delta.
profile::SampleDelta scale_delta(const profile::SampleDelta& in,
                                 const EmulatorOptions& opts) {
  profile::SampleDelta out = in;
  auto scale = [&out](std::string_view key, double factor) {
    const auto it = out.deltas.find(std::string(key));
    if (it != out.deltas.end()) it->second *= factor;
  };
  if (opts.cycle_scale != 1.0) {
    scale(m::kCyclesUsed, opts.cycle_scale);
    scale(m::kInstructions, opts.cycle_scale);
    scale(m::kFlops, opts.cycle_scale);
  }
  if (opts.memory_scale != 1.0) {
    scale(m::kMemAllocated, opts.memory_scale);
    scale(m::kMemFreed, opts.memory_scale);
  }
  if (opts.io_scale != 1.0) {
    scale(m::kBytesRead, opts.io_scale);
    scale(m::kBytesWritten, opts.io_scale);
  }
  return out;
}

/// Shared-memory accumulator for process-parallel runs.
struct SharedStats {
  std::atomic<uint64_t> flops;
  std::atomic<uint64_t> cycles;
  std::atomic<uint64_t> bytes_written;
  std::atomic<uint64_t> bytes_read;
  std::atomic<uint64_t> samples;
  std::atomic<uint64_t> comm_bytes;
};

}  // namespace

EmulationResult Emulator::run_single(
    const profile::Profile& profile,
    const std::function<void(size_t)>& per_sample_hook) {
  EmulationResult result;
  const sys::Stopwatch total;

  // --- startup: build atoms, warm the kernel (calibration) -----------------
  {
    const sys::Stopwatch startup;

    std::vector<std::unique_ptr<atoms::Atom>> active;
    atoms::ComputeAtom* compute = nullptr;
    atoms::MemoryAtom* memory = nullptr;
    atoms::StorageAtom* storage = nullptr;
    atoms::NetworkAtom* network = nullptr;

    atoms::ComputeAtomOptions copts = options_.compute;
    if (options_.parallel_mode == ParallelMode::OpenMp &&
        options_.parallel_degree > 1) {
      copts.kernel = "omp";
      copts.omp_threads = options_.parallel_degree;
      copts.time_scale = parallel_time_factor(
          options_.parallel_degree,
          resource::active_resource().omp_overhead_per_worker);
    }
    if (options_.emulate_compute) {
      auto atom = std::make_unique<atoms::ComputeAtom>(copts);
      compute = atom.get();
      active.push_back(std::move(atom));
    }
    if (options_.emulate_memory) {
      auto atom = std::make_unique<atoms::MemoryAtom>(options_.memory);
      memory = atom.get();
      active.push_back(std::move(atom));
    }
    if (options_.emulate_storage) {
      auto atom = std::make_unique<atoms::StorageAtom>(options_.storage);
      storage = atom.get();
      active.push_back(std::move(atom));
    }
    if (options_.emulate_network) {
      auto atom = std::make_unique<atoms::NetworkAtom>();
      network = atom.get();
      active.push_back(std::move(atom));
    }

    // Emulation runs are themselves profile-able: publish consumed
    // counters through the cooperative trace when one is requested.
    auto trace = watchers::TraceWriter::from_env();
    for (auto& atom : active) atom->set_trace(trace.get());

    result.startup_seconds = startup.elapsed();

    // --- the global sample feed loop (section 4.2) -------------------------
    const auto deltas = profile.sample_deltas();
    for (const auto& raw : deltas) {
      const profile::SampleDelta delta = scale_delta(raw, options_);

      // All resource consumptions of one sample start concurrently; the
      // sample ends when the last one completes (Fig. 2).
      std::vector<std::thread> workers;
      for (auto& atom : active) {
        if (!atom->wants(delta)) continue;
        workers.emplace_back([&atom, &delta] {
          try {
            atom->consume(delta);
          } catch (const std::exception&) {
            // A failing atom must not wedge the sample barrier; the
            // shortfall shows up in the atom's stats.
          }
        });
      }
      for (auto& w : workers) w.join();
      if (per_sample_hook) per_sample_hook(result.samples_replayed);
      ++result.samples_replayed;
    }

    if (compute != nullptr) result.compute = compute->stats();
    if (memory != nullptr) result.memory = memory->stats();
    if (storage != nullptr) result.storage = storage->stats();
    if (network != nullptr) result.network = network->stats();
  }

  result.wall_seconds = total.elapsed();
  result.ranks_ok = 1;
  return result;
}

EmulationResult Emulator::run_process_parallel(
    const profile::Profile& profile) {
  const int ranks = options_.parallel_degree;
  const sys::Stopwatch total;

  // Shared accumulator + per-sample barrier across ranks (the intra-node
  // part of MPI_Barrier semantics).
  void* mem = ::mmap(nullptr, sizeof(SharedStats), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw sys::SystemError("mmap(stats)", errno);
  auto* shared = new (mem) SharedStats();
  SharedBarrier barrier(static_cast<unsigned>(ranks));

  const double time_factor = parallel_time_factor(
      ranks, resource::active_resource().mpi_overhead_per_worker);

  // Ring pipes must exist before the fork so every rank inherits them.
  std::unique_ptr<CommRing> ring;
  if (options_.comm_bytes_per_sample > 0 && ranks > 1) {
    ring = std::make_unique<CommRing>(ranks);
  }

  EmulationResult result;
  result.ranks_ok = run_process_group(ranks, [&](int rank) {
    // Compute is spread across ranks; memory and storage consumption is
    // duplicated per rank — exactly the paper's "naive way" (E.4).
    EmulatorOptions child = options_;
    child.parallel_mode = ParallelMode::None;
    child.parallel_degree = 1;
    child.cycle_scale /= static_cast<double>(ranks);
    child.compute.time_scale = time_factor * static_cast<double>(ranks);

    Emulator rank_emulator(child);

    // Halo-exchange extension: one ring step per replayed sample.
    std::function<void(size_t)> hook;
    if (ring) {
      ring->attach(rank);
      auto* ring_ptr = ring.get();
      const uint64_t bytes = options_.comm_bytes_per_sample;
      auto* stats = shared;
      hook = [ring_ptr, rank, bytes, stats](size_t) {
        const uint64_t exchanged = ring_ptr->exchange(rank, bytes);
        stats->comm_bytes.fetch_add(exchanged, std::memory_order_relaxed);
      };
    }

    const EmulationResult r = rank_emulator.run_single(profile, hook);
    shared->flops.fetch_add(static_cast<uint64_t>(r.compute.flops),
                            std::memory_order_relaxed);
    shared->cycles.fetch_add(static_cast<uint64_t>(r.compute.cycles),
                             std::memory_order_relaxed);
    shared->bytes_written.fetch_add(r.storage.bytes_written,
                                    std::memory_order_relaxed);
    shared->bytes_read.fetch_add(r.storage.bytes_read,
                                 std::memory_order_relaxed);
    shared->samples.fetch_add(r.samples_replayed, std::memory_order_relaxed);
    barrier.wait();  // ranks end together, like MPI_Finalize
    return 0;
  });

  result.wall_seconds = total.elapsed();
  result.samples_replayed =
      shared->samples.load(std::memory_order_relaxed) /
      std::max<uint64_t>(1, static_cast<uint64_t>(ranks));
  result.compute.flops =
      static_cast<double>(shared->flops.load(std::memory_order_relaxed));
  result.compute.cycles =
      static_cast<double>(shared->cycles.load(std::memory_order_relaxed));
  result.storage.bytes_written =
      shared->bytes_written.load(std::memory_order_relaxed);
  result.storage.bytes_read =
      shared->bytes_read.load(std::memory_order_relaxed);
  result.comm_bytes = shared->comm_bytes.load(std::memory_order_relaxed);

  shared->~SharedStats();
  ::munmap(mem, sizeof(SharedStats));
  return result;
}

EmulationResult Emulator::emulate(const profile::Profile& profile) {
  if (options_.parallel_mode == ParallelMode::Process &&
      options_.parallel_degree > 1) {
    return run_process_parallel(profile);
  }
  return run_single(profile);
}

}  // namespace synapse::emulator
