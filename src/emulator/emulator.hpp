#pragma once
// The Synapse emulator (paper Fig. 1 right half, sections 4.2, 4.4).
//
// Feeds the sample sequence of a profile to the emulation atoms:
//
//  - samples are replayed strictly in recorded order (dependencies are
//    implicitly captured in that order — Fig. 2/3);
//  - within one sample, every atom starts concurrently and the sample
//    ends when the LAST atom finishes (the serialization present in the
//    original application inside a sampling period is deliberately lost;
//    higher sampling rates reduce that effect);
//  - all timing information inside samples is discarded: emulation
//    reproduces resource consumption, not timings.
//
// Tunables (requirement E.3 Malleability): kernel choice, OpenMP thread
// or MPI-style rank count, I/O block sizes and target filesystem, memory
// scale, cycle scale — all dimensions the paper varies in E.3/E.4/E.5.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atoms/atom.hpp"
#include "atoms/compute_atom.hpp"
#include "atoms/memory_atom.hpp"
#include "atoms/storage_atom.hpp"
#include "profile/profile.hpp"

namespace synapse::emulator {

/// Parallelisation mode for the compute emulation (experiment E.4).
enum class ParallelMode {
  None,     ///< single-threaded compute atom
  OpenMp,   ///< one process, N OpenMP threads
  Process,  ///< N forked ranks (the OpenMPI substitute)
};

struct EmulatorOptions {
  // Atom enable flags (experiments often emulate compute only).
  bool emulate_compute = true;
  bool emulate_memory = true;
  bool emulate_storage = true;
  bool emulate_network = false;  ///< network profiling is not wired yet

  atoms::ComputeAtomOptions compute;
  atoms::MemoryAtomOptions memory;
  atoms::StorageAtomOptions storage;

  ParallelMode parallel_mode = ParallelMode::None;
  int parallel_degree = 1;  ///< threads or ranks

  /// Ring-exchange bytes per rank per replayed sample in Process mode
  /// (0 = no communication, the paper's behaviour). Models the halo
  /// exchange of domain-decomposed codes; see emulator/comm.hpp.
  uint64_t comm_bytes_per_sample = 0;

  // Workload overrides (tuning dimensions the original application does
  // not offer — the RADICAL-Pilot use case of section 2.1).
  double cycle_scale = 1.0;   ///< multiply every compute delta
  double memory_scale = 1.0;  ///< multiply allocation deltas
  double io_scale = 1.0;      ///< multiply storage deltas
};

/// Outcome of one emulation run.
struct EmulationResult {
  double wall_seconds = 0.0;       ///< emulation Tx
  size_t samples_replayed = 0;
  double startup_seconds = 0.0;    ///< atom construction + calibration
  atoms::AtomStats compute;
  atoms::AtomStats memory;
  atoms::AtomStats storage;
  atoms::AtomStats network;
  int ranks_ok = 0;                ///< successful ranks (Process mode)
  uint64_t comm_bytes = 0;         ///< total ring-exchanged bytes
};

class Emulator {
 public:
  explicit Emulator(EmulatorOptions options = {});

  /// Replay a profile on the active resource. Blocks until done.
  EmulationResult emulate(const profile::Profile& profile);

  const EmulatorOptions& options() const { return options_; }

 private:
  EmulationResult run_single(
      const profile::Profile& profile,
      const std::function<void(size_t)>& per_sample_hook = {});
  EmulationResult run_process_parallel(const profile::Profile& profile);

  /// Parallel-efficiency model for the VR compute time (Amdahl serial
  /// fraction + per-worker coordination overhead): scale factor applied
  /// to per-sample compute budgets when emulating with N workers.
  static double parallel_time_factor(int workers, double overhead_per_worker);

  EmulatorOptions options_;
};

}  // namespace synapse::emulator
