#pragma once
// The Synapse emulator (paper Fig. 1 right half, sections 4.2, 4.4).
//
// Feeds the sample sequence of a profile to the emulation atoms:
//
//  - samples are replayed strictly in recorded order (dependencies are
//    implicitly captured in that order — Fig. 2/3);
//  - within one sample, every atom starts concurrently and the sample
//    ends when the LAST atom finishes (the serialization present in the
//    original application inside a sampling period is deliberately lost;
//    higher sampling rates reduce that effect);
//  - all timing information inside samples is discarded: emulation
//    reproduces resource consumption, not timings.
//
// The sample feed loop itself lives in emulator::ReplayEngine
// (replay_engine.hpp); the Emulator is a driver that picks the
// execution mode (single process, OpenMP threads, forked ranks) and
// hands the engine a per-mode view of the options. Atoms are resolved
// by name through atoms::AtomRegistry, so custom atoms registered at
// runtime replay like the built-ins.
//
// Tunables (requirement E.3 Malleability): kernel choice, OpenMP thread
// or MPI-style rank count, I/O block sizes and target filesystem, memory
// scale, cycle scale — all dimensions the paper varies in E.3/E.4/E.5.

#include <map>
#include <string>
#include <vector>

#include "atoms/atom.hpp"
#include "atoms/atom_registry.hpp"
#include "profile/profile.hpp"

namespace synapse::emulator {

/// Parallelisation mode for the compute emulation (experiment E.4).
enum class ParallelMode {
  None,     ///< single-threaded compute atom
  OpenMp,   ///< one process, N OpenMP threads
  Process,  ///< N forked ranks (the OpenMPI substitute)
};

/// Replay pacing: whether the feed loop sleeps between deltas so the
/// replay follows the profile's recorded inter-sample gaps (each
/// SampleDelta::duration) instead of running as fast as the atoms
/// allow. Pacing reproduces the recorded *timeline*; the atoms still
/// reproduce the recorded *consumption*.
enum class ReplayPace {
  Auto,  ///< pace variable-rate (adaptively recorded) profiles only
  Off,   ///< never pace: replay at full speed (the classic behaviour)
  On,    ///< pace every profile by its recorded durations
};

/// Parse "auto" / "off" / "on" (throws sys::ConfigError otherwise).
ReplayPace replay_pace_from_string(const std::string& name);
const char* replay_pace_name(ReplayPace pace);

struct EmulatorOptions {
  /// Declarative atom-set selection: the registry names to replay
  /// through, in dispatch order (e.g. {"compute", "storage", "my-gpu"}).
  /// Empty = derive from the emulate_* flags below. Names must exist in
  /// the AtomRegistry in use; unknown names fail the run with
  /// ConfigError at startup. Duplicates collapse (first occurrence
  /// wins).
  std::vector<std::string> atom_set;

  // Atom enable flags, honoured when atom_set is empty (experiments
  // often emulate compute only).
  bool emulate_compute = true;
  bool emulate_memory = true;
  bool emulate_storage = true;
  bool emulate_network = false;  ///< adds the "network" atom to the set

  atoms::ComputeAtomOptions compute;
  atoms::MemoryAtomOptions memory;
  atoms::StorageAtomOptions storage;
  atoms::NetworkAtomOptions network;

  ParallelMode parallel_mode = ParallelMode::None;
  int parallel_degree = 1;  ///< threads or ranks

  /// Replay execution mode: 0 (default, "unset") and 1 both replay one
  /// sample at a time with a thread spawned per atom per sample (the
  /// paper-faithful barrier loop); >= 2 switches the engine to the
  /// async batched pipeline — a producer thread decodes and scales
  /// deltas into batches of this size and feeds one persistent
  /// consumer thread per atom through bounded SampleQueues. Per-atom
  /// consumption order (and therefore every non-timing stat) is
  /// identical to single mode; the per-sample barrier coarsens to a
  /// per-batch barrier, amortizing dispatch cost across the batch.
  /// 0 vs 1 only matters for scenario precedence: a scenario's
  /// replay_batch field applies when this is 0, while an explicit 1
  /// (e.g. --replay-batch 1) pins single mode against it.
  size_t replay_batch = 0;

  /// Bounded depth, in batches, of each pipeline queue (batch mode
  /// only). Caps decoded-but-unconsumed memory: a slow atom
  /// back-pressures the producer once its queue holds this many
  /// batches. Clamped to >= 1.
  size_t replay_queue_depth = 4;

  /// Feed representation: true (default) compiles the replay into a
  /// ReplayPlan — the profile's deltas become a columnar DeltaTable
  /// with interned metric lanes, scale factors are baked into the
  /// affected lanes once, and atoms consume DeltaFrames through
  /// precomputed LaneMasks (batch mode additionally swaps the sample
  /// queues for lock-free frame rings). false keeps the legacy
  /// map-based SampleDelta feed. Non-timing stats are bit-identical
  /// either way; the knob exists for A/B benchmarking and as an escape
  /// hatch.
  bool replay_frames = true;

  /// Pace the feed loop by the recorded inter-sample gaps (see
  /// ReplayPace). Default Auto: variable-rate profiles replay on their
  /// recorded timeline (a burst is replayed as a burst, an idle stretch
  /// as an idle stretch), fixed-rate profiles replay at full speed as
  /// before. Batch mode paces at batch granularity (the producer
  /// releases each batch at its first sample's recorded offset),
  /// keeping the batch-barrier and hook-order semantics untouched.
  ReplayPace pace = ReplayPace::Auto;

  /// Ring-exchange bytes per rank per replayed sample in Process mode
  /// (0 = no communication, the paper's behaviour). Models the halo
  /// exchange of domain-decomposed codes; see emulator/comm.hpp.
  uint64_t comm_bytes_per_sample = 0;

  // Workload overrides (tuning dimensions the original application does
  // not offer — the RADICAL-Pilot use case of section 2.1).
  double cycle_scale = 1.0;   ///< multiply every compute delta
  double memory_scale = 1.0;  ///< multiply allocation deltas
  double io_scale = 1.0;      ///< multiply storage deltas
};

/// Outcome of one emulation run.
struct EmulationResult {
  double wall_seconds = 0.0;       ///< emulation Tx
  size_t samples_replayed = 0;
  double startup_seconds = 0.0;    ///< atom construction + calibration
  atoms::AtomStats compute;
  atoms::AtomStats memory;
  atoms::AtomStats storage;
  atoms::AtomStats network;
  /// Per-atom stats keyed by registry name — the only place custom
  /// atoms report; the four named fields above mirror the built-ins.
  std::map<std::string, atoms::AtomStats> atom_stats;
  int ranks_ok = 0;                ///< successful ranks (Process mode)
  uint64_t comm_bytes = 0;         ///< total ring-exchanged bytes
};

class Emulator {
 public:
  /// `registry` = nullptr uses the process-wide AtomRegistry::instance()
  /// (where runtime registrations land); inject a registry to scope
  /// custom atoms to this emulator. Must outlive the emulator.
  explicit Emulator(EmulatorOptions options = {},
                    const atoms::AtomRegistry* registry = nullptr);

  /// Replay a profile on the active resource. Blocks until done.
  EmulationResult emulate(const profile::Profile& profile);

  const EmulatorOptions& options() const { return options_; }

 private:
  EmulationResult run_single(const profile::Profile& profile);
  EmulationResult run_process_parallel(const profile::Profile& profile);

  EmulatorOptions options_;
  const atoms::AtomRegistry* registry_;  ///< not owned, never null
};

}  // namespace synapse::emulator
