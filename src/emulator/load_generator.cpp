#include "emulator/load_generator.hpp"

#include <unistd.h>

#include <cstdio>

#include "sys/clock.hpp"
#include "sys/env.hpp"
#include "sys/procfs.hpp"

namespace synapse::emulator {

LoadGenerator::LoadGenerator(LoadSpec spec) : spec_(std::move(spec)) {}

LoadGenerator::~LoadGenerator() { stop(); }

void LoadGenerator::start() {
  if (running_) return;
  stop_.store(false, std::memory_order_relaxed);

  if (spec_.memory_bytes > 0) {
    ballast_.resize(spec_.memory_bytes);
    const long page = sys::page_size();
    for (uint64_t off = 0; off < spec_.memory_bytes;
         off += static_cast<uint64_t>(page)) {
      ballast_[off] = static_cast<char>(off);
    }
  }

  for (int i = 0; i < spec_.cpu_threads; ++i) {
    threads_.emplace_back([this] {
      // Duty-cycled spin: busy for duty*period, sleep the rest.
      constexpr double kPeriod = 0.01;
      volatile double sink = 1.0;
      while (!stop_.load(std::memory_order_relaxed)) {
        const double busy_until =
            sys::steady_now() + kPeriod * spec_.cpu_duty;
        while (sys::steady_now() < busy_until &&
               !stop_.load(std::memory_order_relaxed)) {
          for (int k = 0; k < 1000; ++k) sink = sink * 1.0000001 + 1e-9;
        }
        sys::sleep_for(kPeriod * (1.0 - spec_.cpu_duty));
      }
      (void)sink;
    });
  }

  if (spec_.disk_write_bps > 0) {
    threads_.emplace_back([this] {
      const std::string dir =
          !spec_.scratch_dir.empty()
              ? spec_.scratch_dir
              : sys::getenv_or("TMPDIR", std::string("/tmp"));
      const std::string path =
          dir + "/synapse_load_" + std::to_string(::getpid()) + ".dat";
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) return;
      constexpr size_t kChunk = 1 << 20;
      std::vector<char> buf(kChunk, 'L');
      const double interval = static_cast<double>(kChunk) / spec_.disk_write_bps;
      while (!stop_.load(std::memory_order_relaxed)) {
        std::fwrite(buf.data(), 1, buf.size(), f);
        std::fflush(f);
        // Keep the churn file bounded.
        if (std::ftell(f) > (1L << 28)) std::rewind(f);
        sys::sleep_for(interval);
      }
      std::fclose(f);
      ::unlink(path.c_str());
    });
  }

  running_ = true;
}

void LoadGenerator::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  ballast_.clear();
  ballast_.shrink_to_fit();
  running_ = false;
}

}  // namespace synapse::emulator
