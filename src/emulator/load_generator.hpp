#pragma once
// Artificial load generator (paper section 4.3).
//
// "Synapse is able to force an artificial CPU, disk and memory load onto
// the system while emulating an application, thus emulating the
// application execution in a stressed environment (similar to the Linux
// utility 'stress')." The paper does not evaluate this; we implement and
// test it, and ship an example (examples/stressed_run.cpp).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace synapse::emulator {

struct LoadSpec {
  /// CPU load: number of burner threads and their duty cycle [0,1].
  int cpu_threads = 0;
  double cpu_duty = 1.0;
  /// Memory ballast held while the load runs.
  uint64_t memory_bytes = 0;
  /// Disk churn: bytes/s written to scratch (0 = off).
  double disk_write_bps = 0.0;
  std::string scratch_dir;  ///< "" = $TMPDIR or /tmp
};

/// RAII background load: starts on construction (or start()), stops on
/// destruction. Safe to stop/start repeatedly.
class LoadGenerator {
 public:
  explicit LoadGenerator(LoadSpec spec);
  ~LoadGenerator();
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

 private:
  LoadSpec spec_;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
  std::vector<char> ballast_;
};

}  // namespace synapse::emulator
