#include "emulator/procgroup.hpp"

#include <pthread.h>
#include <sys/mman.h>

#include <cerrno>
#include <vector>

#include "sys/error.hpp"
#include "sys/spawn.hpp"

namespace synapse::emulator {

struct SharedBarrier::Impl {
  pthread_barrier_t barrier;
};

SharedBarrier::SharedBarrier(unsigned parties) {
  void* mem = ::mmap(nullptr, sizeof(Impl), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw sys::SystemError("mmap(barrier)", errno);
  impl_ = static_cast<Impl*>(mem);

  pthread_barrierattr_t attr;
  pthread_barrierattr_init(&attr);
  pthread_barrierattr_setpshared(&attr, PTHREAD_PROCESS_SHARED);
  const int rc = pthread_barrier_init(&impl_->barrier, &attr, parties);
  pthread_barrierattr_destroy(&attr);
  if (rc != 0) {
    ::munmap(impl_, sizeof(Impl));
    throw sys::SystemError("pthread_barrier_init", rc);
  }
}

SharedBarrier::~SharedBarrier() {
  if (impl_ != nullptr) {
    pthread_barrier_destroy(&impl_->barrier);
    ::munmap(impl_, sizeof(Impl));
  }
}

void SharedBarrier::wait() { pthread_barrier_wait(&impl_->barrier); }

int run_process_group(int ranks, const std::function<int(int)>& fn) {
  if (ranks <= 0) return 0;
  std::vector<sys::ChildProcess> children;
  children.reserve(static_cast<size_t>(ranks));
  for (int rank = 0; rank < ranks; ++rank) {
    children.push_back(
        sys::ChildProcess::fork_function([&fn, rank] { return fn(rank); }));
  }
  int ok = 0;
  for (auto& child : children) {
    if (child.wait().success()) ++ok;
  }
  return ok;
}

}  // namespace synapse::emulator
