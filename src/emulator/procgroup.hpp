#pragma once
// Fork-based process groups — the OpenMPI substitute (DESIGN.md sec. 1).
//
// Experiment E.4 uses MPI only as "N single-node ranks executing the
// compute emulation with duplicated resource usage". ProcessGroup
// provides exactly that: fork N ranks, give them a process-shared
// barrier (pthread barrier in a MAP_SHARED|MAP_ANONYMOUS page, the same
// synchronisation primitive MPI_Barrier uses intra-node), run a
// per-rank function, and reap everything.

#include <functional>
#include <memory>

namespace synapse::emulator {

/// Process-shared barrier usable across fork().
class SharedBarrier {
 public:
  explicit SharedBarrier(unsigned parties);
  ~SharedBarrier();
  SharedBarrier(const SharedBarrier&) = delete;
  SharedBarrier& operator=(const SharedBarrier&) = delete;

  /// Block until all parties arrive.
  void wait();

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< lives in shared memory
};

/// Run `fn(rank)` in `ranks` forked child processes; the parent blocks
/// until all ranks exit. Returns the number of ranks that exited with
/// status 0. `fn` receives the rank index [0, ranks).
int run_process_group(int ranks, const std::function<int(int)>& fn);

}  // namespace synapse::emulator
