#include "emulator/replay_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <set>
#include <string_view>
#include <thread>
#include <utility>

#include "emulator/replay_plan.hpp"
#include "emulator/sample_queue.hpp"
#include "emulator/spsc_ring.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"
#include "watchers/trace.hpp"

namespace synapse::emulator {

namespace m = synapse::metrics;

ReplayPace replay_pace_from_string(const std::string& name) {
  if (name == "auto") return ReplayPace::Auto;
  if (name == "off") return ReplayPace::Off;
  if (name == "on") return ReplayPace::On;
  throw sys::ConfigError("unknown replay pace: " + name +
                         " (expected auto, off or on)");
}

const char* replay_pace_name(ReplayPace pace) {
  switch (pace) {
    case ReplayPace::Off:
      return "off";
    case ReplayPace::On:
      return "on";
    default:
      return "auto";
  }
}

ReplayEngine::ReplayEngine(EmulatorOptions options,
                           const atoms::AtomRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &atoms::AtomRegistry::instance()) {
  if (options_.parallel_degree < 1) options_.parallel_degree = 1;
}

std::vector<std::string> ReplayEngine::resolve_atom_set(
    const EmulatorOptions& options) {
  std::vector<std::string> names;
  if (!options.atom_set.empty()) {
    // Deduplicate, keeping first-occurrence order: a repeated name
    // would double-consume the budget yet report only one atom's stats
    // (and double-count in the process-parallel slot aggregation).
    for (const auto& name : options.atom_set) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    return names;
  }
  if (options.emulate_compute) names.push_back("compute");
  if (options.emulate_memory) names.push_back("memory");
  if (options.emulate_storage) names.push_back("storage");
  if (options.emulate_network) names.push_back("network");
  return names;
}

double ReplayEngine::parallel_time_factor(int workers,
                                          double overhead_per_worker) {
  if (workers <= 1) return 1.0;
  // Amdahl serial fraction (the emulator's sample feed is sequential)
  // plus linear per-worker coordination cost: time(N) =
  // T1 * (f + (1-f)/N) * (1 + a*(N-1)). Good scaling for small N,
  // diminishing returns toward a full node — the Fig. 12 shape.
  constexpr double kSerialFraction = 0.03;
  const double n = static_cast<double>(workers);
  return (kSerialFraction + (1.0 - kSerialFraction) / n) *
         (1.0 + overhead_per_worker * (n - 1.0));
}

namespace {

/// Apply the emulator's workload overrides to one sample delta. Takes
/// the delta by value so callers that are done with their copy (the
/// replay feeders, which consume the decoded vector front to back) can
/// move the metric map through instead of re-building it. Callers skip
/// the call entirely under identity scaling (identity_scaling()), so
/// the per-sample map rebuild only happens when a factor is active.
profile::SampleDelta scale_delta(profile::SampleDelta out,
                                 const EmulatorOptions& opts) {
  auto scale = [&out](std::string_view key, double factor) {
    const auto it = out.deltas.find(std::string(key));
    if (it != out.deltas.end()) it->second *= factor;
  };
  if (opts.cycle_scale != 1.0) {
    scale(m::kCyclesUsed, opts.cycle_scale);
    scale(m::kInstructions, opts.cycle_scale);
    scale(m::kFlops, opts.cycle_scale);
  }
  if (opts.memory_scale != 1.0) {
    scale(m::kMemAllocated, opts.memory_scale);
    scale(m::kMemFreed, opts.memory_scale);
  }
  if (opts.io_scale != 1.0) {
    scale(m::kBytesRead, opts.io_scale);
    scale(m::kBytesWritten, opts.io_scale);
  }
  return out;
}

/// Resolve the pacing decision for this run (ReplayPace::Auto paces
/// exactly the profiles whose gaps carry information).
bool replay_paced(const EmulatorOptions& opts,
                  const profile::Profile& profile) {
  switch (opts.pace) {
    case ReplayPace::On:
      return true;
    case ReplayPace::Off:
      return false;
    default:
      return profile.variable_rate();
  }
}

/// The hoisted wants() screen for the legacy map path: an atom whose
/// declared metrics never appear in the replayed series set can never
/// want a sample, so the feed loop drops it from dispatch up front
/// (once per replay) instead of probing wants() per sample. Atoms that
/// declare nothing stay in — their wants() may key on anything.
std::vector<char> atoms_in_play(
    const std::vector<std::unique_ptr<atoms::Atom>>& active,
    const std::vector<profile::SampleDelta>& deltas) {
  std::set<std::string_view> recorded;
  for (const auto& d : deltas) {
    for (const auto& [metric, _] : d.deltas) recorded.insert(metric);
  }
  std::vector<char> in_play(active.size(), 1);
  for (size_t i = 0; i < active.size(); ++i) {
    const std::vector<std::string> wanted = active[i]->wanted_metrics();
    if (wanted.empty()) continue;
    in_play[i] = 0;
    for (const auto& name : wanted) {
      if (recorded.count(name) > 0) {
        in_play[i] = 1;
        break;
      }
    }
  }
  return in_play;
}

/// One recyclable slot of the frame pipeline: a row window plus the
/// consumer countdown. `busy` hands the slot back and forth between the
/// producer (fills, arms `remaining`, pushes) and the coordinator
/// (waits for `remaining` to hit zero, fires hooks, releases) — the
/// slot pool is what makes the steady state allocation-free.
struct FrameTask {
  size_t first_row = 0;
  size_t rows = 0;
  std::atomic<uint32_t> remaining{0};
  std::atomic<bool> busy{false};
};

}  // namespace

void ReplayEngine::mirror_builtin_stats(EmulationResult& result,
                                        const std::string& name,
                                        const atoms::AtomStats& stats) {
  if (name == "compute") result.compute = stats;
  if (name == "memory") result.memory = stats;
  if (name == "storage") result.storage = stats;
  if (name == "network") result.network = stats;
}

EmulationResult ReplayEngine::replay(const profile::Profile& profile,
                                     const SampleHook& per_sample_hook) {
  EmulationResult result;
  const sys::Stopwatch total;

  // --- startup: build atoms, warm the kernel (calibration) -----------------
  const sys::Stopwatch startup;

  // The engine replays in ONE process. Forking and splitting the budget
  // across ranks is the Emulator driver's job; accepting Process mode
  // here would silently consume the full N-rank budget in-process.
  if (options_.parallel_mode == ParallelMode::Process &&
      options_.parallel_degree > 1) {
    throw sys::ConfigError(
        "ReplayEngine replays in-process; use Emulator for Process mode");
  }

  EmulatorOptions opts = options_;
  if (opts.parallel_mode == ParallelMode::OpenMp && opts.parallel_degree > 1) {
    opts.compute.kernel = "omp";
    opts.compute.omp_threads = opts.parallel_degree;
    opts.compute.time_scale = parallel_time_factor(
        opts.parallel_degree,
        resource::active_resource().omp_overhead_per_worker);
  }

  const atoms::AtomBuildContext context{opts.compute, opts.memory,
                                        opts.storage, opts.network};
  const std::vector<std::string> atom_names = resolve_atom_set(opts);
  std::vector<std::unique_ptr<atoms::Atom>> active;
  for (const auto& name : atom_names) {
    active.push_back(registry_->create(name, context));
  }

  // Emulation runs are themselves profile-able: publish consumed
  // counters through the cooperative trace when one is requested.
  auto trace = watchers::TraceWriter::from_env();
  for (auto& atom : active) atom->set_trace(trace.get());

  result.startup_seconds = startup.elapsed();

  // --- the global sample feed loop (section 4.2) ---------------------------
  if (opts.replay_batch >= 2) {
    if (opts.replay_frames) {
      feed_batched_frames(profile, opts, active, per_sample_hook, result);
    } else {
      feed_batched(profile, opts, active, per_sample_hook, result);
    }
  } else if (opts.replay_frames) {
    feed_single_frames(profile, opts, active, per_sample_hook, result);
  } else {
    feed_single(profile, opts, active, per_sample_hook, result);
  }

  for (size_t i = 0; i < active.size(); ++i) {
    result.atom_stats[atom_names[i]] = active[i]->stats();
    mirror_builtin_stats(result, atom_names[i], active[i]->stats());
  }

  result.wall_seconds = total.elapsed();
  result.ranks_ok = 1;
  return result;
}

void ReplayEngine::feed_single(
    const profile::Profile& profile, const EmulatorOptions& opts,
    const std::vector<std::unique_ptr<atoms::Atom>>& active,
    const SampleHook& per_sample_hook, EmulationResult& result) {
  auto deltas = profile.sample_deltas();
  const bool identity = identity_scaling(opts);
  const std::vector<char> in_play = atoms_in_play(active, deltas);
  // Pacing clock: sample k is released at the sum of the recorded gaps
  // (durations) of samples 1..k past the replay start. The first sample
  // dispatches immediately — its duration describes the period BEFORE
  // it, which the replay has no counterpart for.
  const bool paced = replay_paced(opts, profile);
  const double t0 = paced ? sys::steady_now() : 0.0;
  double offset = 0.0;
  for (auto& raw : deltas) {
    if (!identity) raw = scale_delta(std::move(raw), opts);
    const profile::SampleDelta& delta = raw;
    if (paced && result.samples_replayed > 0) {
      offset += delta.duration;
      const double wait = t0 + offset - sys::steady_now();
      if (wait > 0) sys::sleep_for(wait);
    }

    // All resource consumptions of one sample start concurrently; the
    // sample ends when the last one completes (Fig. 2).
    std::vector<std::thread> workers;
    for (size_t i = 0; i < active.size(); ++i) {
      if (in_play[i] == 0) continue;
      const auto& atom = active[i];
      if (!atom->wants(delta)) continue;
      workers.emplace_back([&atom, &delta] {
        try {
          atom->consume(delta);
        } catch (const std::exception&) {
          // A failing atom must not wedge the sample barrier; the
          // shortfall shows up in the atom's stats.
        }
      });
    }
    for (auto& w : workers) w.join();
    if (per_sample_hook) per_sample_hook(result.samples_replayed);
    ++result.samples_replayed;
  }
}

void ReplayEngine::feed_single_frames(
    const profile::Profile& profile, const EmulatorOptions& opts,
    const std::vector<std::unique_ptr<atoms::Atom>>& active,
    const SampleHook& per_sample_hook, EmulationResult& result) {
  // The compiled loop: scale factors are already baked into the table's
  // lanes, and per-atom dispatch is a trigger-lane read instead of a
  // wants() map probe. Barrier and hook semantics are identical to
  // feed_single — one thread per wanting atom per sample, sample ends
  // when the last atom finishes.
  const ReplayPlan plan(profile, opts, active);
  const profile::DeltaTable& table = plan.table();
  const bool paced = replay_paced(opts, profile);
  const double t0 = paced ? sys::steady_now() : 0.0;
  double offset = 0.0;
  profile::SampleDelta boxed;  ///< per-row scratch for adapter atoms
  for (size_t row = 0; row < table.rows(); ++row) {
    if (paced && row > 0) {
      offset += table.duration(row);
      const double wait = t0 + offset - sys::steady_now();
      if (wait > 0) sys::sleep_for(wait);
    }
    const profile::DeltaFrame frame = table.frame(row, 1);
    // Adapter atoms see the legacy map shape; unbox the row once and
    // share it across all of them (their wants() gates dispatch exactly
    // like the map path).
    if (plan.any_adapter()) boxed = table.unbox(row);

    std::vector<std::thread> workers;
    for (size_t i = 0; i < active.size(); ++i) {
      const atoms::LaneMask& mask = plan.mask(i);
      if (mask.idle) continue;
      atoms::Atom* atom = active[i].get();
      if (mask.adapter) {
        if (!atom->wants(boxed)) continue;
        workers.emplace_back([atom, &boxed] {
          try {
            atom->consume(boxed);
          } catch (const std::exception&) {
            // Same contract as feed_single: record, never propagate.
          }
        });
      } else {
        if (!mask.row_wanted(frame, 0)) continue;
        workers.emplace_back([atom, frame, &mask] {
          try {
            atom->consume_frame(frame, mask);
          } catch (const std::exception&) {
            // consume_frame must not throw; belt and braces.
          }
        });
      }
    }
    for (auto& w : workers) w.join();
    if (per_sample_hook) per_sample_hook(row);
    ++result.samples_replayed;
  }
}

void ReplayEngine::feed_batched(
    const profile::Profile& profile, const EmulatorOptions& opts,
    const std::vector<std::unique_ptr<atoms::Atom>>& active,
    const SampleHook& per_sample_hook, EmulationResult& result) {
  const size_t batch_size = opts.replay_batch;
  const size_t depth = opts.replay_queue_depth;

  // One bounded queue per atom consumer, plus one for this thread (the
  // coordinator), which restores per-sample ordering: it waits for the
  // batch's completion latch, then fires the hook for every sample in
  // recorded order. Queues share the same depth, so the producer is
  // back-pressured by the slowest party.
  std::vector<std::unique_ptr<SampleQueue>> queues;
  queues.reserve(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    queues.push_back(std::make_unique<SampleQueue>(depth));
  }
  SampleQueue inflight(depth);

  // Persistent consumers: one thread per atom for the whole run (the
  // amortization over single mode's thread-per-atom-per-sample). Each
  // drains its own queue in FIFO order, so the atom sees exactly the
  // sample sequence single mode would feed it.
  std::vector<std::thread> consumers;
  consumers.reserve(active.size());
  for (size_t i = 0; i < active.size(); ++i) {
    atoms::Atom* atom = active[i].get();
    SampleQueue* queue = queues[i].get();
    consumers.emplace_back([atom, queue] {
      while (const auto batch = queue->pop()) {
        for (const auto& delta : batch->deltas) {
          if (!atom->wants(delta)) continue;
          try {
            atom->consume(delta);
          } catch (const std::exception&) {
            // Same contract as single mode: a failing atom must not
            // wedge the batch; the shortfall shows up in its stats.
          }
        }
        batch->mark_consumed();
      }
    });
  }

  // Producer: decode (sample_deltas merges and differences the watcher
  // series — the expensive part) and scale on a dedicated thread,
  // overlapping with consumption. The tail batch is flushed
  // unconditionally: a partial final batch carries real samples and
  // must never be dropped. `aborted` is the coordinator's error
  // signal: once set, producing more work is pointless.
  std::atomic<bool> aborted{false};
  std::exception_ptr producer_error;
  // Pacing happens in the producer, at batch granularity: each batch is
  // released at its FIRST sample's recorded offset. Barrier and hook
  // order are untouched — the sleep only delays production.
  const bool paced = replay_paced(opts, profile);
  const double t0 = paced ? sys::steady_now() : 0.0;
  std::thread producer([&] {
    try {
      auto deltas = profile.sample_deltas();
      const bool identity = identity_scaling(opts);
      std::shared_ptr<SampleBatch> batch;
      size_t index = 0;
      double offset = 0.0;        ///< recorded time of the current sample
      double batch_offset = 0.0;  ///< recorded time of the batch's first
      const auto dispatch = [&] {
        if (!batch || batch->deltas.empty()) return;
        if (paced) {
          const double wait = t0 + batch_offset - sys::steady_now();
          if (wait > 0) sys::sleep_for(wait);
        }
        batch->expect_consumers(queues.size());
        // The coordinator sees the batch first so completion latches
        // are awaited strictly in production order.
        inflight.push(batch);
        for (const auto& queue : queues) queue->push(batch);
        batch.reset();
      };
      for (auto& raw : deltas) {
        if (aborted.load(std::memory_order_relaxed)) break;
        profile::SampleDelta scaled =
            identity ? std::move(raw) : scale_delta(std::move(raw), opts);
        if (index > 0) offset += scaled.duration;
        if (!batch) {
          batch = std::make_shared<SampleBatch>();
          batch->first_index = index;
          batch->deltas.reserve(batch_size);
          batch_offset = offset;
        }
        batch->deltas.push_back(std::move(scaled));
        ++index;
        if (batch->deltas.size() >= batch_size) dispatch();
      }
      if (!aborted.load(std::memory_order_relaxed)) {
        dispatch();  // the partial tail batch
      }
    } catch (...) {
      // Decode failure (malformed profile): surface it on the replay()
      // caller's thread after the pipeline drained.
      producer_error = std::current_exception();
    }
    inflight.close();
    for (const auto& queue : queues) queue->close();
  });

  std::exception_ptr hook_error;
  try {
    while (const auto batch = inflight.pop()) {
      batch->wait_consumed();
      for (size_t k = 0; k < batch->deltas.size(); ++k) {
        if (per_sample_hook) per_sample_hook(batch->first_index + k);
        ++result.samples_replayed;
      }
    }
  } catch (...) {
    // A throwing hook (e.g. a ring-exchange failure in Process mode)
    // must not leave the producer blocked on a full queue: signal the
    // abort, then close everything discarding queued backlog, so
    // consumers stop after the batch they are on and the producer stops
    // decoding — mirroring single mode, which performs no further atom
    // work past the failing sample. Then propagate.
    hook_error = std::current_exception();
    aborted.store(true, std::memory_order_relaxed);
    inflight.close(/*discard_pending=*/true);
    for (const auto& queue : queues) queue->close(/*discard_pending=*/true);
  }

  producer.join();
  for (auto& consumer : consumers) consumer.join();
  if (hook_error) std::rethrow_exception(hook_error);
  if (producer_error) std::rethrow_exception(producer_error);
}

void ReplayEngine::feed_batched_frames(
    const profile::Profile& profile, const EmulatorOptions& opts,
    const std::vector<std::unique_ptr<atoms::Atom>>& active,
    const SampleHook& per_sample_hook, EmulationResult& result) {
  // The compiled pipeline: the plan is built once up front (decode +
  // scale — the work the map producer re-does per sample), then frames
  // flow as {first_row, rows} windows over the shared table through
  // lock-free SPSC rings, recycled from a fixed task pool — the steady
  // state allocates nothing. Semantics mirror feed_batched exactly:
  // per-atom consumption in recorded order, hooks fired in recorded
  // order after every atom finished the batch, pacing at batch
  // granularity.
  const ReplayPlan plan(profile, opts, active);
  const profile::DeltaTable& table = plan.table();
  const size_t batch_size = opts.replay_batch;
  const size_t depth = std::max<size_t>(1, opts.replay_queue_depth);

  // Idle atoms (mask.idle: none of their metrics recorded) get no
  // consumer thread and no ring at all — the hoisted form of the map
  // path's per-sample wants() misses.
  std::vector<size_t> engaged;
  for (size_t i = 0; i < active.size(); ++i) {
    if (!plan.mask(i).idle) engaged.push_back(i);
  }

  // The task pool: depth tasks can sit in the rings, one can be held by
  // the coordinator and one by the producer — so depth + 2 slots mean
  // the producer never waits on a slot that isn't about to free.
  std::vector<FrameTask> pool(depth + 2);
  std::vector<std::unique_ptr<SpscRing<FrameTask*>>> rings;
  rings.reserve(engaged.size());
  for (size_t k = 0; k < engaged.size(); ++k) {
    rings.push_back(std::make_unique<SpscRing<FrameTask*>>(depth));
  }
  SpscRing<FrameTask*> inflight(depth);

  std::vector<std::thread> consumers;
  consumers.reserve(engaged.size());
  for (size_t k = 0; k < engaged.size(); ++k) {
    atoms::Atom* atom = active[engaged[k]].get();
    const atoms::LaneMask* mask = &plan.mask(engaged[k]);
    SpscRing<FrameTask*>* ring = rings[k].get();
    const profile::DeltaTable* tab = &table;
    consumers.emplace_back([atom, mask, ring, tab] {
      FrameTask* task = nullptr;
      while (ring->pop(task)) {
        try {
          atom->consume_frame(tab->frame(task->first_row, task->rows), *mask);
        } catch (const std::exception&) {
          // consume_frame must not throw; belt and braces.
        }
        task->remaining.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  std::atomic<bool> aborted{false};
  const bool paced = replay_paced(opts, profile);
  const double t0 = paced ? sys::steady_now() : 0.0;
  std::thread producer([&] {
    // Slicing only — the decode already happened in the plan. Pacing
    // keeps feed_batched's batch-granularity semantics: a batch is
    // released at its first sample's recorded offset (sum of durations
    // 1..first_row).
    double offset = 0.0;
    size_t covered = 0;  ///< offset includes durations 1..covered
    size_t next_slot = 0;
    for (size_t start = 0; start < table.rows(); start += batch_size) {
      if (aborted.load(std::memory_order_relaxed)) break;
      FrameTask* task = &pool[next_slot % pool.size()];
      ++next_slot;
      // Recycle: wait for the coordinator to release the slot. Abort
      // check required — after a hook error nobody releases slots.
      unsigned spins = 0;
      while (task->busy.load(std::memory_order_acquire)) {
        if (aborted.load(std::memory_order_relaxed)) return;
        spsc_backoff(spins);
      }
      task->first_row = start;
      task->rows = std::min(batch_size, table.rows() - start);
      task->remaining.store(static_cast<uint32_t>(engaged.size()),
                            std::memory_order_relaxed);
      task->busy.store(true, std::memory_order_relaxed);
      if (paced) {
        for (size_t j = covered + 1; j <= start; ++j) {
          offset += table.duration(j);
        }
        covered = start;
        const double wait = t0 + offset - sys::steady_now();
        if (wait > 0) sys::sleep_for(wait);
      }
      // The coordinator sees the task first (inflight before the atom
      // rings) so completion is awaited strictly in production order;
      // ring pushes publish the task fields to every consumer.
      if (!inflight.push(task)) break;
      for (const auto& ring : rings) {
        if (!ring->push(task)) break;
      }
    }
    inflight.close();
    for (const auto& ring : rings) ring->close();
  });

  std::exception_ptr hook_error;
  try {
    FrameTask* task = nullptr;
    while (inflight.pop(task)) {
      // The frame barrier: every engaged atom decremented `remaining`.
      unsigned spins = 0;
      while (task->remaining.load(std::memory_order_acquire) != 0) {
        spsc_backoff(spins);
      }
      for (size_t k = 0; k < task->rows; ++k) {
        if (per_sample_hook) per_sample_hook(task->first_row + k);
        ++result.samples_replayed;
      }
      task->busy.store(false, std::memory_order_release);
    }
  } catch (...) {
    // Same shutdown dance as feed_batched: stop the producer (which may
    // be blocked pushing or waiting for a slot this coordinator will
    // never release), stop the consumers after their current frame.
    hook_error = std::current_exception();
    aborted.store(true, std::memory_order_relaxed);
    inflight.close(/*discard_pending=*/true);
    for (const auto& ring : rings) ring->close(/*discard_pending=*/true);
  }

  producer.join();
  for (auto& consumer : consumers) consumer.join();
  if (hook_error) std::rethrow_exception(hook_error);
}

}  // namespace synapse::emulator
