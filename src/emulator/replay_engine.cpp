#include "emulator/replay_engine.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"
#include "watchers/trace.hpp"

namespace synapse::emulator {

namespace m = synapse::metrics;

ReplayEngine::ReplayEngine(EmulatorOptions options,
                           const atoms::AtomRegistry* registry)
    : options_(std::move(options)),
      registry_(registry != nullptr ? registry
                                    : &atoms::AtomRegistry::instance()) {
  if (options_.parallel_degree < 1) options_.parallel_degree = 1;
}

std::vector<std::string> ReplayEngine::resolve_atom_set(
    const EmulatorOptions& options) {
  std::vector<std::string> names;
  if (!options.atom_set.empty()) {
    // Deduplicate, keeping first-occurrence order: a repeated name
    // would double-consume the budget yet report only one atom's stats
    // (and double-count in the process-parallel slot aggregation).
    for (const auto& name : options.atom_set) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
    return names;
  }
  if (options.emulate_compute) names.push_back("compute");
  if (options.emulate_memory) names.push_back("memory");
  if (options.emulate_storage) names.push_back("storage");
  if (options.emulate_network) names.push_back("network");
  return names;
}

double ReplayEngine::parallel_time_factor(int workers,
                                          double overhead_per_worker) {
  if (workers <= 1) return 1.0;
  // Amdahl serial fraction (the emulator's sample feed is sequential)
  // plus linear per-worker coordination cost: time(N) =
  // T1 * (f + (1-f)/N) * (1 + a*(N-1)). Good scaling for small N,
  // diminishing returns toward a full node — the Fig. 12 shape.
  constexpr double kSerialFraction = 0.03;
  const double n = static_cast<double>(workers);
  return (kSerialFraction + (1.0 - kSerialFraction) / n) *
         (1.0 + overhead_per_worker * (n - 1.0));
}

namespace {

/// Apply the emulator's workload overrides to one sample delta.
profile::SampleDelta scale_delta(const profile::SampleDelta& in,
                                 const EmulatorOptions& opts) {
  profile::SampleDelta out = in;
  auto scale = [&out](std::string_view key, double factor) {
    const auto it = out.deltas.find(std::string(key));
    if (it != out.deltas.end()) it->second *= factor;
  };
  if (opts.cycle_scale != 1.0) {
    scale(m::kCyclesUsed, opts.cycle_scale);
    scale(m::kInstructions, opts.cycle_scale);
    scale(m::kFlops, opts.cycle_scale);
  }
  if (opts.memory_scale != 1.0) {
    scale(m::kMemAllocated, opts.memory_scale);
    scale(m::kMemFreed, opts.memory_scale);
  }
  if (opts.io_scale != 1.0) {
    scale(m::kBytesRead, opts.io_scale);
    scale(m::kBytesWritten, opts.io_scale);
  }
  return out;
}

}  // namespace

void ReplayEngine::mirror_builtin_stats(EmulationResult& result,
                                        const std::string& name,
                                        const atoms::AtomStats& stats) {
  if (name == "compute") result.compute = stats;
  if (name == "memory") result.memory = stats;
  if (name == "storage") result.storage = stats;
  if (name == "network") result.network = stats;
}

EmulationResult ReplayEngine::replay(const profile::Profile& profile,
                                     const SampleHook& per_sample_hook) {
  EmulationResult result;
  const sys::Stopwatch total;

  // --- startup: build atoms, warm the kernel (calibration) -----------------
  const sys::Stopwatch startup;

  // The engine replays in ONE process. Forking and splitting the budget
  // across ranks is the Emulator driver's job; accepting Process mode
  // here would silently consume the full N-rank budget in-process.
  if (options_.parallel_mode == ParallelMode::Process &&
      options_.parallel_degree > 1) {
    throw sys::ConfigError(
        "ReplayEngine replays in-process; use Emulator for Process mode");
  }

  EmulatorOptions opts = options_;
  if (opts.parallel_mode == ParallelMode::OpenMp && opts.parallel_degree > 1) {
    opts.compute.kernel = "omp";
    opts.compute.omp_threads = opts.parallel_degree;
    opts.compute.time_scale = parallel_time_factor(
        opts.parallel_degree,
        resource::active_resource().omp_overhead_per_worker);
  }

  const atoms::AtomBuildContext context{opts.compute, opts.memory,
                                        opts.storage, opts.network};
  const std::vector<std::string> atom_names = resolve_atom_set(opts);
  std::vector<std::unique_ptr<atoms::Atom>> active;
  for (const auto& name : atom_names) {
    active.push_back(registry_->create(name, context));
  }

  // Emulation runs are themselves profile-able: publish consumed
  // counters through the cooperative trace when one is requested.
  auto trace = watchers::TraceWriter::from_env();
  for (auto& atom : active) atom->set_trace(trace.get());

  result.startup_seconds = startup.elapsed();

  // --- the global sample feed loop (section 4.2) ---------------------------
  const auto deltas = profile.sample_deltas();
  for (const auto& raw : deltas) {
    const profile::SampleDelta delta = scale_delta(raw, opts);

    // All resource consumptions of one sample start concurrently; the
    // sample ends when the last one completes (Fig. 2).
    std::vector<std::thread> workers;
    for (auto& atom : active) {
      if (!atom->wants(delta)) continue;
      workers.emplace_back([&atom, &delta] {
        try {
          atom->consume(delta);
        } catch (const std::exception&) {
          // A failing atom must not wedge the sample barrier; the
          // shortfall shows up in the atom's stats.
        }
      });
    }
    for (auto& w : workers) w.join();
    if (per_sample_hook) per_sample_hook(result.samples_replayed);
    ++result.samples_replayed;
  }

  for (size_t i = 0; i < active.size(); ++i) {
    result.atom_stats[atom_names[i]] = active[i]->stats();
    mirror_builtin_stats(result, atom_names[i], active[i]->stats());
  }

  result.wall_seconds = total.elapsed();
  result.ranks_ok = 1;
  return result;
}

}  // namespace synapse::emulator
