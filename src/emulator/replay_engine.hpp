#pragma once
// The replay engine: the ONE place that feeds a profile's sample
// sequence to emulation atoms (paper section 4.2, Fig. 2 semantics).
//
// Both emulation modes are drivers over this engine:
//   - single mode runs one engine in-process;
//   - process-parallel mode forks N ranks, each running one engine on a
//     per-rank slice of the options (emulator.cpp).
//
// The engine resolves the configured atom set through an AtomRegistry
// (atoms/atom_registry.hpp), so custom atoms registered at runtime
// participate in replay without any emulator change. Per-sample
// semantics are unchanged from the paper: samples replay strictly in
// recorded order, all atoms of one sample start concurrently, the
// sample ends when the LAST atom finishes, and intra-sample timing is
// discarded.
//
// Two feed modes drive that loop (EmulatorOptions::replay_batch):
//
//   single (replay_batch <= 1) - the paper-faithful loop: one thread
//     per atom per sample, a barrier after every sample.
//
//   batch (replay_batch >= 2) - the async pipeline: a producer thread
//     decodes+scales deltas into batches and feeds one persistent
//     consumer thread per atom through bounded SampleQueues
//     (sample_queue.hpp). Each atom consumes its samples in recorded
//     order, so non-timing stats are bit-identical to single mode; the
//     barrier (and the per-sample hook) moves to batch granularity.
//
// Orthogonally, EmulatorOptions::replay_frames (default on) compiles
// each replay into a ReplayPlan (replay_plan.hpp): deltas become a
// columnar DeltaTable with interned metric lanes, scale factors are
// baked in once, and per-sample dispatch reads trigger lanes instead
// of probing wants() with string keys. Batch mode then feeds
// {first_row, rows} frame windows through lock-free SPSC rings
// (spsc_ring.hpp), recycled from a fixed pool — the steady state
// allocates nothing. Atoms that don't implement the frame interface
// are fed through an unbox adapter and behave exactly as before.
//
// Either mode optionally paces the feed by the recorded inter-sample
// gaps (EmulatorOptions::pace; default: variable-rate profiles only).
// Single mode sleeps before each delta, batch mode releases each batch
// at its first sample's recorded offset — consumption order, barriers
// and hook order are identical paced or not.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atoms/atom_registry.hpp"
#include "emulator/emulator.hpp"
#include "profile/profile.hpp"

namespace synapse::emulator {

class ReplayEngine {
 public:
  /// Called after every replayed sample with its index (0-based) —
  /// process-parallel mode hangs the halo-exchange ring step here.
  using SampleHook = std::function<void(size_t)>;

  /// `registry` = nullptr uses the process-wide AtomRegistry::instance().
  /// The registry must outlive the engine; it is not copied.
  explicit ReplayEngine(EmulatorOptions options,
                        const atoms::AtomRegistry* registry = nullptr);

  /// Build the configured atoms (startup/calibration), feed every
  /// sample delta through the barrier loop, and aggregate per-atom
  /// stats. Blocks until the last sample completes.
  EmulationResult replay(const profile::Profile& profile,
                         const SampleHook& per_sample_hook = {});

  /// The atom names this engine will instantiate: the declarative
  /// EmulatorOptions::atom_set when non-empty, otherwise the built-ins
  /// selected by the emulate_* flags (network included only behind
  /// emulate_network).
  static std::vector<std::string> resolve_atom_set(
      const EmulatorOptions& options);

  /// Parallel-efficiency model for the VR compute time (Amdahl serial
  /// fraction + per-worker coordination overhead): scale factor applied
  /// to per-sample compute budgets when emulating with N workers.
  static double parallel_time_factor(int workers, double overhead_per_worker);

  /// Copy one atom's stats into the matching named EmulationResult slot
  /// (the built-ins' convenience mirrors); no-op for custom names.
  static void mirror_builtin_stats(EmulationResult& result,
                                   const std::string& name,
                                   const atoms::AtomStats& stats);

  const EmulatorOptions& options() const { return options_; }
  const atoms::AtomRegistry& registry() const { return *registry_; }

 private:
  /// The paper-faithful per-sample barrier loop (replay_batch <= 1).
  void feed_single(const profile::Profile& profile,
                   const EmulatorOptions& opts,
                   const std::vector<std::unique_ptr<atoms::Atom>>& active,
                   const SampleHook& per_sample_hook, EmulationResult& result);
  /// The async batched pipeline (replay_batch >= 2).
  void feed_batched(const profile::Profile& profile,
                    const EmulatorOptions& opts,
                    const std::vector<std::unique_ptr<atoms::Atom>>& active,
                    const SampleHook& per_sample_hook, EmulationResult& result);
  /// feed_single over a compiled ReplayPlan (replay_frames on).
  void feed_single_frames(
      const profile::Profile& profile, const EmulatorOptions& opts,
      const std::vector<std::unique_ptr<atoms::Atom>>& active,
      const SampleHook& per_sample_hook, EmulationResult& result);
  /// feed_batched over a compiled ReplayPlan: frame windows through
  /// lock-free SPSC rings, recycled from a fixed task pool.
  void feed_batched_frames(
      const profile::Profile& profile, const EmulatorOptions& opts,
      const std::vector<std::unique_ptr<atoms::Atom>>& active,
      const SampleHook& per_sample_hook, EmulationResult& result);

  EmulatorOptions options_;
  const atoms::AtomRegistry* registry_;  ///< not owned, never null
};

}  // namespace synapse::emulator
