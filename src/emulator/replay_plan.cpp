#include "emulator/replay_plan.hpp"

#include <string_view>

#include "profile/metrics.hpp"

namespace synapse::emulator {

namespace m = synapse::metrics;

bool identity_scaling(const EmulatorOptions& opts) {
  return opts.cycle_scale == 1.0 && opts.memory_scale == 1.0 &&
         opts.io_scale == 1.0;
}

ReplayPlan::ReplayPlan(
    const profile::Profile& profile, const EmulatorOptions& opts,
    const std::vector<std::unique_ptr<atoms::Atom>>& active)
    : table_(profile.delta_table()) {
  // Bake the workload overrides into the lanes they touch — the same
  // metric->factor routing as the map path's scale_delta, applied as
  // one contiguous multiply per lane instead of a map find per sample.
  // Absent cells hold 0.0 and stay 0.0, so presence is unaffected.
  if (!identity_scaling(opts)) {
    const auto scale = [this](std::string_view key, double factor) {
      table_.scale_lane(table_.lanes().id(key), factor);
    };
    if (opts.cycle_scale != 1.0) {
      scale(m::kCyclesUsed, opts.cycle_scale);
      scale(m::kInstructions, opts.cycle_scale);
      scale(m::kFlops, opts.cycle_scale);
    }
    if (opts.memory_scale != 1.0) {
      scale(m::kMemAllocated, opts.memory_scale);
      scale(m::kMemFreed, opts.memory_scale);
    }
    if (opts.io_scale != 1.0) {
      scale(m::kBytesRead, opts.io_scale);
      scale(m::kBytesWritten, opts.io_scale);
    }
  }

  masks_.reserve(active.size());
  for (const auto& atom : active) {
    atoms::LaneMask mask;
    const std::vector<std::string> wanted = atom->wanted_metrics();
    if (wanted.empty()) {
      // Undeclared routing: the atom may want anything, so it keeps the
      // per-sample wants() probe through the adapter path.
      mask.adapter = true;
      any_adapter_ = true;
    } else {
      for (const auto& name : wanted) {
        const uint32_t lane = table_.lanes().id(name);
        if (lane != profile::LaneTable::kNoLane) mask.triggers.push_back(lane);
      }
      // Every declared metric is unrecorded: no row can ever trigger,
      // so the feed loops drop the atom from dispatch entirely.
      mask.idle = mask.triggers.empty();
    }
    atom->bind_lanes(table_.lanes());
    masks_.push_back(std::move(mask));
  }
}

}  // namespace synapse::emulator
