#pragma once
// The compiled form of one replay: everything the feed loop used to
// re-derive per sample, resolved once up front.
//
// Building a plan (1) compiles the profile's deltas into a columnar
// DeltaTable (interned metric lanes — profile/delta_frame.hpp),
// (2) bakes the EmulatorOptions workload scale factors into the
// affected lanes as one contiguous multiply each (identity scaling is
// skipped entirely), and (3) resolves every atom's wanted_metrics()
// against the lane table into a LaneMask, so per-sample dispatch is a
// couple of dense lane reads instead of string-keyed map probes. Atoms
// that declare metrics none of which were recorded are marked idle and
// never dispatched to; atoms that declare nothing get the adapter mask
// (per-row unbox + wants()/consume() keeps them correct).

#include <memory>
#include <vector>

#include "atoms/atom.hpp"
#include "emulator/emulator.hpp"
#include "profile/delta_frame.hpp"
#include "profile/profile.hpp"

namespace synapse::emulator {

/// True when the options' workload scale factors are all 1.0 — the
/// common case, in which both feed paths skip scaling work entirely.
bool identity_scaling(const EmulatorOptions& opts);

class ReplayPlan {
 public:
  /// Compiles the profile + options for `active`; calls bind_lanes() on
  /// every atom. The plan must outlive every frame fed from it.
  ReplayPlan(const profile::Profile& profile, const EmulatorOptions& opts,
             const std::vector<std::unique_ptr<atoms::Atom>>& active);

  const profile::DeltaTable& table() const { return table_; }
  /// Mask of active[atom_index] (same indexing as the constructor arg).
  const atoms::LaneMask& mask(size_t atom_index) const {
    return masks_[atom_index];
  }
  /// Any adapter-dispatched atom present? The single-mode feed unboxes
  /// each row once for all of them when true.
  bool any_adapter() const { return any_adapter_; }

 private:
  profile::DeltaTable table_;
  std::vector<atoms::LaneMask> masks_;
  bool any_adapter_ = false;
};

}  // namespace synapse::emulator
