#include "emulator/sample_queue.hpp"

namespace synapse::emulator {

// --- SampleBatch -----------------------------------------------------------
// The latch is per batch and hit once per consumer per batch (never per
// sample), so a mutex+cv is fine here; the hot per-batch handoff lives
// in the SPSC ring underneath SampleQueue.

void SampleBatch::expect_consumers(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  remaining_ = n;
}

void SampleBatch::mark_consumed() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_ > 0) --remaining_;
    if (remaining_ > 0) return;
  }
  cv_.notify_all();
}

void SampleBatch::wait_consumed() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

}  // namespace synapse::emulator
