#include "emulator/sample_queue.hpp"

#include <algorithm>

namespace synapse::emulator {

// --- SampleBatch -----------------------------------------------------------

void SampleBatch::expect_consumers(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  remaining_ = n;
}

void SampleBatch::mark_consumed() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_ > 0) --remaining_;
    if (remaining_ > 0) return;
  }
  cv_.notify_all();
}

void SampleBatch::wait_consumed() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
}

// --- SampleQueue -----------------------------------------------------------

SampleQueue::SampleQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

bool SampleQueue::push(std::shared_ptr<SampleBatch> batch) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(batch));
  }
  cv_.notify_all();
  return true;
}

std::shared_ptr<SampleBatch> SampleQueue::pop() {
  std::shared_ptr<SampleBatch> batch;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return nullptr;  // closed and drained
    batch = std::move(items_.front());
    items_.pop_front();
  }
  cv_.notify_all();  // a blocked push may now proceed
  return batch;
}

void SampleQueue::close(bool discard_pending) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    if (discard_pending) items_.clear();
  }
  cv_.notify_all();
}

}  // namespace synapse::emulator
