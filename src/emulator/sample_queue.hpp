#pragma once
// The plumbing of the batched replay pipeline (ReplayEngine's `batch`
// execution mode): decoded+scaled sample deltas travel from the
// producer thread to the per-atom consumer threads in SampleBatch
// units, through bounded SampleQueues.
//
// A batch is produced once and shared read-only by every consumer; a
// per-batch completion latch lets the coordinating thread restore the
// engine's per-sample ordering guarantees (the SampleHook fires in
// recorded sample order, after every atom has consumed the batch).
// The queues are bounded, so a slow consumer back-pressures the
// producer instead of letting decoded batches pile up without limit.
//
// The queue itself is a lock-free SPSC ring (spsc_ring.hpp): each queue
// has exactly one producer (the decode thread) and one consumer (its
// atom thread, or the coordinator for the in-flight queue), so batch
// handoff takes no locks. Only the per-batch completion latch — hit
// once per batch, not per sample — still uses a mutex+cv.

#include <cstddef>
#include <memory>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "emulator/spsc_ring.hpp"
#include "profile/profile.hpp"

namespace synapse::emulator {

/// One contiguous run of decoded+scaled sample deltas, shared read-only
/// by every consumer. `first_index` is the 0-based index of the first
/// delta within the full replay (hooks report global sample indices).
class SampleBatch {
 public:
  size_t first_index = 0;
  std::vector<profile::SampleDelta> deltas;

  /// Arm the completion latch: the batch is done once `n` consumers
  /// called mark_consumed(). Must be called before the batch is pushed
  /// to any queue; n == 0 means "already done".
  void expect_consumers(size_t n);

  /// One consumer finished this batch (signals wait_consumed when all
  /// expected consumers did).
  void mark_consumed();

  /// Block until every expected consumer finished the batch.
  void wait_consumed();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t remaining_ = 0;
};

/// Bounded FIFO of SampleBatch handles over a lock-free SPSC ring. One
/// queue per consumer: batches are not competed for, every consumer
/// sees every batch, so the producer pushes the same shared handle into
/// each queue. push() blocks while the queue is at capacity
/// (backpressure); pop() blocks until a batch arrives or the queue is
/// closed and drained.
class SampleQueue {
 public:
  /// `capacity` is clamped to >= 1 (a zero-capacity queue could never
  /// accept a push).
  explicit SampleQueue(size_t capacity) : ring_(capacity) {}

  /// Enqueue, blocking while full. Returns false (and drops the batch)
  /// when the queue was closed — the consumer is gone, nobody will pop.
  bool push(std::shared_ptr<SampleBatch> batch) {
    return ring_.push(std::move(batch));
  }

  /// Dequeue, blocking while empty. nullptr once the queue is closed
  /// AND drained — the consumer's termination signal.
  std::shared_ptr<SampleBatch> pop() {
    std::shared_ptr<SampleBatch> batch;
    if (!ring_.pop(batch)) return nullptr;
    return batch;
  }

  /// No further pushes; pending batches remain poppable (a normal
  /// end-of-stream must drain). `discard_pending` additionally stops
  /// pop() immediately — the error-path variant, so consumers stop
  /// after the batch they are on instead of working through stale
  /// backlog. Idempotent; callable from any thread.
  void close(bool discard_pending = false) { ring_.close(discard_pending); }

 private:
  SpscRing<std::shared_ptr<SampleBatch>> ring_;
};

}  // namespace synapse::emulator
