#pragma once
// Bounded lock-free single-producer/single-consumer ring.
//
// The transport under the batched replay pipeline (sample_queue.hpp and
// the frame path in replay_engine.cpp): one producer thread pushes, one
// consumer thread pops, and a third party (the coordinator) may close
// the ring to shut the pipeline down. Slots are a fixed array; head and
// tail are monotonically increasing counters synchronized with
// acquire/release — pushing publishes the slot write, popping publishes
// the slot release — so steady-state transfers take no locks and no
// allocations.
//
// Blocking semantics mirror the original mutex+cv SampleQueue:
//   push()  blocks while full, returns false once closed (item dropped);
//   pop()   blocks while empty, returns false once closed AND drained —
//           or immediately after close(discard_pending=true), leaving
//           undrained items to die with the ring;
//   close() idempotent, callable from any thread.
//
// Waiting is a spin that escalates to yield and then to a short sleep —
// C++17 has no std::atomic::wait, and replay stalls are either
// nanoseconds (slot turnaround) or "the other side is doing real atom
// work", where a microsecond sleep is noise.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace synapse::emulator {

/// One escalation step of a bounded spin-wait; `spins` is the caller's
/// loop counter. Busy-spin first (the common sub-microsecond handoff),
/// then yield the core, then sleep outright so a genuinely stalled peer
/// does not burn a CPU.
inline void spsc_backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) return;
  if (spins < 256) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

template <typename T>
class SpscRing {
 public:
  /// `capacity` is clamped to >= 1 (a zero-capacity ring could never
  /// accept a push).
  explicit SpscRing(size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity), slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Enqueue, blocking while full. Returns false (dropping the item)
  /// once the ring is closed. Producer thread only.
  bool push(T item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    unsigned spins = 0;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (tail - head_.load(std::memory_order_acquire) < capacity_) break;
      spsc_backoff(spins);
    }
    slots_[tail % capacity_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue into `out`, blocking while empty. Returns false once the
  /// ring is closed and drained — or closed discarding, in which case
  /// whatever is still queued stays in its slots until destruction.
  /// Consumer thread only.
  bool pop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    unsigned spins = 0;
    for (;;) {
      if (discard_.load(std::memory_order_acquire)) return false;
      if (head != tail_.load(std::memory_order_acquire)) break;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check after the closed flag: a final push may have landed
        // between the empty check and the close.
        if (head == tail_.load(std::memory_order_acquire)) return false;
        break;
      }
      spsc_backoff(spins);
    }
    out = std::move(slots_[head % capacity_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// No further pushes; pending items remain poppable (a normal
  /// end-of-stream must drain). `discard_pending` additionally makes
  /// pop() stop immediately — the error-path variant, so the consumer
  /// stops after the item it is on instead of working through stale
  /// backlog. Idempotent; callable from any thread (flags only, no slot
  /// access, so it is safe against a producer mid-push).
  void close(bool discard_pending = false) {
    // Discard is ordered before closed so a consumer woken by the close
    // observes the discard request with it; the benign race (a consumer
    // popping one last item between the two stores) matches the "stops
    // after the item it is on" contract.
    if (discard_pending) discard_.store(true, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  const size_t capacity_;
  std::vector<T> slots_;
  std::atomic<size_t> head_{0};  ///< next slot to pop (consumer-owned)
  std::atomic<size_t> tail_{0};  ///< next slot to fill (producer-owned)
  std::atomic<bool> closed_{false};
  std::atomic<bool> discard_{false};
};

}  // namespace synapse::emulator
