#include "json/arena.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace synapse::json {

// --- Arena -----------------------------------------------------------------

void* Arena::allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  // Oversized requests get a dedicated slab on a side list, so the
  // current uniform slab keeps serving small nodes and the bump pointer
  // never walks into big-slab memory.
  if (bytes + align > slab_bytes_) {
    Slab big;
    big.size = bytes + align;
    big.data = std::make_unique<char[]>(big.size);
    char* base = big.data.get();
    const size_t shift =
        (align - reinterpret_cast<uintptr_t>(base) % align) % align;
    used_ += bytes;
    oversized_.push_back(std::move(big));
    return base + shift;
  }
  for (;;) {
    if (current_ < slabs_.size()) {
      char* base = slabs_[current_].data.get() + offset_;
      const size_t shift =
          (align - reinterpret_cast<uintptr_t>(base) % align) % align;
      if (offset_ + shift + bytes <= slabs_[current_].size) {
        offset_ += shift + bytes;
        used_ += bytes;
        return base + shift;
      }
      // Current slab exhausted: move on (a reused slab may follow).
      ++current_;
      offset_ = 0;
      continue;
    }
    Slab slab;
    slab.size = slab_bytes_;
    slab.data = std::make_unique<char[]>(slab.size);
    slabs_.push_back(std::move(slab));
    current_ = slabs_.size() - 1;
    offset_ = 0;
  }
}

void Arena::reset() {
  oversized_.clear();
  current_ = 0;
  offset_ = 0;
  used_ = 0;
}

size_t Arena::bytes_reserved() const {
  size_t total = 0;
  for (const auto& slab : slabs_) total += slab.size;
  for (const auto& slab : oversized_) total += slab.size;
  return total;
}

// --- ArenaValue ------------------------------------------------------------

namespace {
[[noreturn]] void arena_type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}
}  // namespace

bool ArenaValue::as_bool() const {
  if (type_ != Value::Type::Bool) arena_type_error("bool", type_);
  return bool_;
}

double ArenaValue::as_double() const {
  if (type_ != Value::Type::Number) arena_type_error("number", type_);
  return number_;
}

std::string_view ArenaValue::as_string() const {
  if (type_ != Value::Type::String) arena_type_error("string", type_);
  return {string_, count_};
}

size_t ArenaValue::size() const {
  if (type_ == Value::Type::Array || type_ == Value::Type::Object) {
    return count_;
  }
  return 0;
}

const ArenaValue& ArenaValue::at(size_t index) const {
  if (type_ != Value::Type::Array) arena_type_error("array", type_);
  if (index >= count_) {
    throw JsonError("array index " + std::to_string(index) + " out of range " +
                    std::to_string(count_));
  }
  return items_[index];
}

const ArenaValue* ArenaValue::find(std::string_view key) const {
  if (type_ != Value::Type::Object) return nullptr;
  for (uint32_t i = 0; i < count_; ++i) {
    if (members_[i].key == key) return &members_[i].value;
  }
  return nullptr;
}

const ArenaValue& ArenaValue::operator[](std::string_view key) const {
  if (type_ != Value::Type::Object) arena_type_error("object", type_);
  if (const ArenaValue* v = find(key)) return *v;
  throw JsonError("missing key: " + std::string(key));
}

double ArenaValue::get_or(std::string_view key, double dflt) const {
  const ArenaValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number_ : dflt;
}

std::string ArenaValue::get_or(std::string_view key,
                               const std::string& dflt) const {
  const ArenaValue* v = find(key);
  return v != nullptr && v->is_string() ? std::string(v->as_string()) : dflt;
}

bool ArenaValue::get_or(std::string_view key, bool dflt) const {
  const ArenaValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : dflt;
}

const ArenaValue* ArenaValue::items_begin() const {
  return type_ == Value::Type::Array ? items_ : nullptr;
}
const ArenaValue* ArenaValue::items_end() const {
  return type_ == Value::Type::Array ? items_ + count_ : nullptr;
}
const ArenaMember* ArenaValue::members_begin() const {
  return type_ == Value::Type::Object ? members_ : nullptr;
}
const ArenaMember* ArenaValue::members_end() const {
  return type_ == Value::Type::Object ? members_ + count_ : nullptr;
}

Value ArenaValue::to_value() const {
  switch (type_) {
    case Value::Type::Null: return Value(nullptr);
    case Value::Type::Bool: return Value(bool_);
    case Value::Type::Number: return Value(number_);
    case Value::Type::String: return Value(std::string(string_, count_));
    case Value::Type::Array: {
      Array arr;
      arr.reserve(count_);
      for (uint32_t i = 0; i < count_; ++i) {
        arr.push_back(items_[i].to_value());
      }
      return Value(std::move(arr));
    }
    case Value::Type::Object: {
      Object obj;
      for (uint32_t i = 0; i < count_; ++i) {
        obj[std::string(members_[i].key)] = members_[i].value.to_value();
      }
      return Value(std::move(obj));
    }
  }
  return Value(nullptr);  // unreachable
}

// --- parser ----------------------------------------------------------------

class ArenaParser {
 public:
  ArenaParser(std::string_view text, Arena& arena)
      : text_(text), arena_(arena) {}

  const ArenaValue& parse_document() {
    skip_ws();
    ArenaValue* root = arena_.allocate_array<ArenaValue>(1);
    *root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return *root;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("parse error at line " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  ArenaValue make_string(std::string_view s) {
    char* copy = arena_.allocate_array<char>(s.size());
    std::memcpy(copy, s.data(), s.size());
    ArenaValue v;
    v.type_ = Value::Type::String;
    v.string_ = copy;
    v.count_ = static_cast<uint32_t>(s.size());
    return v;
  }

  ArenaValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return make_string(parse_string());
      case 't': {
        if (consume_literal("true")) {
          ArenaValue v;
          v.type_ = Value::Type::Bool;
          v.bool_ = true;
          return v;
        }
        fail("invalid literal");
      }
      case 'f': {
        if (consume_literal("false")) {
          ArenaValue v;
          v.type_ = Value::Type::Bool;
          v.bool_ = false;
          return v;
        }
        fail("invalid literal");
      }
      case 'n': {
        if (consume_literal("null")) return ArenaValue();
        fail("invalid literal");
      }
      default: return parse_number();
    }
  }

  ArenaValue parse_object() {
    expect('{');
    const size_t start = member_stack_.size();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return finish_object(start);
    }
    while (true) {
      skip_ws();
      // The key must be arena-copied before parse_value() runs: nested
      // values reuse scratch_, which would invalidate a view into it.
      const ArenaValue key = make_string(parse_string());
      skip_ws();
      expect(':');
      ArenaValue value = parse_value();
      // Duplicate keys collapse to the last occurrence, matching the
      // heap parser's map-assignment semantics.
      bool replaced = false;
      for (size_t i = start; i < member_stack_.size(); ++i) {
        if (member_stack_[i].key == key.as_string()) {
          member_stack_[i].value = value;
          replaced = true;
          break;
        }
      }
      if (!replaced) member_stack_.push_back({key.as_string(), value});
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return finish_object(start);
  }

  ArenaValue finish_object(size_t start) {
    const size_t count = member_stack_.size() - start;
    ArenaMember* members = arena_.allocate_array<ArenaMember>(count);
    for (size_t i = 0; i < count; ++i) members[i] = member_stack_[start + i];
    member_stack_.resize(start);
    ArenaValue v;
    v.type_ = Value::Type::Object;
    v.members_ = members;
    v.count_ = static_cast<uint32_t>(count);
    return v;
  }

  ArenaValue parse_array() {
    expect('[');
    const size_t start = value_stack_.size();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return finish_array(start);
    }
    while (true) {
      value_stack_.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return finish_array(start);
  }

  ArenaValue finish_array(size_t start) {
    const size_t count = value_stack_.size() - start;
    ArenaValue* items = arena_.allocate_array<ArenaValue>(count);
    for (size_t i = 0; i < count; ++i) items[i] = value_stack_[start + i];
    value_stack_.resize(start);
    ArenaValue v;
    v.type_ = Value::Type::Array;
    v.items_ = items;
    v.count_ = static_cast<uint32_t>(count);
    return v;
  }

  /// Unescapes into the reused scratch buffer; the caller arena-copies.
  std::string_view parse_string() {
    expect('"');
    // Fast path: no escapes — return a view into the input directly.
    const size_t content = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"' && text_[pos_] != '\\') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '"') {
      const std::string_view raw = text_.substr(content, pos_ - content);
      ++pos_;
      return raw;
    }
    // Escapes present (or unterminated): restart with the scratch buffer.
    pos_ = content;
    scratch_.clear();
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': scratch_ += '"'; break;
          case '\\': scratch_ += '\\'; break;
          case '/': scratch_ += '/'; break;
          case 'b': scratch_ += '\b'; break;
          case 'f': scratch_ += '\f'; break;
          case 'n': scratch_ += '\n'; break;
          case 'r': scratch_ += '\r'; break;
          case 't': scratch_ += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // UTF-8, BMP only — same coverage as the heap parser.
            if (code < 0x80) {
              scratch_ += static_cast<char>(code);
            } else if (code < 0x800) {
              scratch_ += static_cast<char>(0xC0 | (code >> 6));
              scratch_ += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              scratch_ += static_cast<char>(0xE0 | (code >> 12));
              scratch_ += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              scratch_ += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        scratch_ += c;
      }
    }
    return scratch_;
  }

  ArenaValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    scratch_.assign(text_, start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(scratch_.c_str(), &end);
    if (end != scratch_.c_str() + scratch_.size()) fail("invalid number");
    ArenaValue v;
    v.type_ = Value::Type::Number;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  Arena& arena_;
  size_t pos_ = 0;
  std::string scratch_;  ///< reused unescape/number buffer
  // Children accumulate here until their container's count is known,
  // then move to an exact-size arena array — the tJson trick that keeps
  // containers contiguous without per-push allocations.
  std::vector<ArenaValue> value_stack_;
  std::vector<ArenaMember> member_stack_;
};

const ArenaValue& parse(std::string_view text, Arena& arena) {
  return ArenaParser(text, arena).parse_document();
}

}  // namespace synapse::json
