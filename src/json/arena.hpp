#pragma once
// Arena-backed JSON parsing for the ingest/replay hot paths.
//
// The heap DOM (json.hpp) allocates one std::string/vector/map node per
// JSON value — fine for specs and metadata, dominant for profile blobs
// with tens of thousands of tiny sample objects. This module parses
// into pooled nodes instead, in the style of tJson's jmem_alloc'd
// jmem_obj values: every node, string and member table is bump-
// allocated from a reusable Arena, so a parse costs a handful of slab
// mallocs instead of one malloc per node, and a reset() recycles the
// slabs for the next document.
//
// ArenaValue mirrors the read-side API of json::Value (type tests,
// checked accessors, operator[], get_or) so extraction code can be
// written once against either DOM; to_value() materializes a heap
// Value for writers and interop. Values live exactly as long as their
// Arena; the parsed text may be freed immediately (strings are copied
// into the arena, unescaped).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"

namespace synapse::json {

/// Slab ("jmem"-style) bump allocator. Allocation never frees
/// individually; reset() rewinds to empty while keeping the slabs, so a
/// long-lived parser pays the slab mallocs once. Oversized requests get
/// a dedicated slab, so any document shape fits.
class Arena {
 public:
  static constexpr size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < 256 ? 256 : slab_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(size_t bytes, size_t align);

  template <typename T>
  T* allocate_array(size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewind to empty, keeping the uniform slabs for reuse (dedicated
  /// oversized slabs are released — they are rare and request-shaped).
  void reset();

  /// Bytes handed out since construction/reset (excludes alignment and
  /// slab slack).
  size_t bytes_used() const { return used_; }
  /// Total slab capacity currently held.
  size_t bytes_reserved() const;

 private:
  struct Slab {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  std::vector<Slab> slabs_;      ///< uniform slabs, reused across reset()
  std::vector<Slab> oversized_;  ///< dedicated big allocations
  size_t slab_bytes_;
  size_t current_ = 0;  ///< slab being filled (valid when !slabs_.empty())
  size_t offset_ = 0;   ///< fill offset inside that slab
  size_t used_ = 0;
};

class ArenaValue;

/// One object member; members keep document order (duplicate keys are
/// collapsed at parse time, last occurrence wins, matching the heap
/// parser).
struct ArenaMember;

/// A JSON value whose storage lives in an Arena. Plain-old-data: nodes
/// are never destructed, only the arena is released/reset.
class ArenaValue {
 public:
  Value::Type type() const { return type_; }
  bool is_null() const { return type_ == Value::Type::Null; }
  bool is_bool() const { return type_ == Value::Type::Bool; }
  bool is_number() const { return type_ == Value::Type::Number; }
  bool is_string() const { return type_ == Value::Type::String; }
  bool is_array() const { return type_ == Value::Type::Array; }
  bool is_object() const { return type_ == Value::Type::Object; }

  /// Checked accessors; throw JsonError on type mismatch (same
  /// diagnostics as json::Value).
  bool as_bool() const;
  double as_double() const;
  int64_t as_int() const { return static_cast<int64_t>(as_double()); }
  uint64_t as_uint() const {
    const double d = as_double();
    return d <= 0 ? 0 : static_cast<uint64_t>(d);
  }
  std::string_view as_string() const;

  /// Array/object element count, 0 for scalars.
  size_t size() const;

  /// Array element access with bounds checking.
  const ArenaValue& at(size_t index) const;

  /// Object member lookup; nullptr when missing or not an object.
  const ArenaValue* find(std::string_view key) const;
  const ArenaValue& operator[](std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Lookup with default for optional fields (mirrors json::Value).
  double get_or(std::string_view key, double dflt) const;
  std::string get_or(std::string_view key, const std::string& dflt) const;
  bool get_or(std::string_view key, bool dflt) const;

  /// Iteration. items() is valid for arrays, members() for objects.
  const ArenaValue* items_begin() const;
  const ArenaValue* items_end() const;
  const ArenaMember* members_begin() const;
  const ArenaMember* members_end() const;

  /// Deep-copy into the heap DOM (writers, interop, parity tests).
  Value to_value() const;

 private:
  friend class ArenaParser;

  Value::Type type_ = Value::Type::Null;
  uint32_t count_ = 0;  ///< string length / element count
  union {
    bool bool_;
    double number_;
    const char* string_;
    const ArenaValue* items_;
    const ArenaMember* members_;
  };
};

struct ArenaMember {
  std::string_view key;
  ArenaValue value;
};

/// Parse a JSON document into `arena`; the returned reference lives as
/// long as the arena (until reset()). Throws JsonError with line/column
/// on malformed input, like json::parse.
const ArenaValue& parse(std::string_view text, Arena& arena);

}  // namespace synapse::json
