#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sys/procfs.hpp"

namespace synapse::json {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::Null;
    case 1: return Type::Bool;
    case 2: return Type::Number;
    case 3: return Type::String;
    case 4: return Type::Array;
    default: return Type::Object;
  }
}

namespace {
[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* names[] = {"null", "bool", "number",
                                "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                  names[static_cast<int>(got)]);
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  type_error("bool", type());
}

double Value::as_double() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  type_error("number", type());
}

int64_t Value::as_int() const { return static_cast<int64_t>(as_double()); }
uint64_t Value::as_uint() const {
  const double d = as_double();
  return d <= 0 ? 0 : static_cast<uint64_t>(d);
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  type_error("string", type());
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  type_error("array", type());
}

Array& Value::as_array() {
  if (Array* a = std::get_if<Array>(&data_)) return *a;
  type_error("array", type());
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  type_error("object", type());
}

Object& Value::as_object() {
  if (Object* o = std::get_if<Object>(&data_)) return *o;
  type_error("object", type());
}

const Value& Value::operator[](const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw JsonError("missing key: " + key);
  return it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

bool Value::contains(const std::string& key) const {
  if (!is_object()) return false;
  return as_object().count(key) > 0;
}

const Value& Value::at(size_t index) const {
  const Array& arr = as_array();
  if (index >= arr.size()) {
    throw JsonError("array index " + std::to_string(index) + " out of range " +
                    std::to_string(arr.size()));
  }
  return arr[index];
}

size_t Value::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

double Value::get_or(const std::string& key, double dflt) const {
  if (!contains(key)) return dflt;
  const Value& v = (*this)[key];
  return v.is_number() ? v.as_double() : dflt;
}

std::string Value::get_or(const std::string& key,
                          const std::string& dflt) const {
  if (!contains(key)) return dflt;
  const Value& v = (*this)[key];
  return v.is_string() ? v.as_string() : dflt;
}

bool Value::get_or(const std::string& key, bool dflt) const {
  if (!contains(key)) return dflt;
  const Value& v = (*this)[key];
  return v.is_bool() ? v.as_bool() : dflt;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    size_t line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("parse error at line " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are passed through as two 3-byte sequences, which is
            // sufficient for profile metadata).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Value(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional stand-in
    return;
  }
  // Integers print without a decimal point for readability and stability.
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

/// Appends `n` spaces without materializing a pad string per node.
void dump_pad(size_t n, std::string& out) { out.append(n, ' '); }

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  const size_t pad =
      indent > 0 ? static_cast<size_t>(indent) * (static_cast<size_t>(depth) + 1)
                 : 0;
  const size_t close_pad =
      indent > 0 ? static_cast<size_t>(indent) * static_cast<size_t>(depth) : 0;
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (v.type()) {
    case Value::Type::Null: out += "null"; break;
    case Value::Type::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Type::Number: dump_number(v.as_double(), out); break;
    case Value::Type::String: dump_string(v.as_string(), out); break;
    case Value::Type::Array: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (size_t i = 0; i < arr.size(); ++i) {
        dump_pad(pad, out);
        dump_value(arr[i], indent, depth + 1, out);
        if (i + 1 < arr.size()) out += ',';
        out += nl;
      }
      dump_pad(close_pad, out);
      out += ']';
      break;
    }
    case Value::Type::Object: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      size_t i = 0;
      for (const auto& [key, val] : obj) {
        dump_pad(pad, out);
        dump_string(key, out);
        out += kv_sep;
        dump_value(val, indent, depth + 1, out);
        if (++i < obj.size()) out += ',';
        out += nl;
      }
      dump_pad(close_pad, out);
      out += '}';
      break;
    }
  }
}

/// Serialized-size guess for the reserve() in dump(): exact enough that
/// a compact profile dump does no (or one) growth reallocation, cheap
/// enough that the walk is a fraction of the serialization itself.
size_t estimate_size(const Value& v, int indent, int depth) {
  const size_t per_entry =
      indent > 0 ? static_cast<size_t>(indent) * (static_cast<size_t>(depth) + 1) + 2
                 : 1;
  switch (v.type()) {
    case Value::Type::Null: return 4;
    case Value::Type::Bool: return 5;
    case Value::Type::Number: return 20;  // "%.17g" worst case ~ 24
    case Value::Type::String: return v.as_string().size() + 8;
    case Value::Type::Array: {
      size_t n = 2 + per_entry;
      for (const auto& item : v.as_array()) {
        n += estimate_size(item, indent, depth + 1) + per_entry;
      }
      return n;
    }
    case Value::Type::Object: {
      size_t n = 2 + per_entry;
      for (const auto& [key, val] : v.as_object()) {
        n += key.size() + 4 + estimate_size(val, indent, depth + 1) + per_entry;
      }
      return n;
    }
  }
  return 8;
}

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string dump(const Value& value, int indent) {
  // One preallocated output buffer for the whole document: the writer
  // only ever appends, so reserving the estimate up front turns the
  // former repeated grow-and-copy cycles (worst on profile dumps, whose
  // sample arrays are long) into at most one allocation.
  std::string out;
  out.reserve(estimate_size(value, indent, 0));
  dump_value(value, indent, 0, out);
  return out;
}

Value load_file(const std::string& path) {
  const auto content = sys::slurp_file(path);
  if (!content) throw JsonError("cannot read file: " + path);
  return parse(*content);
}

void save_file(const std::string& path, const Value& value, int indent) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw JsonError("cannot write file: " + path);
  out << dump(value, indent);
  if (indent > 0) out << '\n';
  if (!out) throw JsonError("short write: " + path);
}

}  // namespace synapse::json
