#pragma once
// Self-contained JSON value model, parser and writer.
//
// Profiles, resource specs and the document store all serialize through
// this module; it deliberately has no external dependencies. Numbers are
// stored as double (adequate: profile counters stay well below 2^53).

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "sys/error.hpp"

namespace synapse::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys ordered, making serialization deterministic
/// (important for the docstore's content-size accounting and for tests).
using Object = std::map<std::string, Value>;

/// Raised on malformed JSON input or type mismatches during access.
class JsonError : public sys::SynapseError {
 public:
  explicit JsonError(const std::string& what) : SynapseError(what) {}
};

class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int v) : data_(static_cast<double>(v)) {}
  Value(long v) : data_(static_cast<double>(v)) {}
  Value(long long v) : data_(static_cast<double>(v)) {}
  Value(unsigned v) : data_(static_cast<double>(v)) {}
  Value(unsigned long v) : data_(static_cast<double>(v)) {}
  Value(unsigned long long v) : data_(static_cast<double>(v)) {}
  Value(double v) : data_(v) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_number() const { return type() == Type::Number; }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Checked accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  double as_double() const;
  int64_t as_int() const;
  uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access. const operator[] throws on a missing key;
  /// the non-const form inserts null (like std::map) and converts a null
  /// value into an object first.
  const Value& operator[](const std::string& key) const;
  Value& operator[](const std::string& key);
  bool contains(const std::string& key) const;

  /// Array element access with bounds checking.
  const Value& at(size_t index) const;
  size_t size() const;

  /// Lookup with default for optional fields.
  double get_or(const std::string& key, double dflt) const;
  std::string get_or(const std::string& key, const std::string& dflt) const;
  bool get_or(const std::string& key, bool dflt) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse a JSON document. Throws JsonError with line/column on failure.
Value parse(const std::string& text);

/// Serialize. `indent` <= 0 produces compact output.
std::string dump(const Value& value, int indent = 0);

/// File helpers. Throws JsonError / SystemError.
Value load_file(const std::string& path);
void save_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace synapse::json
