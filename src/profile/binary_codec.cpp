#include "profile/binary_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <set>

namespace synapse::profile {

namespace {

// --- little-endian primitives ----------------------------------------------
// Byte-explicit so the format is identical across hosts; compilers fold
// these into single loads/stores on little-endian targets.

void put_u32(std::string& out, uint32_t v) {
  char b[4] = {static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
               static_cast<char>((v >> 16) & 0xff),
               static_cast<char>((v >> 24) & 0xff)};
  out.append(b, 4);
}

void put_f64(std::string& out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  }
  out.append(b, 8);
}

uint32_t load_u32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

double load_f64(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(u[i]) << (8 * i);
  }
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Bounds-checked reader over an encoded blob. All decode paths funnel
/// through need(), so any truncation throws with the offset and the
/// field being read instead of running off the buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t offset() const { return off_; }

  void need(uint64_t bytes, const char* what) const {
    if (static_cast<uint64_t>(off_) + bytes > data_.size()) {
      throw CodecError("truncated SYNB container: need " +
                       std::to_string(bytes) + " byte(s) for " + what +
                       " at offset " + std::to_string(off_) + ", have " +
                       std::to_string(data_.size() - off_));
    }
  }

  uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<uint8_t>(data_[off_++]);
  }

  uint32_t u32(const char* what) {
    need(4, what);
    const uint32_t v = load_u32(data_.data() + off_);
    off_ += 4;
    return v;
  }

  double f64(const char* what) {
    need(8, what);
    const double v = load_f64(data_.data() + off_);
    off_ += 8;
    return v;
  }

  std::string_view bytes(uint64_t n, const char* what) {
    need(n, what);
    const std::string_view v = data_.substr(off_, n);
    off_ += n;
    return v;
  }

  /// Advance past n bytes, returning a pointer to their start.
  const char* raw(uint64_t n, const char* what) {
    need(n, what);
    const char* p = data_.data() + off_;
    off_ += n;
    return p;
  }

  bool done() const { return off_ == data_.size(); }

 private:
  std::string_view data_;
  size_t off_ = 0;
};

void put_string(std::string& out, std::string_view s) {
  if (s.size() > std::numeric_limits<uint32_t>::max()) {
    throw CodecError("string too large for SYNB container");
  }
  put_u32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

std::string_view read_string(Cursor& c, const char* what) {
  const uint32_t len = c.u32(what);
  return c.bytes(len, what);
}

/// The low-volume profile parts as a compact JSON header — exactly
/// Profile::to_json minus "series", so header-only consumers see the
/// familiar shape.
std::string encode_header(const Profile& p) {
  json::Object root;
  root["command"] = p.command;
  json::Array jtags;
  for (const auto& t : p.tags) jtags.push_back(t);
  root["tags"] = std::move(jtags);
  root["sample_rate_hz"] = p.sample_rate_hz;
  root["created_at"] = p.created_at;
  root["system"] = p.system.to_json();
  json::Object jtotals;
  for (const auto& [k, v] : p.totals) jtotals[k] = v;
  root["totals"] = std::move(jtotals);
  json::Object jderived;
  for (const auto& [k, v] : p.derived) jderived[k] = v;
  root["derived"] = std::move(jderived);
  return json::dump(json::Value(std::move(root)));
}

struct ContainerHead {
  std::string_view header;  ///< raw JSON header text
  uint32_t version = 0;     ///< drives per-series framing in read_columns
};

/// Validate magic + version and position the cursor on the series
/// framing (past the header). Returns the raw header text + version.
ContainerHead open_container(Cursor& c) {
  const std::string_view magic = c.bytes(4, "magic");
  if (std::memcmp(magic.data(), kBinaryMagic, 4) != 0) {
    throw CodecError(
        "not a SYNB container (bad magic; expected \"SYNB\", got \"" +
        std::string(magic) + "\")");
  }
  const uint32_t version = c.u32("version");
  if (version < kBinaryMinVersion || version > kBinaryVersion) {
    throw CodecError("unsupported SYNB version " + std::to_string(version) +
                     " (this build reads versions " +
                     std::to_string(kBinaryMinVersion) + ".." +
                     std::to_string(kBinaryVersion) + ")");
  }
  const uint32_t header_len = c.u32("header length");
  return {c.bytes(header_len, "JSON header"), version};
}

}  // namespace

bool looks_like_binary_profile(std::string_view data) {
  return data.size() >= 4 && std::memcmp(data.data(), kBinaryMagic, 4) == 0;
}

std::string encode_binary(const Profile& p) {
  std::string out;
  const std::string header = encode_header(p);

  // Framing + header + per-series fixed parts; the f64 columns dominate,
  // so reserve for them up front.
  size_t estimate = 12 + header.size() + 4;
  for (const auto& ts : p.series) {
    estimate += 64 + ts.watcher.size() + ts.samples.size() * 8;
  }
  estimate += p.sample_count() * 4 * 8;  // rough metric-column volume
  out.reserve(estimate);

  out.append(kBinaryMagic, 4);
  put_u32(out, kBinaryVersion);
  if (header.size() > std::numeric_limits<uint32_t>::max()) {
    throw CodecError("profile header too large for SYNB container");
  }
  put_u32(out, static_cast<uint32_t>(header.size()));
  out += header;

  put_u32(out, static_cast<uint32_t>(p.series.size()));
  for (const auto& ts : p.series) {
    put_string(out, ts.watcher);
    put_f64(out, ts.sample_rate_hz);

    uint8_t flags = 0;
    if (ts.variable_rate) flags |= 1u;
    const bool has_gate = ts.gate.any();
    if (has_gate) flags |= 2u;
    out.push_back(static_cast<char>(flags));
    if (has_gate) {
      put_f64(out, ts.gate.floor_hz);
      put_f64(out, ts.gate.burst_hz);
      put_f64(out, ts.gate.open_threshold);
      put_f64(out, ts.gate.close_hold_s);
    }

    // Interned metric dictionary: the sorted union of metric names across
    // the series' samples. Sorted order matters — the columnar
    // sample_deltas walk relies on it to reproduce the map walk exactly.
    std::set<std::string_view> names;
    for (const auto& s : ts.samples) {
      for (const auto& [k, _] : s.values) names.insert(k);
    }
    const std::vector<std::string_view> dict(names.begin(), names.end());
    put_u32(out, static_cast<uint32_t>(dict.size()));
    for (const auto& n : dict) put_string(out, n);

    const size_t count = ts.samples.size();
    put_u32(out, static_cast<uint32_t>(count));
    for (const auto& s : ts.samples) put_f64(out, s.timestamp);

    // Stage all columns in one pass over the samples. Each sample's keys
    // are a sorted subsequence of the sorted dictionary, so a merge walk
    // finds every column index without any per-value lookup.
    std::vector<std::string> columns(dict.size());
    std::vector<std::vector<char>> bitmaps(
        dict.size(), std::vector<char>((count + 7) / 8, 0));
    std::vector<uint32_t> present(dict.size(), 0);
    for (size_t i = 0; i < count; ++i) {
      size_t d = 0;
      for (const auto& [k, v] : ts.samples[i].values) {
        while (dict[d] != k) ++d;
        bitmaps[d][i >> 3] = static_cast<char>(
            static_cast<unsigned char>(bitmaps[d][i >> 3]) | (1u << (i & 7)));
        put_f64(columns[d], v);
        ++present[d];
        ++d;
      }
    }
    for (size_t d = 0; d < dict.size(); ++d) {
      const bool dense = present[d] == count;
      out.push_back(dense ? '\1' : '\0');
      if (!dense) out.append(bitmaps[d].data(), bitmaps[d].size());
      put_u32(out, present[d]);
      out += columns[d];
    }
  }
  return out;
}

double MetricColumnView::value(size_t packed_index) const {
  return load_f64(values + packed_index * 8);
}

double SeriesColumnsView::timestamp(size_t sample_index) const {
  return load_f64(timestamps + sample_index * 8);
}

namespace {

/// Shared framing walk: header already consumed, cursor at series_count.
/// `version` selects the per-series framing (v1 has no flags byte).
ProfileColumnsView read_columns(Cursor& c, uint32_t version) {
  ProfileColumnsView out;
  const uint32_t series_count = c.u32("series count");
  // Bound the reserve by what the payload could possibly frame (each
  // series costs >= 20 bytes) so a corrupt count throws CodecError
  // instead of attempting a multi-gigabyte allocation.
  c.need(static_cast<uint64_t>(series_count) * 20, "series table");
  out.series.reserve(series_count);
  for (uint32_t si = 0; si < series_count; ++si) {
    SeriesColumnsView sv;
    sv.watcher = read_string(c, "watcher name");
    sv.rate_hz = c.f64("series rate");
    if (version >= 2) {
      const uint8_t flags = c.u8("series flags");
      if (flags > 3) {
        throw CodecError("corrupt SYNB container: series flags " +
                         std::to_string(flags) + " at offset " +
                         std::to_string(c.offset() - 1));
      }
      sv.variable_rate = (flags & 1u) != 0;
      if ((flags & 2u) != 0) {
        sv.gate.floor_hz = c.f64("gate floor_hz");
        sv.gate.burst_hz = c.f64("gate burst_hz");
        sv.gate.open_threshold = c.f64("gate open_threshold");
        sv.gate.close_hold_s = c.f64("gate close_hold_s");
      }
    }
    const uint32_t metric_count = c.u32("metric count");
    // Same guard: every metric needs >= 9 framing bytes downstream.
    c.need(static_cast<uint64_t>(metric_count) * 9, "metric table");
    sv.metrics.resize(metric_count);
    for (auto& m : sv.metrics) m.name = read_string(c, "metric name");
    sv.sample_count = c.u32("sample count");
    sv.timestamps =
        c.raw(static_cast<uint64_t>(sv.sample_count) * 8, "timestamp column");
    for (auto& m : sv.metrics) {
      const uint8_t dense = c.u8("density flag");
      if (dense > 1) {
        throw CodecError("corrupt SYNB container: density flag " +
                         std::to_string(dense) + " at offset " +
                         std::to_string(c.offset() - 1));
      }
      if (!dense) {
        m.presence = c.raw((static_cast<uint64_t>(sv.sample_count) + 7) / 8,
                           "presence bitmap");
      }
      m.value_count = c.u32("value count");
      if (m.value_count > sv.sample_count) {
        throw CodecError("corrupt SYNB container: metric \"" +
                         std::string(m.name) + "\" has " +
                         std::to_string(m.value_count) + " values for " +
                         std::to_string(sv.sample_count) + " samples");
      }
      if (dense && m.value_count != sv.sample_count) {
        throw CodecError("corrupt SYNB container: dense metric \"" +
                         std::string(m.name) + "\" has " +
                         std::to_string(m.value_count) + " values for " +
                         std::to_string(sv.sample_count) + " samples");
      }
      m.values = c.raw(static_cast<uint64_t>(m.value_count) * 8,
                       "metric value column");
    }
    out.series.push_back(std::move(sv));
  }
  if (!c.done()) {
    throw CodecError("corrupt SYNB container: " +
                     std::to_string(c.offset()) + " byte(s) decoded, " +
                     "trailing garbage follows");
  }
  return out;
}

}  // namespace

ProfileColumnsView decode_columns(std::string_view data) {
  Cursor c(data);
  // Validates magic/version, skips the header.
  const ContainerHead head = open_container(c);
  return read_columns(c, head.version);
}

Profile decode_binary(std::string_view data) {
  Cursor c(data);
  const ContainerHead head = open_container(c);
  const ProfileColumnsView cols = read_columns(c, head.version);

  Profile p;
  try {
    // The header is the series-less to_json shape; from_json handles it.
    p = Profile::from_json(json::parse(std::string(head.header)));
  } catch (const json::JsonError& e) {
    throw CodecError(std::string("corrupt SYNB container: bad JSON header: ") +
                     e.what());
  }

  p.series.reserve(cols.series.size());
  for (const auto& sv : cols.series) {
    TimeSeries ts;
    ts.watcher = std::string(sv.watcher);
    ts.sample_rate_hz = sv.rate_hz;
    ts.variable_rate = sv.variable_rate;
    ts.gate = sv.gate;
    ts.samples.resize(sv.sample_count);
    for (size_t i = 0; i < sv.sample_count; ++i) {
      ts.samples[i].timestamp = sv.timestamp(i);
    }
    for (const auto& m : sv.metrics) {
      const std::string name(m.name);
      size_t cursor = 0;
      for (size_t i = 0; i < sv.sample_count; ++i) {
        if (!m.present(i)) continue;
        if (cursor >= m.value_count) {
          throw CodecError("corrupt SYNB container: metric \"" + name +
                           "\" presence bitmap claims more values than the " +
                           "column holds (" + std::to_string(m.value_count) +
                           ")");
        }
        // hint: metric names are visited in sorted dictionary order, so
        // each sample map grows by appending at its end.
        auto& values = ts.samples[i].values;
        values.emplace_hint(values.end(), name, m.value(cursor++));
      }
      if (cursor != m.value_count) {
        throw CodecError("corrupt SYNB container: metric \"" + name + "\" " +
                         "column holds " + std::to_string(m.value_count) +
                         " values but the presence bitmap selects " +
                         std::to_string(cursor));
      }
    }
    p.series.push_back(std::move(ts));
  }
  return p;
}

BinaryProfileInfo decode_binary_identity(std::string_view data) {
  Cursor c(data);
  const std::string_view header = open_container(c).header;
  BinaryProfileInfo info;
  try {
    const json::Value v = json::parse(std::string(header));
    info.command = v.get_or("command", std::string());
    if (v.contains("tags")) {
      for (const auto& t : v["tags"].as_array()) {
        info.tags.push_back(t.as_string());
      }
    }
    info.created_at = v.get_or("created_at", 0.0);
  } catch (const json::JsonError& e) {
    throw CodecError(std::string("corrupt SYNB container: bad JSON header: ") +
                     e.what());
  }
  return info;
}

namespace {

/// One accumulation lane per metric name, shared across series (the map
/// walk accumulates into one slot per (bucket, metric) across series
/// too). `present` distinguishes "never touched" from "delta sums to
/// zero", matching map-key insertion semantics.
struct Accum {
  bool instantaneous = false;
  std::vector<double> value;
  std::vector<uint8_t> present;
};

/// The shared lane walk: per-slot float operations happen in the same
/// (series, sample) order as the map walk, so the two paths are
/// bit-identical — a property the round-trip tests pin down. `bucket_of`
/// supplies the bucketing (fixed period or timestamp-union).
template <typename BucketFn>
std::map<std::string, Accum, std::less<>> accumulate_lanes(
    const ProfileColumnsView& columns, size_t buckets, BucketFn bucket_of) {
  std::map<std::string, Accum, std::less<>> accums;
  std::vector<size_t> bucket;
  for (const auto& sv : columns.series) {
    bucket.resize(sv.sample_count);
    for (size_t i = 0; i < sv.sample_count; ++i) {
      bucket[i] = bucket_of(sv.timestamp(i));
    }
    for (const auto& mc : sv.metrics) {
      auto it = accums.find(mc.name);
      if (it == accums.end()) {
        it = accums.emplace(std::string(mc.name), Accum{}).first;
        it->second.instantaneous = is_instantaneous_metric(mc.name);
        it->second.value.assign(buckets, 0.0);
        it->second.present.assign(buckets, 0);
      }
      Accum& acc = it->second;
      size_t cursor = 0;
      if (acc.instantaneous) {
        // Map path: slot = max(slot, v), key inserted on every touch.
        for (size_t i = 0; i < sv.sample_count; ++i) {
          if (!mc.present(i)) continue;
          const double v = mc.value(cursor++);
          const size_t b = bucket[i];
          acc.present[b] = 1;
          acc.value[b] = std::max(acc.value[b], v);
        }
      } else {
        // Map path: per-series last_cumulative differencing, key inserted
        // only when a positive delta lands.
        double prev = 0.0;
        for (size_t i = 0; i < sv.sample_count; ++i) {
          if (!mc.present(i)) continue;
          const double v = mc.value(cursor++);
          const double delta = v - prev;
          prev = v;
          if (delta > 0) {
            const size_t b = bucket[i];
            acc.value[b] += delta;
            acc.present[b] = 1;
          }
        }
      }
    }
  }
  return accums;
}

/// Lanes -> SampleDelta list. accums iterates in sorted name order, so
/// every per-bucket map is built by appending at its end.
std::vector<SampleDelta> emit_deltas(
    const std::map<std::string, Accum, std::less<>>& accums, size_t buckets) {
  std::vector<SampleDelta> out(buckets);
  for (const auto& [name, acc] : accums) {
    for (size_t b = 0; b < buckets; ++b) {
      if (acc.present[b]) {
        out[b].deltas.emplace_hint(out[b].deltas.end(), name, acc.value[b]);
      }
    }
  }
  return out;
}

/// The bucketing + accumulation shared by sample_deltas_from_columns
/// and delta_table_from_columns: per-bucket durations plus one Accum
/// lane per metric. Empty durations = no samples (empty output).
struct LaneAccumulation {
  std::vector<double> durations;
  std::map<std::string, Accum, std::less<>> accums;
};

LaneAccumulation accumulate_columns(const ProfileColumnsView& columns,
                                    double profile_rate_hz) {
  // Mirror of Profile::sample_deltas() over flat columns; see
  // accumulate_lanes for the bit-identity contract.
  LaneAccumulation out;
  double rate = profile_rate_hz;
  for (const auto& sv : columns.series) rate = std::max(rate, sv.rate_hz);

  bool variable = false;
  for (const auto& sv : columns.series) variable = variable || sv.variable_rate;

  if (variable) {
    // Timestamp-union bucketing: same edges, same durations, same
    // exact-double binary search as the map walk's variable branch.
    std::vector<double> edges;
    size_t total = 0;
    for (const auto& sv : columns.series) total += sv.sample_count;
    edges.reserve(total);
    for (const auto& sv : columns.series) {
      for (size_t i = 0; i < sv.sample_count; ++i) {
        edges.push_back(sv.timestamp(i));
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    if (edges.empty()) return out;

    const auto bucket_of = [&edges](double t) {
      return static_cast<size_t>(
          std::lower_bound(edges.begin(), edges.end(), t) - edges.begin());
    };
    out.accums = accumulate_lanes(columns, edges.size(), bucket_of);
    out.durations.resize(edges.size());
    out.durations[0] = rate > 0.0
                           ? 1.0 / rate
                           : (edges.size() > 1 ? edges[1] - edges[0] : 0.0);
    for (size_t j = 1; j < edges.size(); ++j) {
      out.durations[j] = edges[j] - edges[j - 1];
    }
    return out;
  }

  if (rate <= 0.0) return out;
  const double period = 1.0 / rate;

  double origin = std::numeric_limits<double>::infinity();
  for (const auto& sv : columns.series) {
    if (sv.sample_count > 0) origin = std::min(origin, sv.timestamp(0));
  }
  if (!std::isfinite(origin)) return out;

  auto bucket_of = [origin, period](double t) {
    return static_cast<size_t>(std::max(0.0, (t - origin) / period + 1e-9));
  };

  size_t max_bucket = 0;
  for (const auto& sv : columns.series) {
    for (size_t i = 0; i < sv.sample_count; ++i) {
      max_bucket = std::max(max_bucket, bucket_of(sv.timestamp(i)));
    }
  }
  const size_t buckets = max_bucket + 1;

  out.accums = accumulate_lanes(columns, buckets, bucket_of);
  out.durations.assign(buckets, period);
  return out;
}

}  // namespace

std::vector<SampleDelta> sample_deltas_from_columns(
    const ProfileColumnsView& columns, double profile_rate_hz) {
  LaneAccumulation acc = accumulate_columns(columns, profile_rate_hz);
  auto out = emit_deltas(acc.accums, acc.durations.size());
  for (size_t i = 0; i < out.size(); ++i) out[i].duration = acc.durations[i];
  return out;
}

DeltaTable delta_table_from_columns(const ProfileColumnsView& columns,
                                    double profile_rate_hz) {
  LaneAccumulation acc = accumulate_columns(columns, profile_rate_hz);
  // The accumulation map iterates in sorted name order — exactly the
  // LaneTable's dictionary order — and its per-bucket value/present
  // vectors ARE the table's columns; they move straight in.
  std::vector<std::string> names;
  std::vector<std::vector<double>> values;
  std::vector<std::vector<uint8_t>> present;
  names.reserve(acc.accums.size());
  values.reserve(acc.accums.size());
  present.reserve(acc.accums.size());
  for (auto& [name, lane] : acc.accums) {
    names.push_back(name);
    values.push_back(std::move(lane.value));
    present.push_back(std::move(lane.present));
  }
  return DeltaTable(LaneTable(std::move(names)), std::move(acc.durations),
                    std::move(values), std::move(present));
}

// --- base64 -----------------------------------------------------------------

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string base64_encode(std::string_view raw) {
  std::string out;
  out.reserve((raw.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= raw.size(); i += 3) {
    const uint32_t n = (static_cast<unsigned char>(raw[i]) << 16) |
                       (static_cast<unsigned char>(raw[i + 1]) << 8) |
                       static_cast<unsigned char>(raw[i + 2]);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
  }
  const size_t rem = raw.size() - i;
  if (rem == 1) {
    const uint32_t n = static_cast<unsigned char>(raw[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const uint32_t n = (static_cast<unsigned char>(raw[i]) << 16) |
                       (static_cast<unsigned char>(raw[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string base64_decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    throw CodecError("bad base64 payload: length " +
                     std::to_string(text.size()) + " is not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + k];
      if (c == '=' && k >= 2 && i + 4 == text.size()) {
        vals[k] = 0;
        ++pad;
      } else if (pad > 0) {
        throw CodecError("bad base64 payload: data after '=' padding");
      } else {
        vals[k] = b64_value(c);
        if (vals[k] < 0) {
          throw CodecError(std::string("bad base64 payload: byte '") + c +
                           "' at offset " + std::to_string(i + k));
        }
      }
    }
    const uint32_t n = (static_cast<uint32_t>(vals[0]) << 18) |
                       (static_cast<uint32_t>(vals[1]) << 12) |
                       (static_cast<uint32_t>(vals[2]) << 6) |
                       static_cast<uint32_t>(vals[3]);
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<char>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<char>(n & 0xff));
  }
  return out;
}

}  // namespace synapse::profile
