#pragma once
// SYNB: the binary columnar profile container.
//
// The JSON profile form (profile.hpp to_json/from_json) is the interop
// format; this module is the performance format the store prefers for
// new data. A SYNB blob keeps the low-volume identity/system/totals/
// derived parts as a compact JSON header — so external tooling keeps a
// self-describing prefix — and stores the high-volume sample payload as
// per-series columns: an interned metric-name dictionary, one timestamp
// column, and one contiguous little-endian f64 column per metric (with
// a presence bitmap when a metric is absent from some samples). Decode
// therefore walks flat arrays instead of re-hashing one string→double
// map per sample, which is what dominates the replay producer and the
// store ingest path.
//
// Container layout (all integers little-endian):
//
//   "SYNB" | u32 version=2 | u32 header_len | header JSON (compact)
//   u32 series_count
//   per series:
//     u32 watcher_len | watcher bytes | f64 rate_hz
//     u8 flags                                 (v2+; bit0 variable_rate,
//                                               bit1 gate params follow)
//     [f64 floor_hz | f64 burst_hz | f64 open_threshold | f64 close_hold_s]
//                                              (v2+, only when bit1 set)
//     u32 metric_count | per metric: u32 len | bytes     (sorted names)
//     u32 sample_count | f64 timestamps[sample_count]
//     per metric:
//       u8 dense | [presence bitmap, (sample_count+7)/8 bytes when !dense]
//       u32 value_count | f64 values[value_count]
//
// Version 1 containers (no flags byte, no gate) decode fine: every v1
// series is fixed-rate by construction. Writers always emit version 2.
//
// Doubles survive exactly (raw IEEE-754 bits), so binary→JSON→binary
// conversion is lossless modulo the JSON number printer, which is
// already round-trip exact ("%.17g").

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "profile/delta_frame.hpp"
#include "profile/profile.hpp"

namespace synapse::profile {

/// Malformed SYNB input: wrong magic, unsupported version, truncation,
/// or internally inconsistent counts. The message carries the byte
/// offset so a corrupt store file can be diagnosed.
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kBinaryMagic[4] = {'S', 'Y', 'N', 'B'};
inline constexpr uint32_t kBinaryVersion = 2;
/// Oldest container version this build still reads.
inline constexpr uint32_t kBinaryMinVersion = 1;

/// Cheap magic-byte sniff used by store backends to route mixed-format
/// reads. True only for data that starts with the SYNB magic.
bool looks_like_binary_profile(std::string_view data);

/// Encode a profile into a SYNB blob.
std::string encode_binary(const Profile& p);

/// Decode a SYNB blob into a fully materialized Profile. Throws
/// CodecError on malformed input. Prefer Profile::from_binary, which
/// additionally retains the blob for the columnar sample_deltas() fast
/// path.
Profile decode_binary(std::string_view data);

/// Identity fields straight from the JSON header — listings and
/// identity checks pay for the small header parse only, never for the
/// columns. Throws CodecError on malformed input.
struct BinaryProfileInfo {
  std::string command;
  std::vector<std::string> tags;
  double created_at = 0.0;
};
BinaryProfileInfo decode_binary_identity(std::string_view data);

// --- columnar views ---------------------------------------------------------
// Views point into the encoded buffer (no copies of the bulk data); they
// are valid only while that buffer is. Element accessors go through
// memcpy so unaligned column offsets are safe on every target.

/// One metric column of one series. Values are packed: values[k] is the
/// value of the k-th sample for which present() is true.
struct MetricColumnView {
  std::string_view name;
  const char* presence = nullptr;  ///< bitmap; nullptr when dense
  const char* values = nullptr;    ///< f64 little-endian, packed
  uint32_t value_count = 0;

  bool present(size_t sample_index) const {
    if (presence == nullptr) return true;
    return (static_cast<unsigned char>(presence[sample_index >> 3]) >>
            (sample_index & 7)) &
           1u;
  }
  double value(size_t packed_index) const;
};

/// The columns of one TimeSeries.
struct SeriesColumnsView {
  std::string_view watcher;
  double rate_hz = 0.0;
  bool variable_rate = false;  ///< v2 flag bit0; v1 series are fixed-rate
  SeriesGate gate;             ///< v2 gate params (all zero when absent)
  const char* timestamps = nullptr;  ///< f64 little-endian
  uint32_t sample_count = 0;
  std::vector<MetricColumnView> metrics;

  double timestamp(size_t sample_index) const;
};

/// Column views over a whole SYNB blob. The JSON header is skipped, not
/// parsed — obtaining the view costs a bounds-checked walk over the
/// series framing only, which is what makes it usable per-replay on the
/// emulator's producer thread.
struct ProfileColumnsView {
  std::vector<SeriesColumnsView> series;
};

/// Build column views over `data` (which must outlive the view).
/// Throws CodecError on malformed input.
ProfileColumnsView decode_columns(std::string_view data);

/// sample_deltas computed straight from columns, bit-identical to the
/// map-walking Profile::sample_deltas() (same bucketing, same float
/// accumulation order) — including the variable-rate timestamp-union
/// bucketing when any series carries the variable_rate flag.
/// `profile_rate_hz` is the profile-level rate the per-series rates are
/// maxed against.
std::vector<SampleDelta> sample_deltas_from_columns(
    const ProfileColumnsView& columns, double profile_rate_hz);

/// The same accumulation emitted as a columnar DeltaTable instead of
/// per-sample maps (delta_frame.hpp): the compiled-replay input. Shares
/// the bucketing and float-op order with sample_deltas_from_columns, so
/// table cell (lane, row) is bit-identical to the map walk's value and
/// presence mirrors map-key existence — no SampleDelta is materialized.
DeltaTable delta_table_from_columns(const ProfileColumnsView& columns,
                                    double profile_rate_hz);

// --- base64 -----------------------------------------------------------------
// Used by the docstore/cluster backends to carry SYNB blobs inside JSON
// documents (the docstore speaks documents, not bytes).

std::string base64_encode(std::string_view raw);
/// Throws CodecError on non-base64 input.
std::string base64_decode(std::string_view text);

}  // namespace synapse::profile
