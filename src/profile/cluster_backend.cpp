#include "profile/cluster_backend.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <set>

#include "sys/error.hpp"

namespace synapse::profile {

namespace {

constexpr const char* kPlacementFile = "cluster.placement.json";

/// Spec + shard assignment as persisted in cluster.placement.json.
struct PersistedPlacement {
  ClusterSpec instances;                 ///< roots/weights at creation time
  std::vector<std::string> assignment;   ///< shard index -> instance name
};

json::Value placement_to_json(const PersistedPlacement& placement) {
  json::Object root;
  root["instances"] = placement.instances.to_json();
  json::Array names;
  for (const auto& name : placement.assignment) {
    names.push_back(json::Value(name));
  }
  root["placement"] = std::move(names);
  return json::Value(std::move(root));
}

PersistedPlacement placement_from_json(const json::Value& value,
                                       const std::string& path) {
  if (!value.is_object() || !value.contains("placement")) {
    throw sys::ConfigError("cluster placement file '" + path +
                           "' is not a placement document");
  }
  PersistedPlacement out;
  out.instances = ClusterSpec::from_json(value["instances"]);
  for (const auto& name : value["placement"].as_array()) {
    out.assignment.push_back(name.as_string());
  }
  return out;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += "'" + n + "'";
  }
  return out;
}

/// Load-or-create the persisted placement for this store open. Called
/// once per shard (cheap JSON); concurrent first-openers race on a
/// link() claim, so exactly one placement ever defines the layout.
PersistedPlacement resolve_placement(const StoreBackendContext& context) {
  if (context.directory.empty()) {
    throw sys::ConfigError("store backend 'cluster' needs a store directory");
  }
  ClusterSpec spec;
  const bool have_spec = !context.spec_file.empty();
  if (have_spec) spec = ClusterSpec::load_file(context.spec_file);

  const std::string path =
      context.directory + "/" + std::string(kPlacementFile);
  if (!storedetail::file_exists(path)) {
    if (!have_spec) {
      throw sys::ConfigError(
          "cluster store '" + context.directory +
          "' has no persisted placement and no cluster spec was given "
          "(--store-cluster spec.json)");
    }
    PersistedPlacement fresh;
    fresh.instances = spec;
    fresh.assignment =
        ClusterBackend::compute_placement(spec, context.shard_count);
    // Claim with link() so concurrent first-openers agree on one
    // placement; the content is deterministic from the spec, but the
    // claim keeps the file whole under concurrent writes either way.
    const std::string tmp =
        path + ".tmp-" + storedetail::unique_tmp_suffix();
    json::save_file(tmp, placement_to_json(fresh), /*indent=*/0);
    const int linked = ::link(tmp.c_str(), path.c_str());
    const int err = errno;
    ::unlink(tmp.c_str());
    if (linked == 0) return fresh;
    if (err != EEXIST) {
      throw sys::SystemError("link(" + path + ")", err);
    }
    // Lost the race: fall through and honour the winner's placement.
  }

  PersistedPlacement persisted =
      placement_from_json(json::load_file(path), path);
  if (persisted.assignment.size() != context.shard_count) {
    throw sys::ConfigError(
        "cluster store '" + context.directory + "' placement covers " +
        std::to_string(persisted.assignment.size()) + " shards but the store "
        "has " + std::to_string(context.shard_count) +
        " — the placement file was tampered with or belongs to another store");
  }
  if (have_spec) {
    // The persisted placement wins over the spec (profiles live where
    // they were first placed); the spec may move instance roots, but an
    // instance that holds shards must not vanish from it — that would
    // silently lose every profile placed there.
    std::vector<std::string> missing;
    std::set<std::string> seen;
    for (const auto& name : persisted.assignment) {
      if (spec.find(name) == nullptr && seen.insert(name).second) {
        missing.push_back(name);
      }
    }
    if (!missing.empty()) {
      throw sys::ConfigError(
          "cluster spec '" + context.spec_file +
          "' no longer lists instance(s) holding shards of store '" +
          context.directory + "': " + join_names(missing) +
          " (placed instances: " +
          join_names([&] {
            std::vector<std::string> names;
            for (const auto& inst : persisted.instances.instances) {
              names.push_back(inst.name);
            }
            return names;
          }()) +
          ") — restore them to the spec or migrate their shards first");
    }
    // The current spec's roots/weights win — and are re-persisted, so a
    // moved instance root sticks for later SPEC-LESS opens too
    // (otherwise inspect would recreate the stale root as an empty
    // directory and silently read zero profiles from it). rename() is
    // atomic; racing openers with the same spec write identical
    // content.
    if (!(json::dump(persisted.instances.to_json()) ==
          json::dump(spec.to_json()))) {
      persisted.instances = spec;
      const std::string tmp =
          path + ".tmp-" + storedetail::unique_tmp_suffix();
      json::save_file(tmp, placement_to_json(persisted), /*indent=*/0);
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw sys::SystemError("rename(" + path + ")", err);
      }
    } else {
      persisted.instances = spec;
    }
  }
  return persisted;
}

}  // namespace

// --- spec -------------------------------------------------------------------

ClusterSpec ClusterSpec::from_json(const json::Value& value) {
  // Accepts the spec document ({"instances": [...]}) or the bare
  // instance array (the form persisted inside cluster.placement.json).
  if (!value.is_array() &&
      !(value.is_object() && value.contains("instances"))) {
    throw sys::ConfigError(
        "cluster spec must be an object with an 'instances' array");
  }
  ClusterSpec spec;
  const json::Array& instances =
      value.is_array() ? value.as_array() : value["instances"].as_array();
  std::set<std::string> names;
  for (size_t i = 0; i < instances.size(); ++i) {
    const json::Value& entry = instances[i];
    if (!entry.is_object()) {
      throw sys::ConfigError("cluster spec instance " + std::to_string(i) +
                             " must be an object");
    }
    ClusterInstance inst;
    inst.name = entry.get_or("name", "instance-" + std::to_string(i));
    inst.root = entry.get_or("root", std::string());
    if (inst.root.empty()) {
      throw sys::ConfigError("cluster spec instance '" + inst.name +
                             "' needs a non-empty 'root' directory");
    }
    if (entry.contains("weight") && !entry["weight"].is_number()) {
      throw sys::ConfigError("cluster spec instance '" + inst.name +
                             "' has a non-numeric 'weight'");
    }
    inst.weight = entry.get_or("weight", 1.0);
    if (inst.weight <= 0.0) {
      throw sys::ConfigError("cluster spec instance '" + inst.name +
                             "' needs a weight > 0");
    }
    if (!names.insert(inst.name).second) {
      throw sys::ConfigError("cluster spec lists instance '" + inst.name +
                             "' twice");
    }
    spec.instances.push_back(std::move(inst));
  }
  if (spec.instances.empty()) {
    throw sys::ConfigError("cluster spec needs at least one instance");
  }
  return spec;
}

ClusterSpec ClusterSpec::load_file(const std::string& path) {
  try {
    return from_json(json::load_file(path));
  } catch (const sys::ConfigError&) {
    throw;
  } catch (const std::exception& e) {
    throw sys::ConfigError("cannot read cluster spec '" + path +
                           "': " + e.what());
  }
}

json::Value ClusterSpec::to_json() const {
  json::Array out;
  for (const auto& inst : instances) {
    json::Object entry;
    entry["name"] = inst.name;
    entry["root"] = inst.root;
    entry["weight"] = inst.weight;
    out.push_back(json::Value(std::move(entry)));
  }
  return json::Value(std::move(out));
}

const ClusterInstance* ClusterSpec::find(const std::string& name) const {
  for (const auto& inst : instances) {
    if (inst.name == name) return &inst;
  }
  return nullptr;
}

// --- placement --------------------------------------------------------------

std::vector<std::string> ClusterBackend::compute_placement(
    const ClusterSpec& spec, size_t shard_count) {
  std::vector<size_t> assigned(spec.instances.size(), 0);
  std::vector<std::string> placement;
  placement.reserve(shard_count);
  for (size_t shard = 0; shard < shard_count; ++shard) {
    size_t best = 0;
    double best_cost = 0.0;
    for (size_t i = 0; i < spec.instances.size(); ++i) {
      const double cost = static_cast<double>(assigned[i] + 1) /
                          spec.instances[i].weight;
      if (i == 0 || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    ++assigned[best];
    placement.push_back(spec.instances[best].name);
  }
  return placement;
}

// --- backend ----------------------------------------------------------------

ClusterBackend::ClusterBackend(const StoreBackendContext& context)
    : shard_index_(context.shard_index) {
  const PersistedPlacement placement = resolve_placement(context);
  instance_name_ = placement.assignment[shard_index_];
  const ClusterInstance* inst = placement.instances.find(instance_name_);
  if (inst == nullptr) {
    // Spec-less reopen whose persisted instance list was edited by hand.
    throw sys::ConfigError("cluster store '" + context.directory +
                           "' placement names instance '" + instance_name_ +
                           "' but the persisted instance list does not "
                           "define it");
  }
  instance_root_ = inst->root;
  // The instance failing to open degrades THIS shard, not the store:
  // healthy instances keep serving their shards, and every operation on
  // a degraded shard throws a diagnostic naming the instance.
  try {
    ::mkdir(instance_root_.c_str(), 0755);  // EEXIST is fine
    shard_ = std::make_unique<DocStoreShardBackend>(
        instance_root_ + "/shard-" + std::to_string(shard_index_),
        context.format);
  } catch (const std::exception& e) {
    degraded_reason_ = e.what();
  }
}

void ClusterBackend::fail(const std::string& op) const {
  throw sys::SynapseError("cluster instance '" + instance_name_ + "' (" +
                          instance_root_ + ") is unavailable, " + op +
                          " on shard " + std::to_string(shard_index_) +
                          " failed: " + degraded_reason_);
}

bool ClusterBackend::put(const Profile& profile, const std::string& tkey) {
  if (!shard_) fail("put");
  return shard_->put(profile, tkey);
}

std::vector<Profile> ClusterBackend::read(const std::string& command,
                                          const std::string& tkey) const {
  if (!shard_) fail("read");
  return shard_->read(command, tkey);
}

size_t ClusterBackend::remove(const std::string& command,
                              const std::string& tkey) {
  if (!shard_) fail("remove");
  return shard_->remove(command, tkey);
}

void ClusterBackend::flush() {
  // Degraded shards never accepted a write, so there is nothing to
  // lose; throwing here would take down the store-wide flush worker.
  if (shard_) shard_->flush();
}

size_t ClusterBackend::size() const {
  if (!shard_) fail("size");
  return shard_->size();
}

std::vector<StoredProfileEntry> ClusterBackend::list() const {
  if (!shard_) fail("list");
  return shard_->list();
}

json::Value ClusterBackend::meta() const {
  json::Object meta;
  meta["instance"] = instance_name_;
  meta["root"] = instance_root_;
  meta["degraded"] = degraded();
  return json::Value(std::move(meta));
}

}  // namespace synapse::profile
