#pragma once
// ClusterBackend: the first multi-instance scale backend.
//
// The paper's store is a single MongoDB instance and inherits its
// limits (section 4.5). This backend distributes a store's N shards
// across M independent docstore instances — each instance its own
// directory holding its own docstore::Store per placed shard — so
// capacity and write bandwidth scale with instances while the
// ProfileStore API (and the shard routing above it) stays unchanged.
//
// Configuration is a JSON cluster-spec file (CLI: --store-cluster):
//
//   {
//     "instances": [
//       {"name": "a", "root": "/data/docstore-a", "weight": 1.0},
//       {"name": "b", "root": "/data/docstore-b", "weight": 2.0}
//     ]
//   }
//
// `name` identifies the instance across reopens (roots may move with
// the data; defaults to "instance-<i>"), `weight` biases how many
// shards the instance receives (default 1.0). Shard -> instance
// placement is computed once, at store creation, by deterministic
// weighted balancing and persisted in `cluster.placement.json` inside
// the store directory; every reopen honours the persisted placement,
// so a profile always lives on the instance that first stored it.
// Reopening with a spec that no longer contains a placed instance is a
// hard error (the diagnostic names the missing instances) — never
// silent data loss. Reopening WITHOUT a spec file uses the instance
// roots persisted at creation (this is how synapse-inspect opens a
// cluster store from just --store DIR).
//
// Degraded mode: when an instance cannot be opened (root unreachable,
// corrupt collection), only the shards placed on it fail — their
// operations throw a diagnostic naming the instance — while shards on
// healthy instances keep serving. flush() on a degraded shard is a
// no-op (nothing ever buffered), so the store's background flush
// worker survives a dead instance.
//
// An instance root belongs to one store (shards are addressed as
// <root>/shard-<i>, like a database per store in the MongoDB analogy);
// prefer absolute root paths, relative ones resolve against the
// working directory of whichever process opens the store.

#include <memory>
#include <string>
#include <vector>

#include "profile/store_backend.hpp"

namespace synapse::profile {

struct ClusterInstance {
  std::string name;
  std::string root;
  double weight = 1.0;
};

struct ClusterSpec {
  std::vector<ClusterInstance> instances;

  /// Parse + validate (>= 1 instance, non-empty roots, weights > 0,
  /// unique names; missing names default to "instance-<i>").
  static ClusterSpec from_json(const json::Value& value);
  static ClusterSpec load_file(const std::string& path);
  json::Value to_json() const;

  const ClusterInstance* find(const std::string& name) const;
};

class ClusterBackend : public StoreBackend {
 public:
  /// Resolves (or creates and persists) the shard placement for
  /// context.shard_index and opens that shard's docstore under its
  /// instance root. Throws sys::ConfigError for spec/placement
  /// mismatches; an unreachable instance does NOT throw here — the
  /// shard opens degraded and its operations fail with a diagnostic.
  explicit ClusterBackend(const StoreBackendContext& context);

  bool put(const Profile& profile, const std::string& tkey) override;
  std::vector<Profile> read(const std::string& command,
                            const std::string& tkey) const override;
  size_t remove(const std::string& command, const std::string& tkey) override;
  void flush() override;
  size_t size() const override;
  bool needs_flush() const override { return true; }
  /// {"instance": name, "root": path, "degraded": bool}
  json::Value meta() const override;
  std::vector<StoredProfileEntry> list() const override;

  const std::string& instance_name() const { return instance_name_; }
  bool degraded() const { return !degraded_reason_.empty(); }

  /// Deterministic weighted placement: shard i goes to the instance
  /// minimizing (assigned + 1) / weight, ties broken by spec order —
  /// so equal weights round-robin and a weight-2 instance receives
  /// twice the shards. Exposed for tests and capacity planning.
  static std::vector<std::string> compute_placement(const ClusterSpec& spec,
                                                    size_t shard_count);

 private:
  /// Throws a diagnostic naming the degraded instance.
  [[noreturn]] void fail(const std::string& op) const;

  std::string instance_name_;
  std::string instance_root_;
  size_t shard_index_ = 0;
  std::string degraded_reason_;  ///< non-empty: shard is degraded
  std::unique_ptr<DocStoreShardBackend> shard_;
};

}  // namespace synapse::profile
