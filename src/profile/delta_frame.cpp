#include "profile/delta_frame.hpp"

#include <algorithm>
#include <set>

namespace synapse::profile {

uint32_t LaneTable::id(std::string_view name) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name) return kNoLane;
  return static_cast<uint32_t>(it - names_.begin());
}

void DeltaTable::scale_lane(uint32_t lane, double factor) {
  if (lane == LaneTable::kNoLane) return;
  for (double& v : values_[lane]) v *= factor;
}

SampleDelta DeltaTable::unbox(size_t row) const {
  SampleDelta out;
  out.duration = durations_[row];
  // Lanes iterate in sorted name order, so the map is built by appending
  // at its end — the same construction emit_deltas uses.
  for (uint32_t lane = 0; lane < lanes_.size(); ++lane) {
    if (present_[lane][row] == 0) continue;
    out.deltas.emplace_hint(out.deltas.end(), lanes_.name(lane),
                            values_[lane][row]);
  }
  return out;
}

DeltaTable DeltaTable::from_deltas(const std::vector<SampleDelta>& deltas) {
  std::set<std::string, std::less<>> names;
  for (const auto& d : deltas) {
    for (const auto& [k, _] : d.deltas) names.insert(k);
  }
  LaneTable lanes(std::vector<std::string>(names.begin(), names.end()));

  const size_t rows = deltas.size();
  std::vector<double> durations(rows, 0.0);
  std::vector<std::vector<double>> values(lanes.size(),
                                          std::vector<double>(rows, 0.0));
  std::vector<std::vector<uint8_t>> present(lanes.size(),
                                            std::vector<uint8_t>(rows, 0));
  for (size_t row = 0; row < rows; ++row) {
    durations[row] = deltas[row].duration;
    for (const auto& [k, v] : deltas[row].deltas) {
      const uint32_t lane = lanes.id(k);
      values[lane][row] = v;
      present[lane][row] = 1;
    }
  }
  return DeltaTable(std::move(lanes), std::move(durations), std::move(values),
                    std::move(present));
}

}  // namespace synapse::profile
