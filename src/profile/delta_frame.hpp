#pragma once
// The compiled replay representation: sample deltas as a structure-of-
// arrays table instead of one std::map<std::string,double> per sample.
//
// A DeltaTable interns the profile's metric names into dense lane IDs
// (LaneTable) and stores one contiguous f64 column per metric plus a
// presence column (distinguishing "metric absent from this period" from
// "delta sums to zero" — the same distinction map-key insertion makes).
// The table is built either straight from SYNB decode_columns() views
// (binary_codec.hpp, delta_table_from_columns — no SampleDelta map is
// ever materialized) or from an already-decoded delta list
// (DeltaTable::from_deltas, the fallback for profiles without a binary
// payload).
//
// A DeltaFrame is a cheap value-type view of a contiguous row range of
// one table — the unit the replay engine hands to
// atoms::Atom::consume_frame, and the wire shape a future shared-memory
// live mode would publish. unbox() converts one row back into the legacy
// SampleDelta (sorted-name map, identical to what the map walk emits),
// which is what keeps custom atoms without frame support working.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "profile/profile.hpp"

namespace synapse::profile {

/// Sorted, deduplicated metric-name dictionary; the lane ID of a metric
/// is its index. Lookup is a binary search — done once per replay when
/// the ReplayPlan resolves atom masks, never per sample.
class LaneTable {
 public:
  static constexpr uint32_t kNoLane = 0xffffffffu;

  LaneTable() = default;
  /// `sorted_names` must be sorted and unique (the builders guarantee
  /// it: std::set iteration for from_deltas, sorted accumulation map for
  /// the columnar path).
  explicit LaneTable(std::vector<std::string> sorted_names)
      : names_(std::move(sorted_names)) {}

  /// Lane of a metric name; kNoLane when the profile never recorded it.
  uint32_t id(std::string_view name) const;

  size_t size() const { return names_.size(); }
  const std::string& name(uint32_t lane) const { return names_[lane]; }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

class DeltaFrame;

/// SoA mirror of Profile::sample_deltas(): row r of lane l holds the
/// same double the map walk would store under lanes().name(l) in
/// delta r (bit-identical — the builders reuse the map walk's exact
/// accumulation order), and present(l, r) is true exactly when the map
/// would contain the key. Cells that are absent hold 0.0, so get()
/// matches SampleDelta::get's default without a presence check.
class DeltaTable {
 public:
  DeltaTable() = default;
  DeltaTable(LaneTable lanes, std::vector<double> durations,
             std::vector<std::vector<double>> values,
             std::vector<std::vector<uint8_t>> present)
      : lanes_(std::move(lanes)),
        durations_(std::move(durations)),
        values_(std::move(values)),
        present_(std::move(present)) {}

  size_t rows() const { return durations_.size(); }
  const LaneTable& lanes() const { return lanes_; }

  double duration(size_t row) const { return durations_[row]; }

  /// Value of a lane in one row; 0.0 for kNoLane (an unrecorded metric
  /// reads as 0 everywhere, like SampleDelta::get).
  double get(uint32_t lane, size_t row) const {
    return lane == LaneTable::kNoLane ? 0.0 : values_[lane][row];
  }

  bool present(uint32_t lane, size_t row) const {
    return lane != LaneTable::kNoLane && present_[lane][row] != 0;
  }

  /// Multiply every cell of one lane in place — how the ReplayPlan bakes
  /// EmulatorOptions scale factors. Absent cells are 0.0 and stay 0.0,
  /// so the result matches scaling only the present map entries.
  void scale_lane(uint32_t lane, double factor);

  /// Rebuild the legacy SampleDelta of one row: present lanes become map
  /// keys in sorted order — the exact map the map walk would emit.
  SampleDelta unbox(size_t row) const;

  /// View of `count` rows starting at `first` (bounds unchecked beyond
  /// debug assertions; callers slice within rows()).
  DeltaFrame frame(size_t first, size_t count) const;

  /// Build from an already-decoded delta list (profiles without a
  /// retained SYNB payload). Trivially bit-identical: it re-shapes the
  /// map walk's own output.
  static DeltaTable from_deltas(const std::vector<SampleDelta>& deltas);

 private:
  LaneTable lanes_;
  std::vector<double> durations_;              ///< one per row
  std::vector<std::vector<double>> values_;    ///< [lane][row]
  std::vector<std::vector<uint8_t>> present_;  ///< [lane][row], 0/1
};

/// A contiguous row window of a DeltaTable. Plain value type (two words
/// + a pointer): copy it into worker threads; the table must outlive
/// every frame over it. Row indices are frame-relative.
class DeltaFrame {
 public:
  DeltaFrame() = default;
  DeltaFrame(const DeltaTable* table, size_t first, size_t count)
      : table_(table), first_(first), count_(count) {}

  size_t rows() const { return count_; }
  /// Global index of row 0 within the full replay (hooks report these).
  size_t first_index() const { return first_; }
  const LaneTable& lanes() const { return table_->lanes(); }

  double duration(size_t row) const { return table_->duration(first_ + row); }
  double get(uint32_t lane, size_t row) const {
    return table_->get(lane, first_ + row);
  }
  bool present(uint32_t lane, size_t row) const {
    return table_->present(lane, first_ + row);
  }
  SampleDelta unbox(size_t row) const { return table_->unbox(first_ + row); }

 private:
  const DeltaTable* table_ = nullptr;
  size_t first_ = 0;
  size_t count_ = 0;
};

inline DeltaFrame DeltaTable::frame(size_t first, size_t count) const {
  return DeltaFrame(this, first, count);
}

}  // namespace synapse::profile
