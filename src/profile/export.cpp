#include "profile/export.hpp"

#include <cerrno>
#include <cstdio>
#include <set>

#include "sys/error.hpp"

namespace synapse::profile {

namespace {

/// Quote a CSV field when needed (commas, quotes, newlines).
std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string out = "\"";
  for (const char c : value) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string series_to_csv(const Profile& profile) {
  std::string out = "watcher,timestamp,metric,value,effective_rate_hz\n";
  for (const auto& ts : profile.series) {
    // Measured, not nominal: for variable-rate (gated) series the two
    // diverge, and the measured one is what plots should annotate.
    const std::string rate = format_double(ts.effective_rate_hz());
    for (const auto& s : ts.samples) {
      for (const auto& [metric, value] : s.values) {
        out += csv_field(ts.watcher);
        out += ',';
        out += format_double(s.timestamp);
        out += ',';
        out += csv_field(metric);
        out += ',';
        out += format_double(value);
        out += ',';
        out += rate;
        out += '\n';
      }
    }
  }
  return out;
}

std::string totals_to_csv(const std::vector<Profile>& profiles) {
  // Column set: union of totals across profiles, sorted for stability.
  std::set<std::string> columns;
  for (const auto& p : profiles) {
    for (const auto& [metric, value] : p.totals) columns.insert(metric);
  }
  // Per-series effective-rate columns (rate_hz:<watcher>): the measured
  // rate of each watcher's series. The profile-level sample_rate_hz
  // alone misrepresents variable-rate (adaptively gated) recordings.
  std::set<std::string> watchers;
  for (const auto& p : profiles) {
    for (const auto& ts : p.series) watchers.insert(ts.watcher);
  }

  std::string out = "command,tags,created_at,sample_rate_hz";
  for (const auto& w : watchers) {
    out += ',';
    out += csv_field("rate_hz:" + w);
  }
  for (const auto& c : columns) {
    out += ',';
    out += csv_field(c);
  }
  out += '\n';

  for (const auto& p : profiles) {
    out += csv_field(p.command);
    out += ',';
    std::string tags;
    for (const auto& t : p.tags) {
      if (!tags.empty()) tags += ';';
      tags += t;
    }
    out += csv_field(tags);
    out += ',';
    out += format_double(p.created_at);
    out += ',';
    out += format_double(p.sample_rate_hz);
    for (const auto& w : watchers) {
      out += ',';
      const TimeSeries* ts = p.find_series(w);
      if (ts != nullptr) out += format_double(ts->effective_rate_hz());
    }
    for (const auto& c : columns) {
      out += ',';
      const auto it = p.totals.find(c);
      out += it != p.totals.end() ? format_double(it->second) : "";
    }
    out += '\n';
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw sys::SystemError("fopen(" + path + ")", errno);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    throw sys::SynapseError("short write: " + path);
  }
}

}  // namespace synapse::profile
