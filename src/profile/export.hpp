#pragma once
// Profile export: flatten profiles into CSV for external plotting.
//
// The paper publishes its raw data sets and plotting scripts alongside
// the software; this module is the equivalent export path. Two shapes:
//
//  - series CSV: one row per (watcher, timestamp, metric, value),
//    long/tidy format that plotting tools ingest directly;
//  - totals CSV: one row per profile with totals as columns, for
//    comparing repetitions or parameter sweeps.

#include <string>
#include <vector>

#include "profile/profile.hpp"

namespace synapse::profile {

/// Tidy per-sample export of one profile. Each row carries the owning
/// series' measured effective rate (effective_rate_hz column) so
/// variable-rate recordings annotate their actual trajectory.
std::string series_to_csv(const Profile& profile);

/// One row per profile; the column set is the union of all totals.
/// The first columns are command, tags, created_at, sample_rate_hz,
/// then one `rate_hz:<watcher>` column per watcher seen in any profile
/// (the series' measured effective rate — for variable-rate series this
/// is the number that matters, not the nominal rate).
std::string totals_to_csv(const std::vector<Profile>& profiles);

/// Write a string to a file (creates/truncates). Throws SystemError.
void write_file(const std::string& path, const std::string& content);

}  // namespace synapse::profile
