#include "profile/metrics.hpp"

namespace synapse::metrics {

std::string_view support_symbol(Support s) {
  switch (s) {
    case Support::Yes: return "+";
    case Support::Partial: return "(+)";
    case Support::Planned: return "(-)";
    case Support::No: return "-";
  }
  return "?";
}

const std::vector<MetricSupport>& support_matrix() {
  using S = Support;
  // Columns: total, sampled, derived, emulated — exactly the order of
  // paper Table 1 ("Tot. Samp. Der. Emul.").
  static const std::vector<MetricSupport> rows = {
      {"System", "number of cores", S::Yes, S::No, S::No, S::No},
      {"System", "max CPU frequency", S::Yes, S::No, S::No, S::No},
      {"System", "total memory", S::Yes, S::No, S::No, S::No},
      {"System", "runtime", S::Yes, S::Yes, S::No, S::No},
      {"System", "system load (CPU)", S::Yes, S::No, S::No, S::Yes},
      {"System", "system load (disk)", S::No, S::No, S::No, S::Yes},
      {"System", "system load (memory)", S::No, S::No, S::No, S::Yes},
      {"Compute", "CPU instructions", S::Yes, S::Yes, S::No, S::Yes},
      {"Compute", "cycles used", S::Yes, S::Yes, S::No, S::Yes},
      {"Compute", "cycles stalled backend", S::Yes, S::Yes, S::No, S::No},
      {"Compute", "cycles stalled frontend", S::Yes, S::Yes, S::No, S::No},
      {"Compute", "efficiency", S::Yes, S::Yes, S::Yes, S::Partial},
      {"Compute", "utilization", S::Yes, S::Yes, S::Yes, S::No},
      {"Compute", "FLOPs", S::Yes, S::Yes, S::Yes, S::Yes},
      {"Compute", "FLOP/s", S::Yes, S::Yes, S::Yes, S::No},
      {"Compute", "number of threads", S::Yes, S::No, S::No, S::Partial},
      {"Compute", "OpenMP", S::Partial, S::No, S::No, S::Yes},
      {"Storage", "bytes read", S::Yes, S::Yes, S::No, S::Yes},
      {"Storage", "bytes written", S::Yes, S::Yes, S::No, S::Yes},
      {"Storage", "block size read", S::No, S::Partial, S::No, S::Yes},
      {"Storage", "block size write", S::No, S::Partial, S::No, S::Yes},
      {"Storage", "used file system", S::Yes, S::No, S::No, S::Yes},
      {"Memory", "bytes peak", S::Yes, S::Yes, S::No, S::No},
      {"Memory", "bytes resident size", S::Yes, S::Yes, S::No, S::No},
      {"Memory", "bytes allocated", S::Yes, S::Yes, S::Yes, S::Yes},
      {"Memory", "bytes freed", S::Yes, S::Yes, S::Yes, S::Yes},
      {"Memory", "block size alloc", S::No, S::Planned, S::No, S::Planned},
      {"Memory", "block size free", S::No, S::Planned, S::No, S::Planned},
      {"Network", "connection endpoint", S::Planned, S::Planned, S::No,
       S::Partial},
      {"Network", "bytes read", S::Planned, S::Planned, S::No, S::Partial},
      {"Network", "bytes written", S::Planned, S::Planned, S::No, S::Partial},
      {"Network", "block size read", S::No, S::Planned, S::No, S::Planned},
      {"Network", "block size write", S::No, S::Planned, S::No, S::Planned},
  };
  return rows;
}

}  // namespace synapse::metrics
