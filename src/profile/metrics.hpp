#pragma once
// Canonical metric names and the metric support matrix (paper Table 1).
//
// Every watcher and atom refers to metrics through these constants so the
// profiler, the emulator and the Table 1 bench agree on spelling.

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace synapse::metrics {

// --- System ---------------------------------------------------------------
inline constexpr std::string_view kNumCores = "system.num_cores";
inline constexpr std::string_view kMaxCpuFreq = "system.max_cpu_freq_hz";
inline constexpr std::string_view kTotalMemory = "system.total_memory_bytes";
inline constexpr std::string_view kRuntime = "system.runtime_s";
inline constexpr std::string_view kLoadCpu = "system.load_cpu";
inline constexpr std::string_view kLoadDisk = "system.load_disk";
inline constexpr std::string_view kLoadMemory = "system.load_memory";

// --- Compute ----------------------------------------------------------------
inline constexpr std::string_view kInstructions = "compute.instructions";
inline constexpr std::string_view kCyclesUsed = "compute.cycles_used";
inline constexpr std::string_view kCyclesStalledBackend =
    "compute.cycles_stalled_backend";
inline constexpr std::string_view kCyclesStalledFrontend =
    "compute.cycles_stalled_frontend";
inline constexpr std::string_view kEfficiency = "compute.efficiency";
inline constexpr std::string_view kUtilization = "compute.utilization";
inline constexpr std::string_view kFlops = "compute.flops";
inline constexpr std::string_view kFlopsRate = "compute.flops_per_s";
inline constexpr std::string_view kNumThreads = "compute.num_threads";
inline constexpr std::string_view kOpenMp = "compute.openmp_threads";
inline constexpr std::string_view kTaskClock = "compute.task_clock_s";

// --- Storage ----------------------------------------------------------------
inline constexpr std::string_view kBytesRead = "storage.bytes_read";
inline constexpr std::string_view kBytesWritten = "storage.bytes_written";
inline constexpr std::string_view kReadOps = "storage.read_ops";
inline constexpr std::string_view kWriteOps = "storage.write_ops";
inline constexpr std::string_view kBlockSizeRead = "storage.block_size_read";
inline constexpr std::string_view kBlockSizeWrite = "storage.block_size_write";
inline constexpr std::string_view kFilesystem = "storage.filesystem";

// --- Memory -----------------------------------------------------------------
inline constexpr std::string_view kMemPeak = "memory.bytes_peak";
inline constexpr std::string_view kMemResident = "memory.bytes_resident";
inline constexpr std::string_view kMemAllocated = "memory.bytes_allocated";
inline constexpr std::string_view kMemFreed = "memory.bytes_freed";

// --- Network ----------------------------------------------------------------
inline constexpr std::string_view kNetBytesRead = "network.bytes_read";
inline constexpr std::string_view kNetBytesWritten = "network.bytes_written";

/// Support level for one usage column of Table 1.
enum class Support {
  Yes,      ///< "+"
  Partial,  ///< "(+)"
  Planned,  ///< "(-)"
  No,       ///< "-"
};

/// One row of Table 1.
struct MetricSupport {
  std::string_view resource;  ///< System / Compute / Storage / Memory / Network
  std::string_view metric;
  Support total;    ///< integrated total over runtime
  Support sampled;  ///< sampled over time
  Support derived;  ///< derived from other metrics
  Support emulated; ///< used in emulation
};

/// The full support matrix, mirroring paper Table 1 row for row.
const std::vector<MetricSupport>& support_matrix();

/// Printable symbol for a support level ("+", "(+)", "(-)", "-").
std::string_view support_symbol(Support s);

}  // namespace synapse::metrics
