#include "profile/profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "json/arena.hpp"
#include "profile/binary_codec.hpp"
#include "profile/metrics.hpp"
#include "sys/mmap_file.hpp"

namespace synapse::profile {

double Sample::get(std::string_view metric, double dflt) const {
  const auto it = values.find(std::string(metric));
  return it == values.end() ? dflt : it->second;
}

void Sample::set(std::string_view metric, double value) {
  values[std::string(metric)] = value;
}

double TimeSeries::last(std::string_view metric) const {
  for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
    const auto found = it->values.find(std::string(metric));
    if (found != it->values.end()) return found->second;
  }
  return 0.0;
}

double TimeSeries::max(std::string_view metric) const {
  double best = 0.0;
  for (const auto& s : samples) {
    best = std::max(best, s.get(metric));
  }
  return best;
}

double TimeSeries::effective_rate_hz() const {
  if (samples.size() < 2) return sample_rate_hz;
  const double span = samples.back().timestamp - samples.front().timestamp;
  if (!(span > 0.0)) return sample_rate_hz;
  return static_cast<double>(samples.size() - 1) / span;
}

GapStats TimeSeries::gap_stats() const {
  GapStats g;
  if (samples.size() < 2) return g;
  g.gaps = samples.size() - 1;
  g.min_s = std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (size_t i = 1; i < samples.size(); ++i) {
    const double gap = samples[i].timestamp - samples[i - 1].timestamp;
    g.min_s = std::min(g.min_s, gap);
    g.max_s = std::max(g.max_s, gap);
    sum += gap;
  }
  g.mean_s = sum / static_cast<double>(g.gaps);
  return g;
}

json::Value SystemInfo::to_json() const {
  json::Object o;
  o["hostname"] = hostname;
  o["cpu_model"] = cpu_model;
  o["num_cores"] = num_cores;
  o["max_cpu_freq_hz"] = max_cpu_freq_hz;
  o["total_memory_bytes"] = total_memory_bytes;
  o["resource_name"] = resource_name;
  return json::Value(std::move(o));
}

SystemInfo SystemInfo::from_json(const json::Value& v) {
  SystemInfo s;
  s.hostname = v.get_or("hostname", std::string());
  s.cpu_model = v.get_or("cpu_model", std::string());
  s.num_cores = static_cast<int>(v.get_or("num_cores", 0.0));
  s.max_cpu_freq_hz = v.get_or("max_cpu_freq_hz", 0.0);
  s.total_memory_bytes =
      static_cast<uint64_t>(v.get_or("total_memory_bytes", 0.0));
  s.resource_name = v.get_or("resource_name", std::string());
  return s;
}

double SampleDelta::get(std::string_view metric, double dflt) const {
  const auto it = deltas.find(std::string(metric));
  return it == deltas.end() ? dflt : it->second;
}

const TimeSeries* Profile::find_series(std::string_view watcher) const {
  for (const auto& ts : series) {
    if (ts.watcher == watcher) return &ts;
  }
  return nullptr;
}

double Profile::total(std::string_view metric, double dflt) const {
  const auto it = totals.find(std::string(metric));
  return it == totals.end() ? dflt : it->second;
}

double Profile::get_derived(std::string_view metric, double dflt) const {
  const auto it = derived.find(std::string(metric));
  return it == derived.end() ? dflt : it->second;
}

double Profile::runtime() const { return total(metrics::kRuntime); }

size_t Profile::sample_count() const {
  size_t n = 0;
  for (const auto& ts : series) n += ts.size();
  return n;
}

bool Profile::variable_rate() const {
  for (const auto& ts : series) {
    if (ts.variable_rate) return true;
  }
  return false;
}

bool is_instantaneous_metric(std::string_view metric) {
  static const std::set<std::string, std::less<>> inst = {
      std::string(metrics::kMemResident), std::string(metrics::kMemPeak),
      std::string(metrics::kNumThreads), std::string(metrics::kEfficiency),
      std::string(metrics::kUtilization)};
  return inst.count(metric) > 0;
}

namespace {

/// True when the retained SYNB payload still describes `series`: same
/// watchers, rates, sample counts and timestamps. Cheap relative to a
/// delta computation (no per-sample maps are touched), and the guard
/// that lets sample_deltas() trust the columns.
bool matches_payload_shape(const ProfileColumnsView& cols,
                           const std::vector<TimeSeries>& series) {
  if (cols.series.size() != series.size()) return false;
  for (size_t i = 0; i < series.size(); ++i) {
    const SeriesColumnsView& sv = cols.series[i];
    const TimeSeries& ts = series[i];
    if (sv.watcher != ts.watcher || sv.rate_hz != ts.sample_rate_hz ||
        sv.variable_rate != ts.variable_rate ||
        sv.sample_count != ts.samples.size()) {
      return false;
    }
    for (size_t j = 0; j < ts.samples.size(); ++j) {
      if (sv.timestamp(j) != ts.samples[j].timestamp) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<SampleDelta> Profile::sample_deltas() const {
  if (binary_) {
    try {
      const ProfileColumnsView cols = decode_columns(binary_->view());
      if (matches_payload_shape(cols, series)) {
        return sample_deltas_from_columns(cols, sample_rate_hz);
      }
    } catch (const CodecError&) {
      // A damaged retained payload is not fatal — the materialized
      // series below is authoritative.
    }
  }
  // Period resolution follows the fastest recorded series: with
  // per-watcher rate overrides the high-rate series defines the replay
  // granularity, slower series simply contribute to fewer buckets.
  double rate = sample_rate_hz;
  for (const auto& ts : series) rate = std::max(rate, ts.sample_rate_hz);

  if (variable_rate()) {
    // Variable-rate profiles: the recorded timestamps ARE the buckets.
    // Edges = sorted unique union of every sample instant across
    // watchers; each delta's duration is the recorded gap to the
    // previous edge, so the replay trajectory (burst density, idle
    // stretches) survives exactly. Bucket lookup is an exact-double
    // binary search — a sample always finds its own timestamp.
    std::vector<double> edges;
    size_t total = 0;
    for (const auto& ts : series) total += ts.samples.size();
    edges.reserve(total);
    for (const auto& ts : series) {
      for (const auto& s : ts.samples) edges.push_back(s.timestamp);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    if (edges.empty()) return {};

    std::vector<SampleDelta> out(edges.size());
    // The first bucket has no predecessor; fall back to the nominal
    // (burst) period, then to the first recorded gap.
    out[0].duration = rate > 0.0
                          ? 1.0 / rate
                          : (edges.size() > 1 ? edges[1] - edges[0] : 0.0);
    for (size_t j = 1; j < edges.size(); ++j) {
      out[j].duration = edges[j] - edges[j - 1];
    }

    const auto bucket_of = [&edges](double t) {
      return static_cast<size_t>(
          std::lower_bound(edges.begin(), edges.end(), t) - edges.begin());
    };
    for (const auto& ts : series) {
      std::map<std::string, double> last_cumulative;
      for (const auto& s : ts.samples) {
        const size_t b = bucket_of(s.timestamp);
        for (const auto& [metric, value] : s.values) {
          if (is_instantaneous_metric(metric)) {
            auto& slot = out[b].deltas[metric];
            slot = std::max(slot, value);
          } else {
            double& prev = last_cumulative[metric];
            const double delta = value - prev;
            prev = value;
            if (delta > 0) out[b].deltas[metric] += delta;
          }
        }
      }
    }
    return out;
  }

  if (rate <= 0.0) return {};
  const double period = 1.0 / rate;

  // Establish the profile time origin: earliest timestamp seen anywhere.
  double origin = std::numeric_limits<double>::infinity();
  for (const auto& ts : series) {
    if (!ts.samples.empty()) {
      origin = std::min(origin, ts.samples.front().timestamp);
    }
  }
  if (!std::isfinite(origin)) return {};

  // Bucket samples from every watcher into period indices. Watcher clocks
  // are unsynchronised (deliberately, section 4.1); bucketing on the
  // common origin reconstructs the recorded ordering across resource
  // types, which is all the emulation semantics require.
  // The epsilon absorbs floating-point jitter when timestamps land
  // exactly on period boundaries (synthetic profiles do).
  auto bucket_of = [origin, period](double t) {
    return static_cast<size_t>(
        std::max(0.0, (t - origin) / period + 1e-9));
  };

  size_t max_bucket = 0;
  for (const auto& ts : series) {
    for (const auto& s : ts.samples) {
      max_bucket = std::max(max_bucket, bucket_of(s.timestamp));
    }
  }

  std::vector<SampleDelta> out(max_bucket + 1);
  for (auto& d : out) d.duration = period;

  for (const auto& ts : series) {
    std::map<std::string, double> last_cumulative;
    for (const auto& s : ts.samples) {
      const size_t b = bucket_of(s.timestamp);
      for (const auto& [metric, value] : s.values) {
        if (is_instantaneous_metric(metric)) {
          auto& slot = out[b].deltas[metric];
          slot = std::max(slot, value);
        } else {
          double& prev = last_cumulative[metric];
          const double delta = value - prev;
          prev = value;
          if (delta > 0) out[b].deltas[metric] += delta;
        }
      }
    }
  }
  return out;
}

DeltaTable Profile::delta_table() const {
  if (binary_) {
    try {
      const ProfileColumnsView cols = decode_columns(binary_->view());
      if (matches_payload_shape(cols, series)) {
        return delta_table_from_columns(cols, sample_rate_hz);
      }
    } catch (const CodecError&) {
      // Same contract as sample_deltas(): a damaged retained payload is
      // not fatal, the materialized series below is authoritative.
    }
  }
  return DeltaTable::from_deltas(sample_deltas());
}

void Profile::compute_derived() {
  const double used = total(metrics::kCyclesUsed);
  const double stalled_fe = total(metrics::kCyclesStalledFrontend);
  const double stalled_be = total(metrics::kCyclesStalledBackend);
  const double wasted = stalled_fe + stalled_be;

  // efficiency = cycles_used / (cycles_used + cycles_wasted)   (section 4.3)
  if (used + wasted > 0) {
    derived[std::string(metrics::kEfficiency)] = used / (used + wasted);
  }

  // utilization = cycles_used / cycles_max, with cycles_max derived from
  // clock speed, core count and runtime.
  const double tx = runtime();
  const double cycles_max =
      system.max_cpu_freq_hz * static_cast<double>(system.num_cores) * tx;
  if (cycles_max > 0) {
    derived[std::string(metrics::kUtilization)] = used / cycles_max;
  }

  const double flops = total(metrics::kFlops);
  if (tx > 0 && flops > 0) {
    derived[std::string(metrics::kFlopsRate)] = flops / tx;
  }
}

json::Value Profile::to_json() const {
  json::Object root;
  root["command"] = command;
  json::Array jtags;
  for (const auto& t : tags) jtags.push_back(t);
  root["tags"] = std::move(jtags);
  root["sample_rate_hz"] = sample_rate_hz;
  root["created_at"] = created_at;
  root["system"] = system.to_json();

  json::Array jseries;
  for (const auto& ts : series) {
    json::Object jts;
    jts["watcher"] = ts.watcher;
    if (ts.sample_rate_hz > 0) jts["rate_hz"] = ts.sample_rate_hz;
    if (ts.variable_rate) jts["variable_rate"] = true;
    if (ts.gate.any()) {
      json::Object jg;
      jg["floor_hz"] = ts.gate.floor_hz;
      jg["burst_hz"] = ts.gate.burst_hz;
      jg["open_threshold"] = ts.gate.open_threshold;
      jg["close_hold_s"] = ts.gate.close_hold_s;
      jts["gate"] = std::move(jg);
    }
    json::Array jsamples;
    for (const auto& s : ts.samples) {
      json::Object js;
      js["t"] = s.timestamp;
      json::Object jv;
      for (const auto& [k, v] : s.values) jv[k] = v;
      js["v"] = std::move(jv);
      jsamples.push_back(json::Value(std::move(js)));
    }
    jts["samples"] = std::move(jsamples);
    jseries.push_back(json::Value(std::move(jts)));
  }
  root["series"] = std::move(jseries);

  json::Object jtotals;
  for (const auto& [k, v] : totals) jtotals[k] = v;
  root["totals"] = std::move(jtotals);

  json::Object jderived;
  for (const auto& [k, v] : derived) jderived[k] = v;
  root["derived"] = std::move(jderived);
  return json::Value(std::move(root));
}

Profile Profile::from_json(const json::Value& v) {
  Profile p;
  p.command = v.get_or("command", std::string());
  if (v.contains("tags")) {
    for (const auto& t : v["tags"].as_array()) p.tags.push_back(t.as_string());
  }
  p.sample_rate_hz = v.get_or("sample_rate_hz", 10.0);
  p.created_at = v.get_or("created_at", 0.0);
  if (v.contains("system")) p.system = SystemInfo::from_json(v["system"]);

  if (v.contains("series")) {
    for (const auto& jts : v["series"].as_array()) {
      TimeSeries ts;
      ts.watcher = jts.get_or("watcher", std::string());
      ts.sample_rate_hz = jts.get_or("rate_hz", 0.0);
      ts.variable_rate = jts.get_or("variable_rate", false);
      if (jts.contains("gate")) {
        const json::Value& jg = jts["gate"];
        ts.gate.floor_hz = jg.get_or("floor_hz", 0.0);
        ts.gate.burst_hz = jg.get_or("burst_hz", 0.0);
        ts.gate.open_threshold = jg.get_or("open_threshold", 0.0);
        ts.gate.close_hold_s = jg.get_or("close_hold_s", 0.0);
      }
      for (const auto& js : jts["samples"].as_array()) {
        Sample s;
        s.timestamp = js.get_or("t", 0.0);
        for (const auto& [k, val] : js["v"].as_object()) {
          s.values[k] = val.as_double();
        }
        ts.samples.push_back(std::move(s));
      }
      p.series.push_back(std::move(ts));
    }
  }
  if (v.contains("totals")) {
    for (const auto& [k, val] : v["totals"].as_object()) {
      p.totals[k] = val.as_double();
    }
  }
  if (v.contains("derived")) {
    for (const auto& [k, val] : v["derived"].as_object()) {
      p.derived[k] = val.as_double();
    }
  }
  return p;
}

namespace {

SystemInfo system_from_arena(const json::ArenaValue& v) {
  SystemInfo s;
  s.hostname = v.get_or("hostname", std::string());
  s.cpu_model = v.get_or("cpu_model", std::string());
  s.num_cores = static_cast<int>(v.get_or("num_cores", 0.0));
  s.max_cpu_freq_hz = v.get_or("max_cpu_freq_hz", 0.0);
  s.total_memory_bytes =
      static_cast<uint64_t>(v.get_or("total_memory_bytes", 0.0));
  s.resource_name = v.get_or("resource_name", std::string());
  return s;
}

}  // namespace

Profile Profile::from_arena(const json::ArenaValue& v) {
  Profile p;
  p.command = v.get_or("command", std::string());
  if (v.contains("tags")) {
    const json::ArenaValue& jt = v["tags"];
    for (const auto* t = jt.items_begin(); t != jt.items_end(); ++t) {
      p.tags.emplace_back(t->as_string());
    }
  }
  p.sample_rate_hz = v.get_or("sample_rate_hz", 10.0);
  p.created_at = v.get_or("created_at", 0.0);
  if (v.contains("system")) p.system = system_from_arena(v["system"]);

  if (v.contains("series")) {
    const json::ArenaValue& jseries = v["series"];
    for (const auto* jts = jseries.items_begin(); jts != jseries.items_end();
         ++jts) {
      TimeSeries ts;
      ts.watcher = jts->get_or("watcher", std::string());
      ts.sample_rate_hz = jts->get_or("rate_hz", 0.0);
      ts.variable_rate = jts->get_or("variable_rate", false);
      if (jts->contains("gate")) {
        const json::ArenaValue& jg = (*jts)["gate"];
        ts.gate.floor_hz = jg.get_or("floor_hz", 0.0);
        ts.gate.burst_hz = jg.get_or("burst_hz", 0.0);
        ts.gate.open_threshold = jg.get_or("open_threshold", 0.0);
        ts.gate.close_hold_s = jg.get_or("close_hold_s", 0.0);
      }
      const json::ArenaValue& jsamples = (*jts)["samples"];
      ts.samples.reserve(jsamples.size());
      for (const auto* js = jsamples.items_begin();
           js != jsamples.items_end(); ++js) {
        Sample s;
        s.timestamp = js->get_or("t", 0.0);
        const json::ArenaValue& jv = (*js)["v"];
        // Parsed member order is document order; profile documents are
        // written from sorted maps, so appending at end is the common
        // case and emplace_hint degrades gracefully otherwise.
        for (const auto* m = jv.members_begin(); m != jv.members_end(); ++m) {
          s.values.emplace_hint(s.values.end(), std::string(m->key),
                                m->value.as_double());
        }
        ts.samples.push_back(std::move(s));
      }
      p.series.push_back(std::move(ts));
    }
  }
  if (v.contains("totals")) {
    const json::ArenaValue& jt = v["totals"];
    for (const auto* m = jt.members_begin(); m != jt.members_end(); ++m) {
      p.totals.emplace_hint(p.totals.end(), std::string(m->key),
                            m->value.as_double());
    }
  }
  if (v.contains("derived")) {
    const json::ArenaValue& jd = v["derived"];
    for (const auto* m = jd.members_begin(); m != jd.members_end(); ++m) {
      p.derived.emplace_hint(p.derived.end(), std::string(m->key),
                             m->value.as_double());
    }
  }
  return p;
}

std::string Profile::to_binary() const { return encode_binary(*this); }

Profile Profile::from_binary(std::string data) {
  return from_binary_view(
      std::make_shared<const sys::StringBlob>(std::move(data)));
}

Profile Profile::from_binary_view(std::shared_ptr<const sys::Blob> blob) {
  Profile p = decode_binary(blob->view());
  p.binary_ = std::move(blob);
  return p;
}

size_t Profile::decoded_bytes() const {
  // Map nodes dominate; count them with a flat per-node overhead
  // (key + two doubles-ish + rb-tree pointers) so the cache budget
  // tracks sample volume rather than pretending to be malloc-exact.
  constexpr size_t kMapNode = 64;
  size_t bytes = sizeof(Profile) + command.capacity();
  for (const auto& t : tags) bytes += sizeof(std::string) + t.capacity();
  for (const auto& ts : series) {
    bytes += sizeof(TimeSeries) + ts.watcher.capacity();
    for (const auto& s : ts.samples) {
      bytes += sizeof(Sample);
      for (const auto& [k, v] : s.values) {
        (void)v;
        bytes += kMapNode + k.capacity();
      }
    }
  }
  for (const auto& [k, v] : totals) {
    (void)v;
    bytes += kMapNode + k.capacity();
  }
  for (const auto& [k, v] : derived) {
    (void)v;
    bytes += kMapNode + k.capacity();
  }
  if (binary_) bytes += binary_->view().size();
  return bytes;
}

}  // namespace synapse::profile
