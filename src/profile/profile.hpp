#pragma once
// The profile data model.
//
// A Profile is what the profiling module produces and the emulation
// module consumes (paper Fig. 1): static system information, one time
// series of samples per watcher, integrated totals, and derived metrics.
// Timestamps are per-watcher and unsynchronised (section 4.1); the
// combination happens at serialization time, not at sampling time.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace synapse::json {
class ArenaValue;
}

namespace synapse::sys {
class Blob;
}

namespace synapse::profile {

class DeltaTable;

/// Metric values observed at one sampling instant by one watcher.
/// Values are cumulative-so-far where that makes sense (bytes, cycles)
/// and instantaneous otherwise (resident memory, thread count); the
/// watcher decides, the emulator consumes per-sample *deltas* computed by
/// `Profile::sample_deltas`.
struct Sample {
  double timestamp = 0.0;  ///< wall-clock seconds (epoch)
  std::map<std::string, double> values;

  double get(std::string_view metric, double dflt = 0.0) const;
  void set(std::string_view metric, double value);
};

/// Gate parameters a variable-rate series was recorded under (the
/// adaptive scheduler's open/close gate) — informational metadata that
/// survives serialization so a replayed or exported profile explains
/// its own rate trajectory. All zero = not recorded.
struct SeriesGate {
  double floor_hz = 0.0;
  double burst_hz = 0.0;
  double open_threshold = 0.0;
  double close_hold_s = 0.0;

  bool any() const {
    return floor_hz != 0.0 || burst_hz != 0.0 || open_threshold != 0.0 ||
           close_hold_s != 0.0;
  }
};

/// min/mean/max spacing between consecutive samples of one series.
struct GapStats {
  size_t gaps = 0;  ///< sample_count - 1 (0 = no gaps, stats are 0)
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
};

/// Ordered samples from one watcher.
struct TimeSeries {
  std::string watcher;  ///< producing watcher name ("cpu", "mem", ...)
  /// Rate this series was sampled at. Watchers may run at individual
  /// rates (WatcherConfig::rate_overrides); 0 means "not recorded",
  /// i.e. the profile-level Profile::sample_rate_hz applies. For
  /// variable-rate series this is the nominal burst rate; the recorded
  /// timestamps are authoritative.
  double sample_rate_hz = 0.0;
  /// Recorded under an edge-triggered (gated) scheduler: inter-sample
  /// spacing varies, so consumers must bucket on timestamps instead of
  /// deriving a fixed period from the rate.
  bool variable_rate = false;
  SeriesGate gate;  ///< gate the series was recorded under (if any)
  std::vector<Sample> samples;

  bool empty() const { return samples.empty(); }
  size_t size() const { return samples.size(); }

  /// Last cumulative value of a metric (0 when absent everywhere).
  double last(std::string_view metric) const;

  /// Maximum value of a metric across samples.
  double max(std::string_view metric) const;

  /// Measured rate over the recorded span: (n-1) / (t_last - t_first).
  /// Falls back to sample_rate_hz when fewer than two samples (or a
  /// zero span) leave nothing to measure.
  double effective_rate_hz() const;

  /// Inter-sample gap statistics (the variable-rate trajectory summary
  /// `synapse-inspect` prints).
  GapStats gap_stats() const;
};

/// Static description of the machine the profile was taken on.
struct SystemInfo {
  std::string hostname;
  std::string cpu_model;
  int num_cores = 0;
  double max_cpu_freq_hz = 0.0;
  uint64_t total_memory_bytes = 0;
  std::string resource_name;  ///< virtual-resource name, "" = bare metal

  json::Value to_json() const;
  static SystemInfo from_json(const json::Value& v);
};

/// True for metrics that are instantaneous observations (resident
/// memory, thread count, ...) rather than cumulative counters: deltas
/// make no sense for them, so sample_deltas() propagates the
/// within-period maximum instead, and synthetic-profile builders must
/// write absolute values rather than running sums.
bool is_instantaneous_metric(std::string_view metric);

/// One emulation step: the per-resource consumption deltas of a single
/// sampling period, in recorded order. This is the unit the emulator's
/// global loop feeds to the atoms (paper section 4.2).
struct SampleDelta {
  double duration = 0.0;  ///< profiled length of the sampling period
  std::map<std::string, double> deltas;

  double get(std::string_view metric, double dflt = 0.0) const;
};

/// A complete application profile.
class Profile {
 public:
  // --- identity -----------------------------------------------------------
  std::string command;                ///< application start command
  std::vector<std::string> tags;      ///< user tags (search index)
  double sample_rate_hz = 10.0;       ///< configured watcher rate
  double created_at = 0.0;            ///< wall-clock time of profiling

  // --- payload --------------------------------------------------------------
  SystemInfo system;
  std::vector<TimeSeries> series;     ///< one per watcher
  std::map<std::string, double> totals;   ///< integrated over runtime
  std::map<std::string, double> derived;  ///< efficiency, utilization, ...

  // --- accessors ------------------------------------------------------------
  /// Find the series of a watcher; nullptr when that watcher did not run.
  const TimeSeries* find_series(std::string_view watcher) const;

  double total(std::string_view metric, double dflt = 0.0) const;
  double get_derived(std::string_view metric, double dflt = 0.0) const;

  /// Application wall-clock runtime (Tx) recorded by the spawner.
  double runtime() const;

  /// Total number of samples across all watchers.
  size_t sample_count() const;

  /// Any series recorded variable-rate (adaptive scheduler)? Such
  /// profiles bucket sample_deltas() on the recorded timestamps and
  /// replay paced by the recorded inter-sample gaps.
  bool variable_rate() const;

  /// Merge all watcher series into one ordered list of per-period
  /// consumption deltas — the input to the emulator. Cumulative metrics
  /// are differenced; instantaneous metrics (listed internally) carry
  /// their max within the period. For fixed-rate profiles, periods are
  /// formed on the union of all watcher timestamps, rounded to the
  /// sampling period, preserving the recorded order across resource
  /// types (paper Fig. 2/3 semantics). For variable-rate profiles the
  /// buckets are the recorded timestamps themselves (one bucket per
  /// distinct instant across watchers) and each delta's duration is the
  /// recorded gap to the previous bucket.
  ///
  /// Profiles decoded via from_binary() keep their SYNB payload and take
  /// a columnar fast path here (flat array walk, bit-identical result).
  /// The payload is trusted while `series` still matches its shape and
  /// timestamps; code that edits sample *values* of a decoded profile in
  /// place must call drop_binary_payload() first.
  std::vector<SampleDelta> sample_deltas() const;

  /// sample_deltas() compiled into the columnar DeltaTable
  /// (delta_frame.hpp): same rows, same durations, cell (lane, row)
  /// bit-identical to the map entry, presence mirroring key existence.
  /// Profiles with a retained SYNB payload build the table straight
  /// from the columns (no per-sample maps); others re-shape the map
  /// walk's output. This is what the replay engine's frame path feeds.
  DeltaTable delta_table() const;

  /// Compute derived metrics (efficiency, utilization, FLOP/s) from
  /// totals + system info, following paper section 4.3 formulas.
  void compute_derived();

  // --- serialization ----------------------------------------------------------
  json::Value to_json() const;
  static Profile from_json(const json::Value& v);

  /// from_json against the arena DOM (json/arena.hpp) — same shape, no
  /// per-node heap traffic on the parse side. Store backends use this
  /// for JSON-format reads.
  static Profile from_arena(const json::ArenaValue& v);

  /// SYNB binary columnar container (binary_codec.hpp). from_binary
  /// retains the encoded payload so sample_deltas() can walk columns.
  std::string to_binary() const;
  static Profile from_binary(std::string data);

  /// from_binary over a shared buffer — no copy of the encoded bytes.
  /// The profile holds a reference on `blob` for its lifetime, which is
  /// what lets the files backend decode straight out of an mmap-ed
  /// .profile.synb (sys::MappedBlob) and keep the mapping alive past a
  /// concurrent remove() of the file. Throws CodecError like
  /// from_binary; `blob` must not be null.
  static Profile from_binary_view(std::shared_ptr<const sys::Blob> blob);

  bool has_binary_payload() const { return binary_ != nullptr; }
  void drop_binary_payload() { binary_.reset(); }

  /// Rough in-memory footprint (materialized structures + retained
  /// payload reference) — the unit of the store's decoded-profile cache
  /// budget. An estimate, not an allocator-exact measure.
  size_t decoded_bytes() const;

 private:
  /// SYNB blob this profile was decoded from, if any; shared so Profile
  /// copies stay cheap-ish and keep the fast path (and, for mapped
  /// blobs, the mapping) alive.
  std::shared_ptr<const sys::Blob> binary_;
};

}  // namespace synapse::profile
