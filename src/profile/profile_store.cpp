#include "profile/profile_store.hpp"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>

#include "sys/error.hpp"

namespace synapse::profile {

ProfileStore::ProfileStore() : backend_(Backend::Memory) {}

ProfileStore::ProfileStore(Backend backend, const std::string& directory)
    : backend_(backend), directory_(directory) {
  if (backend_ == Backend::DocStore) {
    store_ = std::make_unique<docstore::Store>(directory);
  } else if (backend_ == Backend::Files) {
    ::mkdir(directory.c_str(), 0755);
  }
}

std::string ProfileStore::tags_key(const std::vector<std::string>& tags) const {
  std::vector<std::string> sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& t : sorted) {
    if (!key.empty()) key += ',';
    key += t;
  }
  return key;
}

namespace {
std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '_';
  }
  return out.substr(0, 120);
}
}  // namespace

std::string ProfileStore::file_name(const Profile& p, size_t seq) const {
  return directory_ + "/" + sanitize(p.command) + "." +
         sanitize(tags_key(p.tags)) + "." + std::to_string(seq) +
         ".profile.json";
}

bool ProfileStore::put(const Profile& profile) {
  switch (backend_) {
    case Backend::Memory:
      memory_.push_back(profile);
      return false;
    case Backend::DocStore: {
      json::Value doc = profile.to_json();
      doc.as_object()["tags_key"] = tags_key(profile.tags);
      const auto result =
          store_->collection("profiles").insert(std::move(doc));
      return result.truncated;
    }
    case Backend::Files: {
      // Find the next free sequence number for this workload.
      size_t seq = 0;
      while (true) {
        const std::string path = file_name(profile, seq);
        struct stat st {};
        if (::stat(path.c_str(), &st) != 0) break;
        ++seq;
      }
      json::save_file(file_name(profile, seq), profile.to_json(),
                      /*indent=*/0);
      return false;
    }
  }
  return false;
}

std::vector<Profile> ProfileStore::find(
    const std::string& command, const std::vector<std::string>& tags) const {
  std::vector<Profile> out;
  switch (backend_) {
    case Backend::Memory: {
      const std::string key = tags_key(tags);
      for (const auto& p : memory_) {
        if (p.command == command && tags_key(p.tags) == key) out.push_back(p);
      }
      break;
    }
    case Backend::DocStore: {
      const std::vector<docstore::FieldEquals> query = {
          {"command", json::Value(command)},
          {"tags_key", json::Value(tags_key(tags))}};
      for (const auto& doc : store_->collection("profiles").find(query)) {
        out.push_back(Profile::from_json(doc));
      }
      break;
    }
    case Backend::Files: {
      DIR* dir = ::opendir(directory_.c_str());
      if (dir == nullptr) break;
      const std::string prefix =
          sanitize(command) + "." + sanitize(tags_key(tags)) + ".";
      while (struct dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.rfind(prefix, 0) == 0 &&
            name.size() > 13 &&
            name.compare(name.size() - 13, 13, ".profile.json") == 0) {
          Profile p =
              Profile::from_json(json::load_file(directory_ + "/" + name));
          // Sanitization can collide; verify the real identity.
          if (p.command == command && tags_key(p.tags) == tags_key(tags)) {
            out.push_back(std::move(p));
          }
        }
      }
      ::closedir(dir);
      break;
    }
  }
  std::sort(out.begin(), out.end(), [](const Profile& a, const Profile& b) {
    return a.created_at < b.created_at;
  });
  return out;
}

std::optional<Profile> ProfileStore::find_latest(
    const std::string& command, const std::vector<std::string>& tags) const {
  auto all = find(command, tags);
  if (all.empty()) return std::nullopt;
  return std::move(all.back());
}

std::map<std::string, MetricStats> ProfileStore::stats(
    const std::string& command, const std::vector<std::string>& tags) const {
  return aggregate_totals(find(command, tags));
}

void ProfileStore::flush() {
  if (backend_ == Backend::DocStore && store_) store_->flush();
}

size_t ProfileStore::size() const {
  switch (backend_) {
    case Backend::Memory: return memory_.size();
    case Backend::DocStore: return store_->collection("profiles").size();
    case Backend::Files: {
      size_t n = 0;
      DIR* dir = ::opendir(directory_.c_str());
      if (dir == nullptr) return 0;
      while (struct dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.size() > 13 &&
            name.compare(name.size() - 13, 13, ".profile.json") == 0) {
          ++n;
        }
      }
      ::closedir(dir);
      return n;
    }
  }
  return 0;
}

}  // namespace synapse::profile
