#include "profile/profile_store.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iterator>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "docstore/docstore.hpp"
#include "json/json.hpp"
#include "profile/store_backend.hpp"
#include "sys/error.hpp"
#include "sys/task_pool.hpp"

namespace synapse::profile {

namespace {

constexpr const char* kMetaFile = "store.meta.json";

using storedetail::count_profile_files;
using storedetail::file_exists;
using storedetail::fnv1a;
using storedetail::has_profile_suffix;
using storedetail::unique_tmp_suffix;

std::string index_key(const std::string& command,
                      const std::string& tags_key) {
  return command + '\x1f' + tags_key;
}

}  // namespace

// --- shard -----------------------------------------------------------------

struct ProfileStore::Shard {
  mutable std::mutex mutex;

  /// Registry-resolved persistence for this shard.
  std::unique_ptr<StoreBackend> backend;

  // In-shard LRU decoded-profile cache: find() results keyed by
  // command+tags, bounded by an entry count AND a decoded-byte budget.
  // Guarded by `mutex`; front of the list is most recently used. Each
  // entry carries the backend's cache_stamp() at fill time, so writes
  // from other processes invalidate stale entries (backends with a
  // process-private view keep a constant stamp). Entries are immutable
  // shared snapshots: find_shared() hands out a reference to the cached
  // vector, and writers REPLACE entries rather than mutating them, so a
  // reader's snapshot survives concurrent puts/removes/evictions.
  struct CacheEntry {
    std::string key;
    std::shared_ptr<const std::vector<Profile>> profiles;
    uint64_t stamp = 0;
    size_t bytes = 0;  ///< decoded_bytes() sum at fill time
  };
  std::list<CacheEntry> lru;
  std::map<std::string, std::list<CacheEntry>::iterator> lru_index;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  size_t cache_bytes = 0;  ///< sum of CacheEntry::bytes

  static size_t entry_bytes(const std::vector<Profile>& profiles) {
    size_t bytes = 0;
    for (const auto& p : profiles) bytes += p.decoded_bytes();
    return bytes;
  }

  /// Caller holds `mutex`. `stamp` must match the entry's fill stamp;
  /// a mismatched (stale) entry is dropped and counted as a miss.
  std::shared_ptr<const std::vector<Profile>> cache_lookup(
      const std::string& key, uint64_t stamp) {
    const auto it = lru_index.find(key);
    if (it == lru_index.end()) {
      ++cache_misses;
      return nullptr;
    }
    if (it->second->stamp != stamp) {
      cache_bytes -= it->second->bytes;
      lru.erase(it->second);
      lru_index.erase(it);
      ++cache_invalidations;
      ++cache_misses;
      return nullptr;
    }
    lru.splice(lru.begin(), lru, it->second);
    ++cache_hits;
    return it->second->profiles;
  }

  /// Caller holds `mutex`. `max_bytes` is this shard's slice of the
  /// store's decoded-byte budget (0 = unbounded); an entry that alone
  /// exceeds it is not cached at all — a single oversize workload must
  /// not wipe every other hot entry.
  void cache_store(const std::string& key,
                   std::shared_ptr<const std::vector<Profile>> profiles,
                   uint64_t stamp, size_t capacity, size_t max_bytes) {
    if (capacity == 0) return;
    const size_t bytes = entry_bytes(*profiles);
    if (max_bytes > 0 && bytes > max_bytes) {
      cache_invalidate(key);  // don't leave a stale smaller snapshot
      return;
    }
    const auto it = lru_index.find(key);
    if (it != lru_index.end()) {
      cache_bytes -= it->second->bytes;
      it->second->profiles = std::move(profiles);
      it->second->stamp = stamp;
      it->second->bytes = bytes;
      cache_bytes += bytes;
      lru.splice(lru.begin(), lru, it->second);
    } else {
      lru.push_front(CacheEntry{key, std::move(profiles), stamp, bytes});
      lru_index[key] = lru.begin();
      cache_bytes += bytes;
    }
    while (lru.size() > capacity ||
           (max_bytes > 0 && cache_bytes > max_bytes)) {
      cache_bytes -= lru.back().bytes;
      lru_index.erase(lru.back().key);
      lru.pop_back();
    }
  }

  /// Caller holds `mutex`.
  void cache_invalidate(const std::string& key) {
    const auto it = lru_index.find(key);
    if (it == lru_index.end()) return;
    cache_bytes -= it->second->bytes;
    lru.erase(it->second);
    lru_index.erase(it);
    ++cache_invalidations;
  }
};

// --- background flush worker ----------------------------------------------

struct ProfileStore::Flusher {
  using Clock = std::chrono::steady_clock;

  std::mutex mutex;
  std::condition_variable cv;
  bool pending = false;  ///< a flush_async() request not yet picked up
  bool running = false;  ///< the worker is flushing right now
  bool stop = false;
  /// Writes since the last flush began; drives FlushPolicy::max_pending
  /// and the drain-on-destruction guarantee.
  size_t dirty = 0;
  /// When the first of the `dirty` writes happened; the age deadline
  /// anchor (meaningful only while dirty > 0).
  Clock::time_point oldest_dirty{};
  FlushPolicy policy;
  std::thread worker;

  Clock::duration max_age() const {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(policy.max_age_s));
  }

  ~Flusher() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv.notify_all();
    // The worker drains outstanding writes (a timed flush still in
    // flight, or dirty puts whose deadline never fired) before exiting;
    // see start_flush_worker().
    if (worker.joinable()) worker.join();
  }
};

// --- construction ----------------------------------------------------------

ProfileStore::ProfileStore(ProfileStoreOptions options)
    : options_(std::move(options)) {
  options_.shards = std::max<size_t>(1, options_.shards);
  const StoreBackendRegistry& registry =
      options_.registry ? *options_.registry : StoreBackendRegistry::instance();
  // Validate the requested name before touching the filesystem — the
  // diagnostic lists every registered backend.
  registry.ensure_registered(options_.backend);
  if (!options_.format.empty() && options_.format != "json" &&
      options_.format != "binary") {
    throw sys::ConfigError("unknown profile format: " + options_.format +
                           " (expected json or binary)");
  }
  // The memory backend never persists; a stray directory would only
  // stamp a meta file over a path it will never read again.
  if (options_.backend == "memory") options_.directory.clear();

  bool fresh_meta = false;
  if (!options_.directory.empty()) {
    ::mkdir(options_.directory.c_str(), 0755);
    // The backend name and shard count are part of the on-disk layout:
    // honour the meta file of an existing store over the requested
    // options, so a store reopened with different options still finds
    // every profile. The meta file is claimed with link() so that when
    // several processes first-open the same directory concurrently,
    // exactly one defines the layout; losers read the winner's
    // (complete, link() only exposes whole files) meta.
    const std::string meta_path = options_.directory + "/" + kMetaFile;
    if (!file_exists(meta_path)) {
      // Refuse to stamp a meta file over legacy content of ANOTHER
      // backend: that would bind the directory to a layout that can
      // never adopt the existing profiles.
      if (options_.backend != "files" &&
          count_profile_files(options_.directory) > 0) {
        throw sys::ConfigError(
            "profile store '" + options_.directory +
            "' holds a files-backend layout; open it with the 'files' "
            "backend");
      }
      if (options_.backend != "docstore" &&
          file_exists(options_.directory + "/profiles.collection.json")) {
        throw sys::ConfigError(
            "profile store '" + options_.directory +
            "' holds a docstore layout; open it with the 'docstore' "
            "backend");
      }
      // New stores default to the binary format; the choice is only
      // committed to options_ when this process actually wins the
      // meta-claim race — a loser honours the winner's meta below.
      const std::string format_candidate =
          options_.format.empty() ? "binary" : options_.format;
      json::Object meta;
      meta["shards"] = options_.shards;
      meta["backend"] = options_.backend;
      meta["format"] = format_candidate;
      const std::string tmp = meta_path + ".tmp-" + unique_tmp_suffix();
      json::save_file(tmp, json::Value(std::move(meta)), /*indent=*/0);
      if (::link(tmp.c_str(), meta_path.c_str()) == 0) {
        fresh_meta = true;
        options_.format = format_candidate;
      } else if (errno != EEXIST) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw sys::SystemError("link(" + meta_path + ")", err);
      }
      ::unlink(tmp.c_str());
    }
    if (!fresh_meta) {
      const json::Value meta = json::load_file(meta_path);
      const size_t persisted =
          static_cast<size_t>(meta.get_or("shards", 0.0));
      if (persisted >= 1) options_.shards = persisted;
      // A store directory is bound to the backend that created it;
      // opening it with another backend would silently show zero
      // profiles and interleave incompatible layouts. A meta file
      // naming a backend nobody registered is a hard error too — not a
      // silent fall-through to some default.
      const std::string persisted_backend =
          meta.get_or("backend", options_.backend);
      if (persisted_backend != options_.backend) {
        if (!registry.contains(persisted_backend)) {
          std::string known;
          for (const auto& name : registry.names()) {
            if (!known.empty()) known += ", ";
            known += name;
          }
          throw sys::ConfigError(
              "profile store '" + options_.directory +
              "' was created with backend '" + persisted_backend +
              "', which is not registered (registered: " + known + ")");
        }
        throw sys::ConfigError("profile store '" + options_.directory +
                               "' was created with the " + persisted_backend +
                               " backend, not " + options_.backend);
      }
      // Unlike the backend, the format is NOT binding: reads sniff every
      // stored blob, so an explicit option simply changes what new
      // writes look like (convert_all() builds on exactly this). No
      // option means "keep writing what the store was created with";
      // meta files from before the format field describe JSON stores.
      if (options_.format.empty()) {
        options_.format = meta.get_or("format", std::string("json"));
      }
    }
  }
  // Directory-less (memory) stores have no meta to honour.
  if (options_.format.empty()) options_.format = "binary";

  // The pool cross-shard operations fan out on. threads == 1 keeps the
  // store fully serial (no pool at all); 0 shares the process-wide
  // pool so a dozen stores do not spawn a dozen thread herds.
  if (options_.threads == 0) {
    pool_ = &sys::TaskPool::shared();
  } else if (options_.threads >= 2) {
    owned_pool_ = std::make_unique<sys::TaskPool>(options_.threads);
    pool_ = owned_pool_.get();
  }

  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    StoreBackendContext context;
    context.directory = options_.directory;
    context.shard_index = i;
    context.shard_count = options_.shards;
    context.spec_file = options_.cluster_spec;
    context.format = options_.format;
    shard->backend = registry.create(options_.backend, context);
    shards_.push_back(std::move(shard));
  }
  // A directory may hold profiles written by the pre-sharding layout —
  // either because this open created the store meta, or because an
  // earlier migration was interrupted mid-way. The check is a cheap
  // existence scan, so attempt adoption on every open; leftovers from
  // an interrupted run are picked up then.
  if (!options_.directory.empty()) migrate_legacy_layout();
  // The async-flush worker only matters for backends that buffer until
  // flush() (the others persist eagerly); started here so flush_async()
  // and flush() never race on its creation.
  if (shards_.front()->backend->needs_flush()) start_flush_worker();
}

ProfileStore::ProfileStore(const std::string& backend,
                           const std::string& directory,
                           ProfileStoreOptions options)
    : ProfileStore([&] {
        options.backend = backend;
        options.directory = directory;
        return std::move(options);
      }()) {}

void ProfileStore::migrate_legacy_layout() {
  if (options_.backend == "files") {
    // Legacy layout: *.profile.json directly in the store root.
    DIR* dir = ::opendir(options_.directory.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> legacy;
    while (struct dirent* entry = ::readdir(dir)) {
      if (has_profile_suffix(entry->d_name)) {
        legacy.push_back(entry->d_name);
      }
    }
    ::closedir(dir);
    for (const auto& name : legacy) {
      const std::string path = options_.directory + "/" + name;
      // Claim the file with an atomic rename so concurrent openers
      // cannot both adopt it (the claimed name no longer matches the
      // *.profile.json scans); the loser's rename fails and it skips.
      const std::string claimed = path + ".migrating-" + unique_tmp_suffix();
      if (::rename(path.c_str(), claimed.c_str()) != 0) continue;
      try {
        put(Profile::from_json(json::load_file(claimed)));
      } catch (const std::exception&) {
        // A corrupt legacy file must not abort the open (which would
        // hide every *other* legacy profile); park it under a name the
        // scans ignore so the data is kept but not retried.
        ::rename(claimed.c_str(), (path + ".unreadable").c_str());
        continue;
      }
      ::unlink(claimed.c_str());
    }
  } else if (options_.backend == "docstore") {
    // Legacy layout: one docstore rooted at the store directory itself.
    // Claim the collection file by renaming it into a scratch directory
    // (atomic, so concurrent openers cannot both adopt it), then open a
    // docstore over that scratch directory to read the documents.
    const std::string legacy_path =
        options_.directory + "/profiles.collection.json";
    if (!file_exists(legacy_path)) return;
    const std::string scratch =
        options_.directory + "/.migrating-" + unique_tmp_suffix();
    ::mkdir(scratch.c_str(), 0755);
    const std::string claimed = scratch + "/profiles.collection.json";
    if (::rename(legacy_path.c_str(), claimed.c_str()) != 0) {
      ::rmdir(scratch.c_str());
      return;  // another opener claimed it
    }
    try {
      docstore::Store legacy(scratch);
      for (const auto& doc : legacy.collection("profiles").all()) {
        try {
          put(Profile::from_json(doc));
        } catch (const std::exception&) {
          continue;  // skip one malformed document, keep the rest
        }
      }
    } catch (const std::exception&) {
      // Unreadable legacy collection: park it (data kept, not retried)
      // rather than failing every subsequent open.
      ::rename(claimed.c_str(), (legacy_path + ".unreadable").c_str());
      ::rmdir(scratch.c_str());
      return;
    }
    flush_all_shards();
    ::unlink(claimed.c_str());
    ::rmdir(scratch.c_str());
  }
}

ProfileStore::~ProfileStore() = default;
ProfileStore::ProfileStore(ProfileStore&&) noexcept = default;

ProfileStore& ProfileStore::operator=(ProfileStore&& other) noexcept {
  if (this != &other) {
    // Join our flush worker BEFORE the shards it captured are freed; a
    // member-wise move would assign shards_ first (declaration order)
    // and leave a running worker pointing at destroyed shards.
    flusher_.reset();
    options_ = std::move(other.options_);
    // Pool pointers stay valid across the move: they reference either
    // the process-wide shared pool or the heap pool owned_pool_ now
    // owns (the flush worker captured the same raw pointer).
    owned_pool_ = std::move(other.owned_pool_);
    pool_ = other.pool_;
    other.pool_ = nullptr;
    shards_ = std::move(other.shards_);
    flusher_ = std::move(other.flusher_);
  }
  return *this;
}

// --- keys and routing ------------------------------------------------------

std::string ProfileStore::detect_backend(const std::string& directory) {
  const std::string meta_path = directory + "/" + kMetaFile;
  if (file_exists(meta_path)) {
    try {
      const json::Value meta = json::load_file(meta_path);
      const std::string name = meta.get_or("backend", std::string());
      // Return the recorded name VERBATIM (even one nobody registered):
      // opening resolves it through the registry, which fails unknown
      // names with a diagnostic listing the registered backends —
      // falling back to a default here would silently misread the
      // store.
      if (!name.empty()) return name;
      return "files";  // pre-backend-field meta: always a files store
    } catch (const std::exception&) {
      // Unreadable meta: fall through to the layout scan below.
    }
  }
  // Pre-meta legacy layouts: a root docstore collection marks docstore;
  // anything else (flat profile files, empty, fresh) opens as files.
  if (file_exists(directory + "/profiles.collection.json")) {
    return "docstore";
  }
  return "files";
}

std::string ProfileStore::detect_format(const std::string& directory) {
  const std::string meta_path = directory + "/" + kMetaFile;
  if (file_exists(meta_path)) {
    try {
      const json::Value meta = json::load_file(meta_path);
      const std::string format = meta.get_or("format", std::string());
      if (!format.empty()) return format;
    } catch (const std::exception&) {
      // Unreadable meta: the pre-format default below applies.
    }
  }
  // Everything written before the format field existed is JSON.
  return "json";
}

std::string ProfileStore::tags_key(const std::vector<std::string>& tags) {
  return store_tags_key(tags);
}

ProfileStore::Shard& ProfileStore::shard_for(const std::string& command,
                                             const std::string& tkey) const {
  const uint64_t h = fnv1a(index_key(command, tkey));
  return *shards_[h % shards_.size()];
}

size_t ProfileStore::shard_count() const { return shards_.size(); }

size_t ProfileStore::task_threads() const {
  return pool_ == nullptr ? 1 : pool_->thread_count();
}

void ProfileStore::run_sharded(
    size_t count, const std::function<void(size_t)>& body) const {
  if (pool_ == nullptr || count <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->parallel_for(count, body);
}

// --- writes ----------------------------------------------------------------

bool ProfileStore::put(const Profile& profile) {
  const std::string tkey = tags_key(profile.tags);
  Shard& shard = shard_for(profile.command, tkey);
  bool truncated;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache_invalidate(index_key(profile.command, tkey));
    truncated = shard.backend->put(profile, tkey);
  }
  note_puts(1);
  return truncated;
}

size_t ProfileStore::put_many(const std::vector<Profile>& profiles,
                              std::vector<bool>* stored) {
  // Group by shard so each shard is locked once per batch; tags_key is
  // computed once per profile and reused for routing, cache keys and
  // the backend write. The per-shard batches then run CONCURRENTLY on
  // the task pool (one task per shard, each locking only its own
  // shard), which is where multi-shard ingest scales.
  struct Pending {
    const Profile* profile;
    std::string tkey;
    size_t index;  ///< position in the caller's vector, for `stored`
  };
  if (stored != nullptr) stored->assign(profiles.size(), false);
  std::map<Shard*, std::vector<Pending>> by_shard;
  for (size_t i = 0; i < profiles.size(); ++i) {
    std::string tkey = tags_key(profiles[i].tags);
    Shard& shard = shard_for(profiles[i].command, tkey);
    by_shard[&shard].push_back(Pending{&profiles[i], std::move(tkey), i});
  }
  std::vector<std::pair<Shard*, std::vector<Pending>*>> groups;
  groups.reserve(by_shard.size());
  for (auto& [shard, batch] : by_shard) groups.emplace_back(shard, &batch);

  std::atomic<size_t> truncated{0};
  std::atomic<size_t> landed{0};
  // Per-profile landed flags live in a vector<char>, not vector<bool>:
  // shard tasks set disjoint elements concurrently, which vector<bool>'s
  // bit packing would turn into a data race. Merged into the caller's
  // vector<bool> below — in the guard, because the flags must reach the
  // caller even when a put throws mid-batch (the exactly-once retry
  // contract) and parallel_for rethrows only after every index ran.
  std::vector<char> landed_flags(profiles.size(), 0);
  struct MergeGuard {
    ProfileStore* self;
    const std::atomic<size_t>* landed;
    const std::vector<char>* flags;
    std::vector<bool>* stored;
    ~MergeGuard() {
      if (stored != nullptr) {
        for (size_t i = 0; i < flags->size(); ++i) {
          (*stored)[i] = (*flags)[i] != 0;
        }
      }
      // Account writes even on a throwing batch: everything flagged is
      // in the store and needs flushing like any other put.
      self->note_puts(landed->load());
    }
  } guard{this, &landed, &landed_flags, stored};

  run_sharded(groups.size(), [&](size_t g) {
    Shard* shard = groups[g].first;
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const Pending& pending : *groups[g].second) {
      shard->cache_invalidate(
          index_key(pending.profile->command, pending.tkey));
      if (shard->backend->put(*pending.profile, pending.tkey)) {
        truncated.fetch_add(1);
      }
      landed.fetch_add(1);
      landed_flags[pending.index] = 1;
    }
  });
  return truncated.load();
}

size_t ProfileStore::remove(const std::string& command,
                            const std::vector<std::string>& tags) {
  const std::string tkey = tags_key(tags);
  Shard& shard = shard_for(command, tkey);
  size_t removed;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache_invalidate(index_key(command, tkey));
    removed = shard.backend->remove(command, tkey);
  }
  // A removal mutates buffering backends like a put does: account it so
  // the flush worker persists the deletion.
  if (removed > 0) note_puts(1);
  return removed;
}

// --- reads -----------------------------------------------------------------

std::vector<Profile> ProfileStore::read_from(const Shard& shard,
                                             const std::string& command,
                                             const std::string& tkey) const {
  std::vector<Profile> out = shard.backend->read(command, tkey);
  // Recorded-timestamp order; stable so equal timestamps keep backend
  // (insertion) order.
  std::stable_sort(out.begin(), out.end(),
                   [](const Profile& a, const Profile& b) {
                     return a.created_at < b.created_at;
                   });
  return out;
}

std::shared_ptr<const std::vector<Profile>> ProfileStore::find_shared(
    const std::string& command, const std::vector<std::string>& tags) const {
  const std::string tkey = tags_key(tags);
  // Point lookups route to the single shard that owns the key — no
  // cross-shard fan-out, no other shard's mutex or backend touched.
  Shard& shard = shard_for(command, tkey);
  const std::string key = index_key(command, tkey);

  // Cache entries are validated against the backend's cross-process
  // version stamp (for the files backend a readdir-sized cost, so only
  // paid when caching is on); backends with a process-private view
  // (memory, docstore snapshots) keep a constant stamp.
  const bool caching = options_.cache_entries_per_shard > 0;
  const uint64_t stamp = caching ? shard.backend->cache_stamp() : 0;
  const size_t max_bytes =
      options_.cache_max_bytes == 0
          ? 0
          : std::max<size_t>(1, options_.cache_max_bytes / shards_.size());

  std::lock_guard<std::mutex> lock(shard.mutex);
  if (caching) {
    if (auto cached = shard.cache_lookup(key, stamp)) return cached;
  }
  auto out = std::make_shared<const std::vector<Profile>>(
      read_from(shard, command, tkey));
  shard.cache_store(key, out, stamp, options_.cache_entries_per_shard,
                    max_bytes);
  return out;
}

std::vector<Profile> ProfileStore::find(
    const std::string& command, const std::vector<std::string>& tags) const {
  return *find_shared(command, tags);
}

std::shared_ptr<const Profile> ProfileStore::find_latest_shared(
    const std::string& command, const std::vector<std::string>& tags) const {
  auto all = find_shared(command, tags);
  if (all->empty()) return nullptr;
  // find_shared() orders by created_at (stable), so the true latest
  // recording is at the back even when concurrent writers interleaved
  // insertions. The aliasing constructor keeps the whole snapshot (and
  // with it any mmap the profile decodes from) alive.
  return std::shared_ptr<const Profile>(all, &all->back());
}

std::optional<Profile> ProfileStore::find_latest(
    const std::string& command, const std::vector<std::string>& tags) const {
  auto latest = find_latest_shared(command, tags);
  if (!latest) return std::nullopt;
  return *latest;
}

std::map<std::string, MetricStats> ProfileStore::stats(
    const std::string& command, const std::vector<std::string>& tags) const {
  return aggregate_totals(find(command, tags));
}

// --- flushing --------------------------------------------------------------

void ProfileStore::flush_all_shards() {
  run_sharded(shards_.size(), [this](size_t i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.backend->flush();
  });
}

void ProfileStore::flush() {
  // Every put that happened-before this call is about to be persisted,
  // so its dirty accounting is settled — otherwise an armed FlushPolicy
  // deadline would rewrite every collection file again later for data
  // already on disk. Clearing BEFORE flushing is the safe order: a put
  // racing with the flush re-arms the counter via note_puts and at
  // worst earns one redundant background flush, never a lost one.
  if (flusher_) {
    std::lock_guard<std::mutex> lock(flusher_->mutex);
    flusher_->dirty = 0;
  }
  // No need to wait for the background worker: flush_all_shards() is
  // idempotent and every put() that happened-before this call is
  // covered by it directly. (Waiting on the worker would also let
  // concurrent flush_async() callers starve this thread by re-setting
  // the pending flag forever.)
  flush_all_shards();
}

void ProfileStore::start_flush_worker() {
  flusher_ = std::make_unique<Flusher>();
  flusher_->policy = options_.flush_policy;
  // The worker captures stable heap pointers (the Flusher, the Shards
  // and the pool — process-wide or owned heap object), so it survives
  // moves of the ProfileStore object itself.
  Flusher* f = flusher_.get();
  sys::TaskPool* pool = pool_;
  std::vector<Shard*> shard_ptrs;
  shard_ptrs.reserve(shards_.size());
  for (auto& s : shards_) shard_ptrs.push_back(s.get());
  f->worker = std::thread([f, shard_ptrs, pool] {
    using Clock = Flusher::Clock;
    std::unique_lock<std::mutex> lock(f->mutex);
    while (true) {
      const auto requested = [f] { return f->pending || f->stop; };
      if (f->policy.max_age_s > 0 && f->dirty > 0) {
        // An age deadline is armed: sleep at most until the oldest
        // dirty put matures, then flush even without a request.
        f->cv.wait_until(lock, f->oldest_dirty + f->max_age(), requested);
      } else {
        // Also wake when the first dirty put arms an age deadline —
        // note_puts' notify would otherwise be swallowed here and the
        // worker would never switch to the deadline wait above.
        f->cv.wait(lock, [f, &requested] {
          return requested() || (f->policy.max_age_s > 0 && f->dirty > 0);
        });
      }
      const bool age_due = f->policy.max_age_s > 0 && f->dirty > 0 &&
                           Clock::now() >= f->oldest_dirty + f->max_age();
      // On stop, drain whatever is outstanding — a timed flush whose
      // deadline has not fired yet must not be lost with the store.
      if (f->pending || age_due || (f->stop && f->dirty > 0)) {
        f->pending = false;
        f->dirty = 0;
        f->running = true;
        lock.unlock();
        const auto flush_one = [&shard_ptrs](size_t i) {
          std::lock_guard<std::mutex> shard_lock(shard_ptrs[i]->mutex);
          shard_ptrs[i]->backend->flush();
        };
        if (pool != nullptr && shard_ptrs.size() > 1) {
          pool->parallel_for(shard_ptrs.size(), flush_one);
        } else {
          for (size_t i = 0; i < shard_ptrs.size(); ++i) flush_one(i);
        }
        lock.lock();
        f->running = false;
        f->cv.notify_all();
        continue;  // re-evaluate stop/pending with fresh state
      }
      if (f->stop) return;
    }
  });
}

void ProfileStore::note_puts(size_t n) {
  if (!flusher_ || n == 0) return;
  Flusher* f = flusher_.get();
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(f->mutex);
    if (f->dirty == 0) {
      f->oldest_dirty = Flusher::Clock::now();
      // Wake the worker so it re-arms its wait with the new deadline.
      wake = f->policy.max_age_s > 0;
    }
    f->dirty += n;
    if (f->policy.max_pending > 0 && f->dirty >= f->policy.max_pending) {
      f->pending = true;
      wake = true;
    }
  }
  if (wake) f->cv.notify_all();
}

void ProfileStore::flush_async() {
  if (!flusher_) return;  // eager backends: nothing ever pends
  {
    std::lock_guard<std::mutex> lock(flusher_->mutex);
    flusher_->pending = true;
    flusher_->dirty = 0;  // everything queued so far is covered
  }
  flusher_->cv.notify_all();
}

// --- sizing ----------------------------------------------------------------

size_t ProfileStore::size() const {
  std::atomic<size_t> n{0};
  run_sharded(shards_.size(), [&](size_t i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    n.fetch_add(shard.backend->size());
  });
  return n.load();
}

ProfileStoreCacheStats ProfileStore::cache_stats() const {
  // Serial on purpose: a cheap diagnostic walk over in-memory counters,
  // not a hot path worth pool dispatch.
  ProfileStoreCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.hits += shard->cache_hits;
    out.misses += shard->cache_misses;
    out.invalidations += shard->cache_invalidations;
    out.bytes += shard->cache_bytes;
  }
  return out;
}

std::vector<StoredProfileEntry> ProfileStore::list() const {
  // One catalog task per shard; each writes its own slot, so no shared
  // state beyond the pre-sized outer vector.
  std::vector<std::vector<StoredProfileEntry>> per_shard(shards_.size());
  run_sharded(shards_.size(), [&](size_t i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    per_shard[i] = shard.backend->list();
  });
  std::vector<StoredProfileEntry> out;
  for (auto& entries : per_shard) {
    out.insert(out.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  // Deterministic catalog order, independent of shard count, shard
  // placement and fan-out completion order.
  std::stable_sort(out.begin(), out.end(),
                   [](const StoredProfileEntry& a, const StoredProfileEntry& b) {
                     if (a.created_at != b.created_at) {
                       return a.created_at < b.created_at;
                     }
                     if (a.command != b.command) return a.command < b.command;
                     return store_tags_key(a.tags) < store_tags_key(b.tags);
                   });
  return out;
}

size_t ProfileStore::convert_all() {
  std::atomic<size_t> rewritten{0};
  run_sharded(shards_.size(), [&](size_t s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Workload keys, not per-profile entries: read/remove/put operate
    // per (command, tags) group, so each group is rewritten atomically
    // under the shard lock (which the parallel fan-out keeps — one task
    // per shard, each holding only its own lock).
    std::set<std::pair<std::string, std::string>> keys;
    for (const auto& e : shard.backend->list()) {
      keys.emplace(e.command, store_tags_key(e.tags));
    }
    for (const auto& [command, tkey] : keys) {
      std::vector<Profile> profiles = shard.backend->read(command, tkey);
      shard.backend->remove(command, tkey);
      for (const auto& p : profiles) {
        shard.backend->put(p, tkey);
        rewritten.fetch_add(1);
      }
      shard.cache_invalidate(index_key(command, tkey));
    }
    shard.backend->flush();
  });
  // The store's write format is now also the format of (almost) every
  // stored profile: record it so future opens without an explicit
  // option keep writing it. rename() keeps the meta readable at every
  // instant for concurrent openers.
  if (!options_.directory.empty()) {
    const std::string meta_path = options_.directory + "/" + kMetaFile;
    try {
      json::Value meta = json::load_file(meta_path);
      meta.as_object()["format"] = options_.format;
      const std::string tmp = meta_path + ".tmp-" + unique_tmp_suffix();
      json::save_file(tmp, meta, /*indent=*/0);
      if (::rename(tmp.c_str(), meta_path.c_str()) != 0) {
        ::unlink(tmp.c_str());
      }
    } catch (const std::exception&) {
      // No meta to update (unreadable): the conversion itself stands.
    }
  }
  return rewritten.load();
}

std::vector<json::Value> ProfileStore::shard_meta() const {
  std::vector<json::Value> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.push_back(shard->backend->meta());
  }
  return out;
}

}  // namespace synapse::profile
