#pragma once
// ProfileStore: sharded, thread-safe persistence facade, indexed by
// command + tags.
//
// Mirrors the paper's dual storage backends (section 4): a database
// (our embedded docstore standing in for MongoDB, including its 16 MB
// document limit) or plain files on disk (no size limit). The command
// line and the tag list form the search index, exactly as in
// radical.synapse.profile(command, tags).
//
// Scale model: the store is split into N shards keyed by
// hash(command, tags_key). Each shard owns its own mutex, its own
// backend instance (memory vector / docstore::Store / files directory)
// and an in-shard LRU read cache, so parallel emulation ranks and
// watchers can record and query profiles concurrently without
// serializing on one lock or one docstore file. All public methods are
// safe to call from multiple threads; a given (command, tags) workload
// always maps to the same shard, so per-workload ordering guarantees
// are preserved.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "profile/profile.hpp"
#include "profile/stats.hpp"

namespace synapse::profile {

/// When the background flush worker persists pending docstore writes on
/// its own (the other backends persist eagerly, so the policy is a
/// no-op there). Both triggers combine with explicit flush()/
/// flush_async() calls; 0 disables a trigger.
struct FlushPolicy {
  /// Flush once this many puts accumulated since the last flush.
  size_t max_pending = 0;
  /// Flush once the oldest unflushed put is this many seconds old (the
  /// worker arms a deadline at the first dirty put).
  double max_age_s = 0.0;
};

/// Sharding and caching knobs. Persistent backends record the shard
/// count in a meta file inside the store directory, so reopening an
/// existing store always uses the layout it was created with (the
/// option is then ignored).
struct ProfileStoreOptions {
  size_t shards = 8;                   ///< clamped to >= 1
  size_t cache_entries_per_shard = 16; ///< LRU find() cache; 0 disables
  FlushPolicy flush_policy;            ///< time/size-triggered flushing
};

/// Aggregate read-cache counters across all shards.
struct ProfileStoreCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  ///< cache entries dropped by writes
};

class ProfileStore {
 public:
  enum class Backend { Memory, DocStore, Files };

  /// In-memory store (tests, short-lived runs).
  explicit ProfileStore(ProfileStoreOptions options = {});

  /// Backed by the embedded document store under `directory` (16 MB
  /// document limit applies) or by one flat JSON file per profile (no
  /// limit). Each shard persists under `directory`/shard-N.
  ProfileStore(Backend backend, const std::string& directory,
               ProfileStoreOptions options = {});

  ~ProfileStore();
  ProfileStore(ProfileStore&&) noexcept;
  ProfileStore& operator=(ProfileStore&&) noexcept;

  /// Store a profile; returns true when the profile was truncated to fit
  /// the docstore document limit (paper section 4.5).
  bool put(const Profile& profile);

  /// Batched insert: profiles are grouped per shard and each shard is
  /// locked once, so concurrent writers pay one lock per shard rather
  /// than one per profile. Returns the number of truncated profiles.
  /// `stored`, when non-null, is resized to profiles.size() and
  /// stored[i] is set true the moment profiles[i] lands — so a caller
  /// catching an exception out of a partial batch knows exactly which
  /// profiles made it and can retry only the rest (the Session's
  /// exactly-once batching contract).
  size_t put_many(const std::vector<Profile>& profiles,
                  std::vector<bool>* stored = nullptr);

  /// All profiles recorded for this command/tags combination, ordered
  /// by recorded timestamp (`created_at`), ties keeping backend order.
  std::vector<Profile> find(const std::string& command,
                            const std::vector<std::string>& tags = {}) const;

  /// Profile with the latest recorded timestamp (created_at), not the
  /// latest insertion: concurrent writers may interleave insertions out
  /// of timestamp order.
  std::optional<Profile> find_latest(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Aggregate statistics over all stored repetitions of a workload.
  std::map<std::string, MetricStats> stats(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Persist pending state (docstore flush; files are written eagerly).
  /// Synchronous and bounded: covers every put() that happened before
  /// the call, independent of the background flush worker.
  void flush();

  /// Queue a flush on the background flush worker and return
  /// immediately. No-op for backends that persist eagerly. The same
  /// worker also honours ProfileStoreOptions::flush_policy: it flushes
  /// on its own once max_pending puts accumulated or the oldest
  /// unflushed put exceeds max_age_s, and it drains outstanding writes
  /// (timed or requested) before the store destructs.
  void flush_async();

  /// The backend a store directory was created with, read from its meta
  /// file (tools that only got a directory use this instead of guessing
  /// Files and refusing docstore-backed stores). Defaults to Files for
  /// fresh/meta-less directories.
  static Backend detect_backend(const std::string& directory);

  size_t size() const;
  size_t shard_count() const;
  Backend backend() const { return backend_; }
  ProfileStoreCacheStats cache_stats() const;

  /// Canonical tag index key: sorted, comma-joined (tag order is
  /// irrelevant for lookups, as in the paper's profile(command, tags)).
  static std::string tags_key(const std::vector<std::string>& tags);

 private:
  struct Shard;
  struct Flusher;

  /// `tkey` is the profile's tags_key(), computed once by the caller.
  Shard& shard_for(const std::string& command, const std::string& tkey) const;
  /// One insert into an already-locked shard; true on docstore truncation.
  bool put_into(Shard& shard, const Profile& profile,
                const std::string& tkey);
  /// Backend read of one workload from an already-locked shard, ordered
  /// by created_at.
  std::vector<Profile> read_from(const Shard& shard,
                                 const std::string& command,
                                 const std::string& tkey) const;
  void start_flush_worker();
  void flush_all_shards();
  /// Account `n` fresh docstore writes with the flush worker: arms the
  /// age deadline at the first dirty put, requests a flush when the
  /// size trigger fires. No-op without a worker.
  void note_puts(size_t n);
  /// Adoption of a pre-sharding store directory (flat *.profile.json
  /// files or a root-level docstore collection): re-route every legacy
  /// profile into its owning shard, then remove the legacy files.
  /// Attempted on EVERY open (the check is an existence scan) so
  /// not-yet-claimed files from an interrupted migration are retried.
  /// Individual files are claimed with atomic renames so concurrent
  /// openers never adopt one twice; unparsable files are parked as
  /// *.unreadable rather than aborting the open. A crash between claim
  /// and re-put leaves that one file parked under its *.migrating-*
  /// claim name (data preserved on disk, adopt manually by renaming it
  /// back) — the trade against double-adoption by concurrent openers.
  void migrate_legacy_layout();

  Backend backend_;
  std::string directory_;
  ProfileStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Flusher> flusher_;
};

}  // namespace synapse::profile
