#pragma once
// ProfileStore: persistence facade, indexed by command + tags.
//
// Mirrors the paper's dual storage backends (section 4): a database
// (our embedded docstore standing in for MongoDB, including its 16 MB
// document limit) or plain files on disk (no size limit). The command
// line and the tag list form the search index, exactly as in
// radical.synapse.profile(command, tags).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "docstore/docstore.hpp"
#include "profile/profile.hpp"
#include "profile/stats.hpp"

namespace synapse::profile {

class ProfileStore {
 public:
  enum class Backend { Memory, DocStore, Files };

  /// In-memory store (tests, short-lived runs).
  ProfileStore();

  /// Backed by the embedded document store at `directory` (16 MB document
  /// limit applies) or by one flat JSON file per profile (no limit).
  ProfileStore(Backend backend, const std::string& directory);

  /// Store a profile; returns true when the profile was truncated to fit
  /// the docstore document limit (paper section 4.5).
  bool put(const Profile& profile);

  /// All profiles recorded for this command/tags combination.
  std::vector<Profile> find(const std::string& command,
                            const std::vector<std::string>& tags = {}) const;

  /// Most recent profile, if any.
  std::optional<Profile> find_latest(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Aggregate statistics over all stored repetitions of a workload.
  std::map<std::string, MetricStats> stats(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Persist pending state (docstore flush; files are written eagerly).
  void flush();

  size_t size() const;

 private:
  std::string tags_key(const std::vector<std::string>& tags) const;
  std::string file_name(const Profile& p, size_t seq) const;

  Backend backend_;
  std::string directory_;
  std::unique_ptr<docstore::Store> store_;
  // Memory backend keeps profiles directly.
  std::vector<Profile> memory_;
};

}  // namespace synapse::profile
