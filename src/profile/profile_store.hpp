#pragma once
// ProfileStore: sharded, thread-safe persistence facade, indexed by
// command + tags.
//
// Mirrors the paper's dual storage backends (section 4) and goes
// beyond them: persistence is delegated to a registry-resolved
// StoreBackend per shard (see store_backend.hpp), so the store's
// concurrency machinery — sharding, per-shard locking, read caching,
// batched writes, background flushing — is shared by every backend,
// built-in ("memory", "docstore", "files", "cluster") or
// user-registered. The command line and the tag list form the search
// index, exactly as in radical.synapse.profile(command, tags).
//
// Scale model: the store is split into N shards keyed by
// hash(command, tags_key). Each shard owns its own mutex, its own
// registry-resolved backend instance and an in-shard LRU read cache,
// so parallel emulation ranks and watchers can record and query
// profiles concurrently without serializing on one lock or one
// docstore file. All public methods are safe to call from multiple
// threads; a given (command, tags) workload always maps to the same
// shard, so per-workload ordering guarantees are preserved.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "profile/profile.hpp"
#include "profile/stats.hpp"
#include "profile/store_backend.hpp"

namespace synapse::sys {
class TaskPool;
}

namespace synapse::profile {

/// When the background flush worker persists pending writes on its own
/// (eager backends never run the worker, so the policy is a no-op
/// there). Both triggers combine with explicit flush()/flush_async()
/// calls; 0 disables a trigger.
struct FlushPolicy {
  /// Flush once this many puts accumulated since the last flush.
  size_t max_pending = 0;
  /// Flush once the oldest unflushed put is this many seconds old (the
  /// worker arms a deadline at the first dirty put).
  double max_age_s = 0.0;
};

/// Backend selection plus sharding and caching knobs. Persistent
/// backends record the backend name and shard count in a meta file
/// inside the store directory, so reopening an existing store always
/// uses the layout it was created with (the options are then checked,
/// not honoured: a backend mismatch is a hard error).
struct ProfileStoreOptions {
  /// Registered StoreBackend name; resolved through `registry` (or the
  /// process-wide StoreBackendRegistry::instance() when unset).
  std::string backend = "memory";
  /// Store root for persistent backends; ignored (cleared) by the
  /// "memory" backend.
  std::string directory;
  /// Backend-specific configuration file, handed to the backend
  /// factories verbatim — the cluster backend's spec
  /// (--store-cluster spec.json).
  std::string cluster_spec;
  /// Profile encoding for NEW writes: "json", "binary" (SYNB,
  /// binary_codec.hpp), or "" to use what the store was created with
  /// ("binary" for new stores, and legacy meta files without a format
  /// field mean "json"). A non-empty value always wins — reads sniff
  /// each stored blob's magic bytes, so opening an existing store with
  /// the other format is safe and is exactly how convert_all()
  /// re-encodes a store in place.
  std::string format;
  size_t shards = 8;                   ///< clamped to >= 1
  size_t cache_entries_per_shard = 16; ///< LRU find() cache; 0 disables
  /// Byte budget for the decoded-profile cache, split evenly across
  /// shards (each cached entry is charged its Profile::decoded_bytes()
  /// sum). 0 = no byte bound (the entry count alone bounds the cache);
  /// an entry larger than a whole shard's budget is served but not
  /// cached.
  size_t cache_max_bytes = 64 * 1024 * 1024;
  /// Worker threads for cross-shard operations (put_many, list,
  /// convert_all, flush): 0 = share the process-wide sys::TaskPool,
  /// 1 = serial (no pool), N >= 2 = a private pool of N threads owned
  /// by this store.
  size_t threads = 0;
  FlushPolicy flush_policy;            ///< time/size-triggered flushing
  /// Registry backend names resolve through (nullptr = the process-wide
  /// StoreBackendRegistry::instance()); must outlive the store.
  const StoreBackendRegistry* registry = nullptr;
};

/// Aggregate read-cache counters across all shards.
struct ProfileStoreCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  ///< cache entries dropped by writes
  uint64_t bytes = 0;          ///< decoded bytes currently cached
};

class ProfileStore {
 public:
  /// Backend and layout from `options` (default: in-memory store).
  explicit ProfileStore(ProfileStoreOptions options = {});

  /// Convenience: options with `backend` (a registered name, e.g.
  /// "files", "docstore", "cluster") and `directory` overridden.
  ProfileStore(const std::string& backend, const std::string& directory,
               ProfileStoreOptions options = {});

  ~ProfileStore();
  ProfileStore(ProfileStore&&) noexcept;
  ProfileStore& operator=(ProfileStore&&) noexcept;

  /// Store a profile; returns true when the profile was truncated to fit
  /// a backend document limit (paper section 4.5).
  bool put(const Profile& profile);

  /// Batched insert: profiles are grouped per shard and each shard is
  /// locked once, so concurrent writers pay one lock per shard rather
  /// than one per profile. Returns the number of truncated profiles.
  /// `stored`, when non-null, is resized to profiles.size() and
  /// stored[i] is set true the moment profiles[i] lands — so a caller
  /// catching an exception out of a partial batch knows exactly which
  /// profiles made it and can retry only the rest (the Session's
  /// exactly-once batching contract).
  size_t put_many(const std::vector<Profile>& profiles,
                  std::vector<bool>* stored = nullptr);

  /// All profiles recorded for this command/tags combination, ordered
  /// by recorded timestamp (`created_at`), ties keeping backend order.
  std::vector<Profile> find(const std::string& command,
                            const std::vector<std::string>& tags = {}) const;

  /// find() without the copy-out: the returned vector is shared with
  /// the store's decoded-profile cache, so a cache hit costs one
  /// refcount bump instead of re-decoding (or deep-copying) every
  /// profile. The snapshot is immutable and stays valid after
  /// concurrent writes/removals/evictions (they replace cache entries,
  /// never mutate them). Never null — an unknown workload yields an
  /// empty vector.
  std::shared_ptr<const std::vector<Profile>> find_shared(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Profile with the latest recorded timestamp (created_at), not the
  /// latest insertion: concurrent writers may interleave insertions out
  /// of timestamp order.
  std::optional<Profile> find_latest(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// find_latest without the copy: an aliasing pointer into the shared
  /// find_shared() snapshot (the hot replay path — repeated emulation
  /// of a hot profile skips decode AND copy). nullptr when the workload
  /// has no recordings.
  std::shared_ptr<const Profile> find_latest_shared(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Aggregate statistics over all stored repetitions of a workload.
  std::map<std::string, MetricStats> stats(
      const std::string& command,
      const std::vector<std::string>& tags = {}) const;

  /// Remove every stored repetition of a workload; returns the number
  /// removed. The removal dirties the shard like a put, so buffering
  /// backends persist it via the same flush machinery.
  size_t remove(const std::string& command,
                const std::vector<std::string>& tags = {});

  /// Persist pending state (no-op for backends that persist eagerly).
  /// Synchronous and bounded: covers every put() that happened before
  /// the call, independent of the background flush worker.
  void flush();

  /// Queue a flush on the background flush worker and return
  /// immediately. No-op for backends that persist eagerly. The same
  /// worker also honours ProfileStoreOptions::flush_policy: it flushes
  /// on its own once max_pending puts accumulated or the oldest
  /// unflushed put exceeds max_age_s, and it drains outstanding writes
  /// (timed or requested) before the store destructs.
  void flush_async();

  /// The registered backend name a store directory was created with,
  /// read from its meta file (tools that only got a directory use this
  /// instead of guessing "files" and refusing other stores). Returns
  /// the meta file's name VERBATIM — opening resolves it through the
  /// registry, so an unknown name fails there with a diagnostic listing
  /// what is registered. Meta-less directories fall back to the legacy
  /// layout scan ("docstore" for a root collection, else "files").
  static std::string detect_backend(const std::string& directory);

  /// The profile format recorded in a store directory's meta file.
  /// Meta files that predate the format field (and meta-less legacy
  /// layouts) report "json" — everything written before SYNB existed is
  /// JSON. Mirrors detect_backend for tools that only got a directory.
  static std::string detect_format(const std::string& directory);

  /// Catalog of every stored profile across all shards
  /// (StoreBackend::list()), sorted by (created_at, command, tags) so
  /// the output is deterministic across shard counts and across the
  /// parallel per-shard fan-out.
  std::vector<StoredProfileEntry> list() const;

  /// Re-encode every stored profile in the store's current write format
  /// (read → remove → re-put per workload, each shard under its lock),
  /// then record the format in the meta file. Returns the number of
  /// profiles rewritten. Open the store with an explicit
  /// ProfileStoreOptions::format to pick the target encoding; profiles
  /// already in that encoding are rewritten too (idempotent, cheap
  /// relative to the conversion). Backends without list() support are
  /// skipped.
  size_t convert_all();

  size_t size() const;
  size_t shard_count() const;
  /// Threads cross-shard operations fan out on (1 = serial store).
  size_t task_threads() const;
  /// Registered backend name this store resolves through.
  const std::string& backend() const { return options_.backend; }
  /// Resolved write format ("json" or "binary").
  const std::string& format() const { return options_.format; }
  ProfileStoreCacheStats cache_stats() const;
  /// Per-shard backend metadata (StoreBackend::meta()), indexed by
  /// shard — e.g. the cluster backend reports each shard's instance.
  std::vector<json::Value> shard_meta() const;

  /// Canonical tag index key: sorted, comma-joined (tag order is
  /// irrelevant for lookups, as in the paper's profile(command, tags)).
  static std::string tags_key(const std::vector<std::string>& tags);

 private:
  struct Shard;
  struct Flusher;

  /// `tkey` is the profile's tags_key(), computed once by the caller.
  Shard& shard_for(const std::string& command, const std::string& tkey) const;
  /// Backend read of one workload from an already-locked shard, ordered
  /// by created_at.
  std::vector<Profile> read_from(const Shard& shard,
                                 const std::string& command,
                                 const std::string& tkey) const;
  /// Run body(i) for i in [0, count) — on the store's task pool when it
  /// has one (options_.threads != 1), serially inline otherwise. Every
  /// cross-shard operation goes through here; bodies lock at most one
  /// shard, so shard-per-task never nests locks.
  void run_sharded(size_t count,
                   const std::function<void(size_t)>& body) const;
  void start_flush_worker();
  void flush_all_shards();
  /// Account `n` fresh buffered writes with the flush worker: arms the
  /// age deadline at the first dirty put, requests a flush when the
  /// size trigger fires. No-op without a worker.
  void note_puts(size_t n);
  /// Adoption of a pre-sharding store directory (flat *.profile.json
  /// files or a root-level docstore collection): re-route every legacy
  /// profile into its owning shard, then remove the legacy files.
  /// Attempted on EVERY open (the check is an existence scan) so
  /// not-yet-claimed files from an interrupted migration are retried.
  /// Individual files are claimed with atomic renames so concurrent
  /// openers never adopt one twice; unparsable files are parked as
  /// *.unreadable rather than aborting the open. A crash between claim
  /// and re-put leaves that one file parked under its *.migrating-*
  /// claim name (data preserved on disk, adopt manually by renaming it
  /// back) — the trade against double-adoption by concurrent openers.
  /// Legacy layouts only ever existed for the files/docstore backends,
  /// so other backends skip this.
  void migrate_legacy_layout();

  ProfileStoreOptions options_;
  /// Private pool when options_.threads >= 2; destroyed after shards_
  /// would be unsafe only with outstanding tasks, and there are none:
  /// every pool use blocks until its tasks finished (parallel_for), and
  /// the flush worker joins first (flusher_ declared last).
  std::unique_ptr<sys::TaskPool> owned_pool_;
  /// The pool cross-shard ops run on: &shared(), owned_pool_.get(), or
  /// nullptr for serial (threads == 1).
  sys::TaskPool* pool_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Flusher> flusher_;
};

}  // namespace synapse::profile
