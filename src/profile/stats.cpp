#include "profile/stats.hpp"

#include <algorithm>
#include <cmath>

namespace synapse::profile {

double t_critical_99(size_t n) {
  // Two-sided 99% critical values of Student's t for dof = n-1.
  static const double table[] = {
      0,      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355,
      3.250,  3.169,  3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898,
      2.878,  2.861,  2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
      2.771,  2.763,  2.756, 2.750};
  if (n < 2) return 0.0;
  const size_t dof = n - 1;
  if (dof < sizeof(table) / sizeof(table[0])) return table[dof];
  return 2.576;
}

MetricStats compute_stats(const std::vector<double>& values) {
  MetricStats s;
  s.n = values.size();
  if (values.empty()) return s;

  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());

  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);

  if (s.n >= 2) {
    double sq = 0.0;
    for (const double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    s.ci99_half =
        t_critical_99(s.n) * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

std::map<std::string, MetricStats> aggregate_totals(
    const std::vector<Profile>& profiles) {
  std::map<std::string, std::vector<double>> columns;
  for (const auto& p : profiles) {
    for (const auto& [metric, value] : p.totals) {
      columns[metric].push_back(value);
    }
  }
  std::map<std::string, MetricStats> out;
  for (const auto& [metric, values] : columns) {
    out[metric] = compute_stats(values);
  }
  return out;
}

double relative_diff(double a, double b) {
  if (b == 0.0) return a == 0.0 ? 0.0 : 1.0;
  return std::abs(a - b) / std::abs(b);
}

}  // namespace synapse::profile
