#pragma once
// Statistics over repeated profiles.
//
// The paper collects multiple profiles per command/tag combination and
// performs "basic statistics analysis" (section 4); experiment E.3 reports
// 99% confidence intervals. This module provides the descriptive
// statistics used throughout the test suite and the benches.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "profile/profile.hpp"

namespace synapse::profile {

/// Descriptive statistics of one metric across repetitions.
struct MetricStats {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double ci99_half = 0.0;  ///< half-width of the 99% confidence interval

  double ci99_low() const { return mean - ci99_half; }
  double ci99_high() const { return mean + ci99_half; }
  /// CI half-width as a fraction of the mean (paper quotes <= 6.6%).
  double ci99_relative() const { return mean != 0 ? ci99_half / mean : 0.0; }
};

/// Compute stats of a raw series.
MetricStats compute_stats(const std::vector<double>& values);

/// Student-t critical value for a two-sided 99% interval with n-1 dof
/// (tabulated for small n, 2.576 asymptote).
double t_critical_99(size_t n);

/// Aggregate the totals of repeated profiles of the same workload:
/// metric name -> stats across profiles.
std::map<std::string, MetricStats> aggregate_totals(
    const std::vector<Profile>& profiles);

/// Relative difference |a-b| / b, the paper's "diff (%)" (times 100).
double relative_diff(double a, double b);

}  // namespace synapse::profile
