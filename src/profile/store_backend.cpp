#include "profile/store_backend.hpp"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <optional>
#include <utility>

#include "docstore/docstore.hpp"
#include "json/arena.hpp"
#include "profile/binary_codec.hpp"
#include "profile/cluster_backend.hpp"
#include "sys/error.hpp"
#include "sys/mmap_file.hpp"
#include "sys/procfs.hpp"

namespace synapse::profile {

namespace storedetail {

constexpr const char* kProfileSuffix = ".profile.json";
constexpr const char* kBinarySuffix = ".profile.synb";
constexpr size_t kSuffixLen = 13;  // strlen of either suffix

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

std::string unique_tmp_suffix() {
  static std::atomic<uint64_t> counter{0};
  return std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

bool has_profile_suffix(const std::string& name) {
  return name.size() > kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kProfileSuffix) ==
             0;
}

bool has_binary_profile_suffix(const std::string& name) {
  return name.size() > kSuffixLen &&
         name.compare(name.size() - kSuffixLen, kSuffixLen, kBinarySuffix) ==
             0;
}

size_t count_profile_files(const std::string& dir) {
  size_t n = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (struct dirent* entry = ::readdir(d)) {
    if (has_profile_suffix(entry->d_name) ||
        has_binary_profile_suffix(entry->d_name)) {
      ++n;
    }
  }
  ::closedir(d);
  return n;
}

std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '_';
  }
  return out.substr(0, 120);
}

uint64_t fnv1a(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace storedetail

namespace {

using storedetail::file_exists;
using storedetail::has_binary_profile_suffix;
using storedetail::has_profile_suffix;
using storedetail::sanitize;
using storedetail::unique_tmp_suffix;

/// Decode stored profile bytes in either format: SYNB by magic sniff,
/// otherwise JSON through the arena parser (no per-node heap traffic;
/// `arena` is reset and reused here so multi-file reads recycle slabs).
Profile parse_profile_bytes(std::string&& data, json::Arena& arena) {
  if (looks_like_binary_profile(data)) {
    return Profile::from_binary(std::move(data));
  }
  arena.reset();
  return Profile::from_arena(json::parse(data, arena));
}

/// Open one stored profile file as a shared read-only buffer. SYNB
/// files are mmap-ed when possible (`prefer_mmap`, decided from the
/// file suffix) so decode is zero-copy against the page cache; JSON
/// files and mmap failures (ENOENT from a racing remove(), mmap-less
/// filesystems) fall back to a buffered slurp. nullptr when the file
/// vanished entirely.
std::shared_ptr<const sys::Blob> load_profile_blob(const std::string& path,
                                                   bool prefer_mmap) {
  if (prefer_mmap) {
    if (auto mapped = sys::MappedBlob::map(path)) return mapped;
  }
  auto data = sys::slurp_file(path);
  if (!data) return nullptr;
  return std::make_shared<const sys::StringBlob>(std::move(*data));
}

/// parse_profile_bytes over a shared buffer: the SYNB path hands the
/// buffer itself to the profile (zero-copy, keeps an mmap alive for the
/// profile's lifetime), the JSON path parses out of it by view.
Profile parse_profile_blob(std::shared_ptr<const sys::Blob> blob,
                           json::Arena& arena) {
  if (looks_like_binary_profile(blob->view())) {
    return Profile::from_binary_view(std::move(blob));
  }
  arena.reset();
  return Profile::from_arena(json::parse(blob->view(), arena));
}

// --- memory ---------------------------------------------------------------

class MemoryBackend : public StoreBackend {
 public:
  explicit MemoryBackend(std::string format) : format_(std::move(format)) {}

  bool put(const Profile& profile, const std::string&) override {
    profiles_.push_back(profile);
    return false;
  }

  std::vector<Profile> read(const std::string& command,
                            const std::string& tkey) const override {
    std::vector<Profile> out;
    for (const auto& p : profiles_) {
      if (p.command == command && store_tags_key(p.tags) == tkey) {
        out.push_back(p);
      }
    }
    return out;
  }

  size_t remove(const std::string& command, const std::string& tkey) override {
    const size_t before = profiles_.size();
    profiles_.erase(
        std::remove_if(profiles_.begin(), profiles_.end(),
                       [&](const Profile& p) {
                         return p.command == command &&
                                store_tags_key(p.tags) == tkey;
                       }),
        profiles_.end());
    return before - profiles_.size();
  }

  size_t size() const override { return profiles_.size(); }

  std::vector<StoredProfileEntry> list() const override {
    std::vector<StoredProfileEntry> out;
    out.reserve(profiles_.size());
    for (const auto& p : profiles_) {
      // Nothing is encoded at rest in memory; report the configured
      // format with no size so listings stay uniform across backends.
      out.push_back(StoredProfileEntry{p.command, p.tags, p.created_at,
                                       format_, 0});
    }
    return out;
  }

 private:
  std::vector<Profile> profiles_;
  std::string format_;
};

// --- files ----------------------------------------------------------------

/// One flat file per profile under the shard directory (no size
/// limit): *.profile.json for the JSON format, *.profile.synb for
/// SYNB. Writes are link()-claimed so concurrent writers in other
/// processes or store instances never collide on a sequence number and
/// readers only ever see complete files. Reads sniff each file's magic
/// bytes, so one shard may mix both formats (conversion, legacy data).
class FilesBackend : public StoreBackend {
 public:
  /// Unique token rewritten by every remove(); part of cache_stamp().
  static constexpr const char* kEpochFile = ".remove.epoch";
  FilesBackend(std::string shard_dir, std::string format)
      : directory_(std::move(shard_dir)), format_(std::move(format)) {
    ::mkdir(directory_.c_str(), 0755);
  }

  bool put(const Profile& profile, const std::string& tkey) override {
    const std::string base = directory_ + "/" + sanitize(profile.command) +
                             "." + sanitize(tkey) + ".";
    // Write the full document to a temp name (which never matches the
    // profile-file read patterns), then claim the next free sequence
    // number with link().
    const std::string tmp = directory_ + "/.tmp-" + unique_tmp_suffix();
    const bool binary = format_ == "binary";
    if (binary) {
      write_raw(tmp, profile.to_binary());
    } else {
      json::save_file(tmp, profile.to_json(), /*indent=*/0);
    }
    const char* suffix =
        binary ? storedetail::kBinarySuffix : storedetail::kProfileSuffix;
    for (size_t seq = 0;; ++seq) {
      const std::string path = base + std::to_string(seq) + suffix;
      if (::link(tmp.c_str(), path.c_str()) == 0) break;
      if (errno != EEXIST) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw sys::SystemError("link(" + path + ")", err);
      }
    }
    ::unlink(tmp.c_str());
    return false;
  }

  std::vector<Profile> read(const std::string& command,
                            const std::string& tkey) const override {
    std::vector<Profile> out;
    json::Arena arena;
    for (const auto& name : matching_files(command, tkey)) {
      auto blob = load_profile_blob(directory_ + "/" + name,
                                    has_binary_profile_suffix(name));
      if (!blob) continue;  // racing remove()
      Profile p = parse_profile_blob(std::move(blob), arena);
      // Sanitization can collide; verify the real identity.
      if (p.command == command && store_tags_key(p.tags) == tkey) {
        out.push_back(std::move(p));
      }
    }
    return out;
  }

  size_t remove(const std::string& command, const std::string& tkey) override {
    size_t removed = 0;
    for (const auto& name : matching_files(command, tkey)) {
      const std::string path = directory_ + "/" + name;
      try {
        const auto identity = read_identity(path);
        if (!identity) continue;
        if (identity->first != command || identity->second != tkey) continue;
      } catch (const std::exception&) {
        continue;  // unreadable file: leave it for diagnosis, not deletion
      }
      if (::unlink(path.c_str()) == 0) ++removed;
    }
    // A remove-then-put pair inside one filesystem-timestamp tick
    // restores the profile-file count, so mtime+count alone could
    // reproduce an old stamp; record a unique removal epoch the stamp
    // mixes in, so other instances' caches always notice. rename() is
    // atomic, readers never see a partial epoch.
    if (removed > 0) {
      const std::string epoch = directory_ + "/" + kEpochFile;
      const std::string tmp = directory_ + "/.tmp-" + unique_tmp_suffix();
      json::save_file(tmp, json::Value(unique_tmp_suffix()), /*indent=*/0);
      if (::rename(tmp.c_str(), epoch.c_str()) != 0) ::unlink(tmp.c_str());
    }
    return removed;
  }

  size_t size() const override {
    return storedetail::count_profile_files(directory_);
  }

  /// Cross-process version stamp: directory mtime combined with the
  /// profile-file count and the removal epoch. The count is monotone
  /// under puts and every remove() rewrites the epoch, so even a
  /// count-restoring remove+put pair inside one filesystem-timestamp
  /// tick changes the stamp.
  uint64_t cache_stamp() const override {
    struct stat st {};
    uint64_t stamp = 0;
    if (::stat(directory_.c_str(), &st) == 0) {
      stamp = static_cast<uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
              static_cast<uint64_t>(st.st_mtim.tv_nsec);
    }
    const std::string epoch = directory_ + "/" + kEpochFile;
    if (file_exists(epoch)) {
      try {
        stamp ^= storedetail::fnv1a(json::dump(json::load_file(epoch)));
      } catch (const std::exception&) {
        // Torn/unreadable epoch: fall back to mtime+count alone.
      }
    }
    return stamp ^
           (storedetail::count_profile_files(directory_) *
            0x9e3779b97f4a7c15ull);
  }

  json::Value meta() const override {
    json::Object meta;
    meta["directory"] = directory_;
    meta["format"] = format_;
    return json::Value(std::move(meta));
  }

  std::vector<StoredProfileEntry> list() const override {
    std::vector<StoredProfileEntry> out;
    DIR* dir = ::opendir(directory_.c_str());
    if (dir == nullptr) return out;
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (has_profile_suffix(name) || has_binary_profile_suffix(name)) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
    for (const auto& name : names) {
      const std::string path = directory_ + "/" + name;
      // Identity lives in the SYNB header, so a mapped list() touches
      // only each file's first pages instead of reading whole blobs.
      auto blob = load_profile_blob(path, has_binary_profile_suffix(name));
      if (!blob) continue;  // racing remove()
      const std::string_view data = blob->view();
      StoredProfileEntry e;
      e.encoded_bytes = data.size();
      try {
        if (looks_like_binary_profile(data)) {
          BinaryProfileInfo info = decode_binary_identity(data);
          e.command = std::move(info.command);
          e.tags = std::move(info.tags);
          e.created_at = info.created_at;
          e.format = "binary";
        } else {
          const json::Value v = json::parse(std::string(data));
          e.command = v.get_or("command", std::string());
          if (v.contains("tags")) {
            for (const auto& t : v["tags"].as_array()) {
              e.tags.push_back(t.as_string());
            }
          }
          e.created_at = v.get_or("created_at", 0.0);
          e.format = "json";
        }
      } catch (const std::exception&) {
        continue;  // unreadable file: absent from the catalog
      }
      out.push_back(std::move(e));
    }
    return out;
  }

 private:
  /// (command, tags_key) of a stored file, header/top-level fields
  /// only. nullopt when the file vanished (racing remove()).
  std::optional<std::pair<std::string, std::string>> read_identity(
      const std::string& path) const {
    auto blob =
        load_profile_blob(path, has_binary_profile_suffix(path));
    if (!blob) return std::nullopt;
    const std::string_view data = blob->view();
    if (looks_like_binary_profile(data)) {
      BinaryProfileInfo info = decode_binary_identity(data);
      return std::make_pair(std::move(info.command),
                            store_tags_key(info.tags));
    }
    const json::Value v = json::parse(std::string(data));
    std::vector<std::string> tags;
    if (v.contains("tags")) {
      for (const auto& t : v["tags"].as_array()) tags.push_back(t.as_string());
    }
    return std::make_pair(v.get_or("command", std::string()),
                          store_tags_key(tags));
  }

  static void write_raw(const std::string& path, const std::string& bytes) {
    FILE* f = ::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      throw sys::SystemError("fopen(" + path + ")", errno);
    }
    const size_t written = ::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool ok = written == bytes.size() && ::fclose(f) == 0;
    if (!ok) {
      if (written != bytes.size()) ::fclose(f);
      ::unlink(path.c_str());
      throw sys::SystemError("write(" + path + ")", errno);
    }
  }

  std::vector<std::string> matching_files(const std::string& command,
                                          const std::string& tkey) const {
    std::vector<std::string> names;
    DIR* dir = ::opendir(directory_.c_str());
    if (dir == nullptr) return names;
    const std::string prefix = sanitize(command) + "." + sanitize(tkey) + ".";
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind(prefix, 0) == 0 &&
          (has_profile_suffix(name) || has_binary_profile_suffix(name))) {
        names.push_back(name);
      }
    }
    ::closedir(dir);
    return names;
  }

  std::string directory_;
  std::string format_;
};

}  // namespace

// --- docstore (shared with the cluster backend) ----------------------------

DocStoreShardBackend::DocStoreShardBackend(const std::string& shard_dir,
                                           std::string format)
    : store_(std::make_unique<docstore::Store>(shard_dir)),
      format_(std::move(format)) {}

DocStoreShardBackend::~DocStoreShardBackend() = default;

bool DocStoreShardBackend::put(const Profile& profile,
                               const std::string& tkey) {
  if (format_ == "binary") {
    // Envelope document: the SYNB blob rides as base64, the query
    // fields stay plain top-level members so FieldEquals lookups work
    // identically for both document shapes.
    const std::string blob = profile.to_binary();
    // The docstore enforces its 16 MB document limit by trimming the
    // largest array (paper section 4.5) — a base64 string offers it
    // nothing to trim, so an envelope that cannot fit falls back to the
    // plain JSON document and inherits the documented sample-array
    // truncation instead of a hard failure.
    if (blob.size() / 3 * 4 + 4096 < docstore::kMaxDocumentBytes) {
      json::Object doc;
      doc["command"] = profile.command;
      json::Array jtags;
      for (const auto& t : profile.tags) jtags.push_back(t);
      doc["tags"] = std::move(jtags);
      doc["tags_key"] = tkey;
      doc["created_at"] = profile.created_at;
      doc["synb"] = base64_encode(blob);
      return store_->collection("profiles")
          .insert(json::Value(std::move(doc)))
          .truncated;
    }
  }
  json::Value doc = profile.to_json();
  doc.as_object()["tags_key"] = tkey;
  return store_->collection("profiles").insert(std::move(doc)).truncated;
}

namespace {

/// Decode one stored document of either shape (binary envelope or
/// plain profile document).
Profile profile_from_doc(const json::Value& doc) {
  if (doc.contains("synb")) {
    return Profile::from_binary(base64_decode(doc["synb"].as_string()));
  }
  return Profile::from_json(doc);
}

}  // namespace

std::vector<Profile> DocStoreShardBackend::read(
    const std::string& command, const std::string& tkey) const {
  const std::vector<docstore::FieldEquals> query = {
      {"command", json::Value(command)}, {"tags_key", json::Value(tkey)}};
  std::vector<Profile> out;
  for (const auto& doc : store_->collection("profiles").find(query)) {
    out.push_back(profile_from_doc(doc));
  }
  return out;
}

std::vector<StoredProfileEntry> DocStoreShardBackend::list() const {
  std::vector<StoredProfileEntry> out;
  for (const auto& doc : store_->collection("profiles").all()) {
    StoredProfileEntry e;
    e.command = doc.get_or("command", std::string());
    if (doc.contains("tags")) {
      for (const auto& t : doc["tags"].as_array()) {
        e.tags.push_back(t.as_string());
      }
    }
    e.created_at = doc.get_or("created_at", 0.0);
    if (doc.contains("synb")) {
      e.format = "binary";
      // Stored size is the decoded blob, not its base64 inflation —
      // that is what a files-backend copy of the same profile would
      // occupy, so sizes compare across backends.
      e.encoded_bytes = doc["synb"].as_string().size() / 4 * 3;
    } else {
      e.format = "json";
      e.encoded_bytes = json::dump(doc).size();
    }
    out.push_back(std::move(e));
  }
  return out;
}

size_t DocStoreShardBackend::remove(const std::string& command,
                                    const std::string& tkey) {
  const std::vector<docstore::FieldEquals> query = {
      {"command", json::Value(command)}, {"tags_key", json::Value(tkey)}};
  return store_->collection("profiles").remove(query);
}

void DocStoreShardBackend::flush() { store_->flush(); }

size_t DocStoreShardBackend::size() const {
  return store_->collection("profiles").size();
}

json::Value DocStoreShardBackend::meta() const {
  json::Object meta;
  meta["directory"] = store_->directory();
  meta["format"] = format_;
  return json::Value(std::move(meta));
}

// --- key canonicalization ---------------------------------------------------

std::string store_tags_key(const std::vector<std::string>& tags) {
  std::vector<std::string> sorted = tags;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const auto& t : sorted) {
    if (!key.empty()) key += ',';
    key += t;
  }
  return key;
}

// --- registry ---------------------------------------------------------------

namespace {

std::string shard_dir(const StoreBackendContext& context) {
  if (context.directory.empty()) {
    throw sys::ConfigError(
        "store backend needs a store directory (only 'memory' runs without "
        "one)");
  }
  return context.directory + "/shard-" + std::to_string(context.shard_index);
}

}  // namespace

StoreBackendRegistry::StoreBackendRegistry() {
  factories_["memory"] = [](const StoreBackendContext& ctx) {
    return std::make_unique<MemoryBackend>(ctx.format);
  };
  factories_["docstore"] = [](const StoreBackendContext& ctx) {
    return std::make_unique<DocStoreShardBackend>(shard_dir(ctx), ctx.format);
  };
  factories_["files"] = [](const StoreBackendContext& ctx) {
    return std::make_unique<FilesBackend>(shard_dir(ctx), ctx.format);
  };
  factories_["cluster"] = [](const StoreBackendContext& ctx) {
    return std::make_unique<ClusterBackend>(ctx);
  };
}

StoreBackendRegistry& StoreBackendRegistry::instance() {
  static StoreBackendRegistry registry;
  return registry;
}

void StoreBackendRegistry::register_backend(const std::string& name,
                                            Factory factory) {
  if (name.empty()) {
    throw sys::ConfigError("store backend name must not be empty");
  }
  if (!factory) {
    throw sys::ConfigError("store backend factory must not be empty");
  }
  factories_[name] = std::move(factory);
}

std::unique_ptr<StoreBackend> StoreBackendRegistry::create(
    const std::string& name, const StoreBackendContext& context) const {
  ensure_registered(name);
  return factories_.at(name)(context);
}

void StoreBackendRegistry::ensure_registered(const std::string& name) const {
  if (factories_.count(name) != 0) return;
  std::string known;
  for (const auto& [key, unused] : factories_) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw sys::ConfigError("unknown store backend: " + name +
                         " (registered: " + known + ")");
}

bool StoreBackendRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> StoreBackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) out.push_back(key);
  return out;
}

const std::vector<std::string>& StoreBackendRegistry::builtin_names() {
  static const std::vector<std::string> names = {"memory", "docstore", "files",
                                                 "cluster"};
  return names;
}

}  // namespace synapse::profile
