#pragma once
// StoreBackend: the pluggable per-shard persistence interface behind
// ProfileStore, and the name -> factory registry resolving it.
//
// The paper's store is one MongoDB instance and inherits its limits
// (section 4.5). Mirroring the AtomRegistry (PR 1) and WatcherRegistry
// (PR 3), storage backends are resolved by name: ProfileStore asks the
// registry for one backend instance PER SHARD, and anything registered
// here — the built-ins `memory`, `docstore`, `files` and `cluster`, or
// a user-registered custom backend — persists profiles without the
// store knowing its type. Every future backend (remote, replicated,
// tiered) is a registration, not a ProfileStore refactor.
//
// Contract: a backend instance serves exactly one shard. ProfileStore
// serializes calls per shard (the shard mutex), so implementations need
// no internal locking against their own shard — but different shards'
// instances run concurrently, so any state shared BETWEEN instances
// (files on disk, a common service) must tolerate concurrent access.
// read() may return profiles in any order; ProfileStore sorts by
// recorded timestamp.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "profile/profile.hpp"

namespace synapse::docstore {
class Store;
}

namespace synapse::profile {

/// Canonical tag index key: sorted, comma-joined (tag order is
/// irrelevant for lookups, as in the paper's profile(command, tags)).
/// Shared by ProfileStore routing and backend implementations.
std::string store_tags_key(const std::vector<std::string>& tags);

/// Everything a backend factory needs to open one shard. Factories are
/// called once per shard with consecutive indices; `directory` is the
/// store root (empty for in-memory stores) and `spec_file` the
/// backend-specific configuration file (--store-cluster), empty when
/// none was given.
struct StoreBackendContext {
  std::string directory;
  size_t shard_index = 0;
  size_t shard_count = 1;
  std::string spec_file;
  /// Encoding for NEW writes: "json" or "binary" (SYNB, see
  /// binary_codec.hpp). Reads always sniff the stored bytes, so a shard
  /// may hold both formats at once — that is how format conversion and
  /// legacy stores work.
  std::string format = "json";
};

/// One stored profile as a backend catalogs it (synapse-inspect
/// listings, format conversion): identity plus how and how big it is
/// encoded at rest.
struct StoredProfileEntry {
  std::string command;
  std::vector<std::string> tags;
  double created_at = 0.0;
  std::string format;         ///< "json" | "binary"
  size_t encoded_bytes = 0;   ///< size at rest (0 when not encoded)
};

class StoreBackend {
 public:
  virtual ~StoreBackend() = default;

  /// Store one profile; `tkey` is store_tags_key(profile.tags), computed
  /// once by the caller. Returns true when the profile was truncated to
  /// fit a document limit (paper section 4.5).
  virtual bool put(const Profile& profile, const std::string& tkey) = 0;

  /// All profiles stored for (command, tkey), in any order.
  virtual std::vector<Profile> read(const std::string& command,
                                    const std::string& tkey) const = 0;

  /// Remove every profile stored for (command, tkey); returns the
  /// number removed.
  virtual size_t remove(const std::string& command,
                        const std::string& tkey) = 0;

  /// Persist pending state. Default: no-op (eager backends).
  virtual void flush() {}

  /// Number of profiles in this shard.
  virtual size_t size() const = 0;

  /// True when writes buffer until flush() — ProfileStore then runs its
  /// background flush worker (FlushPolicy, flush_async, drain on
  /// destruction). Eager backends return false and never see the worker.
  virtual bool needs_flush() const { return false; }

  /// Cross-process version stamp of the shard's data, used to invalidate
  /// ProfileStore's read cache when OTHER processes write (in-process
  /// writes invalidate explicitly). Backends whose view is
  /// process-private may keep the constant default.
  virtual uint64_t cache_stamp() const { return 0; }

  /// Backend-specific description of this shard (diagnostics /
  /// synapse-inspect): e.g. the cluster backend reports the docstore
  /// instance the shard is placed on. Default: empty object.
  virtual json::Value meta() const { return json::Value(json::Object{}); }

  /// Catalog of every profile in this shard, in any order. Default:
  /// empty — custom backends that predate the listing API keep working,
  /// they just show up empty in synapse-inspect listings and are
  /// skipped by format conversion.
  virtual std::vector<StoredProfileEntry> list() const { return {}; }
};

/// The docstore built-in: one embedded docstore::Store per shard
/// directory (16 MB document limit applies, paper section 4.5). Public
/// because the cluster backend reuses it verbatim for each shard it
/// places on a docstore instance — the on-disk format is identical, so
/// a shard's data can move between the two backends by moving its
/// directory.
class DocStoreShardBackend : public StoreBackend {
 public:
  /// `format` selects the encoding for new writes ("json" stores the
  /// profile as a plain document; "binary" wraps a SYNB blob in a
  /// base64 envelope document that keeps the query fields — command,
  /// tags_key, created_at — as plain top-level members). Reads handle
  /// both document shapes regardless.
  explicit DocStoreShardBackend(const std::string& shard_dir,
                                std::string format = "json");
  ~DocStoreShardBackend() override;

  bool put(const Profile& profile, const std::string& tkey) override;
  std::vector<Profile> read(const std::string& command,
                            const std::string& tkey) const override;
  size_t remove(const std::string& command, const std::string& tkey) override;
  void flush() override;
  size_t size() const override;
  bool needs_flush() const override { return true; }
  json::Value meta() const override;
  std::vector<StoredProfileEntry> list() const override;

 private:
  std::unique_ptr<docstore::Store> store_;
  std::string format_;
};

class StoreBackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<StoreBackend>(const StoreBackendContext&)>;

  /// The process-wide registry with the built-ins pre-registered.
  /// Runtime registrations here are visible to every ProfileStore that
  /// does not inject its own registry.
  static StoreBackendRegistry& instance();

  /// A fresh registry seeded with the built-in factories. Use this (via
  /// ProfileStoreOptions::registry) to scope custom backends to one
  /// store.
  StoreBackendRegistry();

  /// Register or replace a factory. Registering a name that already
  /// exists overrides it — how a user swaps a built-in for a custom
  /// implementation.
  void register_backend(const std::string& name, Factory factory);

  /// Instantiate one shard's backend. Throws sys::ConfigError for
  /// unknown names (the message lists what is registered).
  std::unique_ptr<StoreBackend> create(const std::string& name,
                                       const StoreBackendContext& context) const;

  /// Throw the same ConfigError as create() for an unknown name without
  /// instantiating anything — lets callers validate a backend name up
  /// front (e.g. before stamping a store meta file).
  void ensure_registered(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// The built-in backend set.
  static const std::vector<std::string>& builtin_names();

 private:
  std::map<std::string, Factory> factories_;
};

namespace storedetail {
// Filesystem helpers shared by the built-in backends, ProfileStore's
// meta/migration code and the cluster backend's placement file. All
// claim-style writes go through link()/rename() so concurrent store
// instances and processes never observe partial files.

bool file_exists(const std::string& path);

/// Temp-file suffix unique across processes (pid) AND across store
/// instances/threads within one process (counter).
std::string unique_tmp_suffix();

/// True for names ending in ".profile.json" (the files backend's
/// one-file-per-profile layout; also the pre-sharding legacy layout,
/// which is why the legacy migration scans use exactly this).
bool has_profile_suffix(const std::string& name);

/// True for names ending in ".profile.synb" (the files backend's
/// binary-format files).
bool has_binary_profile_suffix(const std::string& name);

/// Number of profile entries (either suffix) directly inside `dir`.
size_t count_profile_files(const std::string& dir);

/// Filesystem-safe mangling of commands/tags for file names.
std::string sanitize(const std::string& s);

/// FNV-1a, chosen over std::hash for stable on-disk layouts across
/// processes and library versions (shard routing, cache stamps).
uint64_t fnv1a(const std::string& key);
}  // namespace storedetail

}  // namespace synapse::profile
