#include "resource/cache_model.hpp"

#include <algorithm>
#include <cmath>

namespace synapse::resource {

double miss_fraction(const KernelTraits& traits, const ResourceSpec& spec) {
  const double ws = static_cast<double>(traits.working_set_bytes);
  if (ws <= static_cast<double>(spec.l1d_bytes)) return 0.0;

  // Fraction of references that escape each level, shrinking with the
  // kernel's locality. A smooth log-ramp between levels avoids cliffs
  // when sweeping working-set sizes in tests.
  const double beyond = 1.0 - traits.locality;
  auto level_factor = [&](double level_bytes, double next_bytes) {
    if (ws <= level_bytes) return 0.0;
    if (ws >= next_bytes) return 1.0;
    return std::log(ws / level_bytes) / std::log(next_bytes / level_bytes);
  };
  const double l2_escape = level_factor(static_cast<double>(spec.l1d_bytes),
                                        static_cast<double>(spec.l2_bytes));
  const double l3_escape = level_factor(static_cast<double>(spec.l2_bytes),
                                        static_cast<double>(spec.l3_bytes));
  // Misses to L2 cost little; misses past L3 cost the full penalty. Use
  // a weighted escape fraction as "effective DRAM-miss fraction".
  const double effective = 0.15 * l2_escape + 0.85 * l2_escape * l3_escape;
  return std::clamp(beyond * effective, 0.0, 1.0);
}

double effective_ipc(const KernelTraits& traits, const ResourceSpec& spec) {
  // Cycles per instruction: the kernel's dependency-limited issue rate
  // (capped by the machine's width) plus the expected stall contribution
  // of memory references that miss. Out-of-order cores overlap the vast
  // majority of miss latency behind independent work; the residual
  // exposed fraction below reproduces the IPC bands perf reports for
  // cache-resident kernels (~3.3), streaming out-of-cache matmul (~2.6)
  // and irregular MD codes (~2.1) on 4-wide Xeons (paper Fig. 11).
  constexpr double kExposedMissFraction = 0.0045;
  const double ideal_cpi =
      1.0 / std::min(spec.issue_width, traits.peak_ipc);
  const double miss = miss_fraction(traits, spec);
  const double stall_cpi = traits.mem_refs_per_instruction * miss *
                           spec.miss_penalty_cycles * kExposedMissFraction;
  return 1.0 / (ideal_cpi + stall_cpi);
}

double calibration_bias(const KernelTraits& traits, const ResourceSpec& spec) {
  const double headroom = spec.turbo_headroom() - 1.0;
  if (headroom <= 0.0) return 1.0;
  // A kernel calibrates its cycles<->work mapping in a short run at full
  // single-core boost; the sustained emulation clock is lower by
  // sustained_boost_gap x headroom. Core-bound work inherits that gap in
  // full; memory-bound work is paced by DRAM, not the clock.
  const double sensitivity = 1.0 - traits.memory_boundedness;
  return 1.0 + 0.95 * sensitivity * headroom * spec.sustained_boost_gap;
}

double instructions_for_flops(const KernelTraits& traits, double flops) {
  return flops * traits.instructions_per_flop;
}

double cycles_for_flops(const KernelTraits& traits, const ResourceSpec& spec,
                        double flops) {
  const double instructions = instructions_for_flops(traits, flops);
  return instructions / effective_ipc(traits, spec);
}

double seconds_for_cycles(const ResourceSpec& spec, double cycles) {
  return cycles / spec.turbo_hz;
}

const KernelTraits& asm_kernel_traits() {
  // Tiny register-blocked matrix multiplication; matrices fit in L1.
  static const KernelTraits t = {
      .name = "asm",
      .working_set_bytes = 24 * 1024,  // three 32x32 double matrices
      .memory_boundedness = 0.05,
      .instructions_per_flop = 1.25,  // fused multiply-add + light overhead
      .peak_ipc = 3.3,                // paper Fig. 11: ~3.30/cycle
      .mem_refs_per_instruction = 0.25,
      .locality = 0.9,
  };
  return t;
}

const KernelTraits& c_kernel_traits() {
  // Naive triple-loop matmul on matrices several times the LLC.
  static const KernelTraits t = {
      .name = "c",
      .working_set_bytes = 96ull * 1024 * 1024,  // three 2048x2048 doubles
      .memory_boundedness = 0.80,
      .instructions_per_flop = 2.0,  // separate mul/add, loads, index math
      .peak_ipc = 4.0,
      .mem_refs_per_instruction = 0.4,
      .locality = 0.62,
  };
  return t;
}

const KernelTraits& app_md_traits() {
  // The synthetic MD application: neighbour-list gathers, irregular
  // access, heavy per-interaction arithmetic.
  static const KernelTraits t = {
      .name = "app_md",
      .working_set_bytes = 48ull * 1024 * 1024,
      .memory_boundedness = 0.85,
      .instructions_per_flop = 2.6,
      .peak_ipc = 4.0,
      .mem_refs_per_instruction = 0.45,
      .locality = 0.45,
  };
  return t;
}

}  // namespace synapse::resource
