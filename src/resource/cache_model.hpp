#pragma once
// Analytic cache / IPC model.
//
// Experiment E.3 of the paper compares cycles, instructions and
// instruction rate between the application and emulations with different
// kernels, measured by perf. With hardware counters gated in this
// environment (DESIGN.md section 1) the *counter values* come from this
// model instead; the model is driven by the same physical quantities the
// paper discusses:
//
//  - a kernel whose working set fits the cache runs near peak issue
//    width (the ASM kernel), one that misses runs slower (the C kernel),
//    irregular application access patterns are slower still;
//  - a core-bound kernel calibrated at nominal clock but executed at
//    turbo mispredicts its cycle budget by the turbo headroom, a
//    memory-bound one barely notices — this is the mechanism behind the
//    per-kernel emulation error of Fig. 8/9.

#include <cstdint>
#include <string>

#include "resource/resource_spec.hpp"

namespace synapse::resource {

/// Static execution characteristics of a compute kernel (or application).
struct KernelTraits {
  std::string name;
  /// Bytes the inner loop touches repeatedly.
  uint64_t working_set_bytes = 0;
  /// Fraction of runtime limited by memory rather than the core, in
  /// [0,1]. ~0 for a register-blocked cache-resident kernel, ~0.8+ for a
  /// streaming out-of-cache kernel or an irregular application.
  double memory_boundedness = 0.0;
  /// Instructions executed per floating-point operation (loop overhead,
  /// address arithmetic, loads/stores). >= 1.
  double instructions_per_flop = 1.0;
  /// Sustained issue rate of the kernel's instruction mix on an
  /// unbounded-width core (dependency chains cap it below the machine's
  /// issue width).
  double peak_ipc = 4.0;
  /// Memory references per instruction for the stall model.
  double mem_refs_per_instruction = 0.3;
  /// Fraction of memory references with reuse distance beyond L1 when
  /// the working set does NOT fit; tempered by locality.
  double locality = 0.5;
};

/// Cache-miss fraction of memory references for a working set on a
/// resource: 0 when the set fits in L1; grows through L2/L3; capped at
/// (1 - locality) for fully out-of-cache sets.
double miss_fraction(const KernelTraits& traits, const ResourceSpec& spec);

/// Effective sustained instructions-per-cycle for this kernel on this
/// resource: issue width degraded by memory stalls.
double effective_ipc(const KernelTraits& traits, const ResourceSpec& spec);

/// Multiplicative error of the kernel's internal cycle accounting on
/// this resource (>= 1): a kernel told to consume N cycles actually
/// consumes N x bias. Core-bound kernels inherit the full turbo
/// headroom; memory-bound kernels are largely insensitive to clock.
double calibration_bias(const KernelTraits& traits, const ResourceSpec& spec);

/// Cycles needed to execute `flops` floating-point operations with this
/// kernel on this resource (via effective IPC and instruction mix).
double cycles_for_flops(const KernelTraits& traits, const ResourceSpec& spec,
                        double flops);

/// Instructions executed for `flops` floating-point operations.
double instructions_for_flops(const KernelTraits& traits, double flops);

/// Wall-clock seconds the work takes on the resource when perfectly
/// CPU-bound: cycles / turbo clock (machines run in boost during
/// compute phases, as the paper measured on Comet and Supermic).
double seconds_for_cycles(const ResourceSpec& spec, double cycles);

/// Traits of the built-in kernels and the synthetic MD application.
/// (Defined here so profiler, emulator and benches agree; user kernels
/// construct their own KernelTraits.)
const KernelTraits& asm_kernel_traits();
const KernelTraits& c_kernel_traits();
const KernelTraits& app_md_traits();

}  // namespace synapse::resource
