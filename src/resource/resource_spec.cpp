#include "resource/resource_spec.hpp"

#include <mutex>

#include "sys/cpuinfo.hpp"
#include "sys/env.hpp"
#include "sys/error.hpp"
#include "sys/procfs.hpp"

namespace synapse::resource {

double FilesystemSpec::read_cost(uint64_t bytes) const {
  const double effective_latency = read_latency_s * (1.0 - read_cache_hit);
  const double bw = read_bw_bps > 0 ? read_bw_bps : 1e12;
  return effective_latency + static_cast<double>(bytes) / bw;
}

double FilesystemSpec::write_cost(uint64_t bytes) const {
  const double bw = write_bw_bps > 0 ? write_bw_bps : 1e12;
  return write_latency_s + static_cast<double>(bytes) / bw;
}

const FilesystemSpec& ResourceSpec::fs(const std::string& fs_name) const {
  const auto it = filesystems.find(fs_name);
  if (it == filesystems.end()) {
    throw sys::ConfigError("resource '" + name + "' has no filesystem '" +
                           fs_name + "'");
  }
  return it->second;
}

namespace {

FilesystemSpec make_fs(std::string name, double read_mbps, double write_mbps,
                       double read_lat_us, double write_lat_us,
                       double cache_hit) {
  FilesystemSpec fs;
  fs.name = std::move(name);
  fs.read_bw_bps = read_mbps * 1e6;
  fs.write_bw_bps = write_mbps * 1e6;
  fs.read_latency_s = read_lat_us * 1e-6;
  fs.write_latency_s = write_lat_us * 1e-6;
  fs.read_cache_hit = cache_hit;
  return fs;
}

/// Build the registry of the paper's experiment platforms (section 5,
/// "Experiment Platform"). compute_scale values are chosen so the
/// *ratios* between machines track the paper's observations; absolute
/// speed is bounded by the host container.
std::map<std::string, ResourceSpec> build_registry() {
  std::map<std::string, ResourceSpec> reg;

  {  // host: the bare container, no throttling.
    ResourceSpec r;
    r.name = "host";
    r.description = "bare metal (no virtual resource active)";
    const auto& cpu = sys::cpu_info();
    r.clock_hz = cpu.best_hz();
    r.turbo_hz = cpu.best_hz();
    r.cores = cpu.logical_cores;
    r.l1d_bytes = cpu.cache_l1d_bytes;
    r.l2_bytes = cpu.cache_l2_bytes;
    r.l3_bytes = cpu.cache_l3_bytes;
    r.compute_scale = 1.0;
    r.default_fs = "local";
    r.filesystems["local"] = make_fs("local", 2000, 1500, 2, 4, 0.5);
    reg[r.name] = r;
  }
  {  // Thinkie: Intel Core i7 M620, 4 cores, 8GB, Intel SSD (profiling host).
    ResourceSpec r;
    r.name = "thinkie";
    r.description = "Intel Core i7 M620, 4 cores, 8GB, Intel SSD 320";
    r.clock_hz = 2.67e9;
    r.turbo_hz = 3.33e9;
    r.cores = 4;
    r.issue_width = 4.0;
    r.l3_bytes = 4ull * 1024 * 1024;
    r.miss_penalty_cycles = 180.0;
    r.compute_scale = 0.50;
    r.sustained_boost_gap = 0.05;
    r.default_fs = "local";
    r.filesystems["local"] = make_fs("local", 270, 200, 15, 30, 0.6);
    reg[r.name] = r;
  }
  {  // Stampede: 2x 8-core Xeon E5-2680 (Sandy Bridge), local 250GB HDD.
    ResourceSpec r;
    r.name = "stampede";
    r.description = "2x Intel Xeon E5-2680 (Sandy Bridge), 16 cores, 32GB";
    r.clock_hz = 2.7e9;
    r.turbo_hz = 3.5e9;
    r.cores = 16;
    r.issue_width = 4.0;
    r.l3_bytes = 20ull * 1024 * 1024;
    r.miss_penalty_cycles = 200.0;
    r.compute_scale = 0.70;
    r.sustained_boost_gap = 0.10;
    // Default-flag Gromacs builds exploit Stampede poorly; emulation ends
    // up ~40% faster than the application (paper Fig. 7 top).
    r.app_optimization = 0.61;
    r.default_fs = "local";
    r.filesystems["local"] = make_fs("local", 120, 100, 80, 150, 0.5);
    reg[r.name] = r;
  }
  {  // Archer: Cray XC30, 2x 12-core E5-2697 v2 (Ivy Bridge), I/O to /tmp.
    ResourceSpec r;
    r.name = "archer";
    r.description = "Cray XC30, 2x Intel Xeon E5-2697v2, 24 cores, 64GB";
    r.clock_hz = 2.7e9;
    r.turbo_hz = 3.5e9;
    r.cores = 24;
    r.issue_width = 4.0;
    r.l3_bytes = 30ull * 1024 * 1024;
    r.miss_penalty_cycles = 200.0;
    r.compute_scale = 0.375;
    r.sustained_boost_gap = 0.10;
    // The Cray toolchain optimizes the application well; emulation is
    // ~33% slower than the application (paper Fig. 7 bottom).
    r.app_optimization = 1.41;
    r.default_fs = "local";
    r.filesystems["local"] = make_fs("local", 110, 90, 90, 170, 0.5);
    reg[r.name] = r;
  }
  {  // Comet: 2x 12-core Xeon E5-2680v3, NFS for all I/O.
    ResourceSpec r;
    r.name = "comet";
    r.description = "2x Intel Xeon E5-2680v3, 24 cores, 128GB, NFS I/O";
    r.clock_hz = 2.5e9;
    r.turbo_hz = 2.9e9;  // paper: measured ~2.88-2.90 GHz during the runs
    r.cores = 24;
    r.issue_width = 4.0;
    r.l3_bytes = 30ull * 1024 * 1024;
    r.miss_penalty_cycles = 210.0;
    r.compute_scale = 0.55;
    r.sustained_boost_gap = 0.90;
    r.omp_overhead_per_worker = 0.016;
    r.mpi_overhead_per_worker = 0.014;
    r.default_fs = "nfs";
    r.filesystems["local"] = make_fs("local", 150, 120, 70, 140, 0.5);
    r.filesystems["nfs"] = make_fs("nfs", 180, 25, 500, 4000, 0.3);
    reg[r.name] = r;
  }
  {  // Supermic: 2x 10-core Xeon E5-2680 (Ivy Bridge-EP), Lustre I/O.
    ResourceSpec r;
    r.name = "supermic";
    r.description = "2x Intel Xeon E5-2680 (Ivy Bridge-EP), 20 cores, 128GB";
    r.clock_hz = 2.8e9;
    r.turbo_hz = 3.6e9;  // paper: measured ~3.58-3.60 GHz during the runs
    r.cores = 20;
    r.issue_width = 4.0;
    r.l3_bytes = 25ull * 1024 * 1024;
    r.miss_penalty_cycles = 200.0;
    r.compute_scale = 0.68;
    r.sustained_boost_gap = 0.90;
    // Dual-socket NUMA node: shared-memory threads pay remote-socket
    // traffic that rank-per-process placement avoids, which is why the
    // paper observed OpenMPI beating OpenMP here (Fig. 12).
    r.omp_overhead_per_worker = 0.060;
    r.mpi_overhead_per_worker = 0.012;
    r.default_fs = "lustre";
    r.filesystems["local"] = make_fs("local", 80, 60, 120, 250, 0.4);
    r.filesystems["lustre"] = make_fs("lustre", 450, 45, 300, 2500, 0.85);
    reg[r.name] = r;
  }
  {  // Titan: 16-core AMD Opteron 6274, Lustre + fast local FS.
    ResourceSpec r;
    r.name = "titan";
    r.description = "AMD Opteron 6274, 16 cores, 32GB, Lustre";
    r.clock_hz = 2.2e9;
    r.turbo_hz = 2.5e9;
    r.cores = 16;
    r.issue_width = 2.0;  // Bulldozer module shares the FP unit
    r.l3_bytes = 16ull * 1024 * 1024;
    r.miss_penalty_cycles = 250.0;
    r.compute_scale = 0.38;
    r.sustained_boost_gap = 0.15;
    r.omp_overhead_per_worker = 0.010;
    r.mpi_overhead_per_worker = 0.022;
    r.default_fs = "lustre";
    r.filesystems["local"] = make_fs("local", 350, 280, 40, 80, 0.6);
    r.filesystems["lustre"] = make_fs("lustre", 430, 42, 320, 2600, 0.85);
    reg[r.name] = r;
  }
  return reg;
}

std::map<std::string, ResourceSpec>& registry() {
  static std::map<std::string, ResourceSpec> reg = build_registry();
  return reg;
}

std::mutex g_active_mutex;
std::string g_active_name;  // empty = not yet resolved

}  // namespace

const std::vector<std::string>& known_resources() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, spec] : registry()) out.push_back(name);
    return out;
  }();
  return names;
}

const ResourceSpec& get_resource(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(name);
  if (it == reg.end()) {
    throw sys::ConfigError("unknown resource: " + name);
  }
  return it->second;
}

const ResourceSpec& active_resource() {
  std::lock_guard lock(g_active_mutex);
  if (g_active_name.empty()) {
    g_active_name = sys::getenv_or(kResourceEnvVar, std::string("host"));
    if (registry().count(g_active_name) == 0) g_active_name = "host";
  }
  return registry().at(g_active_name);
}

void activate_resource(const std::string& name) {
  get_resource(name);  // validate
  std::lock_guard lock(g_active_mutex);
  g_active_name = name;
  sys::setenv_str(kResourceEnvVar, name);
}

json::Value ResourceSpec::to_json() const {
  json::Object o;
  o["name"] = name;
  o["description"] = description;
  o["clock_hz"] = clock_hz;
  o["turbo_hz"] = turbo_hz;
  o["cores"] = cores;
  o["issue_width"] = issue_width;
  o["l1d_bytes"] = l1d_bytes;
  o["l2_bytes"] = l2_bytes;
  o["l3_bytes"] = l3_bytes;
  o["miss_penalty_cycles"] = miss_penalty_cycles;
  o["compute_scale"] = compute_scale;
  o["sustained_boost_gap"] = sustained_boost_gap;
  o["omp_overhead_per_worker"] = omp_overhead_per_worker;
  o["mpi_overhead_per_worker"] = mpi_overhead_per_worker;
  o["app_optimization"] = app_optimization;
  o["default_fs"] = default_fs;
  json::Object fss;
  for (const auto& [fname, fspec] : filesystems) {
    json::Object f;
    f["read_bw_bps"] = fspec.read_bw_bps;
    f["write_bw_bps"] = fspec.write_bw_bps;
    f["read_latency_s"] = fspec.read_latency_s;
    f["write_latency_s"] = fspec.write_latency_s;
    f["read_cache_hit"] = fspec.read_cache_hit;
    fss[fname] = json::Value(std::move(f));
  }
  o["filesystems"] = std::move(fss);
  return json::Value(std::move(o));
}

ResourceSpec ResourceSpec::from_json(const json::Value& v) {
  ResourceSpec r;
  r.name = v.get_or("name", std::string());
  r.description = v.get_or("description", std::string());
  r.clock_hz = v.get_or("clock_hz", 2.5e9);
  r.turbo_hz = v.get_or("turbo_hz", r.clock_hz);
  r.cores = static_cast<int>(v.get_or("cores", 16.0));
  r.issue_width = v.get_or("issue_width", 4.0);
  r.l1d_bytes = static_cast<uint64_t>(v.get_or("l1d_bytes", 32768.0));
  r.l2_bytes = static_cast<uint64_t>(v.get_or("l2_bytes", 262144.0));
  r.l3_bytes = static_cast<uint64_t>(v.get_or("l3_bytes", 2.0e7));
  r.miss_penalty_cycles = v.get_or("miss_penalty_cycles", 200.0);
  r.compute_scale = v.get_or("compute_scale", 1.0);
  r.sustained_boost_gap = v.get_or("sustained_boost_gap", 0.0);
  r.omp_overhead_per_worker = v.get_or("omp_overhead_per_worker", 0.015);
  r.mpi_overhead_per_worker = v.get_or("mpi_overhead_per_worker", 0.015);
  r.app_optimization = v.get_or("app_optimization", 1.0);
  r.default_fs = v.get_or("default_fs", std::string("local"));
  if (v.contains("filesystems")) {
    for (const auto& [fname, fv] : v["filesystems"].as_object()) {
      FilesystemSpec fs;
      fs.name = fname;
      fs.read_bw_bps = fv.get_or("read_bw_bps", 0.0);
      fs.write_bw_bps = fv.get_or("write_bw_bps", 0.0);
      fs.read_latency_s = fv.get_or("read_latency_s", 0.0);
      fs.write_latency_s = fv.get_or("write_latency_s", 0.0);
      fs.read_cache_hit = fv.get_or("read_cache_hit", 0.0);
      r.filesystems[fname] = fs;
    }
  }
  return r;
}

}  // namespace synapse::resource
