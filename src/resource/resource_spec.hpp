#pragma once
// Virtual-resource specifications.
//
// The paper's evaluation spans six machines (Thinkie, Stampede, Archer,
// Comet, Supermic, Titan). This reproduction runs on one container, so
// each machine is represented by a ResourceSpec: clock, turbo headroom,
// core count, cache hierarchy, and filesystem characteristics. Synthetic
// applications and emulation atoms throttle their compute rate and I/O
// against the *active* spec, which is communicated to child processes
// through SYNAPSE_RESOURCE; "profiling on Thinkie, emulating on Archer"
// then exercises the same portability mechanism as the paper's Fig. 3
// (per-resource speed ratios flip which resource dominates a sample).
//
// See DESIGN.md section 1 for why this substitution preserves the
// behaviour under study.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace synapse::resource {

/// Filesystem behaviour model attached to a resource.
struct FilesystemSpec {
  std::string name;            ///< "local", "lustre", "nfs", "tmp"
  double read_bw_bps = 0.0;    ///< sustained read bandwidth, bytes/s
  double write_bw_bps = 0.0;   ///< sustained write bandwidth, bytes/s
  double read_latency_s = 0.0; ///< fixed per-operation latency
  double write_latency_s = 0.0;
  /// Fraction of reads served from client cache (latency-free).
  double read_cache_hit = 0.0;

  /// Modelled wall-time cost of one read/write of `bytes` bytes.
  double read_cost(uint64_t bytes) const;
  double write_cost(uint64_t bytes) const;
};

/// One virtual machine.
struct ResourceSpec {
  std::string name;          ///< registry key, e.g. "stampede"
  std::string description;   ///< CPU model, as in the paper's platform list
  double clock_hz = 2.5e9;   ///< nominal clock
  double turbo_hz = 2.5e9;   ///< maximum boost clock
  int cores = 16;
  double issue_width = 4.0;  ///< peak instructions/cycle
  uint64_t l1d_bytes = 32 * 1024;
  uint64_t l2_bytes = 256 * 1024;
  uint64_t l3_bytes = 20 * 1024 * 1024;
  /// Average extra cycles for a last-level-cache-missing access.
  double miss_penalty_cycles = 200.0;
  /// Fraction of the turbo headroom lost between a short calibration
  /// run (cold core, full single-core boost) and a sustained emulation
  /// (thermally limited). Core-bound kernels calibrated against boost
  /// clock overshoot their cycle budget by this gap — the mechanism
  /// behind the per-kernel emulation error of paper Fig. 8/9 (large on
  /// the server chips Comet/Supermic, negligible on the laptop).
  double sustained_boost_gap = 0.0;
  /// Per-worker coordination overhead of thread-parallel (OpenMP) and
  /// process-parallel (MPI-style) execution on this machine, used by the
  /// emulator's parallel-efficiency model (experiment E.4: OpenMP beats
  /// MPI on Titan, the reverse holds on Supermic).
  double omp_overhead_per_worker = 0.015;
  double mpi_overhead_per_worker = 0.015;
  /// Compute rate relative to the host container: the throttle aims at
  /// host_flops_rate x compute_scale. All specs keep this <= 1 so the
  /// target is reachable in real time.
  double compute_scale = 1.0;
  /// How much faster (>1) or slower (<1) *application binaries* run on
  /// this machine relative to Synapse's generic emulation kernels.
  /// Models resource-specific compile-time optimization, the paper's
  /// main source of cross-resource emulation offset (sections 4.5, 8):
  /// on Stampede the emulation converges ~40% faster than the
  /// application, on Archer ~33% slower (Fig. 7).
  double app_optimization = 1.0;
  std::string default_fs = "local";
  std::map<std::string, FilesystemSpec> filesystems;

  double turbo_headroom() const {
    return clock_hz > 0 ? turbo_hz / clock_hz : 1.0;
  }
  const FilesystemSpec& fs(const std::string& fs_name) const;

  json::Value to_json() const;
  static ResourceSpec from_json(const json::Value& v);
};

/// Registry of the paper's machines (plus "host" = no throttling).
/// Names: host, thinkie, stampede, archer, comet, supermic, titan.
const std::vector<std::string>& known_resources();
const ResourceSpec& get_resource(const std::string& name);

/// The spec active for this process: taken from SYNAPSE_RESOURCE, falling
/// back to "host". Cached after first read; activate_resource() updates
/// both the cache and the environment (so spawned children inherit it).
const ResourceSpec& active_resource();
void activate_resource(const std::string& name);

/// Environment variable used to communicate the active spec to children.
inline constexpr const char* kResourceEnvVar = "SYNAPSE_RESOURCE";

}  // namespace synapse::resource
