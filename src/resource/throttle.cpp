#include "resource/throttle.hpp"

#include <algorithm>

#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"

namespace synapse::resource {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_(rate_per_s > 0 ? rate_per_s : 1e18),
      burst_(std::max(burst, 1.0)),
      // Start with a full burst of credit.
      next_free_(sys::steady_now() - burst_ / rate_) {}

bool TokenBucket::try_acquire(double units) {
  std::lock_guard lock(mutex_);
  const double now = sys::steady_now();
  const double base = std::max(next_free_, now - burst_ / rate_);
  const double candidate = base + units / rate_;
  if (candidate <= now) {
    next_free_ = candidate;
    return true;
  }
  return false;
}

void TokenBucket::acquire(double units) {
  double wait = 0.0;
  {
    std::lock_guard lock(mutex_);
    const double now = sys::steady_now();
    // Credit accumulates while idle, capped at the burst.
    const double base = std::max(next_free_, now - burst_ / rate_);
    next_free_ = base + units / rate_;
    wait = next_free_ - now;
  }
  if (wait > 0) sys::sleep_for(wait);
}

ComputeThrottle::ComputeThrottle(double scale)
    : scale_(scale > 0 ? scale : 1.0) {}

void ComputeThrottle::charge(double busy_seconds) {
  if (scale_ >= 1.0 || busy_seconds <= 0) return;
  debt_ += busy_seconds * (1.0 / scale_ - 1.0);
  // Paying the debt in >=1ms slices keeps the sleep overhead negligible
  // while bounding the burstiness of the throttled loop.
  if (debt_ >= 1e-3) {
    sys::sleep_for(debt_);
    debt_ = 0.0;
  }
}

ComputeThrottle ComputeThrottle::for_active_resource() {
  return ComputeThrottle(active_resource().compute_scale);
}

}  // namespace synapse::resource
