#pragma once
// Rate throttling for the virtual-resource layer.
//
// A TokenBucket enforces a sustained rate with bounded burst — used by
// the virtual filesystems for bandwidth and by ComputeThrottle for
// scaling compute speed to the active ResourceSpec. Throttling is
// cooperative: workloads call charge() from their inner loops; charge()
// sleeps just long enough to keep the observed rate at the target.

#include <cstdint>
#include <mutex>

namespace synapse::resource {

/// Token bucket implemented as a virtual queue: `rate` units/s sustained,
/// up to `burst` units of accumulated credit. acquire() reserves a slot
/// on the queue under the lock and sleeps outside it, so concurrent
/// acquirers share the rate exactly (no refill/sleep double counting).
/// Thread-safe.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst);

  /// Block until `units` tokens are available, then consume them.
  void acquire(double units);

  /// Non-blocking: true and consume when available now.
  bool try_acquire(double units);

  double rate() const { return rate_; }

 private:
  double rate_;
  double burst_;
  /// Time at which the queue drains; (now - next_free_) * rate is the
  /// stored credit, capped at burst.
  double next_free_;
  std::mutex mutex_;
};

/// Keeps a work loop at `scale` times the calling thread's native speed
/// by inserting sleeps: after a chunk of work that took t seconds of CPU,
/// charge(t) sleeps t*(1/scale - 1). scale >= 1 never sleeps.
class ComputeThrottle {
 public:
  explicit ComputeThrottle(double scale);

  /// Account `busy_seconds` of real work; sleeps to meet the target rate.
  void charge(double busy_seconds);

  double scale() const { return scale_; }

  /// A throttle for the active resource spec (scale = compute_scale).
  static ComputeThrottle for_active_resource();

 private:
  double scale_;
  double debt_ = 0.0;  ///< accumulated sleep owed, paid in >=1ms slices
};

}  // namespace synapse::resource
