#include "resource/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "sys/clock.hpp"
#include "sys/env.hpp"
#include "sys/error.hpp"

namespace synapse::resource {

VirtualFile::VirtualFile(const FilesystemSpec& spec,
                         const std::string& backing_path, bool for_write)
    : spec_(spec), path_(backing_path) {
  const int flags = for_write ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDONLY;
  fd_ = ::open(backing_path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw sys::SystemError("open(" + backing_path + ")", errno);
  }
}

VirtualFile::~VirtualFile() {
  if (fd_ >= 0) ::close(fd_);
}

void VirtualFile::pay(double modelled_cost, double actual_cost) {
  // The real operation already took actual_cost; sleep only the
  // remainder so the observed wall time equals the model (a host faster
  // than the modelled filesystem always satisfies modelled > actual).
  if (modelled_cost > actual_cost) {
    sys::sleep_for(modelled_cost - actual_cost);
  }
}

double VirtualFile::write(uint64_t bytes) {
  if (buffer_.size() < bytes) {
    buffer_.resize(bytes);
    // Non-trivial content defeats filesystem-level compression/dedup.
    for (size_t i = 0; i < buffer_.size(); ++i) {
      buffer_[i] = static_cast<char>((i * 131) ^ (i >> 8));
    }
  }
  const double start = sys::steady_now();
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, buffer_.data() + (bytes - remaining),
                              remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw sys::SystemError("write(" + path_ + ")", errno);
    }
    remaining -= static_cast<uint64_t>(n);
  }
  const double actual = sys::steady_now() - start;
  const double cost = spec_.write_cost(bytes);
  pay(cost, actual);
  stats_.bytes_written += bytes;
  stats_.write_ops += 1;
  stats_.write_seconds += std::max(cost, actual);
  return std::max(cost, actual);
}

double VirtualFile::read(uint64_t bytes) {
  if (buffer_.size() < bytes) buffer_.resize(bytes);
  const double start = sys::steady_now();
  uint64_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd_, buffer_.data() + got, bytes - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw sys::SystemError("read(" + path_ + ")", errno);
    }
    if (n == 0) {
      // EOF: rewind; if the file is empty, synthesize the remainder.
      if (::lseek(fd_, 0, SEEK_SET) < 0 ||
          stats_.bytes_written == 0) {
        break;
      }
      continue;
    }
    got += static_cast<uint64_t>(n);
  }
  const double actual = sys::steady_now() - start;
  const double cost = spec_.read_cost(bytes);
  pay(cost, actual);
  stats_.bytes_read += bytes;
  stats_.read_ops += 1;
  stats_.read_seconds += std::max(cost, actual);
  return std::max(cost, actual);
}

void VirtualFile::sync() {
  ::fsync(fd_);
  ::lseek(fd_, 0, SEEK_SET);
}

VirtualFilesystem::VirtualFilesystem(FilesystemSpec spec, std::string root)
    : spec_(std::move(spec)), root_(std::move(root)) {
  ::mkdir(root_.c_str(), 0755);  // EEXIST is fine
}

std::unique_ptr<VirtualFile> VirtualFilesystem::open(const std::string& name,
                                                     bool for_write) {
  return std::make_unique<VirtualFile>(spec_, root_ + "/" + name, for_write);
}

void VirtualFilesystem::remove(const std::string& name) {
  ::unlink((root_ + "/" + name).c_str());
}

VirtualFilesystem VirtualFilesystem::for_active_resource(
    const std::string& fs_name, std::string base_dir) {
  const ResourceSpec& spec = active_resource();
  const std::string& fs = fs_name.empty() ? spec.default_fs : fs_name;
  if (base_dir.empty()) {
    base_dir = sys::getenv_or("TMPDIR", std::string("/tmp"));
  }
  return VirtualFilesystem(spec.fs(fs),
                           base_dir + "/synapse_vfs_" + spec.name + "_" + fs);
}

}  // namespace synapse::resource
