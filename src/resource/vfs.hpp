#pragma once
// Virtual filesystems.
//
// Experiment E.5 emulates application I/O "toward any available
// filesystem ... and any combination of I/O granularity" and compares
// local disks, Lustre and NFS across two machines. We have one container
// filesystem, so each paper filesystem is modelled by a VirtualFile that
// performs *real* file I/O and then sleeps the difference between the
// modelled cost (FilesystemSpec latency + bandwidth) and the time the
// real operation took. Real I/O keeps the kernel page-cache and syscall
// paths in play (so /proc/<pid>/io profiling sees genuine traffic); the
// injected delay imposes the modelled filesystem's performance.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resource/resource_spec.hpp"

namespace synapse::resource {

/// Cumulative I/O accounting for one VirtualFilesystem handle.
struct IoStats {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  double read_seconds = 0.0;   ///< modelled (wall) time spent reading
  double write_seconds = 0.0;  ///< modelled (wall) time spent writing
};

/// A file on a modelled filesystem. Not thread-safe (one handle per
/// thread, like a POSIX fd used single-threaded).
class VirtualFile {
 public:
  /// Open (create/truncate when writing) `path` under the filesystem's
  /// backing directory. Throws SystemError on failure.
  VirtualFile(const FilesystemSpec& spec, const std::string& backing_path,
              bool for_write);
  ~VirtualFile();

  VirtualFile(const VirtualFile&) = delete;
  VirtualFile& operator=(const VirtualFile&) = delete;

  /// Write `bytes` bytes (content synthesized internally) in one
  /// operation; returns the modelled cost in seconds.
  double write(uint64_t bytes);

  /// Read up to `bytes` bytes in one operation; rewinds at EOF so reads
  /// can exceed the file size (emulation replays byte *counts*, not
  /// file contents). Returns the modelled cost in seconds.
  double read(uint64_t bytes);

  /// fsync + rewind, for write-then-read patterns.
  void sync();

  const IoStats& stats() const { return stats_; }

 private:
  void pay(double modelled_cost, double actual_cost);

  FilesystemSpec spec_;
  int fd_ = -1;
  std::string path_;
  IoStats stats_;
  std::vector<char> buffer_;
};

/// A modelled filesystem instance rooted in a real directory.
class VirtualFilesystem {
 public:
  /// `spec` comes from a ResourceSpec; `root` is the backing directory
  /// (created if missing).
  VirtualFilesystem(FilesystemSpec spec, std::string root);

  const FilesystemSpec& spec() const { return spec_; }
  const std::string& root() const { return root_; }

  /// Open a file relative to the root.
  std::unique_ptr<VirtualFile> open(const std::string& name, bool for_write);

  /// Remove a file (best effort).
  void remove(const std::string& name);

  /// The filesystem `fs_name` of the active resource, backed under
  /// `base_dir` (default: $TMPDIR or /tmp).
  static VirtualFilesystem for_active_resource(const std::string& fs_name = "",
                                               std::string base_dir = "");

 private:
  FilesystemSpec spec_;
  std::string root_;
};

}  // namespace synapse::resource
