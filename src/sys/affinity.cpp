#include "sys/affinity.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

namespace synapse::sys {

void set_thread_name(const std::string& name) {
  const std::string truncated = name.substr(0, 15);
  ::pthread_setname_np(::pthread_self(), truncated.c_str());
}

bool pin_to_cpu(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
}

bool unpin() {
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  cpu_set_t set;
  CPU_ZERO(&set);
  for (long i = 0; i < n && i < CPU_SETSIZE; ++i) CPU_SET(static_cast<int>(i), &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace synapse::sys
