#pragma once
// Thread naming and CPU affinity helpers.
//
// Watcher and atom threads are named (visible in /proc/<pid>/task/*/comm)
// so that a profile of Synapse itself attributes activity correctly, and
// emulation atoms can optionally be pinned for reproducible timing.

#include <string>
#include <thread>

namespace synapse::sys {

/// Name the calling thread (truncated to 15 chars, the kernel limit).
void set_thread_name(const std::string& name);

/// Pin the calling thread to one logical CPU. Returns false when the
/// request is rejected (e.g. restricted cpuset) — callers treat pinning
/// as best-effort.
bool pin_to_cpu(int cpu);

/// Remove any pinning (allow all online CPUs). Best-effort.
bool unpin();

}  // namespace synapse::sys
