#include "sys/clock.hpp"

#include <ctime>
#include <thread>

namespace synapse::sys {

double wallclock_now() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

double steady_now() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

void sleep_for(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

std::string format_timestamp(double wallclock_seconds) {
  const std::time_t secs = static_cast<std::time_t>(wallclock_seconds);
  const int micros =
      static_cast<int>((wallclock_seconds - static_cast<double>(secs)) * 1e6);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[48];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  char out[64];
  std::snprintf(out, sizeof(out), "%s.%06dZ", buf, micros);
  return out;
}

}  // namespace synapse::sys
