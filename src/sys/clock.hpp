#pragma once
// Timing primitives used across Synapse.
//
// The profiler requires two notions of time (paper section 4.1):
//  - wall-clock timestamps, to tag profile samples (per-watcher,
//    deliberately unsynchronised across watchers), and
//  - monotonic durations, to measure Tx and to drive the sampling loop.

#include <chrono>
#include <cstdint>
#include <string>

namespace synapse::sys {

/// Seconds since the Unix epoch as a double (microsecond resolution).
/// This is the timestamp format stored inside profiles.
double wallclock_now();

/// Monotonic seconds since an arbitrary origin; use for durations only.
double steady_now();

/// Sleep for the given number of seconds (sub-millisecond capable).
/// Negative or zero durations return immediately.
void sleep_for(double seconds);

/// Simple stopwatch over the steady clock.
class Stopwatch {
 public:
  Stopwatch() : start_(steady_now()) {}

  /// Seconds elapsed since construction or last reset().
  double elapsed() const { return steady_now() - start_; }

  /// Restart the stopwatch and return the previous elapsed time.
  double reset() {
    const double e = elapsed();
    start_ = steady_now();
    return e;
  }

 private:
  double start_;
};

/// Format a wallclock timestamp as ISO-8601 (UTC), for logs and profiles.
std::string format_timestamp(double wallclock_seconds);

}  // namespace synapse::sys
