#include "sys/cpuinfo.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <mutex>

#include "sys/clock.hpp"
#include "sys/procfs.hpp"

namespace synapse::sys {

namespace {

std::optional<uint64_t> read_cache_size(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/size";
  const auto content = slurp_file(path);
  if (!content) return std::nullopt;
  uint64_t value = 0;
  char unit = 0;
  if (std::sscanf(content->c_str(), "%lu%c", &value, &unit) < 1) {
    return std::nullopt;
  }
  if (unit == 'K') value *= 1024;
  if (unit == 'M') value *= 1024 * 1024;
  return value;
}

}  // namespace

double CpuInfo::best_hz() const {
  if (calibrated_hz > 0) return calibrated_hz;
  if (nominal_hz > 0) return nominal_hz;
  return 2.5e9;
}

CpuInfo detect_cpu() {
  CpuInfo info;
  const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  info.logical_cores = n > 0 ? static_cast<int>(n) : 1;

  if (const auto content = slurp_file("/proc/cpuinfo")) {
    size_t pos = 0;
    while (pos < content->size()) {
      const size_t eol = content->find('\n', pos);
      const std::string line = content->substr(
          pos, eol == std::string::npos ? std::string::npos : eol - pos);
      if (info.model_name.empty() && line.rfind("model name", 0) == 0) {
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          info.model_name = line.substr(colon + 2);
        }
      } else if (info.nominal_hz == 0.0 && line.rfind("cpu MHz", 0) == 0) {
        const size_t colon = line.find(':');
        if (colon != std::string::npos) {
          info.nominal_hz = std::strtod(line.c_str() + colon + 1, nullptr) * 1e6;
        }
      }
      if (eol == std::string::npos) break;
      pos = eol + 1;
    }
  }

  if (const auto l1 = read_cache_size(0)) info.cache_l1d_bytes = *l1;
  if (const auto l2 = read_cache_size(2)) info.cache_l2_bytes = *l2;
  if (const auto l3 = read_cache_size(3)) info.cache_l3_bytes = *l3;
  return info;
}

double calibrate_cpu_hz(double seconds) {
  // A serially-dependent integer add chain retires one add per cycle on
  // every mainstream core. The chain must be opaque to the optimizer: a
  // plain `x += 1` loop is constant-folded to a single addition and the
  // measured "frequency" comes out in the terahertz. Inline asm pins
  // each add; the non-x86 fallback uses an LCG recurrence (about 4-5
  // cycles per step, corrected below).
  constexpr uint64_t kChunk = 20'000'000;
  uint64_t total = 0;
  volatile uint64_t sink = 1;
  double cycles_per_step = 1.0;
  const double start = steady_now();
  double elapsed = 0.0;
  do {
    uint64_t x = sink;
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
    for (uint64_t i = 0; i < kChunk; i += 8) {
#if defined(__aarch64__)
      asm volatile(
          "add %0, %0, #1\n add %0, %0, #1\n add %0, %0, #1\n"
          "add %0, %0, #1\n add %0, %0, #1\n add %0, %0, #1\n"
          "add %0, %0, #1\n add %0, %0, #1\n"
          : "+r"(x));
#else
      asm volatile(
          "add $1, %0\n add $1, %0\n add $1, %0\n add $1, %0\n"
          "add $1, %0\n add $1, %0\n add $1, %0\n add $1, %0\n"
          : "+r"(x));
#endif
    }
#else
    // Multiply-add recurrence: not foldable, ~4.5 cycles/step on
    // current cores (multiply latency dominates).
    cycles_per_step = 4.5;
    for (uint64_t i = 0; i < kChunk; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
#endif
    sink = x;
    total += kChunk;
    elapsed = steady_now() - start;
  } while (elapsed < seconds);
  return elapsed > 0
             ? static_cast<double>(total) * cycles_per_step / elapsed
             : 0.0;
}

const CpuInfo& cpu_info() {
  static CpuInfo cached = [] {
    CpuInfo info = detect_cpu();
    info.calibrated_hz = calibrate_cpu_hz();
    return info;
  }();
  return cached;
}

}  // namespace synapse::sys
