#pragma once
// CPU discovery: core count, model name, nominal frequency.
//
// The paper derives cyclesmax (for the CPU-utilization metric) from the
// CPU architecture and clock speed (section 4.3). /proc/cpuinfo inside
// containers often reports the host's current (scaled) frequency or none
// at all, so we also provide a calibrated estimate measured from a tight
// dependency chain of known length.

#include <cstdint>
#include <string>

namespace synapse::sys {

struct CpuInfo {
  int logical_cores = 1;
  std::string model_name;
  double nominal_hz = 0.0;    ///< from /proc/cpuinfo "cpu MHz" (may be 0)
  double calibrated_hz = 0.0; ///< measured, see calibrate_cpu_hz()
  uint64_t cache_l1d_bytes = 32 * 1024;
  uint64_t cache_l2_bytes = 256 * 1024;
  uint64_t cache_l3_bytes = 8 * 1024 * 1024;

  /// Best available frequency estimate: calibrated if present, else
  /// nominal, else a conservative 2.5 GHz default.
  double best_hz() const;
};

/// Parse /proc/cpuinfo and sysfs cache sizes; never throws — missing
/// fields keep their defaults.
CpuInfo detect_cpu();

/// Measure effective clock frequency by timing a dependency chain whose
/// per-iteration latency is one cycle on all modern x86/ARM cores.
/// `seconds` bounds the measurement time.
double calibrate_cpu_hz(double seconds = 0.05);

/// Cached singleton of detect_cpu() + one calibration, computed on first
/// use (thread-safe).
const CpuInfo& cpu_info();

}  // namespace synapse::sys
