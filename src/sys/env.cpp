#include "sys/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "sys/error.hpp"

namespace synapse::sys {

std::optional<std::string> getenv_str(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::optional<double> getenv_double(const std::string& name) {
  const auto s = getenv_str(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<long> getenv_long(const std::string& name) {
  const auto s = getenv_str(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::string getenv_or(const std::string& name, const std::string& dflt) {
  return getenv_str(name).value_or(dflt);
}

double getenv_or(const std::string& name, double dflt) {
  return getenv_double(name).value_or(dflt);
}

long getenv_or(const std::string& name, long dflt) {
  return getenv_long(name).value_or(dflt);
}

void setenv_str(const std::string& name, const std::string& value) {
  if (::setenv(name.c_str(), value.c_str(), /*overwrite=*/1) != 0) {
    throw SystemError("setenv(" + name + ")", errno);
  }
}

void unsetenv_str(const std::string& name) { ::unsetenv(name.c_str()); }

}  // namespace synapse::sys
