#pragma once
// Typed environment-variable access.
//
// The virtual-resource layer (src/resource) communicates the active
// ResourceSpec to child processes through SYNAPSE_VR_* variables; the
// helpers here are the single parsing point for those.

#include <optional>
#include <string>

namespace synapse::sys {

/// Raw lookup; nullopt when unset.
std::optional<std::string> getenv_str(const std::string& name);

/// Parse as double; nullopt when unset or unparseable.
std::optional<double> getenv_double(const std::string& name);

/// Parse as long; nullopt when unset or unparseable.
std::optional<long> getenv_long(const std::string& name);

/// Lookup with default.
std::string getenv_or(const std::string& name, const std::string& dflt);
double getenv_or(const std::string& name, double dflt);
long getenv_or(const std::string& name, long dflt);

/// setenv wrapper (overwrites). Throws SystemError on failure.
void setenv_str(const std::string& name, const std::string& value);

/// unsetenv wrapper.
void unsetenv_str(const std::string& name);

}  // namespace synapse::sys
