#include "sys/error.hpp"

#include <cstring>

namespace synapse::sys {

std::string errno_message(const std::string& op, int err) {
  char buf[256];
  // GNU strerror_r returns a char*; it may or may not use buf.
  const char* msg = strerror_r(err, buf, sizeof(buf));
  return op + ": " + msg + " (errno " + std::to_string(err) + ")";
}

SystemError::SystemError(const std::string& op, int err)
    : SynapseError(errno_message(op, err)), code_(err) {}

}  // namespace synapse::sys
