#pragma once
// Error handling for Synapse.
//
// Policy (C++ Core Guidelines E.2/E.14): throw SynapseError for conditions
// a caller cannot reasonably continue from (bad configuration, missing
// profile, exec failure); return std::optional / status enums for expected
// runtime conditions (counter backend unavailable, sample race with a
// process that just exited).

#include <stdexcept>
#include <string>

namespace synapse::sys {

/// Base exception for all Synapse errors.
class SynapseError : public std::runtime_error {
 public:
  explicit SynapseError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a system call fails unexpectedly; carries errno text.
class SystemError : public SynapseError {
 public:
  SystemError(const std::string& op, int err);
  int code() const { return code_; }

 private:
  int code_;
};

/// Raised for invalid user-supplied configuration.
class ConfigError : public SynapseError {
 public:
  explicit ConfigError(const std::string& what) : SynapseError(what) {}
};

/// Raised when a requested profile cannot be found in the store.
class ProfileNotFound : public SynapseError {
 public:
  explicit ProfileNotFound(const std::string& what) : SynapseError(what) {}
};

/// Build "op: strerror(err)" without throwing.
std::string errno_message(const std::string& op, int err);

}  // namespace synapse::sys
