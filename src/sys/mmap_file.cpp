#include "sys/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace synapse::sys {

std::shared_ptr<MappedBlob> MappedBlob::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;

  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return nullptr;
  }

  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return nullptr;
    }
  }
  // The mapping pins the pages; the descriptor is no longer needed.
  ::close(fd);
  return std::shared_ptr<MappedBlob>(new MappedBlob(addr, size));
}

MappedBlob::~MappedBlob() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace synapse::sys
