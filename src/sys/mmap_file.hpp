#pragma once
// Shared immutable byte buffers, including mmap-backed ones.
//
// Profile::from_binary_view() decodes SYNB blobs straight out of a
// Blob, and the files store backend maps .profile.synb files instead
// of copying them through a std::string — the columnar decode views
// (binary_codec.hpp) then read directly from the page cache with zero
// copies. Blobs are reference counted (held by shared_ptr), so a
// decoded Profile keeps its mapping alive for as long as the columnar
// fast path may touch it — including past an unlink() of the file
// (POSIX keeps mapped pages until the last munmap).
//
// Mapping a file that a writer later TRUNCATES would raise SIGBUS on
// access; the store's profile files are immutable once link()-claimed
// (only ever unlinked, never rewritten), which is what makes mmap safe
// there. Other callers must provide the same guarantee or use a
// StringBlob.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace synapse::sys {

/// An immutable byte buffer with shared ownership.
class Blob {
 public:
  virtual ~Blob() = default;
  virtual std::string_view view() const = 0;
};

/// Blob over heap bytes (the buffered fallback).
class StringBlob final : public Blob {
 public:
  explicit StringBlob(std::string data) : data_(std::move(data)) {}
  std::string_view view() const override { return data_; }

 private:
  std::string data_;
};

/// Read-only private mapping of one whole file.
class MappedBlob final : public Blob {
 public:
  /// nullptr when the file cannot be opened, stat-ed or mapped (ENOENT
  /// from a racing unlink, mmap-less filesystems, ...) — callers fall
  /// back to a buffered read. Empty files yield an empty view.
  static std::shared_ptr<MappedBlob> map(const std::string& path);

  ~MappedBlob() override;
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  std::string_view view() const override {
    return std::string_view(static_cast<const char*>(addr_), size_);
  }

 private:
  MappedBlob(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_;  ///< nullptr for empty files (nothing mapped)
  size_t size_;
};

}  // namespace synapse::sys
