#include "sys/perfcounters.hpp"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sys/cpuinfo.hpp"
#include "sys/procfs.hpp"

namespace synapse::sys {

namespace {

int perf_event_open(struct perf_event_attr* attr, pid_t pid, int cpu,
                    int group_fd, unsigned long flags) {
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_counter(pid_t pid, uint32_t type, uint64_t config) {
  struct perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.inherit = 1;  // follow child threads, like `perf stat -i`
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return perf_event_open(&attr, pid, -1, -1, 0);
}

std::optional<uint64_t> read_counter(int fd) {
  if (fd < 0) return std::nullopt;
  uint64_t value = 0;
  const ssize_t n = ::read(fd, &value, sizeof(value));
  if (n != static_cast<ssize_t>(sizeof(value))) return std::nullopt;
  return value;
}

}  // namespace

bool perf_event_available() {
  static const bool available = [] {
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_SOFTWARE;
    attr.size = sizeof(attr);
    attr.config = PERF_COUNT_SW_TASK_CLOCK;
    const int fd = perf_event_open(&attr, 0, -1, -1, 0);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    return false;
  }();
  return available;
}

std::unique_ptr<PerfEventBackend> PerfEventBackend::attach(pid_t pid) {
  if (!perf_event_available()) return nullptr;
  auto backend = std::unique_ptr<PerfEventBackend>(new PerfEventBackend());
  backend->fd_cycles_ =
      open_counter(pid, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  backend->fd_instructions_ =
      open_counter(pid, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  backend->fd_stalled_fe_ = open_counter(
      pid, PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND);
  backend->fd_stalled_be_ = open_counter(
      pid, PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND);
  backend->fd_task_clock_ =
      open_counter(pid, PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
  // The cycle counter is the minimum viable configuration.
  if (backend->fd_cycles_ < 0) return nullptr;
  return backend;
}

PerfEventBackend::~PerfEventBackend() {
  for (int fd : {fd_cycles_, fd_instructions_, fd_stalled_fe_, fd_stalled_be_,
                 fd_task_clock_}) {
    if (fd >= 0) ::close(fd);
  }
}

std::optional<CounterSnapshot> PerfEventBackend::read() {
  const auto cycles = read_counter(fd_cycles_);
  if (!cycles) return std::nullopt;
  CounterSnapshot snap;
  snap.cycles = *cycles;
  snap.instructions = read_counter(fd_instructions_).value_or(0);
  snap.stalled_frontend = read_counter(fd_stalled_fe_).value_or(0);
  snap.stalled_backend = read_counter(fd_stalled_be_).value_or(0);
  if (const auto tc = read_counter(fd_task_clock_)) {
    snap.task_clock_seconds = static_cast<double>(*tc) * 1e-9;
  }
  snap.modeled = false;
  return snap;
}

TimeModelBackend::TimeModelBackend(pid_t pid, double frequency_hz,
                                   double ipc_estimate, double stall_fraction)
    : pid_(pid),
      frequency_hz_(frequency_hz),
      ipc_estimate_(ipc_estimate),
      stall_fraction_(stall_fraction) {}

std::optional<CounterSnapshot> TimeModelBackend::read() {
  const auto stat = read_proc_stat(pid_);
  if (!stat) return std::nullopt;
  const double cpu_s = stat->cpu_seconds();
  CounterSnapshot snap;
  snap.task_clock_seconds = cpu_s;
  snap.cycles = static_cast<uint64_t>(cpu_s * frequency_hz_);
  snap.instructions = static_cast<uint64_t>(
      static_cast<double>(snap.cycles) * ipc_estimate_);
  const double stalls = static_cast<double>(snap.cycles) * stall_fraction_;
  snap.stalled_frontend = static_cast<uint64_t>(stalls / 3.0);
  snap.stalled_backend = static_cast<uint64_t>(stalls * 2.0 / 3.0);
  snap.modeled = true;
  return snap;
}

std::unique_ptr<CounterBackend> make_counter_backend(pid_t pid) {
  if (auto perf = PerfEventBackend::attach(pid)) return perf;
  return std::make_unique<TimeModelBackend>(pid, cpu_info().best_hz());
}

}  // namespace synapse::sys
