#pragma once
// CPU counter backends.
//
// The original Synapse shells out to `perf stat` for cycles, instructions
// and stall counts. We implement the same data source natively through
// perf_event_open(2) — and, because many containers (including the one
// this reproduction was developed in) block that syscall entirely via
// seccomp, a documented fallback chain:
//
//   1. PerfEventBackend   — real hardware counters, used when available.
//   2. TimeModelBackend   — cycles modelled as task-clock x frequency
//                           (accurate for CPU-bound code); instructions
//                           modelled with a configurable IPC estimate.
//
// A third source, the cooperative analytic trace produced by Synapse's
// own kernels and synthetic applications, lives in
// watchers/trace_watcher.hpp; see DESIGN.md section 1.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <sys/types.h>

namespace synapse::sys {

/// One snapshot of cumulative CPU counters for an observed process.
struct CounterSnapshot {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t stalled_frontend = 0;
  uint64_t stalled_backend = 0;
  double task_clock_seconds = 0.0;
  bool modeled = false;  ///< true when values come from the time model
};

/// Abstract source of CPU counters for a given pid.
class CounterBackend {
 public:
  virtual ~CounterBackend() = default;

  /// Human-readable backend name ("perf_event", "time_model").
  virtual std::string name() const = 0;

  /// Read cumulative counters; nullopt when the process is gone or the
  /// backend lost access.
  virtual std::optional<CounterSnapshot> read() = 0;
};

/// Probe whether perf_event_open works in this environment (cached).
bool perf_event_available();

/// Hardware-counter backend. attach() returns nullptr when the syscall
/// is unavailable or attaching to `pid` is not permitted.
class PerfEventBackend final : public CounterBackend {
 public:
  static std::unique_ptr<PerfEventBackend> attach(pid_t pid);
  ~PerfEventBackend() override;

  std::string name() const override { return "perf_event"; }
  std::optional<CounterSnapshot> read() override;

 private:
  PerfEventBackend() = default;
  int fd_cycles_ = -1;
  int fd_instructions_ = -1;
  int fd_stalled_fe_ = -1;
  int fd_stalled_be_ = -1;
  int fd_task_clock_ = -1;
};

/// Fallback backend deriving counters from /proc/<pid>/stat CPU time.
///
/// cycles       = cpu_seconds x frequency_hz
/// instructions = cycles x ipc_estimate
/// stalls       = cycles x stall_fraction (split 1/3 frontend, 2/3 backend,
///                matching typical perf-stat ratios for compute codes)
class TimeModelBackend final : public CounterBackend {
 public:
  TimeModelBackend(pid_t pid, double frequency_hz, double ipc_estimate = 1.5,
                   double stall_fraction = 0.25);

  std::string name() const override { return "time_model"; }
  std::optional<CounterSnapshot> read() override;

  double frequency_hz() const { return frequency_hz_; }
  double ipc_estimate() const { return ipc_estimate_; }

 private:
  pid_t pid_;
  double frequency_hz_;
  double ipc_estimate_;
  double stall_fraction_;
};

/// Best available backend for `pid`: perf_event when it works, otherwise
/// the time model with the machine's calibrated frequency.
std::unique_ptr<CounterBackend> make_counter_backend(pid_t pid);

}  // namespace synapse::sys
