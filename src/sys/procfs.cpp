#include "sys/procfs.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace synapse::sys {

namespace {

/// Parse "Key:   12345 kB" style lines from /proc status-like files.
/// Returns value in bytes when the unit is kB, raw value otherwise.
std::optional<uint64_t> parse_kv_line(const std::string& content,
                                      const std::string& key) {
  const std::string needle = key + ":";
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t eol = content.find('\n', pos);
    const std::string line = content.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (line.rfind(needle, 0) == 0) {
      uint64_t value = 0;
      char unit[16] = {0};
      const int n = std::sscanf(line.c_str() + needle.size(), "%" SCNu64 " %15s",
                                &value, unit);
      if (n >= 1) {
        if (n == 2 && std::strcmp(unit, "kB") == 0) value *= 1024;
        return value;
      }
      return std::nullopt;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return std::nullopt;
}

}  // namespace

long ticks_per_second() {
  static const long t = ::sysconf(_SC_CLK_TCK);
  return t > 0 ? t : 100;
}

long page_size() {
  static const long p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? p : 4096;
}

double ProcStat::cpu_seconds() const {
  return static_cast<double>(utime_ticks + stime_ticks) /
         static_cast<double>(ticks_per_second());
}

std::optional<std::string> slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return ss.str();
}

std::optional<ProcStat> read_proc_stat(pid_t pid) {
  const auto content = slurp_file("/proc/" + std::to_string(pid) + "/stat");
  if (!content) return std::nullopt;

  // comm may contain spaces/parens; locate the *last* ')' to split safely.
  const size_t open = content->find('(');
  const size_t close = content->rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return std::nullopt;
  }

  ProcStat st;
  st.pid = static_cast<pid_t>(std::strtol(content->c_str(), nullptr, 10));
  st.comm = content->substr(open + 1, close - open - 1);

  // Fields after ')' start at index 3 (state). See proc(5).
  std::istringstream rest(content->substr(close + 2));
  std::string state;
  // 3:state 4:ppid 5:pgrp 6:session 7:tty 8:tpgid 9:flags
  // 10:minflt 11:cminflt 12:majflt 13:cmajflt 14:utime 15:stime
  // 16:cutime 17:cstime 18:priority 19:nice 20:num_threads
  // 21:itrealvalue 22:starttime 23:vsize 24:rss
  uint64_t skip_u;
  int64_t skip_i;
  rest >> state;
  if (!state.empty()) st.state = state[0];
  for (int i = 0; i < 6; ++i) rest >> skip_i;  // ppid..flags
  for (int i = 0; i < 4; ++i) rest >> skip_u;  // faults
  rest >> st.utime_ticks >> st.stime_ticks;
  rest >> skip_i >> skip_i;  // cutime, cstime
  rest >> skip_i >> skip_i;  // priority, nice
  rest >> st.num_threads;
  rest >> skip_i;  // itrealvalue
  rest >> st.starttime_ticks;
  rest >> st.vsize_bytes;
  rest >> st.rss_pages;
  if (!rest) return std::nullopt;
  return st;
}

std::optional<ProcStatus> read_proc_status(pid_t pid) {
  const auto content = slurp_file("/proc/" + std::to_string(pid) + "/status");
  if (!content) return std::nullopt;
  ProcStatus s;
  s.vm_peak_bytes = parse_kv_line(*content, "VmPeak").value_or(0);
  s.vm_size_bytes = parse_kv_line(*content, "VmSize").value_or(0);
  s.vm_hwm_bytes = parse_kv_line(*content, "VmHWM").value_or(0);
  s.vm_rss_bytes = parse_kv_line(*content, "VmRSS").value_or(0);
  s.threads = parse_kv_line(*content, "Threads").value_or(0);
  return s;
}

std::optional<ProcIo> read_proc_io(pid_t pid) {
  const auto content = slurp_file("/proc/" + std::to_string(pid) + "/io");
  if (!content) return std::nullopt;
  ProcIo io;
  io.rchar = parse_kv_line(*content, "rchar").value_or(0);
  io.wchar = parse_kv_line(*content, "wchar").value_or(0);
  io.syscr = parse_kv_line(*content, "syscr").value_or(0);
  io.syscw = parse_kv_line(*content, "syscw").value_or(0);
  io.read_bytes = parse_kv_line(*content, "read_bytes").value_or(0);
  io.write_bytes = parse_kv_line(*content, "write_bytes").value_or(0);
  return io;
}

std::optional<ProcStatm> read_proc_statm(pid_t pid) {
  const auto content = slurp_file("/proc/" + std::to_string(pid) + "/statm");
  if (!content) return std::nullopt;
  uint64_t size_pages = 0, resident_pages = 0, shared_pages = 0;
  if (std::sscanf(content->c_str(), "%" SCNu64 " %" SCNu64 " %" SCNu64,
                  &size_pages, &resident_pages, &shared_pages) != 3) {
    return std::nullopt;
  }
  const uint64_t psz = static_cast<uint64_t>(page_size());
  return ProcStatm{size_pages * psz, resident_pages * psz, shared_pages * psz};
}

std::optional<LoadAvg> read_loadavg() {
  const auto content = slurp_file("/proc/loadavg");
  if (!content) return std::nullopt;
  LoadAvg la;
  uint64_t runnable = 0, total = 0;
  if (std::sscanf(content->c_str(), "%lf %lf %lf %" SCNu64 "/%" SCNu64,
                  &la.load1, &la.load5, &la.load15, &runnable, &total) < 3) {
    return std::nullopt;
  }
  la.runnable = runnable;
  la.total_procs = total;
  return la;
}

std::optional<MemInfo> read_meminfo() {
  const auto content = slurp_file("/proc/meminfo");
  if (!content) return std::nullopt;
  MemInfo mi;
  mi.total_bytes = parse_kv_line(*content, "MemTotal").value_or(0);
  mi.free_bytes = parse_kv_line(*content, "MemFree").value_or(0);
  mi.available_bytes = parse_kv_line(*content, "MemAvailable").value_or(0);
  mi.cached_bytes = parse_kv_line(*content, "Cached").value_or(0);
  return mi;
}

bool pid_exists(pid_t pid) {
  return ::access(("/proc/" + std::to_string(pid)).c_str(), F_OK) == 0;
}

}  // namespace synapse::sys
