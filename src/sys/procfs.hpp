#pragma once
// Readers for the /proc filesystem.
//
// These are the primary data sources of the Synapse profiler (paper
// section 4.1): per-process CPU time, memory and disk-I/O counters, plus
// system-wide information (loadavg, meminfo). Every reader returns
// std::optional because the observed process can exit between samples —
// a routine race, not an error.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace synapse::sys {

/// Subset of /proc/<pid>/stat relevant to profiling.
struct ProcStat {
  pid_t pid = 0;
  std::string comm;       ///< executable name (without parentheses)
  char state = '?';       ///< R, S, D, Z, ...
  uint64_t utime_ticks = 0;   ///< user-mode CPU time, in clock ticks
  uint64_t stime_ticks = 0;   ///< kernel-mode CPU time, in clock ticks
  uint64_t num_threads = 0;
  uint64_t starttime_ticks = 0;  ///< process start, ticks after boot
  uint64_t vsize_bytes = 0;
  int64_t rss_pages = 0;

  /// user+system CPU seconds, using the system tick rate.
  double cpu_seconds() const;
};

/// Subset of /proc/<pid>/status (memory + thread info).
struct ProcStatus {
  uint64_t vm_peak_bytes = 0;  ///< VmPeak
  uint64_t vm_size_bytes = 0;  ///< VmSize
  uint64_t vm_hwm_bytes = 0;   ///< VmHWM (peak resident set)
  uint64_t vm_rss_bytes = 0;   ///< VmRSS
  uint64_t threads = 0;
};

/// /proc/<pid>/io counters.
struct ProcIo {
  uint64_t rchar = 0;        ///< bytes read via syscalls (incl. cache hits)
  uint64_t wchar = 0;        ///< bytes written via syscalls
  uint64_t syscr = 0;        ///< count of read syscalls
  uint64_t syscw = 0;        ///< count of write syscalls
  uint64_t read_bytes = 0;   ///< bytes actually fetched from storage
  uint64_t write_bytes = 0;  ///< bytes actually sent to storage
};

/// /proc/<pid>/statm, in bytes (converted from pages).
struct ProcStatm {
  uint64_t size_bytes = 0;
  uint64_t resident_bytes = 0;
  uint64_t shared_bytes = 0;
};

/// /proc/loadavg.
struct LoadAvg {
  double load1 = 0.0;
  double load5 = 0.0;
  double load15 = 0.0;
  uint64_t runnable = 0;
  uint64_t total_procs = 0;
};

/// /proc/meminfo subset.
struct MemInfo {
  uint64_t total_bytes = 0;
  uint64_t free_bytes = 0;
  uint64_t available_bytes = 0;
  uint64_t cached_bytes = 0;
};

std::optional<ProcStat> read_proc_stat(pid_t pid);
std::optional<ProcStatus> read_proc_status(pid_t pid);
std::optional<ProcIo> read_proc_io(pid_t pid);
std::optional<ProcStatm> read_proc_statm(pid_t pid);
std::optional<LoadAvg> read_loadavg();
std::optional<MemInfo> read_meminfo();

/// Whether /proc/<pid> still exists (process alive or zombie).
bool pid_exists(pid_t pid);

/// Clock ticks per second (sysconf(_SC_CLK_TCK)).
long ticks_per_second();

/// System page size in bytes.
long page_size();

/// Read a whole (small) file; nullopt when it cannot be opened.
std::optional<std::string> slurp_file(const std::string& path);

}  // namespace synapse::sys
