#include "sys/rusage.hpp"

#include <cerrno>

#include "sys/error.hpp"

namespace synapse::sys {

namespace {
double tv_to_seconds(const struct timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}
}  // namespace

ResourceUsage from_rusage(const struct rusage& ru) {
  ResourceUsage u;
  u.user_seconds = tv_to_seconds(ru.ru_utime);
  u.system_seconds = tv_to_seconds(ru.ru_stime);
  u.max_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
  u.minor_faults = static_cast<uint64_t>(ru.ru_minflt);
  u.major_faults = static_cast<uint64_t>(ru.ru_majflt);
  u.in_blocks = static_cast<uint64_t>(ru.ru_inblock);
  u.out_blocks = static_cast<uint64_t>(ru.ru_oublock);
  u.vol_ctx_switches = static_cast<uint64_t>(ru.ru_nvcsw);
  u.invol_ctx_switches = static_cast<uint64_t>(ru.ru_nivcsw);
  return u;
}

ResourceUsage rusage_self() {
  struct rusage ru {};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) {
    throw SystemError("getrusage(RUSAGE_SELF)", errno);
  }
  return from_rusage(ru);
}

ResourceUsage rusage_thread() {
  struct rusage ru {};
  if (::getrusage(RUSAGE_THREAD, &ru) != 0) {
    throw SystemError("getrusage(RUSAGE_THREAD)", errno);
  }
  return from_rusage(ru);
}

}  // namespace synapse::sys
