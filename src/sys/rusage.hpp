#pragma once
// POSIX rusage access.
//
// The paper wraps profiled processes in `time -v` to correct for the
// short gap between spawn and first watcher sample; we obtain the same
// information natively from wait4(2) in the spawner, and expose
// getrusage() for self-measurement.

#include <cstdint>

#include <sys/resource.h>

namespace synapse::sys {

/// Normalized rusage snapshot.
struct ResourceUsage {
  double user_seconds = 0.0;
  double system_seconds = 0.0;
  uint64_t max_rss_bytes = 0;   ///< peak resident set size
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t in_blocks = 0;       ///< filesystem input blocks
  uint64_t out_blocks = 0;      ///< filesystem output blocks
  uint64_t vol_ctx_switches = 0;
  uint64_t invol_ctx_switches = 0;

  double cpu_seconds() const { return user_seconds + system_seconds; }
};

/// Convert a raw struct rusage (ru_maxrss is in KiB on Linux).
ResourceUsage from_rusage(const struct rusage& ru);

/// getrusage(RUSAGE_SELF) for the calling process.
ResourceUsage rusage_self();

/// getrusage(RUSAGE_THREAD) for the calling thread.
ResourceUsage rusage_thread();

}  // namespace synapse::sys
