#include "sys/spawn.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse::sys {

std::vector<std::string> split_command(const std::string& command) {
  std::vector<std::string> argv;
  std::string current;
  bool in_word = false;
  char quote = 0;
  for (size_t i = 0; i < command.size(); ++i) {
    const char c = command[i];
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else if (c == '\\' && quote == '"' && i + 1 < command.size()) {
        current += command[++i];
      } else {
        current += c;
      }
    } else if (c == '\'' || c == '"') {
      quote = c;
      in_word = true;
    } else if (c == '\\' && i + 1 < command.size()) {
      current += command[++i];
      in_word = true;
    } else if (c == ' ' || c == '\t' || c == '\n') {
      if (in_word) {
        argv.push_back(current);
        current.clear();
        in_word = false;
      }
    } else {
      current += c;
      in_word = true;
    }
  }
  if (in_word) argv.push_back(current);
  return argv;
}

namespace {

void redirect_to(int target_fd, const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, target_fd);
    ::close(fd);
  }
}

[[noreturn]] void child_exec(const std::vector<std::string>& argv,
                             const SpawnOptions& opts) {
  for (const auto& kv : opts.extra_env) {
    const size_t eq = kv.find('=');
    if (eq != std::string::npos) {
      ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
    }
  }
  if (!opts.chdir.empty()) {
    if (::chdir(opts.chdir.c_str()) != 0) ::_exit(127);
  }
  if (!opts.stdout_path.empty()) redirect_to(STDOUT_FILENO, opts.stdout_path);
  if (!opts.stderr_path.empty()) redirect_to(STDERR_FILENO, opts.stderr_path);

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  ::execvp(cargv[0], cargv.data());
  ::_exit(127);
}

ExitStatus make_status(int wstatus, const struct rusage& ru,
                       double wall_seconds) {
  ExitStatus st;
  st.usage = from_rusage(ru);
  st.wall_seconds = wall_seconds;
  if (WIFEXITED(wstatus)) {
    st.exited_normally = true;
    st.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    st.term_signal = WTERMSIG(wstatus);
  }
  return st;
}

}  // namespace

ChildProcess ChildProcess::spawn(const std::vector<std::string>& argv,
                                 const SpawnOptions& opts) {
  if (argv.empty()) throw ConfigError("spawn: empty argv");
  const double start = steady_now();
  const pid_t pid = ::fork();
  if (pid < 0) throw SystemError("fork", errno);
  if (pid == 0) child_exec(argv, opts);
  return ChildProcess(pid, start);
}

ChildProcess ChildProcess::fork_function(const std::function<int()>& fn) {
  const double start = steady_now();
  const pid_t pid = ::fork();
  if (pid < 0) throw SystemError("fork", errno);
  if (pid == 0) {
    int rc = 1;
    try {
      rc = fn();
    } catch (...) {
      rc = 111;
    }
    ::_exit(rc);
  }
  return ChildProcess(pid, start);
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(other.pid_),
      start_time_(other.start_time_),
      status_(std::move(other.status_)) {
  other.pid_ = -1;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !status_) {
      kill(SIGKILL);
      wait();
    }
    pid_ = other.pid_;
    start_time_ = other.start_time_;
    status_ = std::move(other.status_);
    other.pid_ = -1;
  }
  return *this;
}

ChildProcess::~ChildProcess() {
  if (pid_ > 0 && !status_) {
    kill(SIGKILL);
    try {
      wait();
    } catch (...) {
      // Destructor must not throw; the child is already signalled.
    }
  }
}

bool ChildProcess::running() const {
  if (pid_ <= 0 || status_) return false;
  return ::kill(pid_, 0) == 0;
}

const ExitStatus& ChildProcess::wait() {
  if (status_) return *status_;
  int wstatus = 0;
  struct rusage ru {};
  pid_t rc;
  do {
    rc = ::wait4(pid_, &wstatus, 0, &ru);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) throw SystemError("wait4", errno);
  status_ = make_status(wstatus, ru, steady_now() - start_time_);
  return *status_;
}

std::optional<ExitStatus> ChildProcess::try_wait() {
  if (status_) return status_;
  int wstatus = 0;
  struct rusage ru {};
  const pid_t rc = ::wait4(pid_, &wstatus, WNOHANG, &ru);
  if (rc == 0) return std::nullopt;
  if (rc < 0) {
    if (errno == EINTR) return std::nullopt;
    throw SystemError("wait4", errno);
  }
  status_ = make_status(wstatus, ru, steady_now() - start_time_);
  return status_;
}

void ChildProcess::kill(int signal) {
  if (pid_ > 0 && !status_) ::kill(pid_, signal);
}

ExitStatus run_command(const std::vector<std::string>& argv,
                       const SpawnOptions& opts) {
  ChildProcess child = ChildProcess::spawn(argv, opts);
  return child.wait();
}

}  // namespace synapse::sys
