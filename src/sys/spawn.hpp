#pragma once
// Child-process management for the profiler and the multi-process
// emulation mode.
//
// The paper wraps the profiled application in `time -v` to recover the
// exact resource usage despite the small delay before the first watcher
// sample. We achieve the same with wait4(2): the kernel accumulates the
// child's rusage from the very first instruction, independent of when
// sampling starts.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "sys/rusage.hpp"

namespace synapse::sys {

/// Split a simple shell-like command line into argv. Supports single and
/// double quotes and backslash escapes; no variable expansion or
/// redirection (use an explicit argv for anything fancier).
std::vector<std::string> split_command(const std::string& command);

/// Result of a completed child process.
struct ExitStatus {
  int exit_code = -1;          ///< valid when exited normally
  int term_signal = 0;         ///< non-zero when killed by a signal
  bool exited_normally = false;
  ResourceUsage usage;         ///< rusage accumulated by the kernel
  double wall_seconds = 0.0;   ///< spawn-to-reap wall time (Tx)

  bool success() const { return exited_normally && exit_code == 0; }
};

/// Options controlling spawn behaviour.
struct SpawnOptions {
  /// Extra environment variables for the child (NAME=VALUE), appended to
  /// the inherited environment. Used by the virtual-resource layer.
  std::vector<std::string> extra_env;
  /// Redirect child stdout/stderr to this file ("" keeps parent's).
  std::string stdout_path;
  std::string stderr_path;
  /// Working directory for the child ("" keeps parent's).
  std::string chdir;
};

/// A spawned child process. Movable, not copyable. The destructor kills
/// (SIGKILL) and reaps a still-running child — a Synapse object never
/// leaks a process.
class ChildProcess {
 public:
  /// Spawn argv[0] with the given arguments via fork+execvp.
  /// Throws ConfigError for an empty argv and SystemError on fork failure;
  /// exec failure surfaces as exit code 127.
  static ChildProcess spawn(const std::vector<std::string>& argv,
                            const SpawnOptions& opts = {});

  /// Fork and run `fn` in the child; the child exits with fn's return
  /// value. Used by the fork-based parallel emulation mode.
  static ChildProcess fork_function(const std::function<int()>& fn);

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ~ChildProcess();

  pid_t pid() const { return pid_; }
  bool running() const;

  /// Block until the child exits; returns the exit status with rusage.
  /// Idempotent: a second call returns the cached status.
  const ExitStatus& wait();

  /// Non-blocking reap. Returns the status if the child has exited.
  std::optional<ExitStatus> try_wait();

  /// Send a signal (default SIGTERM). No-op after the child was reaped.
  void kill(int signal = 15);

 private:
  ChildProcess(pid_t pid, double start_time)
      : pid_(pid), start_time_(start_time) {}

  pid_t pid_ = -1;
  double start_time_ = 0.0;
  std::optional<ExitStatus> status_;
};

/// Convenience: spawn, wait, return status.
ExitStatus run_command(const std::vector<std::string>& argv,
                       const SpawnOptions& opts = {});

}  // namespace synapse::sys
