#include "sys/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "sys/env.hpp"

namespace synapse::sys {

size_t TaskPool::default_thread_count() {
  const long env = getenv_or("SYNAPSE_TASK_POOL_THREADS", 0L);
  if (env >= 1) return static_cast<size_t>(env);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

TaskPool::TaskPool(size_t threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the queue before honouring stop (worker_loop), so
  // every submitted task's future resolves.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool TaskPool::started() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return started_;
}

void TaskPool::ensure_started_locked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(threads_);
  for (size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained
    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();  // packaged_task routes exceptions into the future
    lock.lock();
  }
}

std::future<void> TaskPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_started_locked();
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

namespace {

/// Shared between the caller and its helper tasks; helpers submitted
/// to a busy pool may start (and find no index left) after the caller
/// already returned, so everything they touch lives here.
struct ParallelState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t count = 0;
  const std::function<void(size_t)>* body = nullptr;
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;

  void run() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        // Lock before notifying so the caller's predicate check cannot
        // slip between our increment and the notify.
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void TaskPool::parallel_for(size_t count,
                            const std::function<void(size_t)>& body) {
  if (count == 0) return;
  const size_t helpers = std::min(threads_, count) - 1;
  if (helpers == 0) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto state = std::make_shared<ParallelState>();
  state->count = count;
  state->body = &body;
  for (size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget: completion is tracked by state->done, and a
    // helper that never grabs an index exits immediately. The caller
    // participating below is what makes nested calls deadlock-free.
    submit([state] { state->run(); });
  }
  state->run();
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] { return state->done.load() == count; });
  }
  // `body` (and any reference the caller captured) may die on return:
  // done == count guarantees no helper will dereference it again —
  // stragglers only ever see next >= count.
  if (state->error) std::rethrow_exception(state->error);
}

TaskPool& TaskPool::shared() {
  static TaskPool pool(default_thread_count());
  return pool;
}

}  // namespace synapse::sys
