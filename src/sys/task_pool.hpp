#pragma once
// TaskPool: a fixed-size, lazily-started work-queue thread pool.
//
// The store tier's cross-shard operations (ProfileStore put_many /
// list / convert_all / flush) fan one task per shard onto a pool like
// this one instead of walking shards serially; the pool is deliberately
// generic so the concurrent-scenario fan-out and the remote daemon can
// share it. Threads are not spawned until the first task is submitted
// (a pool member costs nothing for callers that never go parallel),
// and destruction drains the queue gracefully: every task already
// submitted runs to completion before the workers join.
//
// parallel_for never deadlocks on pool exhaustion: the calling thread
// participates in the loop body, so nested parallel_for calls (a pool
// task fanning out again) degrade to the caller executing its own
// indices when no worker is free.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace synapse::sys {

class TaskPool {
 public:
  /// `threads` = 0 picks default_thread_count(). The pool is lazy: no
  /// thread exists until the first submit()/parallel_for().
  explicit TaskPool(size_t threads = 0);

  /// Drains the queue (submitted tasks all run), then joins.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  size_t thread_count() const { return threads_; }

  /// True once the worker threads have been spawned (first submit).
  bool started() const;

  /// Queue one task. The future resolves when the task ran; exceptions
  /// out of the task are delivered through it.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for every i in [0, count) across the pool and the
  /// calling thread, returning when all indices completed. The first
  /// exception thrown by any body is rethrown here (the remaining
  /// indices still execute — callers relying on per-index side effects
  /// observe a complete pass). Serial inline when the pool has a single
  /// thread or count <= 1.
  void parallel_for(size_t count, const std::function<void(size_t)>& body);

  /// The process-wide pool the store tier shares (size:
  /// default_thread_count() at first use). Live for the rest of the
  /// process; per-store private pools are for sizing experiments.
  static TaskPool& shared();

  /// SYNAPSE_TASK_POOL_THREADS when set (>= 1), else
  /// hardware_concurrency (>= 1).
  static size_t default_thread_count();

 private:
  /// Caller holds mutex_.
  void ensure_started_locked();
  void worker_loop();

  size_t threads_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stop_ = false;
};

}  // namespace synapse::sys
