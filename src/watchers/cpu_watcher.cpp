#include "watchers/cpu_watcher.hpp"

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"
#include "watchers/trace_watcher.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

void CpuWatcher::pre_process(const WatcherConfig& config) {
  Watcher::pre_process(config);
  backend_ = sys::make_counter_backend(config.pid);
}

void CpuWatcher::sample(double now) {
  if (!backend_) return;
  const auto snap = backend_->read();
  if (!snap) return;  // process gone: miss the sample, don't fail

  profile::Sample s;
  s.set(m::kCyclesUsed, static_cast<double>(snap->cycles));
  s.set(m::kInstructions, static_cast<double>(snap->instructions));
  s.set(m::kCyclesStalledFrontend,
        static_cast<double>(snap->stalled_frontend));
  s.set(m::kCyclesStalledBackend, static_cast<double>(snap->stalled_backend));
  s.set(m::kTaskClock, snap->task_clock_seconds);
  if (const auto stat = sys::read_proc_stat(config_.pid)) {
    s.set(m::kNumThreads, static_cast<double>(stat->num_threads));
  }
  record(now, std::move(s));
}

std::optional<double> CpuWatcher::activity_counter() {
  const auto stat = sys::read_proc_stat(config_.pid);
  if (!stat) return std::nullopt;
  return static_cast<double>(stat->utime_ticks + stat->stime_ticks);
}

void CpuWatcher::finalize(const std::vector<const Watcher*>& all,
                          std::map<std::string, double>& totals) {
  // Prefer the application's analytic counters when available: they are
  // what a hardware PMU would have reported (DESIGN.md section 1). The
  // task clock and thread count are ours either way.
  const Watcher* trace = find_watcher(all, "trace");
  const bool trace_has_data =
      trace != nullptr && trace->series().last(m::kFlops) > 0;

  if (!trace_has_data) {
    totals[std::string(m::kCyclesUsed)] = series_.last(m::kCyclesUsed);
    totals[std::string(m::kInstructions)] = series_.last(m::kInstructions);
  }
  totals[std::string(m::kCyclesStalledFrontend)] =
      series_.last(m::kCyclesStalledFrontend);
  totals[std::string(m::kCyclesStalledBackend)] =
      series_.last(m::kCyclesStalledBackend);
  totals[std::string(m::kTaskClock)] = series_.last(m::kTaskClock);
  totals[std::string(m::kNumThreads)] = series_.max(m::kNumThreads);
}

}  // namespace synapse::watchers
