#pragma once
// CPU watcher: cycles, instructions, stalls, task clock, thread count.
//
// Equivalent of the paper's perf-stat based CPU watcher. Counter values
// come from the best available backend (perf_event on real hardware,
// time model under seccomp; see sys/perfcounters.hpp). In finalize()
// it defers to the trace watcher's analytic counters when the profiled
// application published them — the same "no duplicated measurement"
// cross-watcher rule the paper describes for finalize.

#include <memory>

#include "sys/perfcounters.hpp"
#include "watchers/watcher.hpp"

namespace synapse::watchers {

class CpuWatcher final : public Watcher {
 public:
  CpuWatcher() : Watcher("cpu") {}

  void pre_process(const WatcherConfig& config) override;
  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

  /// Which backend ended up being used ("perf_event" / "time_model").
  std::string backend_name() const {
    return backend_ ? backend_->name() : "none";
  }

 protected:
  /// Primary counter: consumed CPU time (utime+stime ticks from
  /// /proc/<pid>/stat) — one procfs read, no perf backend round trip.
  std::optional<double> activity_counter() override;

 private:
  std::unique_ptr<sys::CounterBackend> backend_;
};

}  // namespace synapse::watchers
