#include "watchers/io_watcher.hpp"

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

void IoWatcher::sample(double now) {
  const auto io = sys::read_proc_io(config_.pid);
  if (!io) return;

  profile::Sample s;
  // rchar/wchar cover cache-served I/O as well — that is what the
  // emulation must reproduce (the application *requested* those bytes).
  const auto rchar = static_cast<double>(io->rchar);
  const auto wchar = static_cast<double>(io->wchar);
  const auto syscr = static_cast<double>(io->syscr);
  const auto syscw = static_cast<double>(io->syscw);
  s.set(m::kBytesRead, rchar);
  s.set(m::kBytesWritten, wchar);
  s.set(m::kReadOps, syscr);
  s.set(m::kWriteOps, syscw);

  if (config_.estimate_block_sizes && have_prev_) {
    const double dr = rchar - prev_rchar_;
    const double dw = wchar - prev_wchar_;
    const double dor = syscr - prev_syscr_;
    const double dow = syscw - prev_syscw_;
    if (dor > 0) s.set(m::kBlockSizeRead, dr / dor);
    if (dow > 0) s.set(m::kBlockSizeWrite, dw / dow);
  }
  prev_rchar_ = rchar;
  prev_wchar_ = wchar;
  prev_syscr_ = syscr;
  prev_syscw_ = syscw;
  have_prev_ = true;

  record(now, std::move(s));
}

std::optional<double> IoWatcher::activity_counter() {
  const auto io = sys::read_proc_io(config_.pid);
  if (!io) return std::nullopt;
  return static_cast<double>(io->rchar) + static_cast<double>(io->wchar);
}

void IoWatcher::finalize(const std::vector<const Watcher*>& all,
                         std::map<std::string, double>& totals) {
  (void)all;
  totals[std::string(m::kBytesRead)] = series_.last(m::kBytesRead);
  totals[std::string(m::kBytesWritten)] = series_.last(m::kBytesWritten);
  totals[std::string(m::kReadOps)] = series_.last(m::kReadOps);
  totals[std::string(m::kWriteOps)] = series_.last(m::kWriteOps);

  // Aggregate block size estimate: bytes / ops over the whole run.
  const double reads = series_.last(m::kReadOps);
  const double writes = series_.last(m::kWriteOps);
  if (reads > 0) {
    totals[std::string(m::kBlockSizeRead)] =
        series_.last(m::kBytesRead) / reads;
  }
  if (writes > 0) {
    totals[std::string(m::kBlockSizeWrite)] =
        series_.last(m::kBytesWritten) / writes;
  }
}

}  // namespace synapse::watchers
