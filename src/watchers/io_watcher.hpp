#pragma once
// Disk-I/O watcher: bytes and operation counts from /proc/<pid>/io.
//
// Includes the block-size estimation the paper lists as future work
// (section 6, "Profiling Block-Level I/O Operations", via blktrace):
// we estimate read/write granularity from the ratio of byte deltas to
// syscall-count deltas between samples — a blktrace-free approximation
// that needs no elevated permissions.

#include "watchers/watcher.hpp"

namespace synapse::watchers {

class IoWatcher final : public Watcher {
 public:
  IoWatcher() : Watcher("io") {}

  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

 protected:
  /// Primary counter: total bytes requested (rchar + wchar).
  std::optional<double> activity_counter() override;

 private:
  // Previous cumulative counters, for block-size deltas.
  double prev_rchar_ = 0.0;
  double prev_wchar_ = 0.0;
  double prev_syscr_ = 0.0;
  double prev_syscw_ = 0.0;
  bool have_prev_ = false;
};

}  // namespace synapse::watchers
