#include "watchers/mem_watcher.hpp"

#include <algorithm>

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"
#include "watchers/trace_watcher.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

void MemWatcher::sample(double now) {
  const auto status = sys::read_proc_status(config_.pid);
  if (!status) return;

  profile::Sample s;
  s.set(m::kMemResident, static_cast<double>(status->vm_rss_bytes));
  // Some sandboxed kernels omit VmHWM; the running maximum of VmRSS is
  // the natural fallback (it is what VmHWM tracks).
  s.set(m::kMemPeak, static_cast<double>(
                         std::max(status->vm_hwm_bytes, status->vm_rss_bytes)));
  record(now, std::move(s));
}

std::optional<double> MemWatcher::activity_counter() {
  const auto status = sys::read_proc_status(config_.pid);
  if (!status) return std::nullopt;
  return static_cast<double>(status->vm_rss_bytes);
}

void MemWatcher::finalize(const std::vector<const Watcher*>& all,
                          std::map<std::string, double>& totals) {
  totals[std::string(m::kMemPeak)] = series_.max(m::kMemPeak);
  totals[std::string(m::kMemResident)] = series_.max(m::kMemResident);

  // Allocation totals come from the cooperative trace when present; the
  // pure sampling view cannot distinguish alloc/free churn from steady
  // state.
  const Watcher* trace = find_watcher(all, "trace");
  if (trace != nullptr) {
    const double allocated = trace->series().last(m::kMemAllocated);
    const double freed = trace->series().last(m::kMemFreed);
    if (allocated > 0) totals[std::string(m::kMemAllocated)] = allocated;
    if (freed > 0) totals[std::string(m::kMemFreed)] = freed;
  }
}

}  // namespace synapse::watchers
