#pragma once
// Memory watcher: resident set, peak RSS, virtual size.
//
// Sampled from /proc/<pid>/status. The resident-memory consistency
// behaviour of paper Fig. 6 (bottom) — underestimation when fewer than
// two samples land inside the application's lifetime — emerges naturally
// from this sampling.

#include "watchers/watcher.hpp"

namespace synapse::watchers {

class MemWatcher final : public Watcher {
 public:
  MemWatcher() : Watcher("mem") {}

  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

 protected:
  /// Primary counter: resident set size — growth or shrinkage both
  /// count as activity (poll() takes the absolute delta).
  std::optional<double> activity_counter() override;
};

}  // namespace synapse::watchers
