#include "watchers/net_watcher.hpp"

#include <cinttypes>
#include <cstdio>

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

std::optional<NetDevTotals> read_netdev_totals(bool include_loopback) {
  const auto content = sys::slurp_file("/proc/net/dev");
  if (!content) return std::nullopt;

  NetDevTotals totals;
  size_t pos = 0;
  int line_no = 0;
  while (pos < content->size()) {
    const size_t eol = content->find('\n', pos);
    const std::string line = content->substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? content->size() : eol + 1;
    // First two lines are headers.
    if (++line_no <= 2) continue;

    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string iface = line.substr(0, colon);
    iface.erase(0, iface.find_first_not_of(' '));
    if (!include_loopback && iface == "lo") continue;

    // Fields after the colon: rx bytes is #1, tx bytes is #9.
    uint64_t rx = 0, tx = 0;
    uint64_t skip;
    if (std::sscanf(line.c_str() + colon + 1,
                    "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64,
                    &rx, &skip, &skip, &skip, &skip, &skip, &skip, &skip,
                    &tx) == 9) {
      totals.rx_bytes += rx;
      totals.tx_bytes += tx;
    }
  }
  return totals;
}

NetWatcher::NetWatcher(bool include_loopback)
    : Watcher("net"), include_loopback_(include_loopback) {
  if (const auto t = read_netdev_totals(include_loopback_)) {
    baseline_ = *t;
    have_baseline_ = true;
  }
}

void NetWatcher::sample(double now) {
  if (!have_baseline_) return;
  const auto t = read_netdev_totals(include_loopback_);
  if (!t) return;

  profile::Sample s;
  s.set(m::kNetBytesRead,
        static_cast<double>(t->rx_bytes - baseline_.rx_bytes));
  s.set(m::kNetBytesWritten,
        static_cast<double>(t->tx_bytes - baseline_.tx_bytes));
  record(now, std::move(s));
}

std::optional<double> NetWatcher::activity_counter() {
  const auto t = read_netdev_totals(include_loopback_);
  if (!t) return std::nullopt;
  return static_cast<double>(t->rx_bytes) + static_cast<double>(t->tx_bytes);
}

void NetWatcher::finalize(const std::vector<const Watcher*>& all,
                          std::map<std::string, double>& totals) {
  (void)all;
  const double read = series_.last(m::kNetBytesRead);
  const double written = series_.last(m::kNetBytesWritten);
  if (read > 0) totals[std::string(m::kNetBytesRead)] = read;
  if (written > 0) totals[std::string(m::kNetBytesWritten)] = written;
}

}  // namespace synapse::watchers
