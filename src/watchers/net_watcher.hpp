#pragma once
// Network watcher — the paper's "planned" network profiling (Table 1
// lists network metrics as "(-)"; section 6 calls it the most
// significant future improvement). Implemented here as an extension.
//
// Linux exposes no per-process network counters in /proc/<pid>, so this
// watcher samples the system-wide interface totals from /proc/net/dev
// and attributes the deltas to the observed application. That is a
// documented approximation: it is accurate when the profiled process is
// the dominant traffic source (the common case on a dedicated compute
// node), and it is disabled by default.

#include "watchers/watcher.hpp"

namespace synapse::watchers {

/// Sum of rx/tx bytes over interfaces in /proc/net/dev.
struct NetDevTotals {
  uint64_t rx_bytes = 0;
  uint64_t tx_bytes = 0;
};

/// Parse /proc/net/dev; `include_loopback` counts the lo interface
/// (Synapse's own network atom emulates over loopback, so profiling an
/// emulation wants it on).
std::optional<NetDevTotals> read_netdev_totals(bool include_loopback);

class NetWatcher final : public Watcher {
 public:
  /// The baseline snapshot is taken HERE, at construction: the profiler
  /// builds its watchers before spawning the application, so counting
  /// starts strictly before any application traffic — a baseline taken
  /// later (e.g. in pre_process, which runs on the sampling thread)
  /// would race the first packets of a short-lived child.
  explicit NetWatcher(bool include_loopback = true);

  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

 protected:
  /// Primary counter: rx + tx bytes over the watched interfaces.
  std::optional<double> activity_counter() override;

 private:
  bool include_loopback_;
  NetDevTotals baseline_;
  bool have_baseline_ = false;
};

}  // namespace synapse::watchers
