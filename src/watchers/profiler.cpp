#include "watchers/profiler.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>

#include "profile/metrics.hpp"
#include "sys/error.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/cpuinfo.hpp"
#include "sys/env.hpp"
#include "sys/procfs.hpp"
#include "watchers/trace.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

Profiler::Profiler(ProfilerOptions options) : options_(std::move(options)) {}

const WatcherRegistry& Profiler::registry() const {
  return options_.registry != nullptr ? *options_.registry
                                      : WatcherRegistry::instance();
}

std::vector<std::string> Profiler::effective_watcher_set() const {
  const std::vector<std::string>& requested =
      options_.watcher_set.empty() ? WatcherRegistry::default_set()
                                   : options_.watcher_set;
  std::vector<std::string> names;
  names.reserve(requested.size());
  for (const auto& name : requested) {
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
  return names;
}

std::string Profiler::make_trace_path() const {
  const std::string dir =
      !options_.scratch_dir.empty()
          ? options_.scratch_dir
          : sys::getenv_or("TMPDIR", std::string("/tmp"));
  static std::atomic<uint64_t> counter{0};
  return dir + "/synapse_trace_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".bin";
}

namespace {

/// Gate sanity shared by the defaults and every per-watcher override;
/// `scope` names the watcher (or "gate defaults") in the diagnostic.
void validate_gate(const GateParams& gate, const std::string& scope) {
  if (!(gate.floor_hz > 0.0) || !std::isfinite(gate.floor_hz)) {
    throw sys::ConfigError("profiler: " + scope +
                           ": gate floor_hz must be a positive rate, got " +
                           std::to_string(gate.floor_hz));
  }
  if (gate.burst_hz < 0.0 || !std::isfinite(gate.burst_hz)) {
    throw sys::ConfigError(
        "profiler: " + scope +
        ": gate burst_hz must be >= 0 (0 = the watcher's sampling rate)");
  }
  if (gate.open_threshold < 0.0 || !std::isfinite(gate.open_threshold)) {
    throw sys::ConfigError("profiler: " + scope +
                           ": gate open_threshold must be >= 0");
  }
  if (gate.close_hold_s < 0.0 || !std::isfinite(gate.close_hold_s)) {
    throw sys::ConfigError("profiler: " + scope +
                           ": gate close_hold_s must be >= 0");
  }
}

}  // namespace

std::string Profiler::prepare_run() const {
  bool trace = false;
  const std::vector<std::string> set = effective_watcher_set();
  for (const auto& name : set) {
    registry().ensure_registered(name);  // throws before the spawn
    trace = trace || name == "trace";
  }

  // A non-positive rate used to be silently clamped to 1 Hz deep in the
  // scheduler — sampling at a rate the user never asked for. Reject it
  // here, before any child is spawned, naming the watcher.
  for (const auto& name : set) {
    const auto it = options_.watcher_rates.find(name);
    const double rate =
        it != options_.watcher_rates.end() ? it->second
                                           : options_.sample_rate_hz;
    if (!(rate > 0.0) || !std::isfinite(rate)) {
      throw sys::ConfigError(
          "profiler: watcher '" + name +
          "' has a non-positive sampling rate (" + std::to_string(rate) +
          " Hz) — " +
          (it != options_.watcher_rates.end() ? "fix its rate override"
                                              : "fix sample_rate_hz"));
    }
  }

  validate_gate(options_.gate, "gate defaults");
  for (const auto& [name, gate] : options_.watcher_gates) {
    validate_gate(gate, "watcher '" + name + "'");
  }
  return trace ? make_trace_path() : std::string();
}

std::vector<std::unique_ptr<Watcher>> Profiler::build_watchers(
    const std::string& trace_path) const {
  WatcherBuildContext build;
  build.net_include_loopback = options_.net_include_loopback;

  std::vector<std::unique_ptr<Watcher>> watchers;
  for (const auto& name : effective_watcher_set()) {
    // The trace watcher is a no-op without its side channel; drop it
    // rather than attaching a watcher that can never produce data.
    if (name == "trace" && trace_path.empty()) continue;
    watchers.push_back(registry().create(name, build));
  }
  return watchers;
}

profile::Profile Profiler::profile_command(
    const std::vector<std::string>& argv,
    const std::vector<std::string>& tags,
    const std::string& command_label) {
  const std::string trace_path = prepare_run();

  sys::SpawnOptions spawn_opts;
  spawn_opts.extra_env = options_.extra_env;
  if (!trace_path.empty()) {
    spawn_opts.extra_env.push_back(std::string(kTraceEnvVar) + "=" +
                                   trace_path);
  }
  spawn_opts.stdout_path = options_.stdout_path;
  spawn_opts.stderr_path = options_.stderr_path;

  std::string command = command_label;
  if (command.empty()) {
    for (const auto& a : argv) {
      if (!command.empty()) command += ' ';
      command += a;
    }
  }
  auto watchers = build_watchers(trace_path);
  return run(sys::ChildProcess::spawn(argv, spawn_opts), std::move(watchers),
             command, tags, trace_path);
}

profile::Profile Profiler::profile(const std::string& command,
                                   const std::vector<std::string>& tags) {
  // Store the command string exactly as given: it is the search index
  // for emulate(command) and must survive quoting untouched.
  return profile_command(sys::split_command(command), tags, command);
}

profile::Profile Profiler::profile_function(
    const std::function<int()>& fn, const std::string& pseudo_command,
    const std::vector<std::string>& tags) {
  const std::string trace_path = prepare_run();
  auto watchers = build_watchers(trace_path);
  if (!trace_path.empty()) {
    // fork_function children inherit our environment directly.
    sys::setenv_str(kTraceEnvVar, trace_path);
  }
  auto child = sys::ChildProcess::fork_function(fn);
  if (!trace_path.empty()) sys::unsetenv_str(kTraceEnvVar);
  return run(std::move(child), std::move(watchers), pseudo_command, tags,
             trace_path);
}

profile::Profile Profiler::run(sys::ChildProcess child,
                               std::vector<std::unique_ptr<Watcher>> watchers,
                               const std::string& command,
                               const std::vector<std::string>& tags,
                               const std::string& trace_path) {
  WatcherConfig config;
  config.pid = child.pid();
  config.sample_rate_hz = options_.sample_rate_hz;
  config.adaptive = options_.adaptive;
  config.adaptive_window_s = options_.adaptive_window_s;
  config.adaptive_floor_hz = options_.adaptive_floor_hz;
  config.gate = options_.gate;
  config.gate_overrides = options_.watcher_gates;
  if (options_.adaptive) {
    // Legacy decay flags map onto the gate so `--adaptive` keeps its
    // meaning under `--scheduler adaptive`: decay floor -> gate floor,
    // startup window -> quiet hold. Explicit gate settings win.
    const GateParams defaults;
    if (config.gate.floor_hz == defaults.floor_hz) {
      config.gate.floor_hz = options_.adaptive_floor_hz;
    }
    if (config.gate.close_hold_s == defaults.close_hold_s) {
      config.gate.close_hold_s = options_.adaptive_window_s;
    }
  }
  config.trace_path = trace_path;
  config.rate_overrides = options_.watcher_rates;

  std::vector<Watcher*> scheduled;
  scheduled.reserve(watchers.size());
  for (const auto& w : watchers) scheduled.push_back(w.get());

  SamplingScheduler scheduler(options_.scheduler);
  scheduler.start(scheduled, config);
  const sys::ExitStatus status = child.wait();
  scheduler.stop();

  // Assemble the profile.
  profile::Profile p;
  p.command = command;
  p.tags = tags;
  if (!status.success()) {
    p.tags.push_back("exit_code=" + std::to_string(status.exit_code));
  }
  p.sample_rate_hz = options_.sample_rate_hz;
  p.created_at = sys::wallclock_now();

  const auto& cpu = sys::cpu_info();
  const auto& spec = resource::active_resource();
  char host[256] = {0};
  ::gethostname(host, sizeof(host) - 1);
  p.system.hostname = host;
  p.system.cpu_model = cpu.model_name;
  p.system.num_cores = spec.cores;
  p.system.max_cpu_freq_hz = spec.name == "host" ? cpu.best_hz() : spec.turbo_hz;
  if (const auto mi = sys::read_meminfo()) {
    p.system.total_memory_bytes = mi->total_bytes;
  }
  p.system.resource_name = spec.name;

  std::vector<const Watcher*> watcher_ptrs;
  watcher_ptrs.reserve(watchers.size());
  for (const auto& w : watchers) watcher_ptrs.push_back(w.get());

  // Cross-watcher deduplication (the finalize() contract of section
  // 4.1): when the cooperative trace carries analytic counters, the CPU
  // watcher's modelled cycles/instructions describe the same work a
  // second time (including any pacing spin) and must not survive into
  // the merged sample stream the emulator replays.
  const Watcher* trace_w = find_watcher(watcher_ptrs, "trace");
  const bool trace_has_counters =
      trace_w != nullptr && trace_w->series().last(m::kFlops) > 0;

  const bool adaptive_mode = options_.scheduler == SchedulerMode::Adaptive;
  for (auto& w : watchers) {
    w->finalize(watcher_ptrs, p.totals);
    profile::TimeSeries ts = w->series();
    ts.sample_rate_hz = config.rate_for(w->name());
    if (adaptive_mode) {
      // Gated series are variable-rate: timestamps, not the nominal
      // rate, are the source of truth downstream (sample_deltas
      // switches to timestamp bucketing, replay paces by recorded
      // gaps). The resolved gate rides along as series metadata and
      // the nominal rate records the burst rate.
      const GateParams gate = config.gate_for(w->name());
      ts.variable_rate = true;
      ts.gate.floor_hz = gate.floor_hz;
      ts.gate.burst_hz = gate.burst_hz;
      ts.gate.open_threshold = gate.open_threshold;
      ts.gate.close_hold_s = gate.close_hold_s;
      if (gate.burst_hz > 0) ts.sample_rate_hz = gate.burst_hz;
    }
    if (trace_has_counters && ts.watcher == "cpu") {
      for (auto& s : ts.samples) {
        s.values.erase(std::string(m::kCyclesUsed));
        s.values.erase(std::string(m::kInstructions));
      }
    }
    p.series.push_back(std::move(ts));
  }

  // rusage-based corrections (the paper's `time -v` wrapper): exact Tx
  // and peak RSS from the kernel, covering the pre-first-sample window.
  p.totals[std::string(m::kRuntime)] = status.wall_seconds;
  p.totals[std::string(m::kTaskClock)] =
      std::max(p.totals[std::string(m::kTaskClock)], status.usage.cpu_seconds());
  if (status.usage.max_rss_bytes > 0) {
    auto& peak = p.totals[std::string(m::kMemPeak)];
    peak = std::max(peak, static_cast<double>(status.usage.max_rss_bytes));
  }

  p.compute_derived();

  if (!trace_path.empty()) ::unlink(trace_path.c_str());
  return p;
}

}  // namespace synapse::watchers
