#pragma once
// The Synapse profiler driver (paper sections 4.1, Fig. 1 left half).
//
// Spawns the application, attaches one thread per watcher, samples at
// the configured (optionally adaptive) rate, and assembles a Profile:
//
//   profiler.profile_command({"./mdsim", "--steps", "10000"}, {"tag"});
//
// Requirements implemented: P.1/P.2 (watchers run on other cores and
// only read /proc — negligible self-interference, quantified by the
// Fig. 4 bench), P.3 (no application changes; the cooperative trace is
// opt-in), P.4 (consistency — tested), P.5 (profiles feed the emulator).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "profile/profile.hpp"
#include "sys/spawn.hpp"
#include "watchers/watcher.hpp"

namespace synapse::watchers {

struct ProfilerOptions {
  double sample_rate_hz = 10.0;  ///< paper default; max of perf stat
  bool adaptive = false;         ///< high rate during startup, then decay
  double adaptive_window_s = 2.0;
  double adaptive_floor_hz = 1.0;
  bool watch_cpu = true;
  bool watch_mem = true;
  bool watch_io = true;
  bool watch_sys = true;
  bool watch_trace = true;  ///< cooperative analytic counters
  /// Directory for the trace side-channel file (default: $TMPDIR or /tmp).
  std::string scratch_dir;
  /// Extra environment for the application (NAME=VALUE).
  std::vector<std::string> extra_env;
  /// Redirect the application's stdout/stderr ("" = inherit).
  std::string stdout_path = "/dev/null";
  std::string stderr_path = "/dev/null";
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  /// Profile a command given as argv. Blocks until the application
  /// exits. Throws on spawn failure; a non-zero application exit is
  /// recorded in the profile tags, not an error. `command_label`
  /// overrides the command string stored in the profile (the store
  /// index); by default argv joined with spaces.
  profile::Profile profile_command(const std::vector<std::string>& argv,
                                   const std::vector<std::string>& tags = {},
                                   const std::string& command_label = "");

  /// Profile a shell-like command line (split with sys::split_command).
  profile::Profile profile(const std::string& command,
                           const std::vector<std::string>& tags = {});

  /// Profile a function executed in a forked child.
  profile::Profile profile_function(const std::function<int()>& fn,
                                    const std::string& pseudo_command,
                                    const std::vector<std::string>& tags = {});

  const ProfilerOptions& options() const { return options_; }

 private:
  profile::Profile run(sys::ChildProcess child, const std::string& command,
                       const std::vector<std::string>& tags,
                       const std::string& trace_path);
  std::string make_trace_path() const;

  ProfilerOptions options_;
};

}  // namespace synapse::watchers
