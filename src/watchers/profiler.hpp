#pragma once
// The Synapse profiler driver (paper sections 4.1, Fig. 1 left half).
//
// Spawns the application, attaches the configured watcher set (resolved
// by name through watchers::WatcherRegistry), samples at the configured
// (optionally adaptive, optionally per-watcher) rate through a
// SamplingScheduler, and assembles a Profile:
//
//   profiler.profile_command({"./mdsim", "--steps", "10000"}, {"tag"});
//
// Requirements implemented: P.1/P.2 (watchers run on other cores and
// only read /proc — negligible self-interference, quantified by the
// Fig. 4 bench), P.3 (no application changes; the cooperative trace is
// opt-in), P.4 (consistency — tested), P.5 (profiles feed the emulator).

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "profile/profile.hpp"
#include "sys/spawn.hpp"
#include "watchers/sampling_scheduler.hpp"
#include "watchers/watcher.hpp"
#include "watchers/watcher_registry.hpp"

namespace synapse::watchers {

struct ProfilerOptions {
  double sample_rate_hz = 10.0;  ///< paper default; max of perf stat
  bool adaptive = false;         ///< high rate during startup, then decay
  double adaptive_window_s = 2.0;
  double adaptive_floor_hz = 1.0;
  /// Gate parameters for SchedulerMode::Adaptive (see watcher.hpp):
  /// shared defaults plus per-watcher overrides. With the legacy
  /// `adaptive` flag set, adaptive_floor_hz/adaptive_window_s map onto
  /// gate.floor_hz/gate.close_hold_s unless the gate overrides them
  /// explicitly — old flags keep working under the new scheduler.
  GateParams gate;
  std::map<std::string, GateParams> watcher_gates;
  /// Declarative watcher-set selection: registry names to attach, in
  /// order (e.g. {"cpu", "mem", "net"}). Empty = the registry's
  /// default_set() — every built-in except "net", whose system-wide
  /// attribution is opt-in. Unknown names fail with sys::ConfigError
  /// BEFORE the application is spawned. Duplicates collapse (first
  /// occurrence wins).
  std::vector<std::string> watcher_set;
  /// Per-watcher sampling-rate overrides (watcher name -> Hz); watchers
  /// not listed sample at `sample_rate_hz`.
  std::map<std::string, double> watcher_rates;
  /// Run-loop mode: thread-per-watcher (paper-faithful default) or one
  /// multiplexed timer thread (see sampling_scheduler.hpp).
  SchedulerMode scheduler = SchedulerMode::ThreadPerWatcher;
  /// Count loopback traffic in the "net" watcher (profiling an
  /// emulation wants it on: the network atom replays over loopback).
  bool net_include_loopback = true;
  /// Registry watcher names resolve through (nullptr = the process-wide
  /// WatcherRegistry::instance()); must outlive the profiler.
  const WatcherRegistry* registry = nullptr;
  /// Directory for the trace side-channel file (default: $TMPDIR or /tmp).
  std::string scratch_dir;
  /// Extra environment for the application (NAME=VALUE).
  std::vector<std::string> extra_env;
  /// Redirect the application's stdout/stderr ("" = inherit).
  std::string stdout_path = "/dev/null";
  std::string stderr_path = "/dev/null";
};

class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  /// Profile a command given as argv. Blocks until the application
  /// exits. Throws on spawn failure; a non-zero application exit is
  /// recorded in the profile tags, not an error. `command_label`
  /// overrides the command string stored in the profile (the store
  /// index); by default argv joined with spaces.
  profile::Profile profile_command(const std::vector<std::string>& argv,
                                   const std::vector<std::string>& tags = {},
                                   const std::string& command_label = "");

  /// Profile a shell-like command line (split with sys::split_command).
  profile::Profile profile(const std::string& command,
                           const std::vector<std::string>& tags = {});

  /// Profile a function executed in a forked child.
  profile::Profile profile_function(const std::function<int()>& fn,
                                    const std::string& pseudo_command,
                                    const std::vector<std::string>& tags = {});

  const ProfilerOptions& options() const { return options_; }

  /// The watcher names this profiler will attach (watcher_set resolved
  /// against the default set, deduplicated, order preserved).
  std::vector<std::string> effective_watcher_set() const;

 private:
  profile::Profile run(sys::ChildProcess child,
                       std::vector<std::unique_ptr<Watcher>> watchers,
                       const std::string& command,
                       const std::vector<std::string>& tags,
                       const std::string& trace_path);
  /// Shared entry-point setup: validates the watcher set against the
  /// registry and every configured per-watcher rate and gate (throwing
  /// sys::ConfigError naming the watcher BEFORE any child is spawned),
  /// and returns the trace side-channel path — "" when the trace
  /// watcher is not in the set, so callers skip the env plumbing
  /// entirely.
  std::string prepare_run() const;
  /// Instantiate the effective watcher set. Called BEFORE the child is
  /// spawned so construction-time state (the net watcher's counter
  /// baseline) predates all application activity.
  std::vector<std::unique_ptr<Watcher>> build_watchers(
      const std::string& trace_path) const;
  std::string make_trace_path() const;
  const WatcherRegistry& registry() const;

  ProfilerOptions options_;
};

}  // namespace synapse::watchers
