#include "watchers/sampling_scheduler.hpp"

#include <algorithm>

#include "sys/affinity.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse::watchers {

namespace {

/// Longest uninterruptible sleep slice: short enough that a fast child
/// exit never leaves a watcher sleeping through a long (low-rate)
/// period.
constexpr double kSleepSlice = 0.05;

/// The rate a watcher samples at right now: its configured per-watcher
/// rate, decayed to the adaptive floor once the startup window is over.
/// `now` is the scheduler's steady clock (injectable for tests).
double current_rate(const WatcherConfig& config, const std::string& name,
                    double t0, double now) {
  double rate = config.rate_for(name);
  if (config.adaptive && now - t0 > config.adaptive_window_s) {
    rate = config.adaptive_floor_hz;
  }
  return rate > 0 ? rate : 1.0;
}

}  // namespace

SchedulerMode scheduler_mode_from_string(const std::string& name) {
  if (name == "thread" || name == "thread_per_watcher") {
    return SchedulerMode::ThreadPerWatcher;
  }
  if (name == "multiplexed") return SchedulerMode::Multiplexed;
  if (name == "adaptive") return SchedulerMode::Adaptive;
  throw sys::ConfigError("unknown scheduler mode: " + name +
                         " (expected thread, multiplexed or adaptive)");
}

const char* scheduler_mode_name(SchedulerMode mode) {
  switch (mode) {
    case SchedulerMode::Multiplexed:
      return "multiplexed";
    case SchedulerMode::Adaptive:
      return "adaptive";
    default:
      return "thread";
  }
}

SamplingScheduler::SamplingScheduler(SchedulerMode mode, ClockFn clock)
    : mode_(mode), clock_(clock ? std::move(clock) : &sys::steady_now) {}

SamplingScheduler::~SamplingScheduler() { stop(); }

void SamplingScheduler::start(const std::vector<Watcher*>& watchers,
                              const WatcherConfig& config) {
  stop();
  watchers_ = watchers;
  config_ = config;
  terminate_.store(false, std::memory_order_relaxed);
  t0_ = clock_();
  running_ = true;
  if (mode_ == SchedulerMode::Adaptive) {
    run_adaptive();
  } else if (mode_ == SchedulerMode::Multiplexed) {
    run_multiplexed();
  } else {
    run_thread_per_watcher();
  }
}

void SamplingScheduler::stop() {
  if (!running_) return;
  terminate_.store(true, std::memory_order_relaxed);
  for (auto& t : threads_) t.join();
  threads_.clear();
  watchers_.clear();
  running_ = false;
}

void SamplingScheduler::run_thread_per_watcher() {
  threads_.reserve(watchers_.size());
  for (Watcher* w : watchers_) {
    threads_.emplace_back([this, w] {
      sys::set_thread_name("syn:" + w->name());
      w->pre_process(config_);
      while (!terminate_.load(std::memory_order_relaxed)) {
        w->sample(sys::wallclock_now());
        double remaining =
            1.0 / current_rate(config_, w->name(), t0_, clock_());
        while (remaining > 0 &&
               !terminate_.load(std::memory_order_relaxed)) {
          const double slice = std::min(remaining, kSleepSlice);
          sys::sleep_for(slice);
          remaining -= slice;
        }
      }
      // Closing sample: capture the final cumulative state (the paper's
      // profiler waits for the last full period; a final read is
      // equivalent without the delay).
      w->sample(sys::wallclock_now());
      w->post_process();
    });
  }
}

void SamplingScheduler::run_multiplexed() {
  threads_.emplace_back([this] {
    sys::set_thread_name("syn:mux");
    struct Entry {
      Watcher* watcher;
      double next_due;  ///< steady-clock seconds
    };
    std::vector<Entry> entries;
    entries.reserve(watchers_.size());
    for (Watcher* w : watchers_) {
      w->pre_process(config_);
      entries.push_back({w, clock_()});
    }
    while (!terminate_.load(std::memory_order_relaxed)) {
      const double now = clock_();
      double earliest = now + kSleepSlice;
      for (auto& e : entries) {
        if (e.next_due <= now) {
          e.watcher->sample(sys::wallclock_now());
          const double period =
              1.0 / current_rate(config_, e.watcher->name(), t0_, now);
          // Advance from the due time to keep the cadence — but clamp
          // catch-up to this ONE tick: after a stall (suspended child,
          // a slow watcher, scheduler starvation) the due time is
          // re-anchored past the post-sample clock, never the stale
          // loop-top `now`. Anchoring on `now` would leave the due time
          // behind whenever sample() itself outlasted the period, and
          // the loop would fire back-to-back samples every iteration
          // until it caught up — the burst the cadence contract
          // forbids.
          e.next_due += period;
          const double after = clock_();
          if (e.next_due <= after) e.next_due = after + period;
        }
        earliest = std::min(earliest, e.next_due);
      }
      const double wait =
          std::min(kSleepSlice, std::max(0.0, earliest - clock_()));
      if (wait > 0) sys::sleep_for(wait);
    }
    for (auto& e : entries) {
      e.watcher->sample(sys::wallclock_now());
      e.watcher->post_process();
    }
  });
}

void SamplingScheduler::run_adaptive() {
  threads_.emplace_back([this] {
    sys::set_thread_name("syn:gate");
    // Per-watcher gate state machine on the multiplexed due-time loop
    // (the open/close gating an RFID reader applies to expensive decode:
    // cheap amplitude probe always, full decode only past an edge).
    struct Entry {
      Watcher* watcher;
      GateParams gate;     ///< resolved: burst_hz > 0
      bool open = true;    ///< start open — the startup burst IS an edge
      double next_due;     ///< steady-clock seconds
      double last_active;  ///< steady clock of the last super-threshold poll
    };
    std::vector<Entry> entries;
    entries.reserve(watchers_.size());
    const double start = clock_();
    for (Watcher* w : watchers_) {
      w->pre_process(config_);
      GateParams gate = config_.gate_for(w->name());
      // Defensive floor for direct scheduler users; Profiler validates
      // these (with a diagnostic naming the watcher) before any spawn.
      if (!(gate.burst_hz > 0)) gate.burst_hz = 1.0;
      if (!(gate.floor_hz > 0)) gate.floor_hz = 1.0;
      w->poll();  // baseline the activity counter before the app runs
      entries.push_back({w, gate, true, start, start});
    }
    while (!terminate_.load(std::memory_order_relaxed)) {
      const double now = clock_();
      double earliest = now + kSleepSlice;
      for (auto& e : entries) {
        if (e.next_due <= now) {
          if (e.open) {
            e.watcher->sample(sys::wallclock_now());
            if (e.watcher->poll() > e.gate.open_threshold) {
              e.last_active = now;
            } else if (now - e.last_active >= e.gate.close_hold_s) {
              // Quiet for the whole hold window: demote to the floor.
              // The sample just taken is the closing record, so the
              // replay side sees the burst's full cumulative extent.
              e.open = false;
            }
          } else if (e.watcher->poll() > e.gate.open_threshold) {
            // Edge: promote and anchor the burst with an immediate
            // sample — the pre-edge cumulative state lands in a bucket
            // of its own instead of smearing into the burst.
            e.open = true;
            e.last_active = now;
            e.watcher->sample(sys::wallclock_now());
          }
          const double period =
              1.0 / (e.open ? e.gate.burst_hz : e.gate.floor_hz);
          // Same catch-up clamp as the multiplexed loop: keep cadence,
          // never burst to catch up after a stall.
          e.next_due += period;
          const double after = clock_();
          if (e.next_due <= after) e.next_due = after + period;
        }
        earliest = std::min(earliest, e.next_due);
      }
      const double wait =
          std::min(kSleepSlice, std::max(0.0, earliest - clock_()));
      if (wait > 0) sys::sleep_for(wait);
    }
    // Closing sample regardless of gate state: a closed gate must not
    // cost the final cumulative totals.
    for (auto& e : entries) {
      e.watcher->sample(sys::wallclock_now());
      e.watcher->post_process();
    }
  });
}

}  // namespace synapse::watchers
