#pragma once
// Sampling scheduler: drives a set of watchers at their configured
// rates until told to stop.
//
// Three modes:
//
//   ThreadPerWatcher - one thread per watcher, each looping at that
//     watcher's rate with its own (unsynchronised) timestamps. This is
//     the paper's design (section 4.1) and the default; the Fig. 4
//     overhead characteristics depend on it.
//
//   Multiplexed - ONE timer thread drives every watcher from a shared
//     due-time heap, honouring per-watcher periods. One thread instead
//     of N reduces the profiler's own footprint on small machines (and
//     is the first step towards event-driven sampling); the trade is
//     that two watchers due at the same instant sample back-to-back
//     rather than concurrently.
//
//   Adaptive - edge-triggered sampling on the multiplexed due-time
//     loop: an open/close gate per watcher (WatcherConfig::gate_for).
//     While the gate is closed the watcher is only poll()ed at the
//     gate's floor rate — no samples, near-zero cost during idle
//     phases. A poll() delta above open_threshold is an edge: the gate
//     opens, an anchoring sample is taken immediately, and the watcher
//     samples at burst rate until close_hold_s of quiet demotes it
//     again (taking one closing sample so the quiet tail is bounded).
//     The series a gated watcher records is variable-rate: its
//     timestamps ARE the effective rate trajectory.
//
// In every mode each watcher receives pre_process() before its first
// sample and a closing sample plus post_process() after stop(). The
// legacy adaptive decay (high rate inside the startup window, floor
// rate after) applies per watcher in the thread/multiplexed modes;
// Adaptive mode subsumes it with the gate.

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "watchers/watcher.hpp"

namespace synapse::watchers {

enum class SchedulerMode {
  ThreadPerWatcher,  ///< paper-faithful, one sampling thread per watcher
  Multiplexed,       ///< one timer thread, per-watcher periods
  Adaptive,          ///< one timer thread, edge-triggered gate per watcher
};

/// Parse "thread" / "multiplexed" / "adaptive" (throws sys::ConfigError
/// otherwise).
SchedulerMode scheduler_mode_from_string(const std::string& name);
const char* scheduler_mode_name(SchedulerMode mode);

class SamplingScheduler {
 public:
  /// Steady-clock source driving due times, catch-up re-anchoring and
  /// the adaptive window. The default ({}) is sys::steady_now; tests
  /// inject a fake clock to exercise stall behaviour deterministically.
  using ClockFn = std::function<double()>;

  explicit SamplingScheduler(
      SchedulerMode mode = SchedulerMode::ThreadPerWatcher,
      ClockFn clock = {});
  ~SamplingScheduler();  ///< stops sampling if still running

  SamplingScheduler(const SamplingScheduler&) = delete;
  SamplingScheduler& operator=(const SamplingScheduler&) = delete;

  /// Begin sampling. `watchers` are borrowed and must outlive the run;
  /// each watcher's rate comes from config.rate_for(name).
  void start(const std::vector<Watcher*>& watchers,
             const WatcherConfig& config);

  /// Stop sampling: every watcher takes one closing sample (capturing
  /// the final cumulative state) and runs post_process(). Idempotent.
  void stop();

  SchedulerMode mode() const { return mode_; }
  bool running() const { return running_; }

 private:
  void run_thread_per_watcher();
  void run_multiplexed();
  void run_adaptive();

  SchedulerMode mode_;
  ClockFn clock_;  ///< never empty (defaulted in the constructor)
  bool running_ = false;
  std::vector<Watcher*> watchers_;
  WatcherConfig config_;
  double t0_ = 0.0;  ///< steady-clock start, for the adaptive window
  std::atomic<bool> terminate_{false};
  std::vector<std::thread> threads_;
};

}  // namespace synapse::watchers
