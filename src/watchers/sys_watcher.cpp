#include "watchers/sys_watcher.hpp"

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

void SysWatcher::sample(double now) {
  profile::Sample s;
  if (const auto la = sys::read_loadavg()) {
    s.set(m::kLoadCpu, la->load1);
  }
  if (const auto mi = sys::read_meminfo()) {
    if (mi->total_bytes > 0) {
      s.set(m::kLoadMemory,
            1.0 - static_cast<double>(mi->available_bytes) /
                      static_cast<double>(mi->total_bytes));
    }
  }
  if (!s.values.empty()) record(now, std::move(s));
}

std::optional<double> SysWatcher::activity_counter() {
  const auto la = sys::read_loadavg();
  if (!la) return std::nullopt;
  return la->load1;
}

void SysWatcher::finalize(const std::vector<const Watcher*>& all,
                          std::map<std::string, double>& totals) {
  (void)all;
  // Load is an ambient observation; store the run average.
  double sum = 0.0;
  size_t n = 0;
  for (const auto& s : series_.samples) {
    if (s.values.count(std::string(m::kLoadCpu)) > 0) {
      sum += s.get(m::kLoadCpu);
      ++n;
    }
  }
  if (n > 0) totals[std::string(m::kLoadCpu)] = sum / static_cast<double>(n);
}

}  // namespace synapse::watchers
