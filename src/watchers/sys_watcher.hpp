#pragma once
// System watcher: machine-wide load and memory pressure.
//
// Samples /proc/loadavg and /proc/meminfo — background context that the
// paper records to interpret profile noise (system load appears in
// Table 1 under "System").

#include "watchers/watcher.hpp"

namespace synapse::watchers {

class SysWatcher final : public Watcher {
 public:
  SysWatcher() : Watcher("sys") {}

  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

 protected:
  /// Primary signal: the 1-minute load average. Not cumulative, but
  /// |delta| still reads as "the machine's load is moving"; ambient
  /// drift on a busy host is real activity for this watcher.
  std::optional<double> activity_counter() override;
};

}  // namespace synapse::watchers
