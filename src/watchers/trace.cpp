#include "watchers/trace.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sys/env.hpp"
#include "sys/error.hpp"

namespace synapse::watchers {

namespace {
constexpr uint64_t kMagic = 0x53594e54524143ull;  // "SYNTRAC"
}

/// The mmap'd layout. Atomics over shared memory between writer process
/// and profiler process; std::atomic<uint64_t> is lock-free on all
/// supported platforms (asserted below).
struct TraceWriter::Shared {
  std::atomic<uint64_t> magic;
  std::atomic<uint64_t> flops;
  std::atomic<uint64_t> instructions;
  std::atomic<uint64_t> cycles;
  std::atomic<uint64_t> bytes_allocated;
  std::atomic<uint64_t> bytes_freed;
};
struct TraceReader::Shared {
  std::atomic<uint64_t> magic;
  std::atomic<uint64_t> flops;
  std::atomic<uint64_t> instructions;
  std::atomic<uint64_t> cycles;
  std::atomic<uint64_t> bytes_allocated;
  std::atomic<uint64_t> bytes_freed;
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "trace counters require lock-free 64-bit atomics");

TraceWriter::TraceWriter(const std::string& path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw sys::SystemError("open(" + path + ")", errno);
  if (::ftruncate(fd_, sizeof(Shared)) != 0) {
    ::close(fd_);
    throw sys::SystemError("ftruncate(" + path + ")", errno);
  }
  void* mem = ::mmap(nullptr, sizeof(Shared), PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd_, 0);
  if (mem == MAP_FAILED) {
    ::close(fd_);
    throw sys::SystemError("mmap(" + path + ")", errno);
  }
  shared_ = static_cast<Shared*>(mem);
  shared_->magic.store(kMagic, std::memory_order_release);
}

std::unique_ptr<TraceWriter> TraceWriter::from_env() {
  const auto path = sys::getenv_str(kTraceEnvVar);
  if (!path || path->empty()) return nullptr;
  return std::make_unique<TraceWriter>(*path);
}

TraceWriter::~TraceWriter() {
  if (shared_ != nullptr) {
    ::munmap(shared_, sizeof(Shared));
  }
  if (fd_ >= 0) ::close(fd_);
}

void TraceWriter::add_work(double flops, const resource::KernelTraits& traits) {
  const auto& spec = resource::active_resource();
  // Accumulate sub-integer remainders so fine-grained loops do not lose
  // counts to truncation.
  flop_remainder_ += flops;
  if (flop_remainder_ < 1.0) return;
  const auto whole = static_cast<uint64_t>(flop_remainder_);
  flop_remainder_ -= static_cast<double>(whole);

  const double fwhole = static_cast<double>(whole);
  const auto instructions = static_cast<uint64_t>(
      resource::instructions_for_flops(traits, fwhole));
  const auto cycles = static_cast<uint64_t>(
      resource::cycles_for_flops(traits, spec, fwhole));
  add_counters(whole, instructions, cycles);
}

void TraceWriter::add_counters(uint64_t flops, uint64_t instructions,
                               uint64_t cycles) {
  shared_->flops.fetch_add(flops, std::memory_order_relaxed);
  shared_->instructions.fetch_add(instructions, std::memory_order_relaxed);
  shared_->cycles.fetch_add(cycles, std::memory_order_relaxed);
}

void TraceWriter::add_alloc(uint64_t bytes) {
  shared_->bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
}

void TraceWriter::add_free(uint64_t bytes) {
  shared_->bytes_freed.fetch_add(bytes, std::memory_order_relaxed);
}

TraceCounters TraceWriter::snapshot() const {
  TraceCounters c;
  c.flops = shared_->flops.load(std::memory_order_relaxed);
  c.instructions = shared_->instructions.load(std::memory_order_relaxed);
  c.cycles = shared_->cycles.load(std::memory_order_relaxed);
  c.bytes_allocated = shared_->bytes_allocated.load(std::memory_order_relaxed);
  c.bytes_freed = shared_->bytes_freed.load(std::memory_order_relaxed);
  return c;
}

TraceReader::~TraceReader() {
  if (shared_ != nullptr) {
    ::munmap(const_cast<Shared*>(shared_), sizeof(Shared));
  }
  if (fd_ >= 0) ::close(fd_);
}

bool TraceReader::ensure_mapped() {
  if (shared_ != nullptr) return true;
  fd_ = ::open(path_.c_str(), O_RDONLY);
  if (fd_ < 0) return false;
  struct stat st {};
  if (::fstat(fd_, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(Shared))) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  void* mem = ::mmap(nullptr, sizeof(Shared), PROT_READ, MAP_SHARED, fd_, 0);
  if (mem == MAP_FAILED) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  shared_ = static_cast<const Shared*>(mem);
  return true;
}

std::optional<TraceCounters> TraceReader::read() {
  if (!ensure_mapped()) return std::nullopt;
  if (shared_->magic.load(std::memory_order_acquire) != kMagic) {
    return std::nullopt;
  }
  TraceCounters c;
  c.flops = shared_->flops.load(std::memory_order_relaxed);
  c.instructions = shared_->instructions.load(std::memory_order_relaxed);
  c.cycles = shared_->cycles.load(std::memory_order_relaxed);
  c.bytes_allocated = shared_->bytes_allocated.load(std::memory_order_relaxed);
  c.bytes_freed = shared_->bytes_freed.load(std::memory_order_relaxed);
  return c;
}

}  // namespace synapse::watchers
