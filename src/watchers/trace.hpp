#pragma once
// Cooperative analytic counter trace.
//
// With perf_event gated (DESIGN.md section 1), Synapse's own synthetic
// applications and emulation kernels publish the counters a hardware PMU
// would have observed: they know their exact loop structure, so FLOPs
// and instructions are counted analytically, and cycles are derived from
// the cache/IPC model for the active virtual resource. The counters live
// in a small shared-memory file (mmap) so the profiler can sample them
// at its own rate without any coordination with the application.
//
// Protocol: the profiler sets SYNAPSE_TRACE=<path> before spawning the
// application; an instrumented application opens a TraceWriter on that
// path and adds work as it executes. Uninstrumented (true black-box)
// applications simply never create the file and profiling falls back to
// the CPU watcher's counter backend.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "resource/cache_model.hpp"

namespace synapse::watchers {

inline constexpr const char* kTraceEnvVar = "SYNAPSE_TRACE";

/// Cumulative counters, mirrored in the shared file.
struct TraceCounters {
  uint64_t flops = 0;
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  uint64_t bytes_allocated = 0;
  uint64_t bytes_freed = 0;
};

/// Application side: create/extend the trace file and publish counters.
/// Thread-safe (atomic adds on the mapped region).
class TraceWriter {
 public:
  /// Open the trace file at `path` (created if needed).
  explicit TraceWriter(const std::string& path);

  /// Open from $SYNAPSE_TRACE; returns nullptr when unset (not profiled,
  /// or profiled as a pure black box).
  static std::unique_ptr<TraceWriter> from_env();

  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Account `flops` of work executed by code with the given traits:
  /// instructions and cycles are derived through the cache/IPC model for
  /// the *active* resource spec.
  void add_work(double flops, const resource::KernelTraits& traits);

  /// Account raw counters directly (user kernels with exact knowledge).
  void add_counters(uint64_t flops, uint64_t instructions, uint64_t cycles);

  /// Account memory management activity.
  void add_alloc(uint64_t bytes);
  void add_free(uint64_t bytes);

  TraceCounters snapshot() const;

 private:
  struct Shared;
  Shared* shared_ = nullptr;
  int fd_ = -1;
  double flop_remainder_ = 0.0;
};

/// Profiler side: sample the counters of a trace file if it exists.
class TraceReader {
 public:
  explicit TraceReader(std::string path) : path_(std::move(path)) {}
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Current cumulative counters; nullopt while the application has not
  /// created the file (or never will).
  std::optional<TraceCounters> read();

 private:
  bool ensure_mapped();

  std::string path_;
  struct Shared;
  const Shared* shared_ = nullptr;
  int fd_ = -1;
};

}  // namespace synapse::watchers
