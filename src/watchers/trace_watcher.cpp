#include "watchers/trace_watcher.hpp"

#include "profile/metrics.hpp"

namespace synapse::watchers {

namespace m = synapse::metrics;

void TraceWatcher::pre_process(const WatcherConfig& config) {
  Watcher::pre_process(config);
  if (!config.trace_path.empty()) {
    reader_ = std::make_unique<TraceReader>(config.trace_path);
  }
}

void TraceWatcher::sample(double now) {
  if (!reader_) return;
  const auto counters = reader_->read();
  if (!counters) return;

  profile::Sample s;
  s.set(m::kFlops, static_cast<double>(counters->flops));
  s.set(m::kInstructions, static_cast<double>(counters->instructions));
  s.set(m::kCyclesUsed, static_cast<double>(counters->cycles));
  s.set(m::kMemAllocated, static_cast<double>(counters->bytes_allocated));
  s.set(m::kMemFreed, static_cast<double>(counters->bytes_freed));
  record(now, std::move(s));
}

std::optional<double> TraceWatcher::activity_counter() {
  if (!reader_) return std::nullopt;
  const auto counters = reader_->read();
  if (!counters) return std::nullopt;
  return static_cast<double>(counters->flops) +
         static_cast<double>(counters->instructions);
}

bool TraceWatcher::has_data() const { return series_.last(m::kFlops) > 0; }

void TraceWatcher::finalize(const std::vector<const Watcher*>& all,
                            std::map<std::string, double>& totals) {
  (void)all;
  if (!has_data()) return;
  totals[std::string(m::kFlops)] = series_.last(m::kFlops);
  totals[std::string(m::kInstructions)] = series_.last(m::kInstructions);
  totals[std::string(m::kCyclesUsed)] = series_.last(m::kCyclesUsed);
}

}  // namespace synapse::watchers
