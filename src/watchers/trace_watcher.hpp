#pragma once
// Trace watcher: samples the cooperative analytic counters (trace.hpp).
//
// When the profiled application is one of Synapse's instrumented
// synthetic applications (or an emulation run), this watcher provides
// the FLOP/instruction/cycle series a hardware PMU would have produced.
// For true black boxes the trace file never appears and the watcher
// contributes nothing.

#include <memory>

#include "watchers/trace.hpp"
#include "watchers/watcher.hpp"

namespace synapse::watchers {

class TraceWatcher final : public Watcher {
 public:
  TraceWatcher() : Watcher("trace") {}

  void pre_process(const WatcherConfig& config) override;
  void sample(double now) override;
  void finalize(const std::vector<const Watcher*>& all,
                std::map<std::string, double>& totals) override;

  bool has_data() const;

 protected:
  /// Primary counter: published flops + instructions (either moves when
  /// the instrumented application does analytic work).
  std::optional<double> activity_counter() override;

 private:
  std::unique_ptr<TraceReader> reader_;
};

}  // namespace synapse::watchers
