#include "watchers/watcher.hpp"

namespace synapse::watchers {

const Watcher* find_watcher(const std::vector<const Watcher*>& all,
                            std::string_view name) {
  for (const Watcher* w : all) {
    if (w != nullptr && w->name() == name) return w;
  }
  return nullptr;
}

}  // namespace synapse::watchers
