#pragma once
// Watcher plugin interface (paper section 4.1).
//
// Each watcher observes one type of system resource of the profiled
// process and runs in its own thread:
//
//   pre_process()  - set up the profiling environment
//   sample(now)    - invoked at the configured rate by the run loop
//   post_process() - tear down
//   finalize(all)  - may access the raw results of *other* watchers to
//                    derive totals without duplicating measurements
//
// Timestamps are taken per watcher and never synchronised across
// watchers (the paper found synchronisation overhead worse than drift).

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "profile/profile.hpp"

namespace synapse::watchers {

/// Configuration shared by all watchers of one profiling run.
struct WatcherConfig {
  pid_t pid = 0;               ///< observed process
  double sample_rate_hz = 10;  ///< global sampling rate
  /// Adaptive sampling (paper section 6 "Sampling Rate", implemented as
  /// an extension): sample at `sample_rate_hz` for `adaptive_window_s`
  /// seconds, then decay to `adaptive_floor_hz`.
  bool adaptive = false;
  double adaptive_window_s = 2.0;
  double adaptive_floor_hz = 1.0;
  /// Estimate I/O block sizes from byte/op deltas (blktrace stand-in).
  bool estimate_block_sizes = true;
  /// Path of the cooperative counter trace file ("" disables).
  std::string trace_path;
  /// Per-watcher sampling-rate overrides (watcher name -> Hz); watchers
  /// not listed sample at the global `sample_rate_hz`.
  std::map<std::string, double> rate_overrides;

  /// Effective sampling rate of one watcher (always > 0).
  double rate_for(const std::string& watcher) const {
    const auto it = rate_overrides.find(watcher);
    const double rate =
        it != rate_overrides.end() ? it->second : sample_rate_hz;
    return rate > 0 ? rate : 1.0;
  }
};

class Watcher {
 public:
  explicit Watcher(std::string name) : name_(std::move(name)) {
    series_.watcher = name_;
  }
  virtual ~Watcher() = default;

  const std::string& name() const { return name_; }

  virtual void pre_process(const WatcherConfig& config) { config_ = config; }

  /// Take one sample at wall-clock time `now`. Must be cheap and must
  /// never throw: a vanished process is recorded as a missed sample.
  virtual void sample(double now) = 0;

  virtual void post_process() {}

  /// Contribute totals; may inspect other watchers' series.
  virtual void finalize(const std::vector<const Watcher*>& all,
                        std::map<std::string, double>& totals) {
    (void)all;
    (void)totals;
  }

  /// The samples collected so far (owned by the watcher).
  const profile::TimeSeries& series() const { return series_; }

 protected:
  /// Append a sample (helper for subclasses).
  void record(double now, profile::Sample sample) {
    sample.timestamp = now;
    series_.samples.push_back(std::move(sample));
  }

  WatcherConfig config_;
  profile::TimeSeries series_;

 private:
  std::string name_;
};

/// Find a sibling watcher by name in the finalize() argument.
const Watcher* find_watcher(const std::vector<const Watcher*>& all,
                            std::string_view name);

}  // namespace synapse::watchers
