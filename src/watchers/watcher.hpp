#pragma once
// Watcher plugin interface (paper section 4.1).
//
// Each watcher observes one type of system resource of the profiled
// process and runs in its own thread:
//
//   pre_process()  - set up the profiling environment
//   sample(now)    - invoked at the configured rate by the run loop
//   post_process() - tear down
//   finalize(all)  - may access the raw results of *other* watchers to
//                    derive totals without duplicating measurements
//
// Timestamps are taken per watcher and never synchronised across
// watchers (the paper found synchronisation overhead worse than drift).

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "profile/profile.hpp"

namespace synapse::watchers {

/// Open/close-gate parameters of one watcher under the Adaptive
/// scheduler (sampling_scheduler.hpp). The gate decides which of two
/// rates the watcher runs at:
///
///   closed - the watcher is only poll()ed at `floor_hz`; no samples are
///     taken, so an idle phase costs near-zero samples.
///   open   - full sample()s at `burst_hz`; poll() activity above
///     `open_threshold` keeps it open, `close_hold_s` of quiet closes it.
///
/// The defaults mirror the legacy startup-window decay they subsume
/// (adaptive_floor_hz=1, adaptive_window_s=2), so mapping old flags onto
/// the gate is the identity unless the user overrode them.
struct GateParams {
  double floor_hz = 1.0;  ///< poll rate while the gate is closed
  /// Sample rate while open; 0 = the watcher's configured sampling rate
  /// (rate_for), which is the resolved value everywhere downstream.
  double burst_hz = 0.0;
  /// poll() delta that counts as activity (strictly greater-than, so
  /// the default 0 opens on ANY positive counter movement).
  double open_threshold = 0.0;
  double close_hold_s = 2.0;  ///< quiet time before the gate closes
};

/// Configuration shared by all watchers of one profiling run.
struct WatcherConfig {
  pid_t pid = 0;               ///< observed process
  double sample_rate_hz = 10;  ///< global sampling rate
  /// Adaptive sampling (paper section 6 "Sampling Rate", implemented as
  /// an extension): sample at `sample_rate_hz` for `adaptive_window_s`
  /// seconds, then decay to `adaptive_floor_hz`.
  ///
  /// Under SchedulerMode::Adaptive these legacy knobs are subsumed by
  /// the gate (Profiler maps adaptive_floor_hz -> gate.floor_hz and
  /// adaptive_window_s -> gate.close_hold_s); the decay itself only
  /// applies in the thread/multiplexed modes.
  bool adaptive = false;
  double adaptive_window_s = 2.0;
  double adaptive_floor_hz = 1.0;
  /// Gate defaults for SchedulerMode::Adaptive, plus per-watcher
  /// overrides (watcher name -> params); ignored by the other modes.
  GateParams gate;
  std::map<std::string, GateParams> gate_overrides;
  /// Estimate I/O block sizes from byte/op deltas (blktrace stand-in).
  bool estimate_block_sizes = true;
  /// Path of the cooperative counter trace file ("" disables).
  std::string trace_path;
  /// Per-watcher sampling-rate overrides (watcher name -> Hz); watchers
  /// not listed sample at the global `sample_rate_hz`.
  std::map<std::string, double> rate_overrides;

  /// Configured sampling rate of one watcher. Non-positive rates are
  /// rejected with sys::ConfigError at Profiler::prepare_run() time;
  /// direct scheduler users get the scheduler's defensive 1 Hz fallback
  /// instead of a silent clamp here.
  double rate_for(const std::string& watcher) const {
    const auto it = rate_overrides.find(watcher);
    return it != rate_overrides.end() ? it->second : sample_rate_hz;
  }

  /// Resolved gate of one watcher: the per-watcher override when
  /// present, else the shared defaults, with burst_hz=0 resolved to the
  /// watcher's configured sampling rate.
  GateParams gate_for(const std::string& watcher) const {
    const auto it = gate_overrides.find(watcher);
    GateParams g = it != gate_overrides.end() ? it->second : gate;
    if (g.burst_hz <= 0.0) g.burst_hz = rate_for(watcher);
    return g;
  }
};

class Watcher {
 public:
  explicit Watcher(std::string name) : name_(std::move(name)) {
    series_.watcher = name_;
  }
  virtual ~Watcher() = default;

  const std::string& name() const { return name_; }

  virtual void pre_process(const WatcherConfig& config) { config_ = config; }

  /// Take one sample at wall-clock time `now`. Must be cheap and must
  /// never throw: a vanished process is recorded as a missed sample.
  virtual void sample(double now) = 0;

  virtual void post_process() {}

  /// Cheap activity probe for the Adaptive scheduler's gate: |delta| of
  /// the watcher's primary cumulative counter since the last poll().
  /// Returns 0.0 on the first call (it establishes the baseline) and
  /// whenever the counter is unreadable (vanished process). Costs one
  /// counter read — no sample is recorded, no allocation beyond the
  /// procfs read itself.
  double poll() {
    const std::optional<double> v = activity_counter();
    if (!v.has_value()) return 0.0;
    if (!polled_) {
      polled_ = true;
      poll_baseline_ = *v;
      return 0.0;
    }
    const double delta = std::fabs(*v - poll_baseline_);
    poll_baseline_ = *v;
    return delta;
  }

  /// Contribute totals; may inspect other watchers' series.
  virtual void finalize(const std::vector<const Watcher*>& all,
                        std::map<std::string, double>& totals) {
    (void)all;
    (void)totals;
  }

  /// The samples collected so far (owned by the watcher).
  const profile::TimeSeries& series() const { return series_; }

 protected:
  /// The primary cumulative counter poll() differences: each built-in
  /// returns its cheapest always-moving-under-load counter (cpu: CPU
  /// ticks, io: bytes requested, net: interface bytes, ...). nullopt =
  /// unreadable right now; the base default keeps the gate permanently
  /// quiet for watchers that do not implement a probe.
  virtual std::optional<double> activity_counter() { return std::nullopt; }

  /// Append a sample (helper for subclasses).
  void record(double now, profile::Sample sample) {
    sample.timestamp = now;
    series_.samples.push_back(std::move(sample));
  }

  WatcherConfig config_;
  profile::TimeSeries series_;

 private:
  std::string name_;
  bool polled_ = false;
  double poll_baseline_ = 0.0;
};

/// Find a sibling watcher by name in the finalize() argument.
const Watcher* find_watcher(const std::vector<const Watcher*>& all,
                            std::string_view name);

}  // namespace synapse::watchers
