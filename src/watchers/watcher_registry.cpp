#include "watchers/watcher_registry.hpp"

#include "sys/error.hpp"
#include "watchers/cpu_watcher.hpp"
#include "watchers/io_watcher.hpp"
#include "watchers/mem_watcher.hpp"
#include "watchers/net_watcher.hpp"
#include "watchers/sys_watcher.hpp"
#include "watchers/trace_watcher.hpp"

namespace synapse::watchers {

WatcherRegistry::WatcherRegistry() {
  factories_["cpu"] = [](const WatcherBuildContext&) {
    return std::make_unique<CpuWatcher>();
  };
  factories_["mem"] = [](const WatcherBuildContext&) {
    return std::make_unique<MemWatcher>();
  };
  factories_["io"] = [](const WatcherBuildContext&) {
    return std::make_unique<IoWatcher>();
  };
  factories_["sys"] = [](const WatcherBuildContext&) {
    return std::make_unique<SysWatcher>();
  };
  factories_["trace"] = [](const WatcherBuildContext&) {
    return std::make_unique<TraceWatcher>();
  };
  factories_["net"] = [](const WatcherBuildContext& ctx) {
    return std::make_unique<NetWatcher>(ctx.net_include_loopback);
  };
}

WatcherRegistry& WatcherRegistry::instance() {
  static WatcherRegistry registry;
  return registry;
}

void WatcherRegistry::register_watcher(const std::string& name,
                                       Factory factory) {
  if (name.empty()) throw sys::ConfigError("watcher name must not be empty");
  if (!factory) throw sys::ConfigError("watcher factory must not be empty");
  factories_[name] = std::move(factory);
}

std::unique_ptr<Watcher> WatcherRegistry::create(
    const std::string& name, const WatcherBuildContext& context) const {
  ensure_registered(name);
  return factories_.at(name)(context);
}

void WatcherRegistry::ensure_registered(const std::string& name) const {
  if (factories_.count(name) != 0) return;
  std::string known;
  for (const auto& [key, unused] : factories_) {
    if (!known.empty()) known += ", ";
    known += key;
  }
  throw sys::ConfigError("unknown watcher: " + name +
                         " (registered: " + known + ")");
}

bool WatcherRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> WatcherRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [key, unused] : factories_) out.push_back(key);
  return out;
}

const std::vector<std::string>& WatcherRegistry::builtin_names() {
  static const std::vector<std::string> names = {"cpu", "mem", "io",
                                                 "sys", "trace", "net"};
  return names;
}

const std::vector<std::string>& WatcherRegistry::default_set() {
  static const std::vector<std::string> names = {"cpu", "mem", "io", "sys",
                                                 "trace"};
  return names;
}

}  // namespace synapse::watchers
