#pragma once
// Watcher registry: name -> factory for profiling watchers.
//
// The profiling-side twin of atoms::AtomRegistry: the profiler asks for
// watchers by name, and anything registered here — the six built-ins or
// a user-registered custom watcher — samples alongside them without the
// profiler knowing its type. ProfilerOptions::watcher_set selects the
// set declaratively (empty = default_set()), the same way
// EmulatorOptions::atom_set selects atoms.
//
// Built-ins: "cpu", "mem", "io", "sys", "trace" and "net". The network
// watcher closes the paper's Table 1 "(-)" row; it attributes
// system-wide /proc/net/dev deltas to the observed process (documented
// approximation, see net_watcher.hpp), so it is registered but NOT part
// of the default set.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "watchers/watcher.hpp"

namespace synapse::watchers {

/// Per-run configuration handed to watcher factories. The profiler
/// fills it from ProfilerOptions; standalone users fill it directly.
struct WatcherBuildContext {
  /// Count loopback traffic in the net watcher (Synapse's own network
  /// atom emulates over loopback, so profiling an emulation wants it).
  bool net_include_loopback = true;
};

class WatcherRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Watcher>(const WatcherBuildContext&)>;

  /// The process-wide registry with the built-ins pre-registered.
  /// Runtime registrations here are visible to every Profiler that does
  /// not inject its own registry.
  static WatcherRegistry& instance();

  /// A fresh registry seeded with the built-in factories. Use this (and
  /// inject it via ProfilerOptions::registry) to scope custom watchers
  /// to one profiler.
  WatcherRegistry();

  /// Register or replace a factory. Registering a name that already
  /// exists overrides it — this is how a user swaps a built-in for a
  /// custom implementation.
  void register_watcher(const std::string& name, Factory factory);

  /// Instantiate one watcher. Throws sys::ConfigError for unknown names
  /// (the message lists what is registered).
  std::unique_ptr<Watcher> create(const std::string& name,
                                  const WatcherBuildContext& context) const;

  /// Throw the same ConfigError as create() for an unknown name,
  /// without instantiating anything — lets the profiler validate a
  /// whole watcher set before spawning the application.
  void ensure_registered(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// All built-in watchers, in the profiler's attach order.
  static const std::vector<std::string>& builtin_names();

  /// The built-ins a default-constructed profiler attaches: everything
  /// except "net", whose system-wide attribution is opt-in.
  static const std::vector<std::string>& default_set();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace synapse::watchers
