#include "workload/scenario.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cmath>

#include "emulator/replay_engine.hpp"
#include "profile/metrics.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace synapse::workload {

namespace m = synapse::metrics;

namespace {

std::string scenario_prefix(const std::string& name) {
  return "scenario '" + (name.empty() ? "<unnamed>" : name) + "': ";
}

/// get_or would silently substitute the default for a wrong-typed
/// field; a misspelt value deserves the same diagnostic as a malformed
/// one.
double require_number(const json::Value& v, const std::string& key,
                      double dflt, const std::string& prefix) {
  if (!v.contains(key)) return dflt;
  if (!v[key].is_number()) {
    throw sys::ConfigError(prefix + "'" + key + "' must be a number");
  }
  return v[key].as_double();
}

/// Watcher bucket for a metric: the prefix before the first '.'
/// ("compute.cycles_used" -> "compute"). Synthetic series are grouped
/// per watcher like real profiles; sample_deltas() merges them on the
/// common time origin either way.
std::string watcher_of(const std::string& metric) {
  const auto dot = metric.find('.');
  return dot == std::string::npos ? metric : metric.substr(0, dot);
}

/// "Still the compiled-in defaults" is the precedence test both the
/// scheduler and the gate use: a caller that touched any field keeps it.
bool gate_is_default(const watchers::GateParams& g) {
  const watchers::GateParams d;
  return g.floor_hz == d.floor_hz && g.burst_hz == d.burst_hz &&
         g.open_threshold == d.open_threshold &&
         g.close_hold_s == d.close_hold_s;
}

}  // namespace

void ScenarioSpec::validate(
    const atoms::AtomRegistry& registry,
    const watchers::WatcherRegistry* watcher_registry) const {
  const std::string prefix = scenario_prefix(name);
  if (name.empty()) {
    throw sys::ConfigError(prefix + "missing a name");
  }
  if (atom_set.empty()) {
    throw sys::ConfigError(prefix + "atom set is empty");
  }
  if (source.samples == 0) {
    throw sys::ConfigError(prefix + "needs at least one sample");
  }
  if (!(source.sample_rate_hz > 0.0) ||
      !std::isfinite(source.sample_rate_hz)) {
    throw sys::ConfigError(prefix + "sample_rate_hz must be positive");
  }
  if (repetitions < 1) {
    throw sys::ConfigError(prefix + "repetitions must be >= 1");
  }
  if (source.deltas.empty()) {
    // Without deltas the synthetic profile has no series at all and
    // would "successfully" replay zero samples.
    throw sys::ConfigError(prefix +
                           "needs at least one per-sample delta metric");
  }
  for (const auto& [metric, value] : source.deltas) {
    if (!std::isfinite(value) || value < 0.0) {
      throw sys::ConfigError(prefix + "delta for '" + metric +
                             "' must be finite and >= 0");
    }
  }
  for (const auto& scale : {cycle_scale, memory_scale, io_scale}) {
    if (!std::isfinite(scale) || scale <= 0.0) {
      throw sys::ConfigError(prefix + "scales must be finite and > 0");
    }
  }
  if (!scheduler.empty()) {
    try {
      watchers::scheduler_mode_from_string(scheduler);
    } catch (const sys::ConfigError& e) {
      throw sys::ConfigError(prefix + e.what());
    }
  }
  if (!(gate.floor_hz > 0.0) || !std::isfinite(gate.floor_hz)) {
    throw sys::ConfigError(prefix + "gate floor_hz must be a positive rate");
  }
  if (gate.burst_hz < 0.0 || !std::isfinite(gate.burst_hz)) {
    throw sys::ConfigError(
        prefix + "gate burst_hz must be >= 0 (0 = the sampling rate)");
  }
  if (gate.open_threshold < 0.0 || !std::isfinite(gate.open_threshold)) {
    throw sys::ConfigError(prefix + "gate open_threshold must be >= 0");
  }
  if (gate.close_hold_s < 0.0 || !std::isfinite(gate.close_hold_s)) {
    throw sys::ConfigError(prefix + "gate close_hold_s must be >= 0");
  }
  for (const auto& atom : atom_set) {
    registry.ensure_registered(atom);  // throws with the registered list
  }
  const watchers::WatcherRegistry& wreg =
      watcher_registry != nullptr ? *watcher_registry
                                  : watchers::WatcherRegistry::instance();
  for (const auto& watcher : watchers) {
    wreg.ensure_registered(watcher);
  }
}

profile::Profile ScenarioSpec::make_profile() const {
  profile::Profile p;
  p.command = "scenario:" + name;
  p.tags = tags;
  p.sample_rate_hz = source.sample_rate_hz;
  const double period = 1.0 / source.sample_rate_hz;

  // One series per watcher prefix, cumulative counters summed up.
  std::map<std::string, profile::TimeSeries> by_watcher;
  std::map<std::string, double> cumulative;
  for (size_t i = 0; i < source.samples; ++i) {
    const double timestamp = static_cast<double>(i) * period;
    for (const auto& [metric, per_sample] : source.deltas) {
      auto& series = by_watcher[watcher_of(metric)];
      if (series.watcher.empty()) series.watcher = watcher_of(metric);
      if (series.samples.size() <= i) {
        profile::Sample s;
        s.timestamp = timestamp;
        series.samples.push_back(std::move(s));
      }
      if (profile::is_instantaneous_metric(metric)) {
        series.samples[i].set(metric, per_sample);
      } else {
        cumulative[metric] += per_sample;
        series.samples[i].set(metric, cumulative[metric]);
      }
    }
  }
  for (auto& [watcher, series] : by_watcher) {
    p.series.push_back(std::move(series));
  }

  const double runtime = static_cast<double>(source.samples) * period;
  p.totals[std::string(m::kRuntime)] = runtime;
  for (const auto& [metric, value] : cumulative) {
    p.totals[metric] = value;
  }
  return p;
}

emulator::EmulatorOptions ScenarioSpec::make_options(
    emulator::EmulatorOptions base) const {
  // An explicit --atoms selection on the command line outranks the
  // scenario's own set (same precedence as atom_set over the flags).
  if (base.atom_set.empty()) base.atom_set = atom_set;
  // Same precedence for the replay feed mode: the scenario's requested
  // batch size (including an explicit 1 = pin single mode) applies only
  // when the base options left it unset (0); an explicit --replay-batch
  // outranks the scenario either way.
  if (base.replay_batch == 0 && replay_batch >= 1) {
    base.replay_batch = replay_batch;
  }
  base.cycle_scale *= cycle_scale;
  base.memory_scale *= memory_scale;
  base.io_scale *= io_scale;
  return base;
}

json::Value ScenarioSpec::to_json() const {
  json::Object root;
  root["name"] = name;
  root["description"] = description;
  json::Array atoms;
  for (const auto& a : atom_set) atoms.push_back(a);
  root["atoms"] = std::move(atoms);
  if (!watchers.empty()) {
    json::Array jwatchers;
    for (const auto& w : watchers) jwatchers.push_back(w);
    root["watchers"] = std::move(jwatchers);
  }
  root["samples"] = source.samples;
  root["sample_rate_hz"] = source.sample_rate_hz;
  json::Object deltas;
  for (const auto& [metric, value] : source.deltas) deltas[metric] = value;
  root["deltas"] = std::move(deltas);
  root["repetitions"] = repetitions;
  if (replay_batch >= 1) root["replay_batch"] = replay_batch;
  if (!scheduler.empty()) root["scheduler"] = scheduler;
  if (!gate_is_default(gate)) {
    json::Object jg;
    jg["floor_hz"] = gate.floor_hz;
    jg["burst_hz"] = gate.burst_hz;
    jg["open_threshold"] = gate.open_threshold;
    jg["close_hold_s"] = gate.close_hold_s;
    root["gate"] = std::move(jg);
  }
  json::Array jtags;
  for (const auto& t : tags) jtags.push_back(t);
  root["tags"] = std::move(jtags);
  root["cycle_scale"] = cycle_scale;
  root["memory_scale"] = memory_scale;
  root["io_scale"] = io_scale;
  return json::Value(std::move(root));
}

ScenarioSpec ScenarioSpec::from_json(const json::Value& v) {
  if (!v.is_object()) {
    throw sys::ConfigError("scenario: top-level JSON value must be an object");
  }
  ScenarioSpec spec;
  spec.name = v.get_or("name", std::string());
  const std::string prefix = scenario_prefix(spec.name);
  spec.description = v.get_or("description", std::string());
  try {
    if (v.contains("atoms")) {
      for (const auto& a : v["atoms"].as_array()) {
        spec.atom_set.push_back(a.as_string());
      }
    }
    if (v.contains("watchers")) {
      for (const auto& w : v["watchers"].as_array()) {
        spec.watchers.push_back(w.as_string());
      }
    }
    // Range-check before casting: JSON numbers are doubles, and casting
    // a negative or huge value to an unsigned type is undefined
    // behaviour (and would turn a typo into an endless loop).
    const double samples_raw = require_number(v, "samples", 10.0, prefix);
    if (!(samples_raw >= 1.0) || samples_raw > 1e9 ||
        samples_raw != std::floor(samples_raw)) {
      throw sys::ConfigError(prefix +
                             "'samples' must be an integer in [1, 1e9]");
    }
    spec.source.samples = static_cast<size_t>(samples_raw);
    spec.source.sample_rate_hz =
        require_number(v, "sample_rate_hz", 10.0, prefix);
    if (v.contains("deltas")) {
      for (const auto& [metric, value] : v["deltas"].as_object()) {
        spec.source.deltas[metric] = value.as_double();
      }
    }
    const double reps_raw = require_number(v, "repetitions", 1.0, prefix);
    if (!(reps_raw >= 1.0) || reps_raw > 1e6 ||
        reps_raw != std::floor(reps_raw)) {
      throw sys::ConfigError(prefix +
                             "'repetitions' must be an integer in [1, 1e6]");
    }
    spec.repetitions = static_cast<int>(reps_raw);
    const double batch_raw = require_number(v, "replay_batch", 0.0, prefix);
    if (batch_raw < 0.0 || batch_raw > 1e6 ||
        batch_raw != std::floor(batch_raw)) {
      throw sys::ConfigError(prefix +
                             "'replay_batch' must be an integer in [0, 1e6]");
    }
    spec.replay_batch = static_cast<size_t>(batch_raw);
    spec.scheduler = v.get_or("scheduler", std::string());
    if (v.contains("gate")) {
      const json::Value& jg = v["gate"];
      if (!jg.is_object()) {
        throw sys::ConfigError(prefix + "'gate' must be an object");
      }
      const watchers::GateParams d;
      spec.gate.floor_hz =
          require_number(jg, "floor_hz", d.floor_hz, prefix);
      spec.gate.burst_hz =
          require_number(jg, "burst_hz", d.burst_hz, prefix);
      spec.gate.open_threshold =
          require_number(jg, "open_threshold", d.open_threshold, prefix);
      spec.gate.close_hold_s =
          require_number(jg, "close_hold_s", d.close_hold_s, prefix);
    }
    if (v.contains("tags")) {
      for (const auto& t : v["tags"].as_array()) {
        spec.tags.push_back(t.as_string());
      }
    }
    spec.cycle_scale = require_number(v, "cycle_scale", 1.0, prefix);
    spec.memory_scale = require_number(v, "memory_scale", 1.0, prefix);
    spec.io_scale = require_number(v, "io_scale", 1.0, prefix);
  } catch (const json::JsonError& e) {
    throw sys::ConfigError(prefix + "malformed field: " + e.what());
  }
  if (spec.name.empty()) {
    throw sys::ConfigError("scenario: missing required field 'name'");
  }
  if (spec.atom_set.empty()) {
    throw sys::ConfigError(prefix +
                           "missing required field 'atoms' (non-empty list)");
  }
  return spec;
}

// --- built-in catalog -------------------------------------------------------

namespace {

ScenarioSpec make_builtin(const char* name, const char* description,
                          std::vector<std::string> atoms, size_t samples,
                          std::map<std::string, double> deltas,
                          std::vector<std::string> tags) {
  ScenarioSpec s;
  s.name = name;
  s.description = description;
  s.atom_set = std::move(atoms);
  s.source.samples = samples;
  s.source.sample_rate_hz = 10.0;
  s.source.deltas = std::move(deltas);
  s.tags = std::move(tags);
  return s;
}

std::vector<ScenarioSpec> make_catalog() {
  std::vector<ScenarioSpec> catalog;
  // Budgets are deliberately small: every scenario replays in well
  // under a second, so the full catalog sweeps quickly in tests/CI.
  catalog.push_back(make_builtin(
      "cpu-bound", "pure compute kernel, no memory or I/O traffic",
      {"compute"}, 20, {{std::string(m::kCyclesUsed), 5e6}},
      {"builtin", "compute"}));
  catalog.push_back(make_builtin(
      "memory-bound", "malloc/free churn with a rising resident set",
      {"memory"}, 10,
      {{std::string(m::kMemAllocated), 8.0 * 1024 * 1024},
       {std::string(m::kMemFreed), 4.0 * 1024 * 1024}},
      {"builtin", "memory"}));
  catalog.push_back(make_builtin(
      "io-granularity", "steady read/write stream (paper E.5 block-size dims)",
      {"storage"}, 10,
      {{std::string(m::kBytesWritten), 256.0 * 1024},
       {std::string(m::kBytesRead), 128.0 * 1024}},
      {"builtin", "storage"}));
  catalog.push_back(make_builtin(
      "network-loopback", "socket traffic over loopback (section 4.5 IPC)",
      {"network"}, 8, {{std::string(m::kNetBytesWritten), 64.0 * 1024}},
      {"builtin", "network"}));
  // Table 1 "(-)" closure: profiling this scenario records the replayed
  // loopback traffic through the net watcher, and the recorded profile
  // replays again — the full profile-then-emulate round trip.
  catalog.back().watchers = {"cpu", "net"};
  catalog.push_back(make_builtin(
      "mixed-mdsim-like", "compute + memory + storage mix shaped like mdsim",
      {"compute", "memory", "storage"}, 16,
      {{std::string(m::kCyclesUsed), 2e6},
       {std::string(m::kMemAllocated), 2.0 * 1024 * 1024},
       {std::string(m::kMemFreed), 1.0 * 1024 * 1024},
       {std::string(m::kBytesWritten), 64.0 * 1024},
       {std::string(m::kBytesRead), 32.0 * 1024}},
      {"builtin", "mixed", "mdsim"}));
  return catalog;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> catalog = make_catalog();
  return catalog;
}

const ScenarioSpec* find_builtin(const std::string& name) {
  for (const auto& s : builtin_scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

ScenarioSpec resolve_scenario(const std::string& name_or_path) {
  if (const ScenarioSpec* builtin = find_builtin(name_or_path)) {
    return *builtin;
  }
  struct stat st {};
  if (::stat(name_or_path.c_str(), &st) != 0) {
    std::string known;
    for (const auto& s : builtin_scenarios()) {
      if (!known.empty()) known += ", ";
      known += s.name;
    }
    throw sys::ConfigError("scenario '" + name_or_path +
                           "' is neither a built-in (" + known +
                           ") nor a readable file");
  }
  try {
    return ScenarioSpec::from_json(json::load_file(name_or_path));
  } catch (const sys::ConfigError&) {
    throw;  // already carries a scenario diagnostic
  } catch (const std::exception& e) {
    throw sys::ConfigError("scenario file '" + name_or_path +
                           "': " + e.what());
  }
}

// --- running ----------------------------------------------------------------

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const emulator::EmulatorOptions& base,
                            const atoms::AtomRegistry* registry) {
  const atoms::AtomRegistry& reg =
      registry != nullptr ? *registry : atoms::AtomRegistry::instance();
  spec.validate(reg);

  const emulator::EmulatorOptions options = spec.make_options(base);
  const profile::Profile profile = spec.make_profile();
  emulator::Emulator emulator(options, registry);

  ScenarioResult out;
  out.scenario = spec.name;
  out.repetitions = spec.repetitions;
  for (int rep = 0; rep < spec.repetitions; ++rep) {
    const emulator::EmulationResult r = emulator.emulate(profile);
    out.result.wall_seconds += r.wall_seconds;
    out.result.startup_seconds += r.startup_seconds;
    out.result.samples_replayed += r.samples_replayed;
    // The worst repetition wins: a rank failure in any repetition must
    // stay visible in the aggregate.
    out.result.ranks_ok =
        rep == 0 ? r.ranks_ok : std::min(out.result.ranks_ok, r.ranks_ok);
    out.result.comm_bytes += r.comm_bytes;
    for (const auto& [atom, stats] : r.atom_stats) {
      atoms::accumulate(out.result.atom_stats[atom], stats);
      emulator::ReplayEngine::mirror_builtin_stats(
          out.result, atom, out.result.atom_stats[atom]);
    }
  }
  return out;
}

profile::Profile profile_scenario(const ScenarioSpec& spec,
                                  watchers::ProfilerOptions popts,
                                  const emulator::EmulatorOptions& base,
                                  const atoms::AtomRegistry* registry) {
  const atoms::AtomRegistry& reg =
      registry != nullptr ? *registry : atoms::AtomRegistry::instance();
  // Watcher names must resolve through the registry the profiler below
  // will actually use — a scoped registry may hold custom watchers the
  // process-wide one does not.
  spec.validate(reg, popts.registry);
  if (popts.watcher_set.empty()) popts.watcher_set = spec.watchers;
  // Scheduler + gate follow the replay_batch precedence: the scenario
  // speaks only where the caller kept the compiled-in defaults.
  if (!spec.scheduler.empty() &&
      popts.scheduler == watchers::SchedulerMode::ThreadPerWatcher) {
    popts.scheduler = watchers::scheduler_mode_from_string(spec.scheduler);
  }
  if (!gate_is_default(spec.gate) && gate_is_default(popts.gate)) {
    popts.gate = spec.gate;
  }

  watchers::Profiler profiler(std::move(popts));
  return profiler.profile_function(
      [&spec, &base, registry] {
        // Watcher attach window: small scenarios replay in milliseconds,
        // and on a loaded machine the watchers' baselines (taken after
        // the fork) would otherwise race the traffic they are supposed
        // to record. The pause mirrors the startup phase a real
        // application has before its hot loop.
        sys::sleep_for(0.05);
        run_scenario(spec, base, registry);
        return 0;
      },
      "scenario:" + spec.name, spec.tags);
}

}  // namespace synapse::workload
