#pragma once
// Scenario library: declarative, named emulation workloads.
//
// The ROADMAP's "richer scenario library" direction: a ScenarioSpec
// names an atom set (resolved through atoms::AtomRegistry, so custom
// atoms participate), a synthetic sample source, repetitions and tags —
// everything needed to drive the emulator without profiling a real
// application first. Scenarios load from JSON files or from the
// built-in catalog (cpu-bound, memory-bound, io-granularity,
// network-loopback, mixed-mdsim-like) and run via
// `synapse-emulate --scenario <name|file>`.
//
// This is the traffic generator for the sharded profile store and the
// future multi-node backends: each scenario is a reproducible stream of
// per-sample resource consumption.

#include <map>
#include <string>
#include <vector>

#include "atoms/atom_registry.hpp"
#include "emulator/emulator.hpp"
#include "json/json.hpp"
#include "profile/profile.hpp"
#include "watchers/profiler.hpp"

namespace synapse::workload {

/// Synthetic sample source: `samples` periods at `sample_rate_hz`, each
/// consuming the listed per-period metric deltas (canonical metric
/// names from profile/metrics.hpp; instantaneous metrics are taken as
/// absolute per-period values).
struct SampleSourceSpec {
  size_t samples = 10;
  double sample_rate_hz = 10.0;
  std::map<std::string, double> deltas;  ///< metric -> per-sample amount
};

/// One named scenario, JSON round-trippable.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::vector<std::string> atom_set;  ///< registry names, dispatch order
  /// Watcher set for profile-then-emulate round trips (names resolved
  /// through watchers::WatcherRegistry). Empty = the profiler's default
  /// set. Only consulted by profile_scenario(); plain run_scenario()
  /// never attaches watchers.
  std::vector<std::string> watchers;
  SampleSourceSpec source;
  int repetitions = 1;
  std::vector<std::string> tags;

  /// Replay feed mode this scenario asks for: >= 2 runs the emulation
  /// through the async batched pipeline with batches of this size
  /// (EmulatorOptions::replay_batch), 1 pins the single-sample feed,
  /// 0 (default) inherits the base options. A batch size the command
  /// line sets explicitly (--replay-batch, including an explicit 1)
  /// outranks this, like --atoms over atom_set.
  size_t replay_batch = 0;

  /// Sampling scheduler for profile-then-emulate round trips ("" =
  /// inherit): "thread", "multiplexed" or "adaptive"
  /// (watchers::scheduler_mode_from_string). Only consulted by
  /// profile_scenario(), and only while the caller's ProfilerOptions
  /// still carry the default mode — an explicit --scheduler wins, the
  /// same precedence replay_batch follows.
  std::string scheduler;
  /// Gate defaults for the adaptive scheduler (watchers::GateParams),
  /// applied under the same precedence: only when the caller left its
  /// own gate defaults untouched.
  watchers::GateParams gate;

  // Workload-override scales, multiplied into the base EmulatorOptions.
  double cycle_scale = 1.0;
  double memory_scale = 1.0;
  double io_scale = 1.0;

  /// Structural checks plus atom-set resolution through `registry` and
  /// watcher-set resolution through `watcher_registry` (nullptr = the
  /// process-wide WatcherRegistry::instance(); profile_scenario passes
  /// the scoped registry it will actually build watchers from).
  /// Throws sys::ConfigError with a diagnostic naming the scenario.
  void validate(const atoms::AtomRegistry& registry,
                const watchers::WatcherRegistry* watcher_registry =
                    nullptr) const;

  /// Materialize the synthetic sample source as a replayable Profile
  /// (cumulative counters for cumulative metrics, absolute values for
  /// instantaneous ones; command = "scenario:<name>").
  profile::Profile make_profile() const;

  /// Merge this scenario into `base` options: the scenario's atom_set
  /// applies unless `base` already selects atoms explicitly (a user's
  /// --atoms override wins), and the scales multiply.
  emulator::EmulatorOptions make_options(
      emulator::EmulatorOptions base = {}) const;

  json::Value to_json() const;
  /// Throws sys::ConfigError on structurally invalid specs (missing
  /// name, empty atom list, non-positive rate/samples/repetitions, ...).
  static ScenarioSpec from_json(const json::Value& v);
};

/// The built-in catalog, resolvable by name.
const std::vector<ScenarioSpec>& builtin_scenarios();

/// nullptr when `name` is not a built-in.
const ScenarioSpec* find_builtin(const std::string& name);

/// Resolve a `--scenario` argument: a built-in name, otherwise a JSON
/// file path. Throws sys::ConfigError (never crashes) on unknown names,
/// unreadable files and malformed JSON, with a diagnostic message.
ScenarioSpec resolve_scenario(const std::string& name_or_path);

/// Outcome of a scenario run: per-atom stats aggregated over all
/// repetitions (the named built-in mirrors of EmulationResult included).
struct ScenarioResult {
  std::string scenario;
  int repetitions = 0;
  emulator::EmulationResult result;
};

/// Validate, synthesize the profile once, and emulate it
/// `spec.repetitions` times with the merged options. `registry` =
/// nullptr uses the process-wide AtomRegistry::instance().
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const emulator::EmulatorOptions& base = {},
                            const atoms::AtomRegistry* registry = nullptr);

/// Profile-then-emulate round trip (the paper's Fig. 1 loop driven from
/// a scenario): run the scenario's emulation in a forked child with the
/// profiler attached and return the recorded profile
/// (command = "scenario:<name>", tagged with the scenario tags). The
/// watcher set is `popts.watcher_set` when non-empty, else the
/// scenario's own `watchers` field, else the profiler default — so a
/// scenario listing "net" records the replayed loopback traffic, and
/// the resulting profile feeds straight back into the emulator.
profile::Profile profile_scenario(const ScenarioSpec& spec,
                                  watchers::ProfilerOptions popts = {},
                                  const emulator::EmulatorOptions& base = {},
                                  const atoms::AtomRegistry* registry = nullptr);

}  // namespace synapse::workload
