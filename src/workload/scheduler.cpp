#include "workload/scheduler.hpp"

#include <mutex>
#include <thread>

#include "sys/clock.hpp"

namespace synapse::workload {

size_t WorkloadResult::failed_count() const {
  size_t n = 0;
  for (const auto& t : tasks) {
    if (!t.ok) ++n;
  }
  return n;
}

double WorkloadResult::utilization(int workers) const {
  if (makespan_seconds <= 0 || workers <= 0) return 0.0;
  double busy = 0.0;
  for (const auto& t : tasks) busy += t.busy_seconds;
  return busy / (makespan_seconds * static_cast<double>(workers));
}

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  if (options_.max_concurrent <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.max_concurrent = hw > 0 ? static_cast<int>(hw) : 4;
  }
}

WorkloadResult Scheduler::run(const Workload& workload) {
  workload.validate();

  WorkloadResult result;
  result.workload = workload.name();
  const double t0 = sys::steady_now();

  bool aborted = false;
  for (const auto& stage : workload.stages()) {
    if (aborted) break;

    // Work queue for this stage.
    std::atomic<size_t> next{0};
    std::mutex results_mutex;
    std::vector<TaskResult> stage_results;
    std::atomic<bool> stage_failed{false};

    auto worker = [&] {
      while (true) {
        const size_t index = next.fetch_add(1);
        if (index >= stage.tasks.size()) break;
        if (!options_.keep_going &&
            stage_failed.load(std::memory_order_relaxed)) {
          break;
        }
        const TaskSpec& task = stage.tasks[index];

        TaskResult tr;
        tr.name = task.name;
        tr.stage = stage.name;
        tr.start_seconds = sys::steady_now() - t0;
        try {
          emulator::Emulator emu(task.options, options_.atom_registry);
          for (int i = 0; i < task.iterations; ++i) {
            const auto r = emu.emulate(task.profile);
            tr.busy_seconds += r.wall_seconds;
            tr.samples_replayed += r.samples_replayed;
          }
          tr.ok = true;
        } catch (const std::exception& e) {
          tr.error = e.what();
          stage_failed.store(true, std::memory_order_relaxed);
        }
        tr.end_seconds = sys::steady_now() - t0;

        std::lock_guard lock(results_mutex);
        stage_results.push_back(std::move(tr));
      }
    };

    const int workers = std::min<int>(
        options_.max_concurrent, static_cast<int>(stage.tasks.size()));
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (auto& t : pool) t.join();

    for (auto& tr : stage_results) result.tasks.push_back(std::move(tr));
    result.stage_end_seconds.push_back(sys::steady_now() - t0);

    if (stage_failed.load() && !options_.keep_going) aborted = true;
  }

  result.makespan_seconds = sys::steady_now() - t0;
  return result;
}

}  // namespace synapse::workload
