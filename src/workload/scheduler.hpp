#pragma once
// Workload scheduler: runs ensemble stages with bounded concurrency.
//
// A small RADICAL-Pilot-Agent-like executor (paper section 2.1): a pool
// of worker threads pulls tasks from the current stage's queue, each
// task emulates its profile in-process, stages are barriers. Per-task
// timing feeds the utilization statistics that middleware developers use
// Synapse for in the first place.

#include <atomic>
#include <string>
#include <vector>

#include "atoms/atom_registry.hpp"
#include "workload/workload.hpp"

namespace synapse::workload {

/// Outcome of one task (over all its iterations).
struct TaskResult {
  std::string name;
  std::string stage;
  bool ok = false;
  double start_seconds = 0.0;   ///< relative to workload start
  double end_seconds = 0.0;
  double busy_seconds = 0.0;    ///< emulation wall time (sum of iterations)
  size_t samples_replayed = 0;
  std::string error;            ///< exception text when !ok

  double duration() const { return end_seconds - start_seconds; }
};

/// Outcome of a whole workload run.
struct WorkloadResult {
  std::string workload;
  double makespan_seconds = 0.0;
  std::vector<TaskResult> tasks;
  std::vector<double> stage_end_seconds;  ///< barrier times

  size_t failed_count() const;
  bool all_ok() const { return failed_count() == 0; }

  /// Worker utilization: total task busy time / (makespan x workers).
  double utilization(int workers) const;
};

struct SchedulerOptions {
  /// Concurrent tasks (the pilot's core count). <= 0 means hardware
  /// concurrency.
  int max_concurrent = 4;
  /// Continue the stage when a task fails (failed tasks are recorded);
  /// false aborts the remaining stages.
  bool keep_going = true;
  /// Atom registry the per-task emulators resolve atom names through
  /// (nullptr = the process-wide AtomRegistry::instance()). Lets an
  /// ensemble run custom atoms without touching emulator code; must
  /// outlive the scheduler run.
  const atoms::AtomRegistry* atom_registry = nullptr;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  /// Execute the workload; blocks until the last stage finishes.
  /// Throws ConfigError on invalid workloads.
  WorkloadResult run(const Workload& workload);

  const SchedulerOptions& options() const { return options_; }

 private:
  SchedulerOptions options_;
};

}  // namespace synapse::workload
