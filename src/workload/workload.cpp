#include "workload/workload.hpp"

#include <set>

#include "sys/error.hpp"

namespace synapse::workload {

Stage& Workload::add_stage(const std::string& stage_name) {
  stages_.push_back(Stage{stage_name, {}});
  return stages_.back();
}

void Workload::replicate_task(const TaskSpec& prototype, int count) {
  if (stages_.empty()) add_stage("stage-0");
  Stage& stage = stages_.back();
  for (int i = 0; i < count; ++i) {
    TaskSpec task = prototype;
    task.name = prototype.name + "-" + std::to_string(i);
    stage.tasks.push_back(std::move(task));
  }
}

size_t Workload::task_count() const {
  size_t n = 0;
  for (const auto& s : stages_) n += s.tasks.size();
  return n;
}

void Workload::validate() const {
  std::set<std::string> names;
  for (const auto& stage : stages_) {
    if (stage.tasks.empty()) {
      throw sys::ConfigError("workload stage '" + stage.name +
                             "' has no tasks");
    }
    for (const auto& task : stage.tasks) {
      if (task.name.empty()) {
        throw sys::ConfigError("workload task without a name in stage '" +
                               stage.name + "'");
      }
      if (!names.insert(task.name).second) {
        throw sys::ConfigError("duplicate task name: " + task.name);
      }
      if (task.iterations < 1) {
        throw sys::ConfigError("task '" + task.name +
                               "' has non-positive iterations");
      }
    }
  }
}

}  // namespace synapse::workload
