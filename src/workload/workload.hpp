#pragma once
// Ensemble workloads of emulated tasks.
//
// The paper's third use case (section 2.3, Ensemble Toolkit) motivates
// proxy applications whose "duration and number of task instances
// between different stages" can be varied freely, and the related-work
// discussion (Application Skeletons, ref. [24]) describes Synapse as the
// per-component configuration mechanism inside a task DAG. This module
// provides that layer: a Workload is an ordered list of Stages; a Stage
// is a set of Tasks that may run concurrently; a Task emulates one
// profile with per-task tuning overrides.
//
// The model matches Ensemble Toolkit's pipeline/stage/task structure:
// stages are barriers, tasks inside a stage are independent.

#include <map>
#include <string>
#include <vector>

#include "emulator/emulator.hpp"
#include "profile/profile.hpp"

namespace synapse::workload {

/// One emulated task instance.
struct TaskSpec {
  std::string name;               ///< unique within the workload
  profile::Profile profile;       ///< what to emulate
  emulator::EmulatorOptions options;  ///< per-task tuning (kernel, scales...)

  /// Repeat the emulation this many times back to back (ensemble
  /// members often iterate; 1 = run once).
  int iterations = 1;
};

/// Tasks that run concurrently, then barrier.
struct Stage {
  std::string name;
  std::vector<TaskSpec> tasks;
};

/// An ordered pipeline of stages.
class Workload {
 public:
  Workload() = default;
  explicit Workload(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Append a stage; returns it for task insertion.
  Stage& add_stage(const std::string& stage_name);

  /// Convenience: append `count` identical tasks (named name-0..N-1)
  /// to the last stage (creating "stage-0" if none exists).
  void replicate_task(const TaskSpec& prototype, int count);

  const std::vector<Stage>& stages() const { return stages_; }
  std::vector<Stage>& stages() { return stages_; }

  /// Total number of tasks across stages.
  size_t task_count() const;

  /// Validation: unique task names, at least one task per stage,
  /// positive iterations. Throws ConfigError.
  void validate() const;

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace synapse::workload
