// Adaptive scheduler under concurrent activity: workload threads drive
// the watchers' activity counters while the gate loop polls and
// samples. Runs in the concurrency suite (and under TSan in CI) to
// catch data races between the probe path and the sampling path.

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "sys/clock.hpp"
#include "watchers/sampling_scheduler.hpp"
#include "watchers/watcher.hpp"

namespace watchers = synapse::watchers;
namespace sys = synapse::sys;

namespace {

/// Activity counter fed from another thread; sample() reads it too, so
/// both scheduler paths touch the shared state the workload mutates.
class SharedCounterWatcher final : public watchers::Watcher {
 public:
  explicit SharedCounterWatcher(std::string name, std::atomic<long>* counter)
      : Watcher(std::move(name)), counter_(counter) {}

  void sample(double now) override {
    synapse::profile::Sample s;
    s.set("custom.shared", static_cast<double>(counter_->load()));
    record(now, std::move(s));
  }

 protected:
  std::optional<double> activity_counter() override {
    return static_cast<double>(counter_->load());
  }

 private:
  std::atomic<long>* counter_;
};

}  // namespace

TEST(AdaptiveGateConcurrency, WorkloadThreadsDriveGatesRaceFree) {
  constexpr int kWatchers = 4;
  std::vector<std::atomic<long>> counters(kWatchers);
  std::vector<std::unique_ptr<SharedCounterWatcher>> owned;
  std::vector<watchers::Watcher*> borrowed;
  for (int i = 0; i < kWatchers; ++i) {
    owned.push_back(std::make_unique<SharedCounterWatcher>(
        "shared" + std::to_string(i), &counters[i]));
    borrowed.push_back(owned.back().get());
  }

  watchers::WatcherConfig config;
  config.sample_rate_hz = 200.0;
  config.gate.floor_hz = 50.0;
  config.gate.close_hold_s = 0.05;

  watchers::SamplingScheduler scheduler(watchers::SchedulerMode::Adaptive);
  scheduler.start(borrowed, config);

  // Each workload thread alternates bursts and quiet so every gate
  // opens, closes and reopens while the others are mid-transition.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < kWatchers; ++i) {
    workers.emplace_back([&, i] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < 20 && !stop.load(std::memory_order_relaxed);
             ++k) {
          counters[i].fetch_add(1);
          sys::sleep_for(0.002);
        }
        sys::sleep_for(0.08);  // quiet: past close_hold_s
      }
    });
  }
  sys::sleep_for(0.6);
  stop.store(true);
  for (auto& t : workers) t.join();
  scheduler.stop();

  for (const auto& w : owned) {
    const auto& ts = w->series();
    // Every watcher sampled (startup burst + closing sample at least)
    // and timestamps are strictly ordered — the gate loop never raced
    // its own series.
    ASSERT_GE(ts.size(), 2u) << w->name();
    for (size_t i = 1; i < ts.samples.size(); ++i) {
      EXPECT_LE(ts.samples[i - 1].timestamp, ts.samples[i].timestamp)
          << w->name();
    }
  }
}
