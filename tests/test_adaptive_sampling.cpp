// Adaptive (edge-triggered) sampling coverage: Watcher::poll()
// semantics, gate resolution, the Adaptive scheduler's open/close state
// machine, and the Profiler-level wiring (validation diagnostics,
// variable-rate series metadata, legacy flag mapping).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"
#include "watchers/profiler.hpp"
#include "watchers/sampling_scheduler.hpp"
#include "watchers/watcher.hpp"

namespace watchers = synapse::watchers;
namespace resource = synapse::resource;
namespace sys = synapse::sys;

namespace {

struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

/// Watcher whose activity counter is a test-controlled value; records
/// the counter into a metric on every sample so the series mirrors the
/// gate's decisions. The counter is atomic so a workload thread can
/// drive activity while the scheduler thread polls.
class PulseWatcher final : public watchers::Watcher {
 public:
  PulseWatcher() : Watcher("pulse") {}

  void sample(double now) override {
    synapse::profile::Sample s;
    s.set("custom.pulse", static_cast<double>(counter_.load()));
    record(now, std::move(s));
  }

  void bump(long amount = 1) { counter_.fetch_add(amount); }
  void set_unreadable(bool v) { unreadable_.store(v); }

 protected:
  std::optional<double> activity_counter() override {
    if (unreadable_.load()) return std::nullopt;
    return static_cast<double>(counter_.load());
  }

 private:
  std::atomic<long> counter_{0};
  std::atomic<bool> unreadable_{false};
};

std::vector<double> gaps_of(const synapse::profile::TimeSeries& ts) {
  std::vector<double> gaps;
  for (size_t i = 1; i < ts.samples.size(); ++i) {
    gaps.push_back(ts.samples[i].timestamp - ts.samples[i - 1].timestamp);
  }
  return gaps;
}

}  // namespace

TEST(WatcherPoll, FirstCallBaselinesThenReportsAbsoluteDelta) {
  PulseWatcher w;
  w.bump(100);
  EXPECT_DOUBLE_EQ(w.poll(), 0.0);  // baseline, not a 100-delta
  w.bump(7);
  EXPECT_DOUBLE_EQ(w.poll(), 7.0);
  EXPECT_DOUBLE_EQ(w.poll(), 0.0);  // no movement since
  w.bump(-3);
  EXPECT_DOUBLE_EQ(w.poll(), 3.0);  // |delta|, a shrinking counter counts
}

TEST(WatcherPoll, UnreadableCounterIsQuietNotAnEdge) {
  PulseWatcher w;
  w.poll();  // baseline
  w.bump(50);
  w.set_unreadable(true);
  EXPECT_DOUBLE_EQ(w.poll(), 0.0);  // vanished process: quiet, not 50
  w.set_unreadable(false);
  // Baseline survived the unreadable stretch; the movement registers.
  EXPECT_DOUBLE_EQ(w.poll(), 50.0);
}

TEST(WatcherPoll, BaseClassWithoutProbeStaysQuiet) {
  class NoProbe final : public watchers::Watcher {
   public:
    NoProbe() : Watcher("noprobe") {}
    void sample(double now) override { record(now, {}); }
  };
  NoProbe w;
  EXPECT_DOUBLE_EQ(w.poll(), 0.0);
  EXPECT_DOUBLE_EQ(w.poll(), 0.0);
}

TEST(GateParams, GateForResolvesOverridesAndBurstRate) {
  watchers::WatcherConfig config;
  config.sample_rate_hz = 25.0;
  config.rate_overrides["cpu"] = 80.0;
  config.gate.floor_hz = 2.0;
  config.gate.close_hold_s = 0.5;
  watchers::GateParams io_gate;
  io_gate.floor_hz = 0.25;
  io_gate.burst_hz = 40.0;
  io_gate.open_threshold = 4096.0;
  config.gate_overrides["io"] = io_gate;

  // Shared defaults, burst_hz=0 resolved to the watcher's rate.
  const auto mem = config.gate_for("mem");
  EXPECT_DOUBLE_EQ(mem.floor_hz, 2.0);
  EXPECT_DOUBLE_EQ(mem.burst_hz, 25.0);
  EXPECT_DOUBLE_EQ(mem.close_hold_s, 0.5);
  // ...including per-watcher rate overrides.
  EXPECT_DOUBLE_EQ(config.gate_for("cpu").burst_hz, 80.0);
  // Per-watcher gate override wins wholesale.
  const auto io = config.gate_for("io");
  EXPECT_DOUBLE_EQ(io.floor_hz, 0.25);
  EXPECT_DOUBLE_EQ(io.burst_hz, 40.0);
  EXPECT_DOUBLE_EQ(io.open_threshold, 4096.0);
}

TEST(SchedulerMode, AdaptiveParsesAndNamesRoundTrip) {
  EXPECT_EQ(watchers::scheduler_mode_from_string("adaptive"),
            watchers::SchedulerMode::Adaptive);
  for (const auto mode :
       {watchers::SchedulerMode::ThreadPerWatcher,
        watchers::SchedulerMode::Multiplexed,
        watchers::SchedulerMode::Adaptive}) {
    EXPECT_EQ(watchers::scheduler_mode_from_string(
                  watchers::scheduler_mode_name(mode)),
              mode);
  }
}

// An idle watcher: the startup burst is the only open phase. After
// close_hold_s of quiet the gate closes and the watcher is only polled,
// so the sample count stays far below burst_rate * runtime.
TEST(AdaptiveScheduler, IdleWatcherDecaysToFloorAfterStartupBurst) {
  PulseWatcher watcher;  // counter never moves: permanently quiet
  watchers::WatcherConfig config;
  config.sample_rate_hz = 100.0;  // burst rate (gate.burst_hz = 0)
  config.gate.floor_hz = 10.0;
  config.gate.close_hold_s = 0.1;

  watchers::SamplingScheduler scheduler(watchers::SchedulerMode::Adaptive);
  scheduler.start({&watcher}, config);
  sys::sleep_for(0.8);
  scheduler.stop();

  const auto& ts = watcher.series();
  // Open for ~0.1 s at <=100 Hz, then closed for ~0.7 s (no samples),
  // plus the closing sample. A fixed 100 Hz run would take ~80.
  EXPECT_GE(ts.size(), 2u);
  EXPECT_LE(ts.size(), 40u);
  // The closed stretch shows up as one large inter-sample gap.
  const auto gaps = gaps_of(ts);
  ASSERT_FALSE(gaps.empty());
  EXPECT_GE(*std::max_element(gaps.begin(), gaps.end()), 0.3);
}

// Edge-triggered reopen: a quiet stretch closes the gate, counter
// movement above the threshold reopens it and the burst is densely
// sampled again.
TEST(AdaptiveScheduler, EdgeReopensGateAndBurstIsDenselySampled) {
  PulseWatcher watcher;
  watchers::WatcherConfig config;
  config.sample_rate_hz = 100.0;
  config.gate.floor_hz = 20.0;  // <=50 ms edge-detection latency
  config.gate.close_hold_s = 0.15;

  watchers::SamplingScheduler scheduler(watchers::SchedulerMode::Adaptive);
  scheduler.start({&watcher}, config);
  sys::sleep_for(0.4);  // idle: startup burst closes after ~0.15 s
  const double burst_start = sys::wallclock_now();
  const double deadline = burst_start + 0.4;
  while (sys::wallclock_now() < deadline) {
    watcher.bump();
    sys::sleep_for(0.005);
  }
  sys::sleep_for(0.1);
  scheduler.stop();

  const auto& ts = watcher.series();
  const auto gaps = gaps_of(ts);
  ASSERT_GE(ts.size(), 8u);
  // The closed idle stretch: at least one gap well above the burst
  // period (10 ms) but the series kept sampling across the whole run.
  EXPECT_GE(*std::max_element(gaps.begin(), gaps.end()), 0.1);
  // Dense burst coverage: several samples landed inside the active
  // window at (near-)burst spacing.
  size_t in_burst = 0;
  for (const auto& s : ts.samples) {
    if (s.timestamp >= burst_start && s.timestamp <= deadline) ++in_burst;
  }
  EXPECT_GE(in_burst, 5u);
  // ...while the total stays adaptive: well under 100 Hz * ~0.9 s.
  EXPECT_LE(ts.size(), 70u);
}

TEST(Profiler, RejectsNonPositiveRateNamingTheWatcher) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.watcher_set = {"cpu", "mem"};
  opts.watcher_rates["mem"] = 0.0;
  watchers::Profiler profiler(opts);
  try {
    profiler.profile("sleep 5");
    FAIL() << "expected ConfigError";
  } catch (const sys::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("mem"), std::string::npos)
        << e.what();
  }
}

TEST(Profiler, RejectsNonPositiveGlobalRate) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.sample_rate_hz = -5.0;
  watchers::Profiler profiler(opts);
  EXPECT_THROW(profiler.profile("sleep 5"), sys::ConfigError);
}

TEST(Profiler, RejectsInvalidGateNamingTheWatcher) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.watcher_set = {"cpu", "io"};
  opts.watcher_gates["io"].floor_hz = -1.0;
  watchers::Profiler profiler(opts);
  try {
    profiler.profile("sleep 5");
    FAIL() << "expected ConfigError";
  } catch (const sys::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("io"), std::string::npos) << e.what();
  }
}

TEST(Profiler, AdaptiveRunRecordsVariableRateSeriesWithGateMetadata) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.scheduler = watchers::SchedulerMode::Adaptive;
  opts.sample_rate_hz = 50.0;
  opts.gate.floor_hz = 5.0;
  opts.gate.close_hold_s = 0.25;
  opts.watcher_set = {"cpu", "mem"};
  watchers::Profiler profiler(opts);
  const auto p = profiler.profile("sleep 0.4");

  EXPECT_TRUE(p.variable_rate());
  for (const auto& ts : p.series) {
    EXPECT_TRUE(ts.variable_rate) << ts.watcher;
    EXPECT_TRUE(ts.gate.any()) << ts.watcher;
    EXPECT_DOUBLE_EQ(ts.gate.floor_hz, 5.0);
    EXPECT_DOUBLE_EQ(ts.gate.burst_hz, 50.0);  // resolved from the rate
    EXPECT_DOUBLE_EQ(ts.gate.close_hold_s, 0.25);
    EXPECT_DOUBLE_EQ(ts.sample_rate_hz, 50.0);
  }
}

TEST(Profiler, FixedRateRunsRecordNoVariableRateFlag) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.scheduler = watchers::SchedulerMode::Multiplexed;
  opts.sample_rate_hz = 30.0;
  opts.watcher_set = {"cpu"};
  watchers::Profiler profiler(opts);
  const auto p = profiler.profile("sleep 0.2");
  EXPECT_FALSE(p.variable_rate());
  for (const auto& ts : p.series) {
    EXPECT_FALSE(ts.variable_rate);
    EXPECT_FALSE(ts.gate.any());
  }
}

// Old --adaptive flags keep their meaning under the new scheduler: the
// decay floor becomes the gate floor, the startup window the quiet hold.
TEST(Profiler, LegacyAdaptiveFlagsMapOntoTheGate) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.scheduler = watchers::SchedulerMode::Adaptive;
  opts.sample_rate_hz = 40.0;
  opts.adaptive = true;
  opts.adaptive_floor_hz = 3.5;
  opts.adaptive_window_s = 0.3;
  opts.watcher_set = {"mem"};
  watchers::Profiler profiler(opts);
  const auto p = profiler.profile("sleep 0.2");
  const auto* mem = p.find_series("mem");
  ASSERT_NE(mem, nullptr);
  EXPECT_DOUBLE_EQ(mem->gate.floor_hz, 3.5);
  EXPECT_DOUBLE_EQ(mem->gate.close_hold_s, 0.3);
}

// An explicit gate setting wins over the legacy mapping.
TEST(Profiler, ExplicitGateBeatsLegacyAdaptiveFlags) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.scheduler = watchers::SchedulerMode::Adaptive;
  opts.sample_rate_hz = 40.0;
  opts.adaptive = true;
  opts.adaptive_floor_hz = 3.5;
  opts.gate.floor_hz = 8.0;  // explicit: not the GateParams default
  opts.watcher_set = {"mem"};
  watchers::Profiler profiler(opts);
  const auto p = profiler.profile("sleep 0.2");
  const auto* mem = p.find_series("mem");
  ASSERT_NE(mem, nullptr);
  EXPECT_DOUBLE_EQ(mem->gate.floor_hz, 8.0);
}
