#include "apps/iobench.hpp"
#include "apps/mdsim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "resource/resource_spec.hpp"

namespace apps = synapse::apps;
namespace resource = synapse::resource;

namespace {
struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

apps::MdOptions quick_md(uint64_t steps) {
  apps::MdOptions o;
  o.steps = steps;
  o.scratch_dir = "/tmp";
  return o;
}
}  // namespace

TEST(MdSim, RunsAndReports) {
  HostGuard guard;
  const auto r = apps::run_md(quick_md(50));
  EXPECT_EQ(r.steps, 50u);
  EXPECT_EQ(r.particles, 400);
  EXPECT_GT(r.interactions, 0u);
  EXPECT_GT(r.model_flops, 0.0);
  EXPECT_GT(r.real_flops, 0.0);
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_TRUE(std::isfinite(r.energy));
  // LJ systems near equilibrium have negative potential energy.
  EXPECT_LT(r.energy, 0.0);
}

TEST(MdSim, WorkScalesLinearlyWithSteps) {
  HostGuard guard;
  const auto small = apps::run_md(quick_md(50));
  const auto large = apps::run_md(quick_md(200));
  const double ratio = large.model_flops / small.model_flops;
  EXPECT_NEAR(ratio, 4.0, 0.8);
}

TEST(MdSim, OutputScalesWithSteps) {
  HostGuard guard;
  auto opts = quick_md(200);
  opts.write_interval = 50;
  const auto r = apps::run_md(opts);
  // 4 frames x 400 particles x 3 doubles.
  EXPECT_EQ(r.bytes_written, 4u * 400 * 3 * sizeof(double));
}

TEST(MdSim, NoOutputFlag) {
  HostGuard guard;
  auto opts = quick_md(100);
  opts.write_output = false;
  EXPECT_EQ(apps::run_md(opts).bytes_written, 0u);
}

TEST(MdSim, DeterministicInteractionCount) {
  HostGuard guard;
  const auto a = apps::run_md(quick_md(80));
  const auto b = apps::run_md(quick_md(80));
  // Same seed, same trajectory, same pair count.
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(MdSim, PacedRunIsSlowerOnVirtualResource) {
  resource::activate_resource("titan");  // slow machine
  const auto slow = apps::run_md(quick_md(60));
  resource::activate_resource("host");
  const auto fast = apps::run_md(quick_md(60));
  EXPECT_GT(slow.wall_seconds, fast.wall_seconds * 1.5);
}

TEST(MdSim, AppOptimizationSpeedsUpApplication) {
  // Archer's toolchain factor (1.36) makes the *application* faster than
  // the otherwise-similar Stampede spec would suggest.
  resource::activate_resource("archer");
  const auto archer = apps::run_md(quick_md(60));
  resource::activate_resource("stampede");
  const auto stampede = apps::run_md(quick_md(60));
  resource::activate_resource("host");
  EXPECT_LT(archer.wall_seconds, stampede.wall_seconds);
}

TEST(MdSim, OpenMpThreadsReduceWallTime) {
  resource::activate_resource("titan");  // paced => speedup is visible
  auto serial = quick_md(80);
  serial.write_output = false;
  const auto r1 = apps::run_md(serial);

  auto parallel = serial;
  parallel.threads = 4;
  const auto r4 = apps::run_md(parallel);
  resource::activate_resource("host");
  EXPECT_LT(r4.wall_seconds, r1.wall_seconds * 0.6);
}

TEST(MdSim, RankModeCompletes) {
  HostGuard guard;
  auto opts = quick_md(40);
  opts.ranks = 3;
  const auto r = apps::run_md(opts);
  EXPECT_EQ(r.steps, 40u);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(MdSim, CliParsesAndRuns) {
  HostGuard guard;
  const char* argv[] = {"mdsim", "--steps", "30", "--particles", "200",
                        "--no-output", "--scratch", "/tmp"};
  EXPECT_EQ(apps::md_main(8, const_cast<char**>(argv)), 0);
}

TEST(MdSim, CliRejectsBadInput) {
  const char* bad_flag[] = {"mdsim", "--bogus"};
  EXPECT_EQ(apps::md_main(2, const_cast<char**>(bad_flag)), 2);
  const char* zero_steps[] = {"mdsim", "--steps", "0"};
  EXPECT_EQ(apps::md_main(3, const_cast<char**>(zero_steps)), 2);
}

TEST(IoBench, ByteAccounting) {
  HostGuard guard;
  apps::IoBenchOptions opts;
  opts.write_bytes = 4 * 1024 * 1024;
  opts.read_bytes = 2 * 1024 * 1024;
  opts.block_bytes = 1024 * 1024;
  opts.scratch_dir = "/tmp";
  const auto r = apps::run_iobench(opts);
  EXPECT_EQ(r.bytes_written, opts.write_bytes);
  EXPECT_EQ(r.bytes_read, opts.read_bytes);
  EXPECT_EQ(r.write_ops, 4u);
  EXPECT_EQ(r.read_ops, 2u);
  EXPECT_GT(r.write_bps(), 0.0);
  EXPECT_GT(r.read_bps(), 0.0);
}

TEST(IoBench, SmallBlocksAreSlowerOnSharedFs) {
  resource::activate_resource("supermic");
  apps::IoBenchOptions small;
  small.write_bytes = 1024 * 1024;
  small.read_bytes = 0;
  small.block_bytes = 64 * 1024;
  small.scratch_dir = "/tmp";
  const auto r_small = apps::run_iobench(small);

  apps::IoBenchOptions big = small;
  big.block_bytes = 1024 * 1024;
  const auto r_big = apps::run_iobench(big);
  resource::activate_resource("host");

  EXPECT_LT(r_small.write_bps(), r_big.write_bps());
}

TEST(IoBench, CliParsesAndRuns) {
  HostGuard guard;
  const char* argv[] = {"iobench", "--write", "1", "--read", "1",
                        "--block", "256", "--scratch", "/tmp"};
  EXPECT_EQ(apps::iobench_main(9, const_cast<char**>(argv)), 0);
  const char* bad[] = {"iobench", "--block", "0"};
  EXPECT_EQ(apps::iobench_main(3, const_cast<char**>(bad)), 2);
}

// --- physics invariants of the MD engine ------------------------------------

TEST(MdSimPhysics, MomentumStaysBounded) {
  // Velocity-Verlet with symmetric pair forces conserves momentum up to
  // the documented racy-accumulation deviation; serial runs (threads=1)
  // have no race and must stay tightly bounded. We proxy momentum
  // conservation through energy stability: a stable integrator keeps
  // the potential energy bounded (no blow-up) over thousands of steps.
  HostGuard guard;
  auto opts = quick_md(2000);
  opts.write_output = false;
  const auto r = apps::run_md(opts);
  EXPECT_TRUE(std::isfinite(r.energy));
  // Reduced-unit LJ at density 0.8: potential energy per particle stays
  // within a physical band; a diverged integrator produces huge values.
  const double per_particle = r.energy / r.particles;
  EXPECT_GT(per_particle, -10.0);
  EXPECT_LT(per_particle, 2.0);
}

TEST(MdSimPhysics, EnergyDependsOnSystemSizeNotSteps) {
  HostGuard guard;
  auto small = quick_md(300);
  small.write_output = false;
  auto r1 = apps::run_md(small);
  auto r2 = apps::run_md(small);
  // Deterministic: identical configurations give identical energies...
  EXPECT_DOUBLE_EQ(r1.energy, r2.energy);
  // ...and the per-particle energy is intensive: doubling the particle
  // count roughly preserves it.
  auto big = small;
  big.particles = 800;
  const auto r3 = apps::run_md(big);
  const double e_small = r1.energy / small.particles;
  const double e_big = r3.energy / big.particles;
  EXPECT_NEAR(e_big, e_small, std::abs(e_small) * 0.5 + 0.5);
}

TEST(MdSimPhysics, InteractionsScaleWithDensityFixedSystem) {
  HostGuard guard;
  // At fixed reduced density, interactions per step scale linearly with
  // the particle count.
  auto base = quick_md(100);
  base.write_output = false;
  const auto small = apps::run_md(base);
  auto doubled = base;
  doubled.particles = 800;
  const auto large = apps::run_md(doubled);
  const double per_particle_small =
      static_cast<double>(small.interactions) / small.particles;
  const double per_particle_large =
      static_cast<double>(large.interactions) / large.particles;
  EXPECT_NEAR(per_particle_large / per_particle_small, 1.0, 0.35);
}
