#include "atoms/atom_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/error.hpp"

namespace atoms = synapse::atoms;
namespace profile = synapse::profile;
namespace resource = synapse::resource;
namespace m = synapse::metrics;
namespace sys = synapse::sys;

namespace {

struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

/// Minimal custom atom: counts the samples it is fed.
class CountingAtom final : public atoms::Atom {
 public:
  CountingAtom() : Atom("counting") {}

  bool wants(const profile::SampleDelta&) const override { return true; }
  void consume(const profile::SampleDelta&) override {
    stats_.samples_consumed += 1;
  }
};

atoms::AtomBuildContext tmp_context() {
  atoms::AtomBuildContext ctx;
  ctx.storage.base_dir = "/tmp";
  return ctx;
}

}  // namespace

TEST(AtomRegistry, BuiltinsArePreRegistered) {
  const auto& registry = atoms::AtomRegistry::instance();
  for (const auto& name : atoms::AtomRegistry::builtin_names()) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  EXPECT_EQ(atoms::AtomRegistry::builtin_names().size(), 4u);
}

TEST(AtomRegistry, CreatesBuiltinsByName) {
  HostGuard guard;
  const auto ctx = tmp_context();
  atoms::AtomRegistry registry;
  for (const std::string name : {"compute", "memory", "storage"}) {
    const auto atom = registry.create(name, ctx);
    ASSERT_NE(atom, nullptr) << name;
    EXPECT_EQ(atom->name(), name);
  }
}

TEST(AtomRegistry, BuildContextOptionsReachTheAtom) {
  HostGuard guard;
  auto ctx = tmp_context();
  ctx.compute.kernel = "sleep";
  atoms::AtomRegistry registry;
  const auto atom = registry.create("compute", ctx);
  auto* compute = dynamic_cast<atoms::ComputeAtom*>(atom.get());
  ASSERT_NE(compute, nullptr);
  EXPECT_EQ(compute->kernel().name(), "sleep");
}

TEST(AtomRegistry, UnknownNameThrowsWithRegisteredList) {
  atoms::AtomRegistry registry;
  try {
    registry.create("warp-drive", tmp_context());
    FAIL() << "expected ConfigError";
  } catch (const sys::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos);
    EXPECT_NE(what.find("compute"), std::string::npos);
  }
}

TEST(AtomRegistry, CustomAtomRegistersAndCreates) {
  atoms::AtomRegistry registry;
  EXPECT_FALSE(registry.contains("counting"));
  registry.register_atom("counting", [](const atoms::AtomBuildContext&) {
    return std::make_unique<CountingAtom>();
  });
  EXPECT_TRUE(registry.contains("counting"));

  const auto atom = registry.create("counting", tmp_context());
  profile::SampleDelta delta;
  delta.duration = 0.1;
  atom->consume(delta);
  atom->consume(delta);
  EXPECT_EQ(atom->stats().samples_consumed, 2u);
}

TEST(AtomRegistry, RegistrationOverridesBuiltin) {
  atoms::AtomRegistry registry;
  registry.register_atom("compute", [](const atoms::AtomBuildContext&) {
    return std::make_unique<CountingAtom>();
  });
  const auto atom = registry.create("compute", tmp_context());
  EXPECT_EQ(atom->name(), "counting");
}

TEST(AtomRegistry, RejectsEmptyNameAndFactory) {
  atoms::AtomRegistry registry;
  EXPECT_THROW(
      registry.register_atom("", [](const atoms::AtomBuildContext&) {
        return std::make_unique<CountingAtom>();
      }),
      sys::ConfigError);
  EXPECT_THROW(registry.register_atom("null", atoms::AtomRegistry::Factory()),
               sys::ConfigError);
}

TEST(AtomRegistry, NamesListsEverything) {
  atoms::AtomRegistry registry;
  registry.register_atom("zeta", [](const atoms::AtomBuildContext&) {
    return std::make_unique<CountingAtom>();
  });
  const auto names = registry.names();
  EXPECT_EQ(names.size(), 5u);
  EXPECT_NE(std::find(names.begin(), names.end(), "zeta"), names.end());
}
