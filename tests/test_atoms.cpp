#include "atoms/compute_atom.hpp"
#include "atoms/memory_atom.hpp"
#include "atoms/network_atom.hpp"
#include "atoms/storage_atom.hpp"

#include <gtest/gtest.h>

#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"

namespace atoms = synapse::atoms;
namespace resource = synapse::resource;
namespace profile = synapse::profile;
namespace m = synapse::metrics;
namespace sys = synapse::sys;

namespace {

profile::SampleDelta delta_with(
    std::initializer_list<std::pair<std::string_view, double>> values) {
  profile::SampleDelta d;
  d.duration = 0.1;
  for (const auto& [k, v] : values) d.deltas[std::string(k)] = v;
  return d;
}

struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

}  // namespace

TEST(ComputeAtom, WantsOnlyComputeSamples) {
  HostGuard guard;
  atoms::ComputeAtom atom;
  EXPECT_TRUE(atom.wants(delta_with({{m::kCyclesUsed, 100.0}})));
  EXPECT_FALSE(atom.wants(delta_with({{m::kBytesRead, 100.0}})));
  EXPECT_FALSE(atom.wants(delta_with({})));
}

TEST(ComputeAtom, ConsumesRequestedCyclesOnHost) {
  HostGuard guard;
  atoms::ComputeAtom atom;
  const double cycles = 0.2 * resource::active_resource().turbo_hz;
  const sys::Stopwatch sw;
  atom.consume(delta_with({{m::kCyclesUsed, cycles}}));
  const double elapsed = sw.elapsed();
  // On the bare host (bias 1), N cycles take ~N/clock seconds.
  EXPECT_GE(elapsed, 0.15);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_NEAR(atom.stats().cycles, cycles, cycles * 0.01);
  EXPECT_GT(atom.stats().flops, 0.0);
  EXPECT_EQ(atom.stats().samples_consumed, 1u);
}

TEST(ComputeAtom, BiasInflatesConsumptionOnSupermic) {
  HostGuard guard;
  resource::activate_resource("supermic");
  atoms::ComputeAtom atom;  // default "asm" kernel
  const double requested = 1e9;
  atom.consume(delta_with({{m::kCyclesUsed, requested}}));
  const double bias = resource::calibration_bias(
      resource::asm_kernel_traits(), resource::active_resource());
  EXPECT_NEAR(atom.stats().cycles, requested * bias, requested * 0.01);
  EXPECT_GT(atom.stats().cycles, requested * 1.15);  // paper: ~26.5% high
}

TEST(ComputeAtom, CKernelIsMoreAccurate) {
  HostGuard guard;
  resource::activate_resource("supermic");
  atoms::ComputeAtomOptions copts;
  copts.kernel = "c";
  atoms::ComputeAtom atom(copts);
  const double requested = 1e9;
  atom.consume(delta_with({{m::kCyclesUsed, requested}}));
  // The C kernel's error stays within ~6%, versus ~24% for asm.
  EXPECT_LT(atom.stats().cycles, requested * 1.08);
}

TEST(ComputeAtom, TimeScaleShortensWallTime) {
  HostGuard guard;
  atoms::ComputeAtomOptions fast_opts;
  fast_opts.time_scale = 0.25;
  atoms::ComputeAtom fast(fast_opts);
  atoms::ComputeAtom normal;

  const double cycles = 0.2 * resource::active_resource().turbo_hz;
  sys::Stopwatch sw;
  normal.consume(delta_with({{m::kCyclesUsed, cycles}}));
  const double t_normal = sw.reset();
  fast.consume(delta_with({{m::kCyclesUsed, cycles}}));
  const double t_fast = sw.elapsed();
  EXPECT_LT(t_fast, t_normal * 0.6);
  // Counters are unaffected by the time scale.
  EXPECT_NEAR(fast.stats().cycles, normal.stats().cycles, cycles * 0.01);
}

TEST(MemoryAtom, AllocatesAndFrees) {
  HostGuard guard;
  atoms::MemoryAtom atom;
  atom.consume(delta_with({{m::kMemAllocated, 32.0 * 1024 * 1024}}));
  EXPECT_EQ(atom.stats().bytes_allocated, 32u * 1024 * 1024);
  EXPECT_EQ(atom.held_bytes(), 32u * 1024 * 1024);

  atom.consume(delta_with({{m::kMemFreed, 16.0 * 1024 * 1024}}));
  EXPECT_GE(atom.stats().bytes_freed, 16u * 1024 * 1024);
  EXPECT_LT(atom.held_bytes(), 32u * 1024 * 1024);
}

TEST(MemoryAtom, ResidencyBudgetIsEnforced) {
  HostGuard guard;
  atoms::MemoryAtomOptions opts;
  opts.max_held_bytes = 8 * 1024 * 1024;
  opts.block_bytes = 1024 * 1024;
  atoms::MemoryAtom atom(opts);
  atom.consume(delta_with({{m::kMemAllocated, 64.0 * 1024 * 1024}}));
  EXPECT_LE(atom.held_bytes(), 8u * 1024 * 1024);
  EXPECT_EQ(atom.stats().bytes_allocated, 64u * 1024 * 1024);
  // The overflow was recycled through free.
  EXPECT_GE(atom.stats().bytes_freed, 56u * 1024 * 1024);
}

TEST(MemoryAtom, WantsMemorySamplesOnly) {
  HostGuard guard;
  atoms::MemoryAtom atom;
  EXPECT_TRUE(atom.wants(delta_with({{m::kMemAllocated, 1.0}})));
  EXPECT_TRUE(atom.wants(delta_with({{m::kMemFreed, 1.0}})));
  EXPECT_FALSE(atom.wants(delta_with({{m::kCyclesUsed, 1.0}})));
}

TEST(StorageAtom, ReplaysBytes) {
  HostGuard guard;
  atoms::StorageAtomOptions opts;
  opts.base_dir = "/tmp";
  atoms::StorageAtom atom(opts);
  atom.consume(delta_with({{m::kBytesWritten, 256.0 * 1024},
                           {m::kBytesRead, 128.0 * 1024}}));
  EXPECT_EQ(atom.stats().bytes_written, 256u * 1024);
  EXPECT_EQ(atom.stats().bytes_read, 128u * 1024);
  EXPECT_GT(atom.stats().busy_seconds, 0.0);
}

TEST(StorageAtom, HonoursConfiguredBlockSizes) {
  HostGuard guard;
  resource::activate_resource("supermic");  // lustre: high write latency
  atoms::StorageAtomOptions small_opts;
  small_opts.base_dir = "/tmp";
  small_opts.write_block_bytes = 16 * 1024;
  atoms::StorageAtom small_blocks(small_opts);

  atoms::StorageAtomOptions big_opts;
  big_opts.base_dir = "/tmp";
  big_opts.write_block_bytes = 1024 * 1024;
  atoms::StorageAtom big_blocks(big_opts);

  const auto d = delta_with({{m::kBytesWritten, 1024.0 * 1024}});
  sys::Stopwatch sw;
  small_blocks.consume(d);
  const double t_small = sw.reset();
  big_blocks.consume(d);
  const double t_big = sw.elapsed();
  // 64 ops at 2.5 ms latency each vs 1 op: order-of-magnitude apart.
  EXPECT_GT(t_small, 3.0 * t_big);
}

TEST(NetworkAtom, SendsOverLoopback) {
  HostGuard guard;
  atoms::NetworkAtom atom;
  EXPECT_TRUE(atom.wants(delta_with({{m::kNetBytesWritten, 1.0}})));
  EXPECT_FALSE(atom.wants(delta_with({{m::kCyclesUsed, 1.0}})));
  atom.consume(delta_with({{m::kNetBytesWritten, 512.0 * 1024}}));
  EXPECT_EQ(atom.stats().net_bytes_sent, 512u * 1024);
}
