// SYNB binary columnar container (profile/binary_codec.hpp): lossless
// round trips across the scenario catalog with bit-identical replay
// deltas, size bounds against compact JSON, and loud rejection of
// truncated/corrupt/foreign payloads.

#include "profile/binary_codec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "profile/profile.hpp"
#include "workload/scenario.hpp"

namespace json = synapse::json;
namespace profile = synapse::profile;
namespace workload = synapse::workload;

using profile::CodecError;

namespace {

/// Catalog profiles plus hand-built edge cases (empty profile, series
/// with holes so presence bitmaps are exercised, negative/huge values).
std::vector<profile::Profile> fixture_profiles() {
  std::vector<profile::Profile> out;
  for (const auto& spec : workload::builtin_scenarios()) {
    out.push_back(spec.make_profile());
  }

  profile::Profile empty;
  empty.command = "empty";
  out.push_back(std::move(empty));

  profile::Profile holes;
  holes.command = "holes \"quoted\" \xc3\xa9";  // header escaping
  holes.tags = {"b-tag", "a-tag"};
  holes.sample_rate_hz = 7.5;
  holes.created_at = 1.5e9;
  holes.totals["cycles_used"] = 1e12;
  holes.derived["flops_per_cycle"] = 0.25;
  profile::TimeSeries ts;
  ts.watcher = "cpu";
  ts.sample_rate_hz = 5.0;
  for (int i = 0; i < 10; ++i) {
    profile::Sample s;
    s.timestamp = 100.0 + 0.2 * i;
    s.values["cycles_used"] = 1e9 + i;           // dense
    if (i % 3 == 0) s.values["io_wait"] = -0.5;  // sparse, negative
    if (i == 7) s.values["rare"] = 1e300;        // near-max double
    ts.samples.push_back(std::move(s));
  }
  holes.series.push_back(std::move(ts));
  profile::TimeSeries none;
  none.watcher = "idle";
  none.sample_rate_hz = 1.0;
  holes.series.push_back(std::move(none));
  out.push_back(std::move(holes));

  // Adaptively recorded profile: variable-rate series with gate
  // metadata and a burst-idle-burst timestamp trajectory, mixed with a
  // fixed-rate sibling. Exercises the v2 per-series flags byte and the
  // timestamp-bucketing parity path.
  profile::Profile gated;
  gated.command = "gated";
  gated.sample_rate_hz = 100.0;
  profile::TimeSeries vcpu;
  vcpu.watcher = "cpu";
  vcpu.sample_rate_hz = 100.0;
  vcpu.variable_rate = true;
  vcpu.gate.floor_hz = 2.0;
  vcpu.gate.burst_hz = 100.0;
  vcpu.gate.open_threshold = 0.5;
  vcpu.gate.close_hold_s = 0.25;
  const double trajectory[] = {5.00, 5.01, 5.02, 5.03, 7.50, 7.51, 7.52};
  double cycles = 0.0;
  for (const double t : trajectory) {
    profile::Sample s;
    s.timestamp = t;
    cycles += 1e6;
    s.values["cycles_used"] = cycles;
    vcpu.samples.push_back(std::move(s));
  }
  gated.series.push_back(std::move(vcpu));
  profile::TimeSeries fmem;
  fmem.watcher = "mem";  // fixed-rate sibling: flags byte stays 0
  fmem.sample_rate_hz = 10.0;
  for (int i = 0; i < 4; ++i) {
    profile::Sample s;
    s.timestamp = 5.0 + 0.1 * i;
    s.values["mem_resident"] = 4096.0 * (i + 1);
    fmem.samples.push_back(std::move(s));
  }
  gated.series.push_back(std::move(fmem));
  out.push_back(std::move(gated));
  return out;
}

/// Replay-input equality, bitwise: same buckets, same metrics, same
/// double bits (the decoded fast path must be indistinguishable from
/// the map walk).
void expect_same_deltas(const std::vector<profile::SampleDelta>& a,
                        const std::vector<profile::SampleDelta>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].duration, b[i].duration) << "bucket " << i;
    ASSERT_EQ(a[i].deltas.size(), b[i].deltas.size()) << "bucket " << i;
    auto it_a = a[i].deltas.begin();
    auto it_b = b[i].deltas.begin();
    for (; it_a != a[i].deltas.end(); ++it_a, ++it_b) {
      EXPECT_EQ(it_a->first, it_b->first) << "bucket " << i;
      EXPECT_EQ(it_a->second, it_b->second)
          << "bucket " << i << " metric " << it_a->first;
    }
  }
}

}  // namespace

TEST(BinaryCodec, RoundTripIsLosslessAcrossCatalog) {
  for (const auto& p : fixture_profiles()) {
    const std::string blob = p.to_binary();
    const profile::Profile back = profile::Profile::from_binary(blob);
    // Identical JSON projection == identical identity, system info,
    // totals, derived, and every series/sample/value.
    EXPECT_EQ(json::dump(back.to_json()), json::dump(p.to_json()))
        << p.command;
    // Re-encoding is deterministic and stable.
    EXPECT_EQ(back.to_binary(), blob) << p.command;
  }
}

TEST(BinaryCodec, ColumnarDeltasMatchMapWalkBitForBit) {
  for (const auto& p : fixture_profiles()) {
    const profile::Profile decoded =
        profile::Profile::from_binary(p.to_binary());
    ASSERT_TRUE(decoded.has_binary_payload());
    // `p` has no payload -> map walk; `decoded` -> columnar fast path.
    expect_same_deltas(decoded.sample_deltas(), p.sample_deltas());
  }
}

TEST(BinaryCodec, V2CarriesVariableRateAndGateMetadata) {
  const auto fixtures = fixture_profiles();
  const auto& gated = fixtures.back();  // the adaptive fixture above
  ASSERT_EQ(gated.command, "gated");
  const profile::Profile back =
      profile::Profile::from_binary(gated.to_binary());
  ASSERT_EQ(back.series.size(), 2u);
  EXPECT_TRUE(back.series[0].variable_rate);
  EXPECT_DOUBLE_EQ(back.series[0].gate.floor_hz, 2.0);
  EXPECT_DOUBLE_EQ(back.series[0].gate.burst_hz, 100.0);
  EXPECT_DOUBLE_EQ(back.series[0].gate.open_threshold, 0.5);
  EXPECT_DOUBLE_EQ(back.series[0].gate.close_hold_s, 0.25);
  EXPECT_FALSE(back.series[1].variable_rate);
  EXPECT_FALSE(back.series[1].gate.any());
  EXPECT_TRUE(back.variable_rate());
}

TEST(BinaryCodec, DropBinaryPayloadFallsBackToMapWalk) {
  const profile::Profile src = fixture_profiles().back();
  profile::Profile decoded = profile::Profile::from_binary(src.to_binary());
  const auto fast = decoded.sample_deltas();
  decoded.drop_binary_payload();
  EXPECT_FALSE(decoded.has_binary_payload());
  expect_same_deltas(decoded.sample_deltas(), fast);
}

TEST(BinaryCodec, BinaryIsAtMostHalfOfCompactJsonOnCatalog) {
  // The acceptance bar: across the catalog, SYNB costs <= 50% of the
  // compact JSON encoding (tiny profiles are header-dominated, so the
  // bound is on the aggregate).
  size_t json_bytes = 0;
  size_t synb_bytes = 0;
  for (const auto& spec : workload::builtin_scenarios()) {
    const profile::Profile p = spec.make_profile();
    json_bytes += json::dump(p.to_json()).size();
    synb_bytes += p.to_binary().size();
  }
  EXPECT_LE(synb_bytes * 2, json_bytes)
      << synb_bytes << " binary vs " << json_bytes << " JSON bytes";
}

TEST(BinaryCodec, SniffsMagic) {
  const profile::Profile p = fixture_profiles().front();
  EXPECT_TRUE(profile::looks_like_binary_profile(p.to_binary()));
  EXPECT_FALSE(profile::looks_like_binary_profile(json::dump(p.to_json())));
  EXPECT_FALSE(profile::looks_like_binary_profile(""));
  EXPECT_FALSE(profile::looks_like_binary_profile("SYN"));
}

TEST(BinaryCodec, IdentityDecodesWithoutColumns) {
  profile::Profile p;
  p.command = "ident-cmd";
  p.tags = {"x", "y"};
  p.created_at = 123.5;
  const auto info = profile::decode_binary_identity(p.to_binary());
  EXPECT_EQ(info.command, "ident-cmd");
  EXPECT_EQ(info.tags, (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(info.created_at, 123.5);
}

TEST(BinaryCodec, RejectsWrongMagic) {
  std::string blob = fixture_profiles().front().to_binary();
  blob[0] = 'X';
  try {
    profile::decode_binary(blob);
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(BinaryCodec, RejectsUnsupportedVersion) {
  std::string blob = fixture_profiles().front().to_binary();
  blob[4] = 9;  // version u32 lives right after the magic
  try {
    profile::decode_binary(blob);
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported SYNB version 9"),
              std::string::npos)
        << e.what();
  }
}

TEST(BinaryCodec, EveryTruncationThrowsWithDiagnostics) {
  const std::string blob = fixture_profiles().back().to_binary();
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    try {
      profile::decode_binary(std::string_view(blob).substr(0, cut));
      FAIL() << "cut at " << cut << " decoded";
    } catch (const CodecError& e) {
      // Diagnostics name the container, not just "error".
      EXPECT_NE(std::string(e.what()).find("SYNB"), std::string::npos)
          << "cut " << cut << ": " << e.what();
    }
  }
}

TEST(BinaryCodec, ByteMutationsNeverCrash) {
  // Single-byte corruption must either still decode (payload bytes are
  // arbitrary doubles) or throw CodecError — never crash or exhaust
  // memory on a corrupt count.
  const std::string blob = fixture_profiles().back().to_binary();
  std::mt19937 rng(11);
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = blob;
    const size_t pos =
        std::uniform_int_distribution<size_t>(0, blob.size() - 1)(rng);
    mutated[pos] = static_cast<char>(
        std::uniform_int_distribution<int>(0, 255)(rng));
    try {
      const profile::Profile p = profile::decode_binary(mutated);
      (void)p.sample_deltas();  // decoded fine: replay input must too
    } catch (const CodecError&) {
      // Expected for framing corruption.
    }
  }
  SUCCEED();
}

TEST(BinaryCodec, TrailingGarbageRejected) {
  const std::string blob = fixture_profiles().front().to_binary() + "x";
  try {
    profile::decode_binary(blob);
    FAIL() << "expected CodecError";
  } catch (const CodecError& e) {
    EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
        << e.what();
  }
}

TEST(BinaryCodec, Base64RoundTripsAllLengths) {
  std::string raw;
  for (int len = 0; len <= 64; ++len) {
    const std::string encoded = profile::base64_encode(raw);
    EXPECT_EQ(profile::base64_decode(encoded), raw) << "len " << len;
    raw.push_back(static_cast<char>(len * 37 + 250));  // includes >127
  }
}

TEST(BinaryCodec, Base64RejectsMalformedInput) {
  EXPECT_THROW(profile::base64_decode("abc"), CodecError);     // length % 4
  EXPECT_THROW(profile::base64_decode("ab!d"), CodecError);    // alphabet
  EXPECT_THROW(profile::base64_decode("=abc"), CodecError);    // padding
  EXPECT_THROW(profile::base64_decode("ab=c"), CodecError);    // padding
  EXPECT_NO_THROW(profile::base64_decode("abc="));
  EXPECT_NO_THROW(profile::base64_decode("ab=="));
}
