#include "resource/cache_model.hpp"

#include <gtest/gtest.h>

namespace resource = synapse::resource;

TEST(CacheModel, MissFractionZeroInL1) {
  resource::KernelTraits t = resource::asm_kernel_traits();
  const auto& spec = resource::get_resource("comet");
  t.working_set_bytes = spec.l1d_bytes / 2;
  EXPECT_DOUBLE_EQ(resource::miss_fraction(t, spec), 0.0);
}

TEST(CacheModel, MissFractionMonotoneInWorkingSet) {
  resource::KernelTraits t = resource::c_kernel_traits();
  const auto& spec = resource::get_resource("comet");
  double prev = -1.0;
  for (uint64_t ws = 16 * 1024; ws <= (1ull << 30); ws *= 4) {
    t.working_set_bytes = ws;
    const double miss = resource::miss_fraction(t, spec);
    EXPECT_GE(miss, prev);
    EXPECT_GE(miss, 0.0);
    EXPECT_LE(miss, 1.0);
    prev = miss;
  }
}

TEST(CacheModel, MissFractionCappedByLocality) {
  resource::KernelTraits t = resource::c_kernel_traits();
  t.locality = 0.7;
  t.working_set_bytes = 1ull << 34;  // far beyond any cache
  const auto& spec = resource::get_resource("comet");
  EXPECT_LE(resource::miss_fraction(t, spec), 0.3 + 1e-12);
}

TEST(CacheModel, IpcOrderingMatchesPaperFig11) {
  // Paper Fig. 11: app < C kernel < ASM kernel on both machines;
  // comet sustains ~3.30/cycle on the ASM kernel, supermic ~2.86.
  for (const auto& machine : {"comet", "supermic"}) {
    const auto& spec = resource::get_resource(machine);
    const double app = resource::effective_ipc(resource::app_md_traits(), spec);
    const double c = resource::effective_ipc(resource::c_kernel_traits(), spec);
    const double asm_ipc =
        resource::effective_ipc(resource::asm_kernel_traits(), spec);
    EXPECT_LT(app, c) << machine;
    EXPECT_LT(c, asm_ipc) << machine;
    EXPECT_NEAR(app, 2.1, 0.25) << machine;
    EXPECT_NEAR(c, 2.6, 0.3) << machine;
  }
  // Known deviation (EXPERIMENTS.md): the model reports ~3.3 on both
  // machines, while the paper measured ~2.86 on supermic.
  EXPECT_NEAR(resource::effective_ipc(resource::asm_kernel_traits(),
                                      resource::get_resource("comet")),
              3.3, 0.15);
}

TEST(CacheModel, BiasOrderingMatchesPaperFig8) {
  // Paper Fig. 8: the C kernel's cycle error converges to ~3.5-4%, the
  // ASM kernel's to ~14.5% (Comet) and ~26.5% (Supermic).
  const auto& comet = resource::get_resource("comet");
  const auto& supermic = resource::get_resource("supermic");

  const double c_comet =
      resource::calibration_bias(resource::c_kernel_traits(), comet);
  const double asm_comet =
      resource::calibration_bias(resource::asm_kernel_traits(), comet);
  const double c_sm =
      resource::calibration_bias(resource::c_kernel_traits(), supermic);
  const double asm_sm =
      resource::calibration_bias(resource::asm_kernel_traits(), supermic);

  EXPECT_LT(c_comet, asm_comet);
  EXPECT_LT(c_sm, asm_sm);
  EXPECT_NEAR(c_comet - 1.0, 0.035, 0.02);
  EXPECT_NEAR(asm_comet - 1.0, 0.145, 0.04);
  EXPECT_NEAR(c_sm - 1.0, 0.040, 0.02);
  EXPECT_NEAR(asm_sm - 1.0, 0.265, 0.06);
}

TEST(CacheModel, BiasIsOneWithoutHeadroomOrGap) {
  resource::ResourceSpec flat = resource::get_resource("comet");
  flat.turbo_hz = flat.clock_hz;
  EXPECT_DOUBLE_EQ(
      resource::calibration_bias(resource::asm_kernel_traits(), flat), 1.0);

  resource::ResourceSpec nogap = resource::get_resource("comet");
  nogap.sustained_boost_gap = 0.0;
  EXPECT_DOUBLE_EQ(
      resource::calibration_bias(resource::asm_kernel_traits(), nogap), 1.0);
}

TEST(CacheModel, CyclesLinearInFlops) {
  const auto& spec = resource::get_resource("comet");
  const auto& traits = resource::c_kernel_traits();
  const double one = resource::cycles_for_flops(traits, spec, 1e6);
  const double ten = resource::cycles_for_flops(traits, spec, 1e7);
  EXPECT_NEAR(ten / one, 10.0, 1e-9);
}

TEST(CacheModel, InstructionsFollowMix) {
  const auto& traits = resource::app_md_traits();
  EXPECT_DOUBLE_EQ(resource::instructions_for_flops(traits, 1000.0),
                   1000.0 * traits.instructions_per_flop);
}

TEST(CacheModel, SecondsForCyclesUsesTurbo) {
  const auto& comet = resource::get_resource("comet");
  EXPECT_NEAR(resource::seconds_for_cycles(comet, 2.9e9), 1.0, 1e-9);
}

TEST(CacheModel, IssueWidthCapsIpc) {
  // Titan's 2-wide Bulldozer module caps even the ASM kernel at 2.0.
  const auto& titan = resource::get_resource("titan");
  EXPECT_LE(resource::effective_ipc(resource::asm_kernel_traits(), titan),
            2.0 + 1e-12);
}

// Property: on every machine the model keeps the kernel ordering and
// produces positive finite numbers.
class ModelSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSanity, OrderingAndFiniteness) {
  const auto& spec = resource::get_resource(GetParam());
  for (const auto* traits :
       {&resource::asm_kernel_traits(), &resource::c_kernel_traits(),
        &resource::app_md_traits()}) {
    const double ipc = resource::effective_ipc(*traits, spec);
    EXPECT_GT(ipc, 0.1);
    EXPECT_LE(ipc, spec.issue_width + 1e-12);
    const double bias = resource::calibration_bias(*traits, spec);
    EXPECT_GE(bias, 1.0);
    EXPECT_LT(bias, 1.5);
  }
  EXPECT_LT(resource::effective_ipc(resource::app_md_traits(), spec),
            resource::effective_ipc(resource::asm_kernel_traits(), spec));
}

INSTANTIATE_TEST_SUITE_P(AllMachines, ModelSanity,
                         ::testing::Values("host", "thinkie", "stampede",
                                           "archer", "comet", "supermic",
                                           "titan"));
