// End-to-end tests of the command-line tools (synapse-profile,
// synapse-emulate, synapse-inspect), exercised exactly as a user would:
// spawned as child processes. Binary paths are injected by CMake.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "sys/procfs.hpp"
#include "sys/spawn.hpp"
#include "workload/scenario.hpp"

#ifndef SYNAPSE_PROFILE_BIN
#error "SYNAPSE_PROFILE_BIN must be defined by the build"
#endif

namespace sys = synapse::sys;

namespace {

const std::string kStore = "/tmp/synapse_cli_store";

struct StoreGuard {
  StoreGuard() { std::system(("rm -rf " + kStore).c_str()); }
  ~StoreGuard() { std::system(("rm -rf " + kStore).c_str()); }
};

sys::ExitStatus run_tool(const std::vector<std::string>& argv,
                         const std::string& out_path) {
  sys::SpawnOptions opts;
  opts.stdout_path = out_path;
  opts.stderr_path = out_path + ".err";
  return sys::run_command(argv, opts);
}

std::string slurp(const std::string& path) {
  return sys::slurp_file(path).value_or("");
}

}  // namespace

TEST(Cli, ProfileThenEmulateRoundTrip) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_out.txt";

  auto status = run_tool({SYNAPSE_PROFILE_BIN, "--store", kStore, "--rate",
                          "20", "--tag", "cli-test", "--", "sleep", "0.2"},
                         out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string profile_output = slurp(out);
  EXPECT_NE(profile_output.find("profiled: sleep 0.2"), std::string::npos);
  EXPECT_NE(profile_output.find("Tx"), std::string::npos);

  status = run_tool({SYNAPSE_EMULATE_BIN, "--store", kStore, "--tag",
                     "cli-test", "--", "sleep", "0.2"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string emulate_output = slurp(out);
  EXPECT_NE(emulate_output.find("emulated: sleep 0.2"), std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, EmulateWithoutProfileFails) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_fail.txt";
  const auto status = run_tool(
      {SYNAPSE_EMULATE_BIN, "--store", kStore, "--", "never", "profiled"},
      out);
  EXPECT_EQ(status.exit_code, 1);
  EXPECT_NE(slurp(out + ".err").find("no profile stored"),
            std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, InspectShowAndStats) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_inspect.txt";

  // Two repetitions so stats have n=2.
  for (int i = 0; i < 2; ++i) {
    const auto status = run_tool({SYNAPSE_PROFILE_BIN, "--store", kStore,
                                  "--", "sleep", "0.1"},
                                 out);
    ASSERT_TRUE(status.success());
  }

  auto status = run_tool(
      {SYNAPSE_INSPECT_BIN, "--store", kStore, "show", "--", "sleep", "0.1"},
      out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  EXPECT_NE(slurp(out).find("system.runtime_s"), std::string::npos);

  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore, "stats", "--",
                     "sleep", "0.1"},
                    out);
  ASSERT_TRUE(status.success());
  EXPECT_NE(slurp(out).find("repetitions: 2"), std::string::npos);

  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore, "diff", "--",
                     "sleep", "0.1"},
                    out);
  ASSERT_TRUE(status.success());
  EXPECT_NE(slurp(out).find("diff%"), std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, InspectStatsFlagReportsBackendAndReadCache) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_inspect_stats.txt";

  auto status = run_tool(
      {SYNAPSE_PROFILE_BIN, "--store", kStore, "--", "sleep", "0.05"}, out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");

  // --stats appends the backend (by registry name) and the read-cache
  // counters the subcommand's queries accumulated.
  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore, "--stats",
                     "show", "--", "sleep", "0.05"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string output = slurp(out);
  EXPECT_NE(output.find("store stats:"), std::string::npos);
  EXPECT_NE(output.find("backend             : files"), std::string::npos);
  EXPECT_NE(output.find("cache hits"), std::string::npos);
  EXPECT_NE(output.find("cache misses"), std::string::npos);
  EXPECT_NE(output.find("cache invalidations"), std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ClusterStoreEndToEnd) {
  // The whole cluster surface through the real binaries: profile into a
  // 2-instance cluster (--store-cluster implies the backend), emulate
  // from it, and inspect it WITHOUT the spec (persisted placement).
  const std::string base = "/tmp/synapse_cli_cluster";
  const std::string store = base + "/store";
  const std::string spec = base + "/cluster.json";
  const std::string out = "/tmp/synapse_cli_cluster_out.txt";
  std::system(("rm -rf " + base).c_str());
  ::system(("mkdir -p " + base).c_str());
  {
    std::ofstream f(spec);
    f << "{\"instances\": ["
      << "{\"name\": \"a\", \"root\": \"" << base << "/inst-a\"},"
      << "{\"name\": \"b\", \"root\": \"" << base << "/inst-b\"}]}";
  }

  auto status = run_tool({SYNAPSE_PROFILE_BIN, "--store", store,
                          "--store-cluster", spec, "--", "sleep", "0.1"},
                         out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");

  status = run_tool({SYNAPSE_EMULATE_BIN, "--store", store,
                     "--store-cluster", spec, "--", "sleep", "0.1"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  EXPECT_NE(slurp(out).find("emulated: sleep 0.1"), std::string::npos);

  // detect_backend reads "cluster" from the meta file; the persisted
  // placement supplies the instance roots, so no spec flag is needed.
  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", store, "--stats",
                     "show", "--", "sleep", "0.1"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string output = slurp(out);
  EXPECT_NE(output.find("backend             : cluster"),
            std::string::npos);
  EXPECT_NE(output.find("instance a"), std::string::npos);
  EXPECT_NE(output.find("instance b"), std::string::npos);
  std::system(("rm -rf " + base).c_str());
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, InspectRejectsClusterSpecOnNonClusterStore) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_inspect_wrongspec.txt";
  auto status = run_tool(
      {SYNAPSE_PROFILE_BIN, "--store", kStore, "--", "sleep", "0.05"}, out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  // An explicitly given spec must not be silently dropped (it usually
  // means the --store path is wrong).
  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore,
                     "--store-cluster", "/tmp/nonexistent-spec.json", "show",
                     "--", "sleep", "0.05"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  EXPECT_NE(slurp(out + ".err").find("not a cluster store"),
            std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ListStoreBackendsShowsRegistry) {
  const std::string out = "/tmp/synapse_cli_backends.txt";
  ASSERT_TRUE(run_tool({SYNAPSE_PROFILE_BIN, "--list-store-backends"}, out)
                  .success());
  const std::string listing = slurp(out);
  for (const std::string name : {"memory", "docstore", "files", "cluster"}) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, UnknownStoreBackendListsRegisteredNames) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_badbackend.txt";
  const auto status =
      run_tool({SYNAPSE_PROFILE_BIN, "--store", kStore, "--store-backend",
                "oracle", "--", "sleep", "0.05"},
               out);
  EXPECT_EQ(status.exit_code, 1);
  const std::string err = slurp(out + ".err");
  EXPECT_NE(err.find("unknown store backend: oracle"), std::string::npos);
  EXPECT_NE(err.find("registered:"), std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, InspectExportCsv) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_export.txt";
  const std::string csv = "/tmp/synapse_cli_export.csv";

  auto status = run_tool(
      {SYNAPSE_PROFILE_BIN, "--store", kStore, "--", "sleep", "0.05"}, out);
  ASSERT_TRUE(status.success());

  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore, "export", csv,
                     "--", "sleep", "0.05"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string content = slurp(csv);
  EXPECT_NE(content.find("command,tags,created_at,sample_rate_hz"),
            std::string::npos);
  EXPECT_NE(content.find("sleep 0.05"), std::string::npos);
  ::unlink(csv.c_str());
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ListScenariosShowsCatalog) {
  const std::string out = "/tmp/synapse_cli_scenarios.txt";
  ASSERT_TRUE(run_tool({SYNAPSE_EMULATE_BIN, "--list-scenarios"}, out)
                  .success());
  const std::string listing = slurp(out);
  for (const auto& s : synapse::workload::builtin_scenarios()) {
    EXPECT_NE(listing.find(s.name), std::string::npos) << s.name;
  }
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, EveryBuiltinScenarioRunsEndToEnd) {
  // Acceptance sweep: every catalog entry replays through the real
  // binary and reports non-zero per-atom stats.
  const std::string out = "/tmp/synapse_cli_scenario_run.txt";
  for (const auto& s : synapse::workload::builtin_scenarios()) {
    const auto status =
        run_tool({SYNAPSE_EMULATE_BIN, "--scenario", s.name}, out);
    ASSERT_TRUE(status.success()) << s.name << ": " << slurp(out + ".err");
    const std::string output = slurp(out);
    EXPECT_NE(output.find("scenario : " + s.name), std::string::npos);
    for (const auto& atom : s.atom_set) {
      EXPECT_NE(output.find("atom " + atom), std::string::npos)
          << s.name << "/" << atom;
    }
    // Every atom consumed every sample; none reports samples=0.
    EXPECT_EQ(output.find("samples=0 "), std::string::npos) << s.name;
  }
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ScenarioFromJsonFile) {
  const std::string out = "/tmp/synapse_cli_scenario_file.txt";
  const std::string path = "/tmp/synapse_cli_scenario.json";
  {
    std::ofstream f(path);
    f << R"({"name": "file-scn", "atoms": ["storage"], "samples": 4,
             "deltas": {"storage.bytes_written": 65536}})";
  }
  const auto status = run_tool({SYNAPSE_EMULATE_BIN, "--scenario", path}, out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string output = slurp(out);
  EXPECT_NE(output.find("scenario : file-scn"), std::string::npos);
  EXPECT_NE(output.find("atom storage"), std::string::npos);
  std::remove(path.c_str());
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ScenarioAndCommandAreMutuallyExclusive) {
  const std::string out = "/tmp/synapse_cli_scenario_conflict.txt";
  const auto status = run_tool({SYNAPSE_EMULATE_BIN, "--scenario",
                                "cpu-bound", "--", "sleep", "0.1"},
                               out);
  EXPECT_EQ(status.exit_code, 2);
  EXPECT_NE(slurp(out + ".err").find("mutually exclusive"),
            std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, BadScenarioIsDiagnosedNotCrashed) {
  const std::string out = "/tmp/synapse_cli_scenario_bad.txt";
  auto status = run_tool(
      {SYNAPSE_EMULATE_BIN, "--scenario", "no-such-scenario"}, out);
  EXPECT_EQ(status.exit_code, 1);
  EXPECT_NE(slurp(out + ".err").find("cpu-bound"), std::string::npos);

  const std::string path = "/tmp/synapse_cli_scenario_broken.json";
  {
    std::ofstream f(path);
    f << "{ definitely not json";
  }
  status = run_tool({SYNAPSE_EMULATE_BIN, "--scenario", path}, out);
  EXPECT_EQ(status.exit_code, 1);
  EXPECT_FALSE(slurp(out + ".err").empty());
  std::remove(path.c_str());
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, HelpAndBadUsage) {
  const std::string out = "/tmp/synapse_cli_help.txt";
  EXPECT_TRUE(run_tool({SYNAPSE_PROFILE_BIN, "--help"}, out).success());
  EXPECT_TRUE(run_tool({SYNAPSE_EMULATE_BIN, "--help"}, out).success());
  EXPECT_TRUE(run_tool({SYNAPSE_INSPECT_BIN, "--help"}, out).success());
  EXPECT_EQ(run_tool({SYNAPSE_PROFILE_BIN}, out).exit_code, 2);
  EXPECT_EQ(run_tool({SYNAPSE_INSPECT_BIN, "bogus-subcommand", "--", "x"},
                     out)
                .exit_code,
            2);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ListWatchersShowsRegistry) {
  const std::string out = "/tmp/synapse_cli_watchers.txt";
  ASSERT_TRUE(run_tool({SYNAPSE_PROFILE_BIN, "--list-watchers"}, out)
                  .success());
  const std::string listing = slurp(out);
  for (const char* name : {"cpu", "mem", "io", "sys", "trace", "net"}) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ProfileWithExplicitWatchersRecordsNetSeries) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_net.txt";

  auto status = run_tool(
      {SYNAPSE_PROFILE_BIN, "--store", kStore, "--rate", "20", "--watchers",
       "cpu, net", "--scheduler", "multiplexed", "--", "sleep", "0.2"},
      out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  // The summary reports the net row only when the watcher ran.
  EXPECT_NE(slurp(out).find("net rx/tx"), std::string::npos);

  status = run_tool(
      {SYNAPSE_INSPECT_BIN, "--store", kStore, "show", "--", "sleep", "0.2"},
      out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string shown = slurp(out);
  // The per-series listing names both watchers with their rates.
  EXPECT_NE(shown.find("net"), std::string::npos);
  EXPECT_NE(shown.find("cpu"), std::string::npos);
  EXPECT_NE(shown.find("@ 20.0 Hz"), std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, ScenarioProfileRoundTrip) {
  // The paper's "(-)" row, driven purely through the CLIs: record a
  // profiled scenario emulation, then replay the stored profile.
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_scn_profile.txt";

  auto status = run_tool({SYNAPSE_EMULATE_BIN, "--scenario",
                          "network-loopback", "--profile", "--store", kStore},
                         out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string recorded = slurp(out);
  EXPECT_NE(recorded.find("stored as : scenario:network-loopback"),
            std::string::npos);

  status = run_tool({SYNAPSE_EMULATE_BIN, "--store", kStore, "--tag",
                     "builtin", "--tag", "network", "--atoms", "network",
                     "--", "scenario:network-loopback"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  EXPECT_NE(slurp(out).find("emulated: scenario:network-loopback"),
            std::string::npos);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, WatcherFlagDiagnostics) {
  const std::string out = "/tmp/synapse_cli_watcher_diag.txt";
  // Unknown watcher: diagnosed (with the registered list) before any
  // child is spawned.
  auto status = run_tool({SYNAPSE_PROFILE_BIN, "--watchers", "bogus", "--",
                          "sleep", "5"},
                         out);
  EXPECT_EQ(status.exit_code, 1);
  EXPECT_NE(slurp(out + ".err").find("unknown watcher"), std::string::npos);
  // Malformed per-watcher rate.
  status = run_tool({SYNAPSE_PROFILE_BIN, "--watcher-rate", "cpu", "--",
                     "true"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  // Rate override for a watcher that is not in the running set.
  status = run_tool({SYNAPSE_PROFILE_BIN, "--watchers", "cpu,net",
                     "--watcher-rate", "nett=100", "--", "true"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  EXPECT_NE(slurp(out + ".err").find("not in the watcher set"),
            std::string::npos);
  // Unknown scheduler mode.
  status = run_tool({SYNAPSE_PROFILE_BIN, "--scheduler", "fancy", "--",
                     "true"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  // --profile without --scenario.
  status = run_tool({SYNAPSE_EMULATE_BIN, "--profile", "--", "true"}, out);
  EXPECT_EQ(status.exit_code, 2);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, AdaptiveProfileEmulateRoundTrip) {
  StoreGuard guard;
  const std::string out = "/tmp/synapse_cli_adaptive.txt";

  // Record under the adaptive scheduler with explicit gate knobs.
  auto status = run_tool(
      {SYNAPSE_PROFILE_BIN, "--store", kStore, "--rate", "50", "--scheduler",
       "adaptive", "--gate-floor", "5", "--gate-hold", "0.2",
       "--watcher-gate", "cpu=5:50:0:0.2", "--tag", "adaptive", "--",
       "sleep", "0.3"},
      out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");

  // The inspect listing explains the variable-rate trajectory (tag
  // filters are conjunctive, so the query names the recording tag).
  status = run_tool({SYNAPSE_INSPECT_BIN, "--store", kStore, "--tag",
                     "adaptive", "show", "--", "sleep", "0.3"},
                    out);
  ASSERT_TRUE(status.success()) << slurp(out + ".err");
  const std::string shown = slurp(out);
  EXPECT_NE(shown.find("variable rate"), std::string::npos) << shown;
  EXPECT_NE(shown.find("gap min/mean/max"), std::string::npos) << shown;

  // The adaptive recording replays: single feed, batched pipeline, and
  // with pacing disabled.
  for (const std::vector<std::string> extra :
       {std::vector<std::string>{},
        std::vector<std::string>{"--replay-batch", "3"},
        std::vector<std::string>{"--pace", "off"}}) {
    std::vector<std::string> argv = {SYNAPSE_EMULATE_BIN, "--store", kStore,
                                     "--tag", "adaptive"};
    argv.insert(argv.end(), extra.begin(), extra.end());
    argv.insert(argv.end(), {"--", "sleep", "0.3"});
    status = run_tool(argv, out);
    ASSERT_TRUE(status.success()) << slurp(out + ".err");
    EXPECT_NE(slurp(out).find("emulated: sleep 0.3"), std::string::npos);
  }
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}

TEST(Cli, AdaptiveFlagDiagnostics) {
  const std::string out = "/tmp/synapse_cli_adaptive_diag.txt";
  // Malformed --watcher-gate spec shapes.
  auto status = run_tool({SYNAPSE_PROFILE_BIN, "--watcher-gate", "cpu=1:2",
                          "--", "true"},
                         out);
  EXPECT_EQ(status.exit_code, 2);
  // Gate override for a watcher outside the running set.
  status = run_tool({SYNAPSE_PROFILE_BIN, "--watchers", "cpu",
                     "--watcher-gate", "mem=1:0:0:2", "--", "true"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  EXPECT_NE(slurp(out + ".err").find("not in the watcher set"),
            std::string::npos);
  // Out-of-range gate values are rejected before any spawn, naming the
  // watcher.
  status = run_tool({SYNAPSE_PROFILE_BIN, "--scheduler", "adaptive",
                     "--watcher-gate", "cpu=-1:0:0:2", "--", "sleep", "5"},
                    out);
  EXPECT_EQ(status.exit_code, 1);
  EXPECT_NE(slurp(out + ".err").find("cpu"), std::string::npos);
  // Unknown --pace value on the emulator side.
  status = run_tool({SYNAPSE_EMULATE_BIN, "--pace", "sometimes", "--",
                     "true"},
                    out);
  EXPECT_EQ(status.exit_code, 2);
  ::unlink(out.c_str());
  ::unlink((out + ".err").c_str());
}
