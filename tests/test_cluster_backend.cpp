// ClusterBackend: a ProfileStore whose shards are distributed across
// multiple independent docstore instances. Covers the cluster-spec
// parsing, deterministic weighted placement, reopen semantics (same
// spec, no spec, changed spec) and per-instance degraded mode.

#include "profile/cluster_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>

#include "json/json.hpp"
#include "profile/metrics.hpp"
#include "profile/profile_store.hpp"
#include "sys/error.hpp"
#include "workload/scenario.hpp"

namespace profile = synapse::profile;
namespace json = synapse::json;
namespace m = synapse::metrics;

namespace {

const std::string kBase = "/tmp/synapse_cluster_test";

profile::Profile make_profile(const std::string& cmd,
                              const std::vector<std::string>& tags,
                              double cycles, double created_at) {
  profile::Profile p;
  p.command = cmd;
  p.tags = tags;
  p.created_at = created_at;
  p.totals[std::string(m::kCyclesUsed)] = cycles;
  return p;
}

/// Fresh scratch tree: spec file naming `names` as instances rooted
/// under kBase, store directory at kBase/store.
std::string write_spec(const std::vector<std::string>& names,
                       const std::vector<double>& weights = {},
                       const std::vector<std::string>& roots = {}) {
  const std::string path = kBase + "/cluster.json";
  std::ofstream spec(path);
  spec << "{\"instances\": [";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) spec << ",";
    const std::string root =
        i < roots.size() ? roots[i] : kBase + "/inst-" + names[i];
    spec << "{\"name\": \"" << names[i] << "\", \"root\": \"" << root
         << "\"";
    if (i < weights.size()) spec << ", \"weight\": " << weights[i];
    spec << "}";
  }
  spec << "]}";
  return path;
}

struct ScratchTree {
  ScratchTree() {
    std::system(("rm -rf " + kBase).c_str());
    ::system(("mkdir -p " + kBase).c_str());
  }
  ~ScratchTree() { std::system(("rm -rf " + kBase).c_str()); }
};

profile::ProfileStore open_cluster(const std::string& spec,
                                   size_t shards = 4) {
  profile::ProfileStoreOptions options;
  options.backend = "cluster";
  options.directory = kBase + "/store";
  options.cluster_spec = spec;
  options.shards = shards;
  return profile::ProfileStore(std::move(options));
}

/// Distinct instance names the store's shards are placed on.
std::set<std::string> placed_instances(const profile::ProfileStore& store) {
  std::set<std::string> out;
  for (const auto& meta : store.shard_meta()) {
    out.insert(meta.get_or("instance", std::string()));
  }
  return out;
}

}  // namespace

TEST(ClusterSpec, ParsesNamesRootsAndWeights) {
  ScratchTree scratch;
  const auto spec = profile::ClusterSpec::load_file(
      write_spec({"a", "b"}, {1.0, 2.5}));
  ASSERT_EQ(spec.instances.size(), 2u);
  EXPECT_EQ(spec.instances[0].name, "a");
  EXPECT_DOUBLE_EQ(spec.instances[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(spec.instances[1].weight, 2.5);
  EXPECT_NE(spec.find("b"), nullptr);
  EXPECT_EQ(spec.find("zz"), nullptr);
}

TEST(ClusterSpec, RejectsMalformedSpecs) {
  ScratchTree scratch;
  const std::string path = kBase + "/bad.json";
  const auto expect_rejected = [&](const std::string& content) {
    {
      std::ofstream f(path);
      f << content;
    }
    EXPECT_THROW(profile::ClusterSpec::load_file(path),
                 synapse::sys::ConfigError)
        << content;
  };
  expect_rejected("{}");                                    // no instances
  expect_rejected("{\"instances\": []}");                   // empty
  expect_rejected("{\"instances\": [{\"name\": \"a\"}]}");  // no root
  expect_rejected(
      "{\"instances\": [{\"root\": \"/tmp/x\", \"weight\": 0}]}");
  expect_rejected(
      "{\"instances\": [{\"root\": \"/tmp/x\", \"weight\": \"heavy\"}]}");
  expect_rejected(
      "{\"instances\": [{\"name\": \"a\", \"root\": \"/tmp/x\"},"
      "{\"name\": \"a\", \"root\": \"/tmp/y\"}]}");  // duplicate name
  expect_rejected("{ not json");
  EXPECT_THROW(profile::ClusterSpec::load_file(kBase + "/absent.json"),
               synapse::sys::ConfigError);
}

TEST(ClusterBackend, PlacementBalancesByWeight) {
  profile::ClusterSpec spec;
  spec.instances = {{"a", "/tmp/a", 1.0}, {"b", "/tmp/b", 1.0}};
  const auto equal = profile::ClusterBackend::compute_placement(spec, 4);
  EXPECT_EQ(equal, (std::vector<std::string>{"a", "b", "a", "b"}));

  spec.instances = {{"a", "/tmp/a", 1.0}, {"b", "/tmp/b", 3.0}};
  const auto weighted = profile::ClusterBackend::compute_placement(spec, 8);
  EXPECT_EQ(std::count(weighted.begin(), weighted.end(), "a"), 2);
  EXPECT_EQ(std::count(weighted.begin(), weighted.end(), "b"), 6);
}

TEST(ClusterBackend, CatalogRoundTripsAcrossTwoInstances) {
  ScratchTree scratch;
  const std::string spec = write_spec({"a", "b"});
  std::vector<profile::Profile> recorded;
  {
    auto store = open_cluster(spec);
    EXPECT_EQ(store.backend(), "cluster");
    EXPECT_EQ(store.shard_count(), 4u);
    // Every shard landed on a spec instance, and both instances hold
    // shards (the whole point of the backend).
    const auto instances = placed_instances(store);
    EXPECT_EQ(instances, (std::set<std::string>{"a", "b"}));

    // The built-in scenario catalog is the workload stream: record
    // every scenario's synthesized profile through the cluster.
    for (const auto& scenario : synapse::workload::builtin_scenarios()) {
      recorded.push_back(scenario.make_profile());
      store.put(recorded.back());
    }
    EXPECT_EQ(store.size(), recorded.size());
    for (const auto& p : recorded) {
      const auto found = store.find_latest(p.command, p.tags);
      ASSERT_TRUE(found.has_value()) << p.command;
      EXPECT_EQ(found->sample_count(), p.sample_count()) << p.command;
    }
    store.flush();
  }
  // Data physically lives under BOTH instance roots.
  EXPECT_EQ(std::system(("ls " + kBase +
                         "/inst-a/shard-*/profiles.collection.json "
                         ">/dev/null 2>&1")
                            .c_str()),
            0);
  EXPECT_EQ(std::system(("ls " + kBase +
                         "/inst-b/shard-*/profiles.collection.json "
                         ">/dev/null 2>&1")
                            .c_str()),
            0);

  // Reopen with the SAME spec: placement honoured, every profile
  // readable.
  {
    auto store = open_cluster(spec);
    EXPECT_EQ(placed_instances(store), (std::set<std::string>{"a", "b"}));
    EXPECT_EQ(store.size(), recorded.size());
    for (const auto& p : recorded) {
      EXPECT_EQ(store.find(p.command, p.tags).size(), 1u) << p.command;
    }
  }
}

TEST(ClusterBackend, ReopenWithoutSpecUsesPersistedPlacement) {
  ScratchTree scratch;
  {
    auto store = open_cluster(write_spec({"a", "b"}));
    store.put(make_profile("specless", {"x"}, 7, 1.0));
    store.flush();
  }
  // detect_backend + no spec file: exactly what synapse-inspect does
  // with only --store DIR.
  EXPECT_EQ(profile::ProfileStore::detect_backend(kBase + "/store"),
            "cluster");
  profile::ProfileStore store("cluster", kBase + "/store");
  EXPECT_EQ(store.find("specless", {"x"}).size(), 1u);
  EXPECT_EQ(placed_instances(store), (std::set<std::string>{"a", "b"}));
}

TEST(ClusterBackend, ReopenKeepsShardCountFromMeta) {
  ScratchTree scratch;
  const std::string spec = write_spec({"a", "b"});
  {
    auto store = open_cluster(spec, /*shards=*/4);
    store.put(make_profile("sticky", {}, 1, 1.0));
    store.flush();
  }
  // A different shard option on reopen is ignored (meta wins), so the
  // persisted placement still covers every shard.
  auto store = open_cluster(spec, /*shards=*/16);
  EXPECT_EQ(store.shard_count(), 4u);
  EXPECT_EQ(store.find("sticky").size(), 1u);
}

TEST(ClusterBackend, ChangedSpecMissingPlacedInstanceIsRejected) {
  ScratchTree scratch;
  {
    auto store = open_cluster(write_spec({"a", "b"}));
    store.put(make_profile("spread-0", {}, 1, 1.0));
    store.flush();
  }
  // The new spec dropped instance 'b', which holds shards: opening
  // must fail with a diagnostic naming it — not silently show a store
  // with half its profiles gone.
  const std::string changed = write_spec({"a"});
  try {
    auto store = open_cluster(changed);
    FAIL() << "expected ConfigError";
  } catch (const synapse::sys::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'b'"), std::string::npos) << what;
    EXPECT_NE(what.find("no longer lists"), std::string::npos) << what;
  }
  // Restoring the instance to the spec restores access.
  auto store = open_cluster(write_spec({"a", "b"}));
  EXPECT_EQ(store.find("spread-0").size(), 1u);
}

TEST(ClusterBackend, SpecCanMoveAnInstanceRoot) {
  ScratchTree scratch;
  {
    auto store = open_cluster(write_spec({"a", "b"}));
    store.put(make_profile("movable", {}, 1, 1.0));
    store.flush();
  }
  // Operator moves instance b's data to a new directory and updates the
  // spec: the placement (by instance NAME) still resolves.
  ::system(("mv " + kBase + "/inst-b " + kBase + "/inst-b-moved").c_str());
  const std::string moved = write_spec(
      {"a", "b"}, {}, {kBase + "/inst-a", kBase + "/inst-b-moved"});
  {
    auto store = open_cluster(moved);
    EXPECT_EQ(store.find("movable").size(), 1u);
    EXPECT_EQ(store.size(), 1u);
  }
  // The moved root was re-persisted into the placement file, so a later
  // SPEC-LESS open (synapse-inspect's flow) resolves the new root too —
  // not a recreated-empty copy of the stale one.
  {
    profile::ProfileStore store("cluster", kBase + "/store");
    EXPECT_EQ(store.find("movable").size(), 1u);
    EXPECT_EQ(store.size(), 1u);
  }
  EXPECT_NE(std::system(("test -d " + kBase + "/inst-b").c_str()), 0)
      << "stale root must not be recreated";
}

TEST(ClusterBackend, MissingSpecOnFirstOpenIsRejected) {
  ScratchTree scratch;
  profile::ProfileStoreOptions options;
  options.backend = "cluster";
  options.directory = kBase + "/store";
  // No cluster_spec and no persisted placement: nothing to place on.
  try {
    profile::ProfileStore store(std::move(options));
    FAIL() << "expected ConfigError";
  } catch (const synapse::sys::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("--store-cluster"),
              std::string::npos);
  }
}

TEST(ClusterBackend, DegradedInstanceFailsOnlyItsShards) {
  ScratchTree scratch;
  // Instance b's root cannot exist (/dev/null is not a directory), so
  // every shard placed on it opens degraded.
  const std::string spec =
      write_spec({"a", "b"}, {}, {kBase + "/inst-a", "/dev/null/nope"});
  auto store = open_cluster(spec);

  size_t stored = 0;
  size_t failed = 0;
  std::vector<std::string> stored_cmds;
  for (int i = 0; i < 16; ++i) {
    const std::string cmd = "degraded-" + std::to_string(i);
    try {
      store.put(make_profile(cmd, {}, i, static_cast<double>(i)));
      ++stored;
      stored_cmds.push_back(cmd);
    } catch (const synapse::sys::SynapseError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("instance 'b'"), std::string::npos) << what;
      EXPECT_NE(what.find("unavailable"), std::string::npos) << what;
      ++failed;
    }
  }
  // Shards split across both instances, so some workloads land and
  // some fail — never all of either.
  EXPECT_GT(stored, 0u);
  EXPECT_GT(failed, 0u);
  // Healthy shards keep serving reads and flushes.
  for (const auto& cmd : stored_cmds) {
    EXPECT_EQ(store.find(cmd).size(), 1u) << cmd;
  }
  EXPECT_NO_THROW(store.flush());
  // The degradation is visible in the shard metadata.
  bool saw_degraded = false;
  for (const auto& meta : store.shard_meta()) {
    if (meta.get_or("degraded", false)) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded);
}

TEST(ClusterBackend, TamperedPlacementShardCountIsRejected) {
  ScratchTree scratch;
  const std::string spec = write_spec({"a", "b"});
  { open_cluster(spec, /*shards=*/4); }
  // Truncate the persisted placement behind the store's back.
  const std::string placement_path =
      kBase + "/store/cluster.placement.json";
  json::Value placement = json::load_file(placement_path);
  placement.as_object()["placement"].as_array().resize(2);
  json::save_file(placement_path, placement, 0);
  EXPECT_THROW(open_cluster(spec), synapse::sys::ConfigError);
}
