// Conservation properties: the emulator's central invariant is that it
// consumes exactly the resources the profile records (scaled by the
// overrides), on EVERY virtual resource and with EVERY kernel, modulo
// the per-kernel calibration bias the model prescribes. Parameterized
// sweep across the full (machine x kernel) grid.

#include <gtest/gtest.h>

#include <tuple>

#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "resource/cache_model.hpp"
#include "resource/resource_spec.hpp"

namespace emulator = synapse::emulator;
namespace resource = synapse::resource;
namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Profile synthetic_profile(double cycles_total, double bytes_total,
                                   double alloc_total) {
  profile::Profile p;
  p.command = "synthetic";
  p.sample_rate_hz = 10.0;
  profile::TimeSeries trace;
  trace.watcher = "trace";
  constexpr int kSamples = 4;
  for (int i = 1; i <= kSamples; ++i) {
    profile::Sample s;
    s.timestamp = 100.0 + i * 0.1;
    s.set(m::kCyclesUsed, cycles_total * i / kSamples);
    s.set(m::kMemAllocated, alloc_total * i / kSamples);
    s.set(m::kBytesWritten, bytes_total * i / kSamples);
    trace.samples.push_back(std::move(s));
  }
  p.series.push_back(std::move(trace));
  return p;
}

const resource::KernelTraits& traits_of(const std::string& kernel) {
  return kernel == "c" ? resource::c_kernel_traits()
                       : resource::asm_kernel_traits();
}

}  // namespace

class Conservation
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  void TearDown() override { resource::activate_resource("host"); }
};

TEST_P(Conservation, CyclesMatchModelBias) {
  const auto& [machine, kernel] = GetParam();
  resource::activate_resource(machine);

  const double requested = 2e8;
  const auto p = synthetic_profile(requested, 0, 0);

  emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  opts.emulate_storage = false;
  opts.emulate_memory = false;
  opts.compute.kernel = kernel;
  const auto r = synapse::emulate_profile(p, opts);

  const double bias =
      resource::calibration_bias(traits_of(kernel), resource::active_resource());
  EXPECT_NEAR(r.compute.cycles, requested * bias, requested * 0.01)
      << machine << "/" << kernel;
  EXPECT_EQ(r.samples_replayed, 4u);
}

TEST_P(Conservation, BytesConservedExactly) {
  const auto& [machine, kernel] = GetParam();
  resource::activate_resource(machine);

  const auto p = synthetic_profile(0, 512.0 * 1024, 2.0 * 1024 * 1024);
  emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  opts.emulate_compute = false;
  opts.compute.kernel = kernel;
  const auto r = synapse::emulate_profile(p, opts);

  EXPECT_EQ(r.storage.bytes_written, 512u * 1024) << machine;
  EXPECT_EQ(r.memory.bytes_allocated, 2u * 1024 * 1024) << machine;
}

TEST_P(Conservation, WallTimeTracksModelPrediction) {
  const auto& [machine, kernel] = GetParam();
  resource::activate_resource(machine);
  const auto& spec = resource::active_resource();

  const double requested = 0.15 * spec.turbo_hz;  // ~0.15 s x bias
  const auto p = synthetic_profile(requested, 0, 0);

  emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  opts.emulate_storage = false;
  opts.emulate_memory = false;
  opts.compute.kernel = kernel;
  const auto r = synapse::emulate_profile(p, opts);

  const double bias = resource::calibration_bias(traits_of(kernel), spec);
  const double predicted = requested * bias / spec.turbo_hz;
  EXPECT_GE(r.wall_seconds, predicted * 0.9) << machine << "/" << kernel;
  EXPECT_LE(r.wall_seconds, predicted * 1.6 + 0.1) << machine << "/" << kernel;
}

INSTANTIATE_TEST_SUITE_P(
    MachineKernelGrid, Conservation,
    ::testing::Combine(::testing::Values("host", "thinkie", "stampede",
                                         "archer", "comet", "supermic",
                                         "titan"),
                       ::testing::Values("asm", "c")),
    [](const ::testing::TestParamInfo<Conservation::ParamType>& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });
