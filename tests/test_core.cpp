#include "core/synapse.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace m = synapse::metrics;
using synapse::Session;
using synapse::SessionOptions;

namespace {
struct HostGuard {
  HostGuard() { synapse::resource::activate_resource("host"); }
  ~HostGuard() { synapse::resource::activate_resource("host"); }
};
}  // namespace

TEST(Core, VersionString) {
  EXPECT_STREQ(synapse::version(), "0.10.0-cpp");
}

TEST(Core, SessionProfileThenEmulate) {
  HostGuard guard;
  const std::string dir = "/tmp/synapse_core_session";
  std::system(("rm -rf " + dir).c_str());

  SessionOptions opts;
  opts.store_dir = dir;
  opts.emulator.storage.base_dir = "/tmp";
  Session session(opts);

  const auto p = session.profile(
      "sh -c 'i=0; while [ $i -lt 60000 ]; do i=$((i+1)); done'");
  EXPECT_GT(p.runtime(), 0.0);
  EXPECT_EQ(session.store().size(), 1u);

  const auto r = session.emulate(
      "sh -c 'i=0; while [ $i -lt 60000 ]; do i=$((i+1)); done'");
  EXPECT_GT(r.samples_replayed, 0u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(Core, EmulateUnknownCommandThrows) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  Session session(opts);
  EXPECT_THROW(session.emulate("never profiled"),
               synapse::sys::ProfileNotFound);
}

TEST(Core, InvalidBackendThrows) {
  SessionOptions opts;
  opts.store_backend = "oracle";
  EXPECT_THROW(Session{opts}, synapse::sys::ConfigError);
}

TEST(Core, DocstoreBackendWorks) {
  HostGuard guard;
  const std::string dir = "/tmp/synapse_core_doc";
  std::system(("rm -rf " + dir).c_str());
  SessionOptions opts;
  opts.store_backend = "docstore";
  opts.store_dir = dir;
  Session session(opts);
  session.profile("true", {"t"});
  EXPECT_EQ(session.store().find("true", {"t"}).size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(Core, RepeatedProfilesAccumulateForStats) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  Session session(opts);
  session.profile("sleep 0.05");
  session.profile("sleep 0.05");
  session.profile("sleep 0.05");
  const auto stats = session.store().stats("sleep 0.05");
  ASSERT_TRUE(stats.count(std::string(m::kRuntime)));
  EXPECT_EQ(stats.at(std::string(m::kRuntime)).n, 3u);
  EXPECT_GT(stats.at(std::string(m::kRuntime)).mean, 0.04);
}

TEST(Core, OneShotHelpers) {
  HostGuard guard;
  const auto p = synapse::profile_once("sleep 0.05");
  EXPECT_GE(p.runtime(), 0.04);
  synapse::emulator::EmulatorOptions eopts;
  eopts.storage.base_dir = "/tmp";
  const auto r = synapse::emulate_profile(p, eopts);
  EXPECT_LT(r.wall_seconds, 3.0);
}

TEST(Core, TagsSeparateWorkloads) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  Session session(opts);
  session.profile("sleep 0.05", {"config=a"});
  session.profile("sleep 0.05", {"config=b"});
  EXPECT_EQ(session.store().find("sleep 0.05", {"config=a"}).size(), 1u);
  EXPECT_EQ(session.store().find("sleep 0.05", {"config=b"}).size(), 1u);
  EXPECT_TRUE(session.store().find("sleep 0.05").empty());
}

TEST(Core, StoreBatchQueuesUntilFullThenPutMany) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  opts.store_batch = 3;
  // Keep each recording cheap: one watcher, fast child.
  opts.profiler.watcher_set = {"cpu"};
  Session session(opts);

  session.profile("true");
  session.profile("true");
  // Two recordings pend below the batch threshold...
  EXPECT_EQ(session.store().size(), 0u);
  session.profile("true");
  // ...the third completes the batch and lands via put_many.
  EXPECT_EQ(session.store().size(), 3u);

  session.profile("true");
  EXPECT_EQ(session.store().size(), 3u);  // pending again
  session.flush_pending();
  EXPECT_EQ(session.store().size(), 4u);
}

TEST(Core, EmulateSeesBatchedRecordings) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  opts.store_batch = 10;  // nothing would flush on its own
  opts.profiler.watcher_set = {"cpu"};
  opts.emulator.storage.base_dir = "/tmp";
  Session session(opts);
  session.profile("sleep 0.05");
  // emulate() must flush pending recordings before the lookup.
  EXPECT_NO_THROW(session.emulate("sleep 0.05"));
}

// Tail-batch regression: an exception thrown mid-run (here: emulating a
// command that was never profiled) must not lose the recordings queued
// below the batch threshold — every exit path flushes them first.
TEST(Core, ThrowingEmulateDoesNotLoseQueuedTailBatch) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  opts.store_batch = 10;  // both recordings stay queued until the throw
  opts.profiler.watcher_set = {"cpu"};
  Session session(opts);
  session.profile("true", {"tail"});
  session.profile("true", {"tail"});
  EXPECT_EQ(session.store().size(), 0u);  // still pending

  EXPECT_THROW(session.emulate("never profiled"),
               synapse::sys::ProfileNotFound);
  // The throw happened AFTER the pending batch reached the store.
  EXPECT_EQ(session.store().size(), 2u);
  EXPECT_EQ(session.store().find("true", {"tail"}).size(), 2u);
}

// Destruction is an exit path too: a partial batch held by a session
// going out of scope must land in the (persistent) store.
TEST(Core, SessionDestructionFlushesQueuedTailBatch) {
  HostGuard guard;
  const std::string dir = "/tmp/synapse_core_tail_batch";
  std::system(("rm -rf " + dir).c_str());
  SessionOptions opts;
  opts.store_backend = "files";
  opts.store_dir = dir;
  opts.store_batch = 50;
  opts.profiler.watcher_set = {"cpu"};
  {
    Session session(opts);
    session.profile("true", {"dtor"});
    session.profile("true", {"dtor"});
    EXPECT_EQ(session.store().size(), 0u);  // pending at destruction
  }
  synapse::profile::ProfileStore reopened("files", dir);
  EXPECT_EQ(reopened.find("true", {"dtor"}).size(), 2u);
  std::system(("rm -rf " + dir).c_str());
}

// The FlushPolicy age trigger reaches the session queue: a recording
// arriving after the oldest queued one exceeded max_age_s hands the
// partial batch to the store even though the size threshold is far off.
TEST(Core, AgedPartialBatchFlushesOnNextRecording) {
  HostGuard guard;
  SessionOptions opts;
  opts.store_backend = "memory";
  opts.store_batch = 100;
  opts.store_options.flush_policy.max_age_s = 0.05;
  opts.profiler.watcher_set = {"cpu"};
  Session session(opts);
  session.profile("true");
  EXPECT_EQ(session.store().size(), 0u);  // young batch stays queued
  synapse::sys::sleep_for(0.1);           // let the queue age past max_age
  session.profile("true");
  EXPECT_EQ(session.store().size(), 2u);
}
