#include "docstore/docstore.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

namespace ds = synapse::docstore;
namespace json = synapse::json;

namespace {
json::Value doc(const std::string& cmd, double size) {
  json::Object o;
  o["command"] = cmd;
  o["size"] = size;
  json::Object meta;
  meta["tag"] = cmd + "-tag";
  o["meta"] = std::move(meta);
  return json::Value(std::move(o));
}
}  // namespace

TEST(DocStore, InsertAssignsIds) {
  ds::Collection coll("c");
  const auto a = coll.insert(doc("x", 1));
  const auto b = coll.insert(doc("y", 2));
  EXPECT_NE(a.id, b.id);
  EXPECT_FALSE(a.truncated);
  EXPECT_EQ(coll.size(), 2u);
}

TEST(DocStore, GetById) {
  ds::Collection coll("c");
  const auto r = coll.insert(doc("x", 5));
  const auto found = coll.get(r.id);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ((*found)["command"].as_string(), "x");
  EXPECT_FALSE(coll.get(r.id + 100).has_value());
}

TEST(DocStore, FindByFieldEquality) {
  ds::Collection coll("c");
  coll.insert(doc("a", 1));
  coll.insert(doc("a", 2));
  coll.insert(doc("b", 3));
  const auto hits = coll.find({{"command", json::Value("a")}});
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(coll.find({{"command", json::Value("zzz")}}).empty());
}

TEST(DocStore, FindWithDottedPath) {
  ds::Collection coll("c");
  coll.insert(doc("a", 1));
  const auto hits = coll.find({{"meta.tag", json::Value("a-tag")}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST(DocStore, FindConjunction) {
  ds::Collection coll("c");
  coll.insert(doc("a", 1));
  coll.insert(doc("a", 2));
  const auto hits = coll.find(
      {{"command", json::Value("a")}, {"size", json::Value(2)}});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0]["size"].as_double(), 2.0);
}

TEST(DocStore, FindOne) {
  ds::Collection coll("c");
  EXPECT_FALSE(coll.find_one({{"command", json::Value("a")}}).has_value());
  coll.insert(doc("a", 1));
  EXPECT_TRUE(coll.find_one({{"command", json::Value("a")}}).has_value());
}

TEST(DocStore, Remove) {
  ds::Collection coll("c");
  coll.insert(doc("a", 1));
  coll.insert(doc("b", 2));
  EXPECT_EQ(coll.remove({{"command", json::Value("a")}}), 1u);
  EXPECT_EQ(coll.size(), 1u);
  EXPECT_EQ(coll.remove({{"command", json::Value("a")}}), 0u);
}

TEST(DocStore, RejectsNonObject) {
  ds::Collection coll("c");
  EXPECT_THROW(coll.insert(json::Value(5)), json::JsonError);
}

TEST(DocStore, SixteenMbLimitTrimsLargestArray) {
  // Build a document just over the 16 MB cap: a samples array of ~70k
  // entries x ~230 bytes (~20 MB). The insert must succeed, report truncation,
  // and drop samples from the tail — the paper's "largest configuration
  // misses one data sample" behaviour (sections 4.5 / E.1).
  json::Object o;
  o["command"] = "big";
  json::Array samples;
  const std::string pad(200, 'x');
  for (int i = 0; i < 90000; ++i) {
    json::Object s;
    s["t"] = i;
    s["pad"] = pad;
    samples.push_back(json::Value(std::move(s)));
  }
  const size_t original = samples.size();
  o["samples"] = std::move(samples);

  ds::Collection coll("c");
  const auto r = coll.insert(json::Value(std::move(o)));
  EXPECT_TRUE(r.truncated);
  EXPECT_LE(r.stored_bytes, ds::kMaxDocumentBytes);

  const auto stored = coll.get(r.id);
  ASSERT_TRUE(stored.has_value());
  const size_t kept = (*stored)["samples"].size();
  EXPECT_LT(kept, original);
  EXPECT_GT(kept, original / 2);  // trims the tail, not the bulk
}

TEST(DocStore, StorePersistsAndReloads) {
  const std::string dir = "/tmp/synapse_docstore_test";
  std::system(("rm -rf " + dir).c_str());
  {
    ds::Store store(dir);
    store.collection("profiles").insert(doc("cmd1", 1));
    store.collection("profiles").insert(doc("cmd2", 2));
    store.collection("other").insert(doc("x", 3));
    store.flush();
  }
  {
    ds::Store store(dir);
    EXPECT_EQ(store.collection("profiles").size(), 2u);
    EXPECT_EQ(store.collection("other").size(), 1u);
    const auto names = store.collection_names();
    EXPECT_EQ(names.size(), 2u);
    // Ids continue after reload.
    const auto r = store.collection("profiles").insert(doc("cmd3", 3));
    EXPECT_GE(r.id, 3u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(DocStore, ConcurrentInsertsAreSafe) {
  ds::Collection coll("c");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&coll, t] {
      for (int i = 0; i < 50; ++i) {
        coll.insert(doc("t" + std::to_string(t), i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(coll.size(), 400u);
}

TEST(DocStore, LookupPath) {
  const auto v = json::parse(R"({"a": {"b": {"c": 7}}})");
  const json::Value* p = ds::lookup_path(v, "a.b.c");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->as_double(), 7.0);
  EXPECT_EQ(ds::lookup_path(v, "a.b.missing"), nullptr);
  EXPECT_EQ(ds::lookup_path(v, "a.b.c.d"), nullptr);
}
