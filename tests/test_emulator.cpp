#include "emulator/emulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"

namespace emulator = synapse::emulator;
namespace resource = synapse::resource;
namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

/// Synthetic profile: `samples` periods, each with the given per-period
/// compute/storage/memory consumption.
profile::Profile synthetic_profile(size_t samples, double cycles_per_sample,
                                   double bytes_per_sample = 0,
                                   double alloc_per_sample = 0) {
  profile::Profile p;
  p.command = "synthetic";
  p.sample_rate_hz = 10.0;

  profile::TimeSeries trace;
  trace.watcher = "trace";
  double cycles = 0, bytes = 0, alloc = 0;
  for (size_t i = 0; i < samples; ++i) {
    profile::Sample s;
    s.timestamp = 100.0 + static_cast<double>(i) * 0.1;
    cycles += cycles_per_sample;
    bytes += bytes_per_sample;
    alloc += alloc_per_sample;
    s.set(m::kCyclesUsed, cycles);
    s.set(m::kMemAllocated, alloc);
    p.totals[std::string(m::kCyclesUsed)] = cycles;
    trace.samples.push_back(std::move(s));
  }
  p.series.push_back(trace);

  profile::TimeSeries io;
  io.watcher = "io";
  double b = 0;
  for (size_t i = 0; i < samples; ++i) {
    profile::Sample s;
    s.timestamp = 100.0 + static_cast<double>(i) * 0.1;
    b += bytes_per_sample;
    s.set(m::kBytesWritten, b);
    io.samples.push_back(std::move(s));
  }
  p.series.push_back(io);
  return p;
}

emulator::EmulatorOptions tmp_storage_options() {
  emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  return opts;
}

}  // namespace

TEST(Emulator, ConsumesProfiledCycles) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(4, 0.05 * hz);  // ~0.2 s of compute
  emulator::Emulator emu(tmp_storage_options());
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.samples_replayed, 4u);
  EXPECT_NEAR(r.compute.cycles, 0.2 * hz, 0.01 * hz);
  EXPECT_GE(r.wall_seconds, 0.15);
  EXPECT_LT(r.wall_seconds, 2.0);
}

TEST(Emulator, EmptyProfileIsHarmless) {
  HostGuard guard;
  profile::Profile p;
  p.sample_rate_hz = 10.0;
  emulator::Emulator emu(tmp_storage_options());
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.samples_replayed, 0u);
  EXPECT_LT(r.wall_seconds, 0.5);
}

TEST(Emulator, CycleScaleMultipliesWork) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(2, 0.05 * hz);

  auto opts = tmp_storage_options();
  opts.cycle_scale = 2.0;
  emulator::Emulator doubled(opts);
  const auto r = doubled.emulate(p);
  EXPECT_NEAR(r.compute.cycles, 0.2 * hz, 0.02 * hz);
}

TEST(Emulator, IoScaleMultipliesBytes) {
  HostGuard guard;
  const auto p = synthetic_profile(2, 0, 64 * 1024);
  auto opts = tmp_storage_options();
  opts.io_scale = 3.0;
  emulator::Emulator emu(opts);
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.storage.bytes_written, 3u * 2 * 64 * 1024);
}

TEST(Emulator, MemoryScaleMultipliesAllocations) {
  HostGuard guard;
  const auto p = synthetic_profile(2, 0, 0, 1024 * 1024);
  auto opts = tmp_storage_options();
  opts.memory_scale = 2.0;
  emulator::Emulator emu(opts);
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.memory.bytes_allocated, 4u * 1024 * 1024);
}

TEST(Emulator, DisabledAtomsDoNothing) {
  HostGuard guard;
  const auto p = synthetic_profile(2, 1e7, 64 * 1024, 1024);
  auto opts = tmp_storage_options();
  opts.emulate_storage = false;
  opts.emulate_memory = false;
  emulator::Emulator emu(opts);
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.storage.bytes_written, 0u);
  EXPECT_EQ(r.memory.bytes_allocated, 0u);
  EXPECT_GT(r.compute.cycles, 0.0);
}

TEST(Emulator, SampleCountMatchesProfilePeriods) {
  HostGuard guard;
  const auto p = synthetic_profile(7, 1e6);
  emulator::Emulator emu(tmp_storage_options());
  EXPECT_EQ(emu.emulate(p).samples_replayed, 7u);
}

TEST(Emulator, OpenMpModeShortensWallTime) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(3, 0.08 * hz);  // ~0.24 s serial

  emulator::Emulator serial(tmp_storage_options());
  const double t_serial = serial.emulate(p).wall_seconds;

  auto opts = tmp_storage_options();
  opts.parallel_mode = emulator::ParallelMode::OpenMp;
  opts.parallel_degree = 4;
  emulator::Emulator parallel(opts);
  const double t_parallel = parallel.emulate(p).wall_seconds;

  EXPECT_LT(t_parallel, t_serial * 0.55);  // ~4x ideal, allow overheads
}

TEST(Emulator, ProcessModeRunsAllRanks) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(3, 0.04 * hz);

  auto opts = tmp_storage_options();
  opts.parallel_mode = emulator::ParallelMode::Process;
  opts.parallel_degree = 4;
  emulator::Emulator emu(opts);
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.ranks_ok, 4);
  // Aggregate cycles across ranks equal the profile's budget.
  EXPECT_NEAR(r.compute.cycles, 0.12 * hz, 0.02 * hz);
}

TEST(Emulator, ProcessModeFasterThanSerial) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(2, 0.1 * hz);  // 0.2 s serial compute

  emulator::Emulator serial(tmp_storage_options());
  const double t_serial = serial.emulate(p).wall_seconds;

  auto opts = tmp_storage_options();
  opts.parallel_mode = emulator::ParallelMode::Process;
  opts.parallel_degree = 4;
  emulator::Emulator parallel(opts);
  const double t_parallel = parallel.emulate(p).wall_seconds;
  EXPECT_LT(t_parallel, t_serial);
}

TEST(Emulator, StorageBlockOverridesApply) {
  HostGuard guard;
  resource::activate_resource("supermic");
  const auto p = synthetic_profile(1, 0, 1024 * 1024);

  auto small = tmp_storage_options();
  small.emulate_compute = false;
  small.storage.write_block_bytes = 32 * 1024;
  emulator::Emulator small_emu(small);

  auto big = tmp_storage_options();
  big.emulate_compute = false;
  big.storage.write_block_bytes = 1024 * 1024;
  emulator::Emulator big_emu(big);

  // Scheduler jitter on small VMs can inflate a single run; take the
  // best ratio of a few attempts before declaring the override inert.
  double best_ratio = 0.0;
  for (int attempt = 0; attempt < 3 && best_ratio <= 2.0; ++attempt) {
    const double t_small = small_emu.emulate(p).wall_seconds;
    const double t_big = big_emu.emulate(p).wall_seconds;
    if (t_big > 0) best_ratio = std::max(best_ratio, t_small / t_big);
  }
  EXPECT_GT(best_ratio, 2.0);
}

TEST(Emulator, ProcessModeWithCommRing) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(4, 0.01 * hz);

  auto opts = tmp_storage_options();
  opts.parallel_mode = emulator::ParallelMode::Process;
  opts.parallel_degree = 3;
  opts.comm_bytes_per_sample = 128 * 1024;
  emulator::Emulator emu(opts);
  const auto r = emu.emulate(p);
  EXPECT_EQ(r.ranks_ok, 3);
  // 3 ranks x 4 samples x 128 KiB received each.
  EXPECT_EQ(r.comm_bytes, 3u * 4 * 128 * 1024);
}

TEST(Emulator, CommDisabledByDefault) {
  HostGuard guard;
  const double hz = resource::active_resource().turbo_hz;
  const auto p = synthetic_profile(2, 0.01 * hz);
  auto opts = tmp_storage_options();
  opts.parallel_mode = emulator::ParallelMode::Process;
  opts.parallel_degree = 2;
  emulator::Emulator emu(opts);
  EXPECT_EQ(emu.emulate(p).comm_bytes, 0u);
}
