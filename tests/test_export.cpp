#include "profile/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "profile/metrics.hpp"
#include "sys/procfs.hpp"

namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Profile sample_profile(const std::string& cmd, double cycles) {
  profile::Profile p;
  p.command = cmd;
  p.tags = {"a", "b"};
  p.created_at = 1000.0;
  p.sample_rate_hz = 10.0;
  profile::TimeSeries ts;
  ts.watcher = "cpu";
  profile::Sample s;
  s.timestamp = 100.5;
  s.set(m::kCyclesUsed, cycles);
  ts.samples.push_back(std::move(s));
  p.series.push_back(std::move(ts));
  p.totals[std::string(m::kCyclesUsed)] = cycles;
  p.totals[std::string(m::kRuntime)] = 1.5;
  return p;
}

size_t count_lines(const std::string& s) {
  size_t n = 0;
  for (const char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

}  // namespace

TEST(Export, SeriesCsvShape) {
  const auto p = sample_profile("cmd", 123.0);
  const std::string csv = profile::series_to_csv(p);
  EXPECT_EQ(count_lines(csv), 2u);  // header + one value row
  EXPECT_NE(csv.find("watcher,timestamp,metric,value"), std::string::npos);
  EXPECT_NE(csv.find("cpu,100.5,compute.cycles_used,123"),
            std::string::npos);
}

TEST(Export, TotalsCsvUnionOfColumns) {
  auto p1 = sample_profile("cmd", 100.0);
  auto p2 = sample_profile("cmd", 200.0);
  p2.totals["extra.metric"] = 7.0;
  const std::string csv = profile::totals_to_csv({p1, p2});

  EXPECT_EQ(count_lines(csv), 3u);  // header + 2 profiles
  // The union column appears; p1's row has an empty cell for it.
  EXPECT_NE(csv.find("extra.metric"), std::string::npos);
  std::istringstream lines(csv);
  std::string header, row1, row2;
  std::getline(lines, header);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_NE(row1.find("cmd,a;b,1000,10,"), std::string::npos);
  // p1 lacks extra.metric -> trailing empty field somewhere.
  EXPECT_NE(row1.find(",,"), std::string::npos);
  EXPECT_NE(row2.find("7"), std::string::npos);
}

TEST(Export, CsvQuoting) {
  auto p = sample_profile("cmd, with \"quotes\"", 1.0);
  const std::string csv = profile::totals_to_csv({p});
  EXPECT_NE(csv.find("\"cmd, with \"\"quotes\"\"\""), std::string::npos);
}

TEST(Export, WriteFileRoundTrip) {
  const std::string path = "/tmp/synapse_export_test.csv";
  profile::write_file(path, "a,b\n1,2\n");
  const auto content = synapse::sys::slurp_file(path);
  ::unlink(path.c_str());
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "a,b\n1,2\n");
}

TEST(Export, WriteFileBadPathThrows) {
  EXPECT_THROW(profile::write_file("/no/such/dir/file.csv", "x"),
               synapse::sys::SystemError);
}

TEST(Export, EmptyInputs) {
  EXPECT_EQ(profile::totals_to_csv({}),
            "command,tags,created_at,sample_rate_hz\n");
  profile::Profile empty;
  EXPECT_EQ(profile::series_to_csv(empty),
            "watcher,timestamp,metric,value,effective_rate_hz\n");
}
