// Failure injection: the profiler and emulator must degrade gracefully
// when the observed application crashes, exits instantly, or the
// environment misbehaves — requirement P.2/P.3 imply the tooling never
// makes a flaky application flakier.

#include <gtest/gtest.h>

#include <csignal>

#include "core/synapse.hpp"
#include "docstore/docstore.hpp"
#include "profile/metrics.hpp"
#include "resource/resource_spec.hpp"
#include "sys/clock.hpp"
#include "sys/spawn.hpp"
#include "watchers/profiler.hpp"

namespace watchers = synapse::watchers;
namespace profile = synapse::profile;
namespace resource = synapse::resource;
namespace sys = synapse::sys;
namespace m = synapse::metrics;

namespace {
struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};
}  // namespace

TEST(FailureInjection, ProfiledAppCrashesMidRun) {
  HostGuard guard;
  watchers::ProfilerOptions opts;
  opts.sample_rate_hz = 50.0;
  watchers::Profiler profiler(opts);
  // The child burns CPU for a moment and then dies on SIGKILL.
  const auto p = profiler.profile_function(
      [] {
        const double until = sys::steady_now() + 0.2;
        volatile double x = 1.0;
        while (sys::steady_now() < until) x = x * 1.0000001 + 1e-9;
        ::raise(SIGKILL);
        return 0;
      },
      "crashy-app");
  // Profiling completes with the data gathered so far.
  EXPECT_GE(p.runtime(), 0.15);
  EXPECT_GT(p.sample_count(), 0u);
}

TEST(FailureInjection, InstantExitStillProfiles) {
  HostGuard guard;
  watchers::Profiler profiler;
  const auto p = profiler.profile("true");
  EXPECT_GE(p.runtime(), 0.0);
  EXPECT_LT(p.runtime(), 1.0);
  // The rusage correction covers even the zero-sample case.
  EXPECT_GT(p.total(m::kMemPeak), 0.0);
}

TEST(FailureInjection, NonExistentBinaryRecordedNotThrown) {
  HostGuard guard;
  watchers::Profiler profiler;
  const auto p = profiler.profile("/definitely/not/here");
  ASSERT_FALSE(p.tags.empty());
  EXPECT_EQ(p.tags.back(), "exit_code=127");
}

TEST(FailureInjection, EmulationOfCorruptProfileIsBounded) {
  HostGuard guard;
  // A profile with nonsense values (negative deltas, absurd timestamps)
  // must not hang or crash the emulator.
  profile::Profile p;
  p.sample_rate_hz = 10.0;
  profile::TimeSeries ts;
  ts.watcher = "trace";
  for (int i = 0; i < 3; ++i) {
    profile::Sample s;
    s.timestamp = 1000.0 - i;  // decreasing timestamps
    s.set(m::kCyclesUsed, i % 2 == 0 ? -1e9 : 1e6);
    ts.samples.push_back(std::move(s));
  }
  p.series.push_back(std::move(ts));

  synapse::emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  const sys::Stopwatch sw;
  const auto r = synapse::emulate_profile(p, opts);
  EXPECT_LT(sw.elapsed(), 5.0);
  (void)r;
}

TEST(FailureInjection, DocstoreSurvivesCorruptCollectionFile) {
  const std::string dir = "/tmp/synapse_corrupt_store";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  // A valid store next to a corrupt file: construction must throw a
  // JsonError (diagnosable), not crash.
  std::system(("echo 'not json' > " + dir + "/bad.collection.json").c_str());
  EXPECT_THROW(synapse::docstore::Store store(dir),
               synapse::json::JsonError);
  std::system(("rm -rf " + dir).c_str());
}

TEST(FailureInjection, WatcherSurvivesChildExitBetweenSamples) {
  HostGuard guard;
  // Race the watchers hard: profile a process that exits in ~10 ms at a
  // 200 Hz sampling rate; many samples land after the exit.
  watchers::ProfilerOptions opts;
  opts.sample_rate_hz = 200.0;
  watchers::Profiler profiler(opts);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW({
      const auto p = profiler.profile("sleep 0.01");
      EXPECT_GE(p.runtime(), 0.0);
    });
  }
}

TEST(FailureInjection, SessionEmulateAfterStoreDeletedThrows) {
  HostGuard guard;
  const std::string dir = "/tmp/synapse_vanishing_store";
  std::system(("rm -rf " + dir).c_str());
  synapse::SessionOptions opts;
  opts.store_dir = dir;
  synapse::Session session(opts);
  session.profile("true");
  std::system(("rm -rf " + dir).c_str());
  EXPECT_THROW(session.emulate("true"), sys::ProfileNotFound);
}
