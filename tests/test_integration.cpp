// End-to-end scenarios mirroring the paper's experiments at test scale.
// The full sweeps live in bench/; these tests pin the *directions* and
// rough magnitudes so regressions surface in ctest.

#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/mdsim.hpp"
#include "core/synapse.hpp"
#include "profile/metrics.hpp"
#include "profile/stats.hpp"
#include "resource/resource_spec.hpp"
#include "workload/scenario.hpp"

namespace apps = synapse::apps;
namespace resource = synapse::resource;
namespace watchers = synapse::watchers;
namespace emulator = synapse::emulator;
namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

struct HostGuard {
  HostGuard() { resource::activate_resource("host"); }
  ~HostGuard() { resource::activate_resource("host"); }
};

profile::Profile profile_md(uint64_t steps, double rate_hz = 20.0) {
  watchers::ProfilerOptions opts;
  opts.sample_rate_hz = rate_hz;
  watchers::Profiler profiler(opts);
  apps::MdOptions md;
  md.steps = steps;
  md.scratch_dir = "/tmp";
  return profiler.profile_function(
      [md] {
        apps::run_md(md);
        return 0;
      },
      "mdsim --steps " + std::to_string(steps),
      {"steps=" + std::to_string(steps)});
}

emulator::EmulatorOptions default_emu() {
  emulator::EmulatorOptions opts;
  opts.storage.base_dir = "/tmp";
  return opts;
}

}  // namespace

// E.2 / Fig. 5: on the profiling resource, emulated Tx matches the
// application Tx once Tx exceeds the startup transient.
TEST(Integration, SameResourceEmulationMatchesTx) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  const auto p = profile_md(250);
  const auto r = synapse::emulate_profile(p, default_emu());
  const double diff = profile::relative_diff(r.wall_seconds, p.runtime());
  EXPECT_LT(diff, 0.25) << "app=" << p.runtime() << " emu=" << r.wall_seconds;
}

// E.2 / Fig. 7 (top): on Stampede the emulation runs consistently
// FASTER than the application (paper: converges to ~40%).
TEST(Integration, StampedeEmulationFasterThanApp) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  const auto p = profile_md(250);

  resource::activate_resource("stampede");
  apps::MdOptions md;
  md.steps = 250;
  md.scratch_dir = "/tmp";
  const auto app = apps::run_md(md);
  const auto emu = synapse::emulate_profile(p, default_emu());

  EXPECT_LT(emu.wall_seconds, app.wall_seconds);
  const double diff =
      (app.wall_seconds - emu.wall_seconds) / app.wall_seconds;
  EXPECT_NEAR(diff, 0.40, 0.15);
}

// E.2 / Fig. 7 (bottom): on Archer the emulation runs consistently
// SLOWER than the application (paper: converges to ~33%).
TEST(Integration, ArcherEmulationSlowerThanApp) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  const auto p = profile_md(250);

  resource::activate_resource("archer");
  apps::MdOptions md;
  md.steps = 250;
  md.scratch_dir = "/tmp";
  const auto app = apps::run_md(md);
  const auto emu = synapse::emulate_profile(p, default_emu());

  EXPECT_GT(emu.wall_seconds, app.wall_seconds);
  const double diff =
      (emu.wall_seconds - app.wall_seconds) / app.wall_seconds;
  EXPECT_NEAR(diff, 0.33, 0.15);
}

// E.3 / Fig. 8: emulation directed to consume the application's cycles
// errs little with the C kernel and much more with the ASM kernel.
TEST(Integration, KernelChoiceControlsCycleError) {
  HostGuard guard;
  resource::activate_resource("supermic");
  const auto p = profile_md(200);
  const double app_cycles = p.total(m::kCyclesUsed);
  ASSERT_GT(app_cycles, 0.0);

  auto c_opts = default_emu();
  c_opts.compute.kernel = "c";
  const auto c_run = synapse::emulate_profile(p, c_opts);
  const double c_err =
      profile::relative_diff(c_run.compute.cycles, app_cycles);

  auto asm_opts = default_emu();
  asm_opts.compute.kernel = "asm";
  const auto asm_run = synapse::emulate_profile(p, asm_opts);
  const double asm_err =
      profile::relative_diff(asm_run.compute.cycles, app_cycles);

  EXPECT_LT(c_err, 0.10);            // paper: ~4%
  EXPECT_GT(asm_err, 0.15);          // paper: ~26.5%
  EXPECT_LT(asm_err, 0.40);
  EXPECT_LT(c_err, asm_err);
}

// E.4 / Fig. 12: parallel emulation scales with diminishing returns.
TEST(Integration, ParallelEmulationScalesWithDiminishingReturns) {
  HostGuard guard;
  resource::activate_resource("titan");
  const auto p = profile_md(150);

  auto opts1 = default_emu();
  opts1.emulate_storage = false;
  opts1.emulate_memory = false;
  const double t1 = synapse::emulate_profile(p, opts1).wall_seconds;

  auto opts4 = opts1;
  opts4.parallel_mode = emulator::ParallelMode::OpenMp;
  opts4.parallel_degree = 4;
  const double t4 = synapse::emulate_profile(p, opts4).wall_seconds;

  auto opts16 = opts1;
  opts16.parallel_mode = emulator::ParallelMode::OpenMp;
  opts16.parallel_degree = 16;
  const double t16 = synapse::emulate_profile(p, opts16).wall_seconds;

  const double speedup4 = t1 / t4;
  const double speedup16 = t1 / t16;
  EXPECT_GT(speedup4, 2.0);                    // good scaling at low counts
  EXPECT_GT(speedup16, speedup4 * 0.7);        // no collapse at a full node
  EXPECT_LT(speedup16, 4.0 * speedup4);        // but clearly sub-linear
}

// E.1 / Fig. 4: profiling overhead on Tx is negligible.
TEST(Integration, ProfilingOverheadNegligible) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  apps::MdOptions md;
  md.steps = 200;
  md.scratch_dir = "/tmp";
  const auto native = apps::run_md(md);
  const auto profiled = profile_md(200, 10.0);
  const double overhead =
      (profiled.runtime() - native.wall_seconds) / native.wall_seconds;
  EXPECT_LT(overhead, 0.20);
}

// E.1 / Fig. 6 bottom: with only ~one sample inside the application
// lifetime, the profiler underestimates resident memory; with many
// samples the estimate stabilizes.
TEST(Integration, ResidentMemoryNeedsTwoSamples) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  const auto coarse = profile_md(150, 0.5);  // ~1 sample in-lifetime
  const auto fine = profile_md(150, 50.0);

  const auto* coarse_mem = coarse.find_series("mem");
  const auto* fine_mem = fine.find_series("mem");
  ASSERT_NE(coarse_mem, nullptr);
  ASSERT_NE(fine_mem, nullptr);
  EXPECT_LE(coarse_mem->max(m::kMemResident),
            fine_mem->max(m::kMemResident) * 1.05);
}

// The emulation of an emulation: profiling an emulated run reports the
// same consumption (the paper's "sanity check" in E.2).
TEST(Integration, ProfilingTheEmulationAgrees) {
  HostGuard guard;
  resource::activate_resource("thinkie");
  const auto p = profile_md(200);
  const double app_cycles = p.total(m::kCyclesUsed);

  watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 20.0;
  watchers::Profiler profiler(popts);
  const auto p2 = profiler.profile_function(
      [&p] {
        auto opts = default_emu();
        synapse::emulate_profile(p, opts);
        return 0;
      },
      "emulation-of-mdsim");

  EXPECT_NEAR(p2.total(m::kCyclesUsed), app_cycles, app_cycles * 0.10);
}

// Table 1 "(-)" closure, end to end: profile an emulation with the net
// watcher attached, store the profile, look it up again, and replay its
// recorded network series through the network atom. Non-zero bytes must
// flow at every step of the loop.
TEST(Integration, NetworkProfileEmulateRoundTrip) {
  HostGuard guard;
  namespace workload = synapse::workload;

  const workload::ScenarioSpec* spec =
      workload::find_builtin("network-loopback");
  ASSERT_NE(spec, nullptr);
  const double expected_bytes =
      static_cast<double>(spec->source.samples) *
      spec->source.deltas.at(std::string(m::kNetBytesWritten));

  // 1. Profile the scenario's emulation; the scenario's own watcher
  //    list ({"cpu", "net"}) opts into network profiling.
  watchers::ProfilerOptions popts;
  popts.sample_rate_hz = 50.0;
  const auto p = workload::profile_scenario(*spec, popts, default_emu());
  const auto* net = p.find_series("net");
  ASSERT_NE(net, nullptr);
  // The net baseline is taken at watcher construction (before the child
  // is spawned) and the closing sample after it exits, so the full
  // replayed payload — plus protocol headers — must be recorded.
  EXPECT_GE(p.total(m::kNetBytesWritten), expected_bytes * 0.9);

  // 2. Store and retrieve (the persistence leg of the round trip).
  profile::ProfileStore store("files",
                              "/tmp/synapse_net_roundtrip_store");
  store.put(p);
  store.flush();
  const auto found = store.find_latest(p.command, p.tags);
  ASSERT_TRUE(found.has_value());
  ASSERT_NE(found->find_series("net"), nullptr);

  // 3. Replay the recorded network series through the network atom.
  auto eopts = default_emu();
  eopts.atom_set = {"network"};
  const auto replayed = synapse::emulate_profile(*found, eopts);
  const uint64_t transferred =
      replayed.network.net_bytes_sent + replayed.network.net_bytes_received;
  EXPECT_GT(transferred, 0u);
  EXPECT_GE(static_cast<double>(transferred), expected_bytes * 0.5);

  std::system("rm -rf /tmp/synapse_net_roundtrip_store");
}
