#include "json/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace json = synapse::json;

TEST(Json, ParseScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.25").as_double(), -3.25);
  EXPECT_DOUBLE_EQ(json::parse("1e6").as_double(), 1e6);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const auto v = json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_EQ(v["a"].size(), 3u);
  EXPECT_DOUBLE_EQ(v["a"].at(0).as_double(), 1.0);
  EXPECT_EQ(v["a"].at(2)["b"].as_string(), "c");
  EXPECT_TRUE(v["d"]["e"].is_null());
}

TEST(Json, ParseStringEscapes) {
  const auto v = json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapeUtf8) {
  EXPECT_EQ(json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(Json, ParseErrorsCarryLocation) {
  try {
    json::parse("{\n  \"a\": ,\n}");
    FAIL() << "expected JsonError";
  } catch (const json::JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(json::parse(""), json::JsonError);
  EXPECT_THROW(json::parse("{"), json::JsonError);
  EXPECT_THROW(json::parse("[1,]"), json::JsonError);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), json::JsonError);
  EXPECT_THROW(json::parse("tru"), json::JsonError);
  EXPECT_THROW(json::parse("'single'"), json::JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const auto v = json::parse("{\"n\": 1}");
  EXPECT_THROW(v.as_string(), json::JsonError);
  EXPECT_THROW(v["n"].as_array(), json::JsonError);
  EXPECT_THROW(v["missing"], json::JsonError);
  EXPECT_THROW(v["n"].at(0), json::JsonError);
}

TEST(Json, GetOrDefaults) {
  const auto v = json::parse(R"({"s": "x", "n": 2.5, "b": true})");
  EXPECT_EQ(v.get_or("s", std::string("d")), "x");
  EXPECT_EQ(v.get_or("absent", std::string("d")), "d");
  EXPECT_DOUBLE_EQ(v.get_or("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.get_or("s", 9.0), 9.0);  // wrong type -> default
  EXPECT_EQ(v.get_or("b", false), true);
}

TEST(Json, DumpCompactRoundTrip) {
  const std::string doc =
      R"({"arr":[1,2.5,"s",true,null],"nested":{"k":"v"},"z":-7})";
  const auto v = json::parse(doc);
  const auto again = json::parse(json::dump(v));
  EXPECT_TRUE(v == again);
}

TEST(Json, DumpPrettyRoundTrip) {
  const auto v = json::parse(R"({"a":[1,{"b":[]},{}],"c":"d"})");
  const std::string pretty = json::dump(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(json::parse(pretty) == v);
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  json::Object o;
  o["n"] = 1234567890;
  const std::string s = json::dump(json::Value(std::move(o)));
  EXPECT_EQ(s, "{\"n\":1234567890}");
}

TEST(Json, NanAndInfBecomeNull) {
  json::Object o;
  o["nan"] = std::nan("");
  o["inf"] = INFINITY;
  const auto round = json::parse(json::dump(json::Value(std::move(o))));
  EXPECT_TRUE(round["nan"].is_null());
  EXPECT_TRUE(round["inf"].is_null());
}

TEST(Json, ControlCharsEscaped) {
  json::Value v(std::string("a\x01z"));
  EXPECT_EQ(json::dump(v), "\"a\\u0001z\"");
  EXPECT_EQ(json::parse(json::dump(v)).as_string(), "a\x01z");
}

TEST(Json, MutableIndexingCreatesObjects) {
  json::Value v;  // null
  v["a"]["b"] = 3;
  EXPECT_DOUBLE_EQ(v["a"]["b"].as_double(), 3.0);
}

TEST(Json, FileRoundTrip) {
  const std::string path = "/tmp/synapse_json_test.json";
  json::Object o;
  o["k"] = json::Array{1, 2, 3};
  json::save_file(path, json::Value(o));
  const auto loaded = json::load_file(path);
  ::unlink(path.c_str());
  EXPECT_TRUE(loaded == json::Value(o));
}

TEST(Json, LoadMissingFileThrows) {
  EXPECT_THROW(json::load_file("/no/such/file.json"), json::JsonError);
}

// Property-style sweep: numbers of widely varying magnitude survive a
// dump/parse round trip within double precision.
class JsonNumberRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JsonNumberRoundTrip, Exact) {
  const double x = GetParam();
  json::Object o;
  o["x"] = x;
  const auto round = json::parse(json::dump(json::Value(std::move(o))));
  EXPECT_DOUBLE_EQ(round["x"].as_double(), x);
}

INSTANTIATE_TEST_SUITE_P(
    Magnitudes, JsonNumberRoundTrip,
    ::testing::Values(0.0, 1.0, -1.0, 0.1, 1e-12, 1e15, -2.5e9, 3.14159265358979,
                      1234567890123.0, 6.02e23));
