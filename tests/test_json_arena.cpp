// Arena-backed JSON parsing (json/arena.hpp): the pooled DOM must be
// observationally identical to the heap parser — same values, same
// error diagnostics, same duplicate-key and escape handling — while
// recycling its slabs across reset().

#include "json/arena.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "json/json.hpp"

namespace json = synapse::json;

namespace {

/// The fixture set mirrors test_json.cpp: every document the heap
/// parser is tested against, parsed both ways and compared.
const std::vector<std::string>& fixtures() {
  static const std::vector<std::string> docs = {
      "null",
      "true",
      "false",
      "42",
      "-3.25",
      "1e6",
      "\"hi\"",
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})",
      R"("a\"b\\c\nd\teA")",
      R"("é")",
      R"("€")",
      R"("Aé€")",
      R"({"s": "x", "n": 2.5, "b": true})",
      R"({"arr":[1,2.5,"s",true,null],"nested":{"k":"v"},"z":-7})",
      R"({"a":[1,{"b":[]},{}],"c":"d"})",
      "[]",
      "{}",
      "[[[[[1]]]]]",
      R"({"dup":1,"dup":2,"dup":3})",
      R"({"x":0.0,"y":1e-12,"z":1e15,"w":-2.5e9})",
      R"("az")",
  };
  return docs;
}

}  // namespace

TEST(JsonArena, ParityWithHeapParserOnEveryFixture) {
  json::Arena arena;
  for (const auto& doc : fixtures()) {
    arena.reset();
    const json::Value heap = json::parse(doc);
    const json::ArenaValue& pooled = json::parse(doc, arena);
    // to_value() deep-copies into the heap DOM; value equality plus
    // byte-identical dumps pin ordering and number formatting too.
    EXPECT_TRUE(pooled.to_value() == heap) << doc;
    EXPECT_EQ(json::dump(pooled.to_value()), json::dump(heap)) << doc;
  }
}

TEST(JsonArena, ParityOnRandomDocuments) {
  // Seeded heap-DOM generator (the test_json_fuzz shape): dump it, then
  // both parsers must agree on the reparse.
  std::mt19937 rng(20260807);
  json::Arena arena;
  for (int trial = 0; trial < 200; ++trial) {
    json::Object o;
    const int n = std::uniform_int_distribution<int>(0, 6)(rng);
    for (int i = 0; i < n; ++i) {
      const std::string key = "k" + std::to_string(i);
      switch (std::uniform_int_distribution<int>(0, 4)(rng)) {
        case 0: o[key] = nullptr; break;
        case 1: o[key] = (rng() & 1) == 0; break;
        case 2:
          o[key] = std::uniform_real_distribution<double>(-1e9, 1e9)(rng);
          break;
        case 3: o[key] = "s\t\"\\" + std::to_string(rng() % 1000); break;
        default: {
          json::Array a;
          const int len = std::uniform_int_distribution<int>(0, 5)(rng);
          for (int k = 0; k < len; ++k) a.push_back(k * 0.5);
          o[key] = std::move(a);
        }
      }
    }
    const std::string doc = json::dump(json::Value(std::move(o)));
    arena.reset();
    EXPECT_TRUE(json::parse(doc, arena).to_value() == json::parse(doc))
        << doc;
  }
}

TEST(JsonArena, ErrorDiagnosticsMatchHeapParser) {
  const std::vector<std::string> bad = {
      "", "{", "[1,]", "{\"a\":1} trailing", "tru", "'single'",
      "{\n  \"a\": ,\n}",
  };
  json::Arena arena;
  for (const auto& doc : bad) {
    std::string heap_error;
    try {
      json::parse(doc);
      FAIL() << "heap parser accepted: " << doc;
    } catch (const json::JsonError& e) {
      heap_error = e.what();
    }
    try {
      json::parse(doc, arena);
      FAIL() << "arena parser accepted: " << doc;
    } catch (const json::JsonError& e) {
      EXPECT_EQ(std::string(e.what()), heap_error) << doc;
    }
  }
}

TEST(JsonArena, ReadApiMirrorsValue) {
  json::Arena arena;
  const auto& v = json::parse(
      R"({"s":"x","n":2.5,"b":true,"arr":[10,20],"o":{"k":"v"}})", arena);
  EXPECT_EQ(v["s"].as_string(), "x");
  EXPECT_DOUBLE_EQ(v["n"].as_double(), 2.5);
  EXPECT_EQ(v["b"].as_bool(), true);
  EXPECT_EQ(v["arr"].size(), 2u);
  EXPECT_DOUBLE_EQ(v["arr"].at(1).as_double(), 20.0);
  EXPECT_TRUE(v.contains("o"));
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.get_or("s", std::string("d")), "x");
  EXPECT_EQ(v.get_or("absent", std::string("d")), "d");
  EXPECT_DOUBLE_EQ(v.get_or("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.get_or("s", 9.0), 9.0);  // wrong type -> default
  EXPECT_THROW(v["missing"], json::JsonError);
  EXPECT_THROW(v["s"].as_double(), json::JsonError);
  EXPECT_THROW(v["arr"].at(2), json::JsonError);
}

TEST(JsonArena, IterationCoversMembersAndItems) {
  json::Arena arena;
  const auto& v = json::parse(R"({"a":1,"b":2,"c":[3,4,5]})", arena);
  std::string keys;
  double sum = 0.0;
  for (const auto* m = v.members_begin(); m != v.members_end(); ++m) {
    keys += m->key;
    if (m->value.is_number()) sum += m->value.as_double();
  }
  EXPECT_EQ(keys, "abc");
  EXPECT_DOUBLE_EQ(sum, 3.0);
  const auto& arr = v["c"];
  double arr_sum = 0.0;
  for (const auto* it = arr.items_begin(); it != arr.items_end(); ++it) {
    arr_sum += it->as_double();
  }
  EXPECT_DOUBLE_EQ(arr_sum, 12.0);
  // Wrong-type iteration is an empty range, not UB.
  EXPECT_EQ(v["a"].items_begin(), v["a"].items_end());
  EXPECT_EQ(arr.members_begin(), arr.members_end());
}

TEST(JsonArena, DuplicateKeysLastWins) {
  json::Arena arena;
  const auto& v = json::parse(R"({"dup":1,"dup":2,"dup":3})", arena);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v["dup"].as_double(), 3.0);
}

TEST(JsonArena, ResetRecyclesUniformSlabs) {
  json::Arena arena;
  json::parse(R"({"a":[1,2,3,4],"b":"some string content"})", arena);
  ASSERT_GT(arena.bytes_used(), 0u);
  const size_t reserved = arena.bytes_reserved();
  ASSERT_GT(reserved, 0u);
  for (int i = 0; i < 16; ++i) {
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    json::parse(R"({"a":[1,2,3,4],"b":"some string content"})", arena);
  }
  // Same document shape, same slabs: no growth across resets.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(JsonArena, OversizedAllocationsAreReleasedOnReset) {
  json::Arena arena(1024);  // small uniform slabs
  const std::string big(64 * 1024, 'x');
  json::parse("\"" + big + "\"", arena);
  const size_t with_big = arena.bytes_reserved();
  EXPECT_GE(with_big, big.size());
  arena.reset();
  // The dedicated slab is gone; only uniform slabs remain.
  EXPECT_LT(arena.bytes_reserved(), big.size());
}

TEST(JsonArena, ValuesSurviveUntilReset) {
  json::Arena arena;
  const auto& a = json::parse(R"({"first":1})", arena);
  const auto& b = json::parse(R"({"second":2})", arena);
  // Multiple documents coexist in one arena.
  EXPECT_DOUBLE_EQ(a["first"].as_double(), 1.0);
  EXPECT_DOUBLE_EQ(b["second"].as_double(), 2.0);
}
