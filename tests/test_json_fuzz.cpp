// Randomized round-trip property testing for the JSON engine: any value
// built from the generator must survive dump -> parse -> dump with a
// byte-identical second dump (deterministic serialization) and an
// equal value tree. Seeded RNG keeps failures reproducible.

#include "json/json.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace json = synapse::json;

namespace {

class Generator {
 public:
  explicit Generator(unsigned seed) : rng_(seed) {}

  json::Value value(int depth = 0) {
    // Bias away from containers as depth grows so trees terminate.
    const int kind = pick(0, depth >= 4 ? 3 : 5);
    switch (kind) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(pick(0, 1) == 1);
      case 2: return json::Value(number());
      case 3: return json::Value(string());
      case 4: {
        json::Array arr;
        const int n = pick(0, 4);
        for (int i = 0; i < n; ++i) arr.push_back(value(depth + 1));
        return json::Value(std::move(arr));
      }
      default: {
        json::Object obj;
        const int n = pick(0, 4);
        for (int i = 0; i < n; ++i) obj[string()] = value(depth + 1);
        return json::Value(std::move(obj));
      }
    }
  }

 private:
  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  double number() {
    switch (pick(0, 3)) {
      case 0: return static_cast<double>(pick(-1000000, 1000000));
      case 1: return std::uniform_real_distribution<double>(-1.0, 1.0)(rng_);
      case 2: return std::uniform_real_distribution<double>(-1e15, 1e15)(rng_);
      default: return 0.0;
    }
  }

  std::string string() {
    static const char* kAlphabet =
        "abcXYZ019 _-.\t\n\"\\/{}[]:,\x01\x1f";
    static const int kAlphaLen =
        static_cast<int>(std::char_traits<char>::length(kAlphabet));
    const int n = pick(0, 12);
    std::string s;
    for (int i = 0; i < n; ++i) {
      s += kAlphabet[static_cast<size_t>(pick(0, kAlphaLen - 1))];
    }
    return s;
  }

  std::mt19937 rng_;
};

}  // namespace

class JsonFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(JsonFuzz, RoundTripIsIdentity) {
  Generator gen(GetParam());
  for (int i = 0; i < 50; ++i) {
    const json::Value original = gen.value();
    const std::string first = json::dump(original);
    json::Value parsed;
    ASSERT_NO_THROW(parsed = json::parse(first)) << first;
    EXPECT_TRUE(parsed == original) << first;
    // Deterministic serialization: dumping the parsed tree reproduces
    // the byte stream.
    EXPECT_EQ(json::dump(parsed), first);
  }
}

TEST_P(JsonFuzz, PrettyAndCompactAgree) {
  Generator gen(GetParam() + 1000);
  for (int i = 0; i < 25; ++i) {
    const json::Value original = gen.value();
    const json::Value via_pretty = json::parse(json::dump(original, 2));
    EXPECT_TRUE(via_pretty == original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz,
                         ::testing::Values(1u, 42u, 1337u, 0xC0FFEEu));

// Malformed-input robustness: none of these may crash; all must throw.
TEST(JsonFuzzNegative, TruncationsAlwaysThrow) {
  const std::string doc =
      R"({"a":[1,2.5,"s\t",true,null],"b":{"c":"d","e":[{}]}})";
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    const std::string truncated = doc.substr(0, cut);
    EXPECT_THROW(json::parse(truncated), json::JsonError) << cut;
  }
}

TEST(JsonFuzzNegative, MutationsNeverCrash) {
  const std::string doc = R"({"k":[1,{"n":2},"s"],"m":null})";
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = doc;
    const size_t pos =
        std::uniform_int_distribution<size_t>(0, doc.size() - 1)(rng);
    mutated[pos] = static_cast<char>(
        std::uniform_int_distribution<int>(1, 126)(rng));
    try {
      const auto v = json::parse(mutated);
      (void)json::dump(v);  // parse succeeded: dumping must also work
    } catch (const json::JsonError&) {
      // Expected for most mutations.
    }
  }
  SUCCEED();
}
