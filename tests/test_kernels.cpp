#include "atoms/kernels.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "sys/clock.hpp"
#include "sys/error.hpp"
#include "sys/procfs.hpp"

namespace atoms = synapse::atoms;
namespace sys = synapse::sys;

TEST(Kernels, RegistryHasBuiltins) {
  const auto names = atoms::KernelRegistry::instance().names();
  for (const auto* expected : {"asm", "c", "omp", "sleep"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(Kernels, RegistryCreatesByName) {
  auto k = atoms::KernelRegistry::instance().create("asm");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->name(), "asm");
  EXPECT_THROW(atoms::KernelRegistry::instance().create("nope"),
               sys::ConfigError);
}

TEST(Kernels, UserKernelRegistration) {
  auto& registry = atoms::KernelRegistry::instance();
  registry.register_kernel("user-sleep",
                           [] { return atoms::make_sleep_kernel(); });
  auto k = registry.create("user-sleep");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->name(), "sleep");
}

class KernelBusyDuration : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelBusyDuration, HonoursRequestedTime) {
  auto kernel = atoms::KernelRegistry::instance().create(GetParam());
  const sys::Stopwatch sw;
  kernel->busy(0.1);
  const double elapsed = sw.elapsed();
  EXPECT_GE(elapsed, 0.09);
  // Even the chunky C kernel must overshoot by less than one row's work.
  EXPECT_LT(elapsed, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Builtins, KernelBusyDuration,
                         ::testing::Values("asm", "c", "omp", "sleep"));

TEST(Kernels, AsmKernelReportsFlops) {
  auto kernel = atoms::make_asm_kernel();
  const double flops = kernel->busy(0.05);
  // A modern core sustains far more than 10 Mflop/s on a cache-resident
  // matmul; anything below that means the loop broke.
  EXPECT_GT(flops / 0.05, 1e7);
}

TEST(Kernels, SleepKernelUsesNoCpu) {
  auto kernel = atoms::make_sleep_kernel();
  const auto before = sys::read_proc_stat(::getpid());
  kernel->busy(0.2);
  const auto after = sys::read_proc_stat(::getpid());
  ASSERT_TRUE(before && after);
  EXPECT_LT(after->cpu_seconds() - before->cpu_seconds(), 0.05);
  EXPECT_DOUBLE_EQ(kernel->busy(0.0), 0.0);
}

TEST(Kernels, AsmFasterPerFlopThanC) {
  // The cache-resident kernel achieves a (much) higher FLOP rate than
  // the out-of-cache one — the physical difference the paper's E.3
  // exploits.
  auto asm_kernel = atoms::make_asm_kernel();
  auto c_kernel = atoms::make_c_kernel();
  const double asm_rate = atoms::calibrate_kernel_flops(*asm_kernel, 0.1);
  const double c_rate = atoms::calibrate_kernel_flops(*c_kernel, 0.1);
  EXPECT_GT(asm_rate, c_rate);
}

TEST(Kernels, TraitsAreConsistent) {
  auto asm_kernel = atoms::make_asm_kernel();
  auto c_kernel = atoms::make_c_kernel();
  EXPECT_LT(asm_kernel->traits().working_set_bytes,
            c_kernel->traits().working_set_bytes);
  EXPECT_LT(asm_kernel->traits().memory_boundedness,
            c_kernel->traits().memory_boundedness);
}

TEST(Kernels, OmpKernelUsesMultipleThreads) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 cores to accrue CPU time beyond wall time";
  }
  auto kernel = atoms::make_omp_kernel(4);
  const auto before = sys::read_proc_stat(::getpid());
  kernel->busy(0.2);
  const auto after = sys::read_proc_stat(::getpid());
  ASSERT_TRUE(before && after);
  // CPU time should exceed wall time when several threads are busy.
  const double cpu = after->cpu_seconds() - before->cpu_seconds();
  EXPECT_GT(cpu, 0.3);
}
