#include "emulator/load_generator.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <thread>

#include "sys/clock.hpp"
#include "sys/procfs.hpp"

namespace emulator = synapse::emulator;
namespace sys = synapse::sys;

TEST(LoadGenerator, StartStopLifecycle) {
  emulator::LoadSpec spec;
  spec.cpu_threads = 1;
  emulator::LoadGenerator load(spec);
  EXPECT_FALSE(load.running());
  load.start();
  EXPECT_TRUE(load.running());
  load.start();  // idempotent
  load.stop();
  EXPECT_FALSE(load.running());
  load.stop();  // idempotent
}

TEST(LoadGenerator, CpuLoadConsumesCpuTime) {
  const auto before = sys::read_proc_stat(::getpid());
  ASSERT_TRUE(before.has_value());
  {
    emulator::LoadSpec spec;
    spec.cpu_threads = 2;
    spec.cpu_duty = 1.0;
    emulator::LoadGenerator load(spec);
    load.start();
    sys::sleep_for(0.4);
  }  // destructor stops
  const auto after = sys::read_proc_stat(::getpid());
  ASSERT_TRUE(after.has_value());
  // Two full-duty burners for 0.4 s contribute >= ~0.5 s CPU — when the
  // host has two cores to run them on. A single-core host can only
  // accrue ~0.4 s total across the whole process, so scale the bound.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const double expected = cores >= 2 ? 0.4 : 0.25;
  EXPECT_GT(after->cpu_seconds() - before->cpu_seconds(), expected);
}

TEST(LoadGenerator, DutyCycleLimitsCpu) {
  const auto before = sys::read_proc_stat(::getpid());
  {
    emulator::LoadSpec spec;
    spec.cpu_threads = 1;
    spec.cpu_duty = 0.2;
    emulator::LoadGenerator load(spec);
    load.start();
    sys::sleep_for(0.5);
  }
  const auto after = sys::read_proc_stat(::getpid());
  const double cpu = after->cpu_seconds() - before->cpu_seconds();
  // 20% duty over 0.5 s is ~0.1 s; allow generous headroom.
  EXPECT_LT(cpu, 0.3);
}

TEST(LoadGenerator, MemoryBallastBecomesResident) {
  const auto before = sys::read_proc_status(::getpid());
  ASSERT_TRUE(before.has_value());
  emulator::LoadSpec spec;
  spec.memory_bytes = 64 * 1024 * 1024;
  emulator::LoadGenerator load(spec);
  load.start();
  const auto during = sys::read_proc_status(::getpid());
  load.stop();
  ASSERT_TRUE(during.has_value());
  EXPECT_GT(during->vm_rss_bytes, before->vm_rss_bytes + 48 * 1024 * 1024);
}

TEST(LoadGenerator, DiskChurnWritesBytes) {
  const auto before = sys::read_proc_io(::getpid());
  ASSERT_TRUE(before.has_value());
  {
    emulator::LoadSpec spec;
    spec.disk_write_bps = 32e6;
    spec.scratch_dir = "/tmp";
    emulator::LoadGenerator load(spec);
    load.start();
    sys::sleep_for(0.4);
  }
  const auto after = sys::read_proc_io(::getpid());
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->wchar - before->wchar, 4u * 1024 * 1024);
}
