#include "profile/metrics.hpp"

#include <gtest/gtest.h>

namespace m = synapse::metrics;

TEST(Metrics, SupportMatrixMatchesTable1Shape) {
  const auto& rows = m::support_matrix();
  // Paper Table 1 lists 33 metric rows across five resource groups.
  EXPECT_EQ(rows.size(), 33u);

  size_t system = 0, compute = 0, storage = 0, memory = 0, network = 0;
  for (const auto& r : rows) {
    if (r.resource == "System") ++system;
    if (r.resource == "Compute") ++compute;
    if (r.resource == "Storage") ++storage;
    if (r.resource == "Memory") ++memory;
    if (r.resource == "Network") ++network;
  }
  EXPECT_EQ(system, 7u);
  EXPECT_EQ(compute, 10u);
  EXPECT_EQ(storage, 5u);
  EXPECT_EQ(memory, 6u);
  EXPECT_EQ(network, 5u);
}

TEST(Metrics, KeyRowsMatchPaper) {
  const auto& rows = m::support_matrix();
  auto find = [&](std::string_view metric) -> const m::MetricSupport* {
    for (const auto& r : rows) {
      if (r.metric == metric) return &r;
    }
    return nullptr;
  };

  const auto* cycles = find("cycles used");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->total, m::Support::Yes);
  EXPECT_EQ(cycles->sampled, m::Support::Yes);
  EXPECT_EQ(cycles->derived, m::Support::No);
  EXPECT_EQ(cycles->emulated, m::Support::Yes);

  const auto* eff = find("efficiency");
  ASSERT_NE(eff, nullptr);
  EXPECT_EQ(eff->derived, m::Support::Yes);
  EXPECT_EQ(eff->emulated, m::Support::Partial);

  const auto* net = find("connection endpoint");
  ASSERT_NE(net, nullptr);
  EXPECT_EQ(net->total, m::Support::Planned);
}

TEST(Metrics, SupportSymbols) {
  EXPECT_EQ(m::support_symbol(m::Support::Yes), "+");
  EXPECT_EQ(m::support_symbol(m::Support::Partial), "(+)");
  EXPECT_EQ(m::support_symbol(m::Support::Planned), "(-)");
  EXPECT_EQ(m::support_symbol(m::Support::No), "-");
}

TEST(Metrics, NamesAreNamespaced) {
  EXPECT_EQ(m::kCyclesUsed, "compute.cycles_used");
  EXPECT_EQ(m::kBytesRead, "storage.bytes_read");
  EXPECT_EQ(m::kMemPeak, "memory.bytes_peak");
  EXPECT_EQ(m::kRuntime, "system.runtime_s");
}
