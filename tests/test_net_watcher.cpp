#include "watchers/net_watcher.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include "atoms/network_atom.hpp"
#include "profile/metrics.hpp"
#include "sys/clock.hpp"

namespace watchers = synapse::watchers;
namespace atoms = synapse::atoms;
namespace m = synapse::metrics;
namespace sys = synapse::sys;

TEST(NetWatcher, ReadsNetdevTotals) {
  const auto totals = watchers::read_netdev_totals(true);
  // /proc/net/dev exists on any Linux; totals may legitimately be zero
  // on an idle namespace.
  ASSERT_TRUE(totals.has_value());
}

TEST(NetWatcher, LoopbackExclusionNeverIncreases) {
  const auto with_lo = watchers::read_netdev_totals(true);
  const auto without_lo = watchers::read_netdev_totals(false);
  ASSERT_TRUE(with_lo && without_lo);
  EXPECT_GE(with_lo->rx_bytes, without_lo->rx_bytes);
  EXPECT_GE(with_lo->tx_bytes, without_lo->tx_bytes);
}

TEST(NetWatcher, ObservesLoopbackTraffic) {
  watchers::NetWatcher watcher(/*include_loopback=*/true);
  watchers::WatcherConfig config;
  config.pid = ::getpid();
  watcher.pre_process(config);
  watcher.sample(sys::wallclock_now());

  // Generate ~1 MiB of loopback traffic via the network atom.
  atoms::NetworkAtom atom;
  synapse::profile::SampleDelta delta;
  delta.deltas[std::string(m::kNetBytesWritten)] = 1024.0 * 1024;
  atom.consume(delta);
  sys::sleep_for(0.05);  // let the drain thread receive

  watcher.sample(sys::wallclock_now());
  watcher.post_process();

  std::map<std::string, double> totals;
  watcher.finalize({&watcher}, totals);
  // The watcher is system-wide; at minimum it must have seen our MiB.
  EXPECT_GE(totals[std::string(m::kNetBytesWritten)], 1024.0 * 1024 * 0.9);
}

TEST(NetWatcher, DeltasAreRelativeToBaseline) {
  watchers::NetWatcher watcher(true);
  watchers::WatcherConfig config;
  config.pid = ::getpid();
  watcher.pre_process(config);
  watcher.sample(sys::wallclock_now());
  // Immediately after pre_process, the cumulative delta is ~zero
  // (whatever background traffic happened between the two calls).
  const double first = watcher.series().last(m::kNetBytesWritten);
  EXPECT_LT(first, 1e6);
}
