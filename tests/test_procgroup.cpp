#include "emulator/procgroup.hpp"

#include <gtest/gtest.h>

#include <sys/mman.h>

#include <atomic>

#include "sys/clock.hpp"

namespace emulator = synapse::emulator;
namespace sys = synapse::sys;

TEST(ProcGroup, RunsAllRanks) {
  const int ok = emulator::run_process_group(4, [](int rank) {
    return rank >= 0 && rank < 4 ? 0 : 1;
  });
  EXPECT_EQ(ok, 4);
}

TEST(ProcGroup, CountsFailedRanks) {
  const int ok = emulator::run_process_group(
      4, [](int rank) { return rank % 2 == 0 ? 0 : 1; });
  EXPECT_EQ(ok, 2);
}

TEST(ProcGroup, ZeroRanksIsNoop) {
  EXPECT_EQ(emulator::run_process_group(0, [](int) { return 0; }), 0);
  EXPECT_EQ(emulator::run_process_group(-3, [](int) { return 0; }), 0);
}

TEST(ProcGroup, RanksAreDistinctProcesses) {
  // Shared-memory counter: every rank increments once; with fork-based
  // ranks the parent sees the sum, with (broken) thread-based ranks the
  // addresses would collide differently.
  void* mem = ::mmap(nullptr, sizeof(std::atomic<int>),
                     PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  auto* counter = new (mem) std::atomic<int>(0);

  emulator::run_process_group(6, [counter](int) {
    counter->fetch_add(1);
    return 0;
  });
  EXPECT_EQ(counter->load(), 6);
  ::munmap(mem, sizeof(std::atomic<int>));
}

TEST(SharedBarrier, SynchronisesRanks) {
  // Each rank records the time it left the barrier; with a working
  // barrier all exit times cluster AFTER the slowest arrival.
  struct Shared {
    std::atomic<double> exit_min;
    std::atomic<double> arrive_max;
  };
  void* mem = ::mmap(nullptr, sizeof(Shared), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  auto* shared = new (mem) Shared{std::atomic<double>(1e18),
                                  std::atomic<double>(0.0)};

  emulator::SharedBarrier barrier(3);
  emulator::run_process_group(3, [&barrier, shared](int rank) {
    // Stagger arrivals: rank 2 arrives ~0.2s late.
    sys::sleep_for(0.1 * rank);
    const double arrived = sys::steady_now();
    double expected = shared->arrive_max.load();
    while (arrived > expected &&
           !shared->arrive_max.compare_exchange_weak(expected, arrived)) {
    }
    barrier.wait();
    const double left = sys::steady_now();
    double emin = shared->exit_min.load();
    while (left < emin &&
           !shared->exit_min.compare_exchange_weak(emin, left)) {
    }
    return 0;
  });

  // No rank left the barrier before the last one arrived.
  EXPECT_GE(shared->exit_min.load() + 0.02, shared->arrive_max.load());
  ::munmap(mem, sizeof(Shared));
}

TEST(SharedBarrier, ReusableAcrossPhases) {
  emulator::SharedBarrier barrier(2);
  const int ok = emulator::run_process_group(2, [&barrier](int) {
    for (int phase = 0; phase < 5; ++phase) barrier.wait();
    return 0;
  });
  EXPECT_EQ(ok, 2);
}

// --- CommRing (halo-exchange extension) -------------------------------------

#include "emulator/comm.hpp"

TEST(CommRing, SingleRankIsNoop) {
  emulator::CommRing ring(1);
  EXPECT_EQ(ring.exchange(0, 4096), 0u);
}

TEST(CommRing, TwoRanksExchangeBytes) {
  emulator::CommRing ring(2);
  void* mem = ::mmap(nullptr, 2 * sizeof(std::atomic<uint64_t>),
                     PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  auto* received = new (mem) std::atomic<uint64_t>[2]{};

  const int ok = emulator::run_process_group(2, [&ring, received](int rank) {
    ring.attach(rank);
    received[rank] = ring.exchange(rank, 256 * 1024);
    return received[rank] == 256 * 1024 ? 0 : 1;
  });
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(received[0].load(), 256u * 1024);
  EXPECT_EQ(received[1].load(), 256u * 1024);
  ::munmap(mem, 2 * sizeof(std::atomic<uint64_t>));
}

TEST(CommRing, LargeRingManySteps) {
  constexpr int kRanks = 5;
  emulator::CommRing ring(kRanks);
  const int ok = emulator::run_process_group(kRanks, [&ring](int rank) {
    ring.attach(rank);
    for (int step = 0; step < 20; ++step) {
      if (ring.exchange(rank, 64 * 1024) != 64 * 1024) return 1;
    }
    return 0;
  });
  EXPECT_EQ(ok, kRanks);
}

TEST(CommRing, ExchangeLargerThanPipeBuffer) {
  // 1 MiB >> the 64 KiB pipe capacity: the interleaved chunking must
  // avoid deadlock.
  emulator::CommRing ring(3);
  const int ok = emulator::run_process_group(3, [&ring](int rank) {
    ring.attach(rank);
    return ring.exchange(rank, 1024 * 1024) == 1024 * 1024 ? 0 : 1;
  });
  EXPECT_EQ(ok, 3);
}
