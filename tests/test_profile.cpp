#include "profile/profile.hpp"

#include <gtest/gtest.h>

#include "profile/metrics.hpp"

namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Sample sample_at(double t,
                          std::initializer_list<std::pair<std::string_view, double>>
                              values) {
  profile::Sample s;
  s.timestamp = t;
  for (const auto& [k, v] : values) s.set(k, v);
  return s;
}

/// A profile with a cpu series (cumulative cycles) and an io series
/// (cumulative bytes) on drifting timestamps.
profile::Profile make_profile() {
  profile::Profile p;
  p.command = "fake";
  p.sample_rate_hz = 10.0;  // 0.1 s period

  profile::TimeSeries cpu;
  cpu.watcher = "cpu";
  cpu.samples.push_back(sample_at(100.00, {{m::kCyclesUsed, 1000.0}}));
  cpu.samples.push_back(sample_at(100.10, {{m::kCyclesUsed, 3000.0}}));
  cpu.samples.push_back(sample_at(100.20, {{m::kCyclesUsed, 6000.0}}));
  p.series.push_back(cpu);

  profile::TimeSeries io;
  io.watcher = "io";
  // Deliberately drifted by 30 ms relative to the cpu watcher.
  io.samples.push_back(sample_at(100.03, {{m::kBytesWritten, 50.0}}));
  io.samples.push_back(sample_at(100.13, {{m::kBytesWritten, 150.0}}));
  io.samples.push_back(sample_at(100.23, {{m::kBytesWritten, 150.0}}));
  p.series.push_back(io);

  profile::TimeSeries mem;
  mem.watcher = "mem";
  mem.samples.push_back(sample_at(100.05, {{m::kMemResident, 4096.0}}));
  mem.samples.push_back(sample_at(100.15, {{m::kMemResident, 8192.0}}));
  p.series.push_back(mem);

  p.totals[std::string(m::kRuntime)] = 0.25;
  p.totals[std::string(m::kCyclesUsed)] = 6000.0;
  return p;
}

}  // namespace

TEST(Profile, SampleGetSet) {
  profile::Sample s;
  EXPECT_DOUBLE_EQ(s.get(m::kFlops, 7.0), 7.0);
  s.set(m::kFlops, 3.0);
  EXPECT_DOUBLE_EQ(s.get(m::kFlops), 3.0);
}

TEST(Profile, TimeSeriesLastAndMax) {
  const auto p = make_profile();
  const auto* cpu = p.find_series("cpu");
  ASSERT_NE(cpu, nullptr);
  EXPECT_DOUBLE_EQ(cpu->last(m::kCyclesUsed), 6000.0);
  EXPECT_DOUBLE_EQ(cpu->max(m::kCyclesUsed), 6000.0);
  EXPECT_DOUBLE_EQ(cpu->last(m::kFlops), 0.0);
  EXPECT_EQ(p.find_series("nope"), nullptr);
}

TEST(Profile, SampleDeltasDifferenceCumulativeMetrics) {
  const auto deltas = make_profile().sample_deltas();
  ASSERT_GE(deltas.size(), 3u);
  // First bucket: cycles 1000 (0 -> 1000), bytes 50.
  EXPECT_DOUBLE_EQ(deltas[0].get(m::kCyclesUsed), 1000.0);
  EXPECT_DOUBLE_EQ(deltas[0].get(m::kBytesWritten), 50.0);
  // Second bucket: cycles 2000, bytes 100.
  EXPECT_DOUBLE_EQ(deltas[1].get(m::kCyclesUsed), 2000.0);
  EXPECT_DOUBLE_EQ(deltas[1].get(m::kBytesWritten), 100.0);
  // Third bucket: cycles 3000, bytes 0 (unchanged cumulative value).
  EXPECT_DOUBLE_EQ(deltas[2].get(m::kCyclesUsed), 3000.0);
  EXPECT_DOUBLE_EQ(deltas[2].get(m::kBytesWritten), 0.0);
}

TEST(Profile, SampleDeltasSumEqualsTotals) {
  const auto p = make_profile();
  double cycles = 0.0, bytes = 0.0;
  for (const auto& d : p.sample_deltas()) {
    cycles += d.get(m::kCyclesUsed);
    bytes += d.get(m::kBytesWritten);
  }
  EXPECT_DOUBLE_EQ(cycles, 6000.0);
  EXPECT_DOUBLE_EQ(bytes, 150.0);
}

TEST(Profile, SampleDeltasInstantaneousUsesMax) {
  const auto deltas = make_profile().sample_deltas();
  EXPECT_DOUBLE_EQ(deltas[0].get(m::kMemResident), 4096.0);
  EXPECT_DOUBLE_EQ(deltas[1].get(m::kMemResident), 8192.0);
}

TEST(Profile, SampleDeltasPreserveOrderAcrossDriftedWatchers) {
  // The io watcher's timestamps lag the cpu watcher's by less than one
  // period; bucketing must still co-locate concurrent activity.
  const auto deltas = make_profile().sample_deltas();
  EXPECT_GT(deltas[0].get(m::kCyclesUsed), 0.0);
  EXPECT_GT(deltas[0].get(m::kBytesWritten), 0.0);
}

TEST(Profile, SampleDeltasEmptyProfile) {
  profile::Profile p;
  EXPECT_TRUE(p.sample_deltas().empty());
  p.sample_rate_hz = 0.0;
  EXPECT_TRUE(p.sample_deltas().empty());
}

TEST(Profile, DerivedEfficiencyFormula) {
  profile::Profile p;
  p.totals[std::string(m::kCyclesUsed)] = 800.0;
  p.totals[std::string(m::kCyclesStalledFrontend)] = 100.0;
  p.totals[std::string(m::kCyclesStalledBackend)] = 100.0;
  p.compute_derived();
  // efficiency = used / (used + wasted) = 800/1000.
  EXPECT_DOUBLE_EQ(p.get_derived(m::kEfficiency), 0.8);
}

TEST(Profile, DerivedUtilizationFormula) {
  profile::Profile p;
  p.system.max_cpu_freq_hz = 1000.0;
  p.system.num_cores = 2;
  p.totals[std::string(m::kRuntime)] = 2.0;
  p.totals[std::string(m::kCyclesUsed)] = 1000.0;
  p.compute_derived();
  // utilization = used / (freq * cores * Tx) = 1000/4000.
  EXPECT_DOUBLE_EQ(p.get_derived(m::kUtilization), 0.25);
}

TEST(Profile, DerivedFlopRate) {
  profile::Profile p;
  p.totals[std::string(m::kRuntime)] = 2.0;
  p.totals[std::string(m::kFlops)] = 500.0;
  p.compute_derived();
  EXPECT_DOUBLE_EQ(p.get_derived(m::kFlopsRate), 250.0);
}

TEST(Profile, JsonRoundTrip) {
  profile::Profile p = make_profile();
  p.tags = {"tag1", "tag2"};
  p.created_at = 1234.5;
  p.system.hostname = "testhost";
  p.system.num_cores = 8;
  p.system.max_cpu_freq_hz = 2.5e9;
  p.derived["x"] = 1.5;

  const profile::Profile q = profile::Profile::from_json(p.to_json());
  EXPECT_EQ(q.command, p.command);
  EXPECT_EQ(q.tags, p.tags);
  EXPECT_DOUBLE_EQ(q.sample_rate_hz, p.sample_rate_hz);
  EXPECT_DOUBLE_EQ(q.created_at, p.created_at);
  EXPECT_EQ(q.system.hostname, "testhost");
  EXPECT_EQ(q.system.num_cores, 8);
  EXPECT_EQ(q.series.size(), p.series.size());
  EXPECT_EQ(q.sample_count(), p.sample_count());
  EXPECT_DOUBLE_EQ(q.total(m::kCyclesUsed), 6000.0);
  EXPECT_DOUBLE_EQ(q.derived.at("x"), 1.5);

  // Deltas computed from the deserialized profile are identical.
  const auto d1 = p.sample_deltas();
  const auto d2 = q.sample_deltas();
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_DOUBLE_EQ(d1[i].get(m::kCyclesUsed), d2[i].get(m::kCyclesUsed));
  }
}

// Property: for any sampling rate, the delta decomposition conserves the
// cumulative totals (the emulation consumes exactly what was profiled).
class DeltaConservation : public ::testing::TestWithParam<double> {};

TEST_P(DeltaConservation, CyclesConserved) {
  profile::Profile p;
  p.sample_rate_hz = GetParam();
  profile::TimeSeries cpu;
  cpu.watcher = "cpu";
  double cumulative = 0.0;
  for (int i = 0; i < 50; ++i) {
    cumulative += 100.0 + 13.0 * (i % 7);
    cpu.samples.push_back(
        sample_at(200.0 + i / GetParam(), {{m::kCyclesUsed, cumulative}}));
  }
  p.series.push_back(cpu);

  double sum = 0.0;
  for (const auto& d : p.sample_deltas()) sum += d.get(m::kCyclesUsed);
  EXPECT_NEAR(sum, cumulative, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, DeltaConservation,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0, 100.0));

TEST(Profile, PerSeriesSampleRateRoundTripsThroughJson) {
  profile::Profile p = make_profile();
  ASSERT_FALSE(p.series.empty());
  p.series[0].sample_rate_hz = 42.0;  // per-watcher override metadata

  const profile::Profile q = profile::Profile::from_json(p.to_json());
  ASSERT_EQ(q.series.size(), p.series.size());
  EXPECT_DOUBLE_EQ(q.series[0].sample_rate_hz, 42.0);
  // Unset rates stay unset (0 = profile-level rate applies).
  for (size_t i = 1; i < q.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(q.series[i].sample_rate_hz, 0.0) << i;
  }
}

TEST(Profile, EffectiveRateMeasuresRecordedSpan) {
  profile::TimeSeries ts;
  ts.sample_rate_hz = 100.0;
  EXPECT_DOUBLE_EQ(ts.effective_rate_hz(), 100.0);  // nothing to measure
  ts.samples.push_back(sample_at(10.0, {{m::kCyclesUsed, 1.0}}));
  EXPECT_DOUBLE_EQ(ts.effective_rate_hz(), 100.0);  // one sample: ditto
  ts.samples.push_back(sample_at(12.0, {{m::kCyclesUsed, 2.0}}));
  ts.samples.push_back(sample_at(14.0, {{m::kCyclesUsed, 3.0}}));
  // 2 gaps over 4 s -> 0.5 Hz, regardless of the nominal rate.
  EXPECT_DOUBLE_EQ(ts.effective_rate_hz(), 0.5);
}

TEST(Profile, GapStatsSummarizeInterSampleSpacing) {
  profile::TimeSeries ts;
  EXPECT_EQ(ts.gap_stats().gaps, 0u);
  ts.samples.push_back(sample_at(0.0, {}));
  EXPECT_EQ(ts.gap_stats().gaps, 0u);
  ts.samples.push_back(sample_at(0.1, {}));
  ts.samples.push_back(sample_at(0.3, {}));
  ts.samples.push_back(sample_at(1.3, {}));
  const auto g = ts.gap_stats();
  EXPECT_EQ(g.gaps, 3u);
  EXPECT_DOUBLE_EQ(g.min_s, 0.1);
  EXPECT_DOUBLE_EQ(g.max_s, 1.0);
  EXPECT_NEAR(g.mean_s, 1.3 / 3.0, 1e-12);
}

TEST(Profile, VariableRateDeltasBucketOnRecordedTimestamps) {
  // A burst-idle-burst trajectory: 3 samples 10 ms apart, a 2 s idle
  // stretch, then 2 more. Timestamp bucketing must keep each recorded
  // instant as its own delta with the recorded gap as its duration.
  profile::Profile p;
  p.sample_rate_hz = 100.0;
  profile::TimeSeries cpu;
  cpu.watcher = "cpu";
  cpu.variable_rate = true;
  const double times[] = {100.00, 100.01, 100.02, 102.02, 102.03};
  double cumulative = 0.0;
  for (const double t : times) {
    cumulative += 250.0;
    cpu.samples.push_back(sample_at(t, {{m::kCyclesUsed, cumulative}}));
  }
  p.series.push_back(cpu);

  ASSERT_TRUE(p.variable_rate());
  const auto deltas = p.sample_deltas();
  ASSERT_EQ(deltas.size(), 5u);
  EXPECT_DOUBLE_EQ(deltas[0].duration, 0.01);  // nominal first period
  EXPECT_DOUBLE_EQ(deltas[1].duration, 100.01 - 100.00);
  EXPECT_DOUBLE_EQ(deltas[3].duration, 102.02 - 100.02);  // the idle gap
  EXPECT_DOUBLE_EQ(deltas[4].duration, 102.03 - 102.02);
  double sum = 0.0;
  for (const auto& d : deltas) sum += d.get(m::kCyclesUsed);
  EXPECT_NEAR(sum, cumulative, 1e-9);
}

TEST(Profile, VariableRateDeltasUnionEdgesAcrossWatchers) {
  // Two gated watchers with disjoint trajectories: the edge list is the
  // union, and each watcher's cumulative deltas land at its own
  // recorded instants. Conservation holds per metric.
  profile::Profile p;
  p.sample_rate_hz = 50.0;
  profile::TimeSeries cpu;
  cpu.watcher = "cpu";
  cpu.variable_rate = true;
  cpu.samples.push_back(sample_at(10.0, {{m::kCyclesUsed, 100.0}}));
  cpu.samples.push_back(sample_at(10.5, {{m::kCyclesUsed, 300.0}}));
  p.series.push_back(cpu);
  profile::TimeSeries io;
  io.watcher = "io";
  io.variable_rate = true;
  io.samples.push_back(sample_at(10.2, {{m::kBytesWritten, 40.0}}));
  io.samples.push_back(sample_at(10.5, {{m::kBytesWritten, 90.0}}));  // shared edge
  io.samples.push_back(sample_at(11.0, {{m::kBytesWritten, 90.0}}));
  p.series.push_back(io);

  const auto deltas = p.sample_deltas();
  ASSERT_EQ(deltas.size(), 4u);  // 10.0, 10.2, 10.5 (shared), 11.0
  EXPECT_DOUBLE_EQ(deltas[0].get(m::kCyclesUsed), 100.0);
  EXPECT_DOUBLE_EQ(deltas[1].get(m::kBytesWritten), 40.0);
  EXPECT_DOUBLE_EQ(deltas[2].get(m::kCyclesUsed), 200.0);
  EXPECT_DOUBLE_EQ(deltas[2].get(m::kBytesWritten), 50.0);
  EXPECT_DOUBLE_EQ(deltas[3].get(m::kBytesWritten), 0.0);
  EXPECT_DOUBLE_EQ(deltas[2].duration, 10.5 - 10.2);
  EXPECT_DOUBLE_EQ(deltas[3].duration, 11.0 - 10.5);
}

TEST(Profile, VariableRateFlagAndGateRoundTripThroughJson) {
  profile::Profile p = make_profile();
  p.series[0].variable_rate = true;
  p.series[0].gate.floor_hz = 2.0;
  p.series[0].gate.burst_hz = 50.0;
  p.series[0].gate.open_threshold = 10.0;
  p.series[0].gate.close_hold_s = 0.5;

  const profile::Profile q = profile::Profile::from_json(p.to_json());
  ASSERT_EQ(q.series.size(), p.series.size());
  EXPECT_TRUE(q.series[0].variable_rate);
  EXPECT_TRUE(q.series[0].gate.any());
  EXPECT_DOUBLE_EQ(q.series[0].gate.floor_hz, 2.0);
  EXPECT_DOUBLE_EQ(q.series[0].gate.burst_hz, 50.0);
  EXPECT_DOUBLE_EQ(q.series[0].gate.open_threshold, 10.0);
  EXPECT_DOUBLE_EQ(q.series[0].gate.close_hold_s, 0.5);
  // Fixed-rate siblings stay unflagged and gate-less.
  for (size_t i = 1; i < q.series.size(); ++i) {
    EXPECT_FALSE(q.series[i].variable_rate) << i;
    EXPECT_FALSE(q.series[i].gate.any()) << i;
  }
  EXPECT_TRUE(q.variable_rate());

  // Deltas from the deserialized profile are identical (variable path).
  const auto d1 = p.sample_deltas();
  const auto d2 = q.sample_deltas();
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_DOUBLE_EQ(d1[i].duration, d2[i].duration) << i;
    EXPECT_DOUBLE_EQ(d1[i].get(m::kCyclesUsed), d2[i].get(m::kCyclesUsed))
        << i;
  }
}

TEST(Profile, SampleDeltasBucketAtFastestSeriesRate) {
  // A profile-level 10 Hz rate with one 50 Hz series: buckets form at
  // 50 Hz, so the fast series' five samples land in distinct periods.
  profile::Profile p;
  p.sample_rate_hz = 10.0;
  profile::TimeSeries cpu;
  cpu.watcher = "cpu";
  cpu.sample_rate_hz = 50.0;
  for (int i = 0; i < 5; ++i) {
    cpu.samples.push_back(
        sample_at(100.0 + i * 0.02, {{m::kCyclesUsed, (i + 1) * 100.0}}));
  }
  p.series.push_back(cpu);

  const auto deltas = p.sample_deltas();
  ASSERT_EQ(deltas.size(), 5u);
  EXPECT_DOUBLE_EQ(deltas[0].duration, 0.02);
  double sum = 0.0;
  for (const auto& d : deltas) sum += d.get(m::kCyclesUsed);
  EXPECT_NEAR(sum, 500.0, 1e-9);
}
