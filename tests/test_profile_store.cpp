#include "profile/profile_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "docstore/docstore.hpp"
#include "json/json.hpp"
#include "profile/metrics.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Profile make_profile(const std::string& cmd,
                              const std::vector<std::string>& tags,
                              double cycles, double created_at) {
  profile::Profile p;
  p.command = cmd;
  p.tags = tags;
  p.created_at = created_at;
  p.totals[std::string(m::kCyclesUsed)] = cycles;
  return p;
}

}  // namespace

class ProfileStoreAllBackends
    : public ::testing::TestWithParam<std::string> {
 protected:
  profile::ProfileStore make_store() {
    const std::string backend = GetParam();
    if (backend == "memory") {
      return profile::ProfileStore();
    }
    dir_ = "/tmp/synapse_store_test_" + backend;
    std::system(("rm -rf " + dir_).c_str());
    return profile::ProfileStore(backend, dir_);
  }

  void TearDown() override {
    if (!dir_.empty()) std::system(("rm -rf " + dir_).c_str());
  }

  std::string dir_;
};

TEST_P(ProfileStoreAllBackends, PutAndFind) {
  auto store = make_store();
  store.put(make_profile("cmd-a", {"t1"}, 100, 1.0));
  store.put(make_profile("cmd-a", {"t1"}, 120, 2.0));
  store.put(make_profile("cmd-a", {"t2"}, 999, 3.0));
  store.put(make_profile("cmd-b", {}, 5, 4.0));

  const auto hits = store.find("cmd-a", {"t1"});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 100.0);
  EXPECT_DOUBLE_EQ(hits[1].total(m::kCyclesUsed), 120.0);
  EXPECT_EQ(store.find("cmd-a", {"t2"}).size(), 1u);
  EXPECT_EQ(store.find("cmd-b").size(), 1u);
  EXPECT_TRUE(store.find("cmd-absent").empty());
  EXPECT_EQ(store.size(), 4u);
}

TEST_P(ProfileStoreAllBackends, TagOrderIsIrrelevant) {
  auto store = make_store();
  store.put(make_profile("cmd", {"a", "b"}, 1, 1.0));
  EXPECT_EQ(store.find("cmd", {"b", "a"}).size(), 1u);
}

TEST_P(ProfileStoreAllBackends, FindLatest) {
  auto store = make_store();
  EXPECT_FALSE(store.find_latest("cmd").has_value());
  store.put(make_profile("cmd", {}, 1, 10.0));
  store.put(make_profile("cmd", {}, 2, 20.0));
  const auto latest = store.find_latest("cmd");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->total(m::kCyclesUsed), 2.0);
}

TEST_P(ProfileStoreAllBackends, FindLatestOrdersByRecordedTimestamp) {
  // Concurrent shard writers may insert out of timestamp order; the
  // latest profile is the one with the newest created_at, not the last
  // insertion.
  auto store = make_store();
  store.put(make_profile("cmd", {}, 3, 30.0));
  store.put(make_profile("cmd", {}, 1, 10.0));
  store.put(make_profile("cmd", {}, 2, 20.0));
  const auto latest = store.find_latest("cmd");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->created_at, 30.0);
  EXPECT_DOUBLE_EQ(latest->total(m::kCyclesUsed), 3.0);

  const auto all = store.find("cmd");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].created_at, 10.0);
  EXPECT_DOUBLE_EQ(all[1].created_at, 20.0);
  EXPECT_DOUBLE_EQ(all[2].created_at, 30.0);
}

TEST_P(ProfileStoreAllBackends, PutManyBatchesAcrossShards) {
  auto store = make_store();
  std::vector<profile::Profile> batch;
  for (int i = 0; i < 24; ++i) {
    batch.push_back(make_profile("batch-cmd-" + std::to_string(i % 6),
                                 {"b"}, i, static_cast<double>(i)));
  }
  EXPECT_EQ(store.put_many(batch), 0u);
  EXPECT_EQ(store.size(), 24u);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(store.find("batch-cmd-" + std::to_string(c), {"b"}).size(), 4u)
        << "command " << c;
  }
}

TEST_P(ProfileStoreAllBackends, ManyWorkloadsSpreadAcrossShards) {
  auto store = make_store();
  EXPECT_GT(store.shard_count(), 1u);
  for (int i = 0; i < 40; ++i) {
    store.put(make_profile("spread-" + std::to_string(i), {"t"}, i, 1.0));
  }
  EXPECT_EQ(store.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(store.find("spread-" + std::to_string(i), {"t"}).size(), 1u);
  }
}

TEST_P(ProfileStoreAllBackends, ReadCacheHitsAndInvalidatesOnWrite) {
  auto store = make_store();
  store.put(make_profile("cached", {}, 1, 1.0));

  ASSERT_EQ(store.find("cached").size(), 1u);  // miss, fills cache
  ASSERT_EQ(store.find("cached").size(), 1u);  // hit
  auto stats = store.cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);

  // A write to the same workload must not serve a stale cached read.
  store.put(make_profile("cached", {}, 2, 2.0));
  EXPECT_EQ(store.find("cached").size(), 2u);
  EXPECT_GE(store.cache_stats().invalidations, 1u);
}

TEST_P(ProfileStoreAllBackends, StatsAcrossRepetitions) {
  auto store = make_store();
  store.put(make_profile("cmd", {}, 10, 1.0));
  store.put(make_profile("cmd", {}, 12, 2.0));
  store.put(make_profile("cmd", {}, 14, 3.0));
  const auto stats = store.stats("cmd");
  ASSERT_TRUE(stats.count(std::string(m::kCyclesUsed)));
  EXPECT_DOUBLE_EQ(stats.at(std::string(m::kCyclesUsed)).mean, 12.0);
  EXPECT_EQ(stats.at(std::string(m::kCyclesUsed)).n, 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ProfileStoreAllBackends,
                         ::testing::Values("memory", "docstore", "files"));

TEST(ProfileStore, FilesBackendSurvivesReopen) {
  const std::string dir = "/tmp/synapse_store_reopen";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("files", dir);
    store.put(make_profile("persist me", {"x"}, 42, 1.0));
  }
  {
    profile::ProfileStore store("files", dir);
    const auto hits = store.find("persist me", {"x"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 42.0);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DocStoreBackendSurvivesFlushAndReopen) {
  const std::string dir = "/tmp/synapse_store_docflush";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore", dir);
    store.put(make_profile("cmd", {}, 7, 1.0));
    store.flush();
  }
  {
    profile::ProfileStore store("docstore", dir);
    EXPECT_EQ(store.find("cmd").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, ReopenWithDifferentShardOptionKeepsLayout) {
  // The shard count is part of the on-disk layout; a store reopened
  // with a different option must honour the persisted meta file and
  // still find every profile.
  const std::string dir = "/tmp/synapse_store_shardmeta";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions four;
  four.shards = 4;
  {
    profile::ProfileStore store("files", dir,
                                four);
    ASSERT_EQ(store.shard_count(), 4u);
    for (int i = 0; i < 12; ++i) {
      store.put(make_profile("meta-" + std::to_string(i), {}, i, 1.0));
    }
  }
  {
    profile::ProfileStoreOptions one;
    one.shards = 1;  // ignored: meta file wins
    profile::ProfileStore store("files", dir,
                                one);
    EXPECT_EQ(store.shard_count(), 4u);
    EXPECT_EQ(store.size(), 12u);
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(store.find("meta-" + std::to_string(i)).size(), 1u);
    }
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, MigratesLegacyFlatFilesLayout) {
  // Pre-sharding stores kept *.profile.json directly in the store root;
  // first open with the sharded layout must adopt them, not hide them.
  const std::string dir = "/tmp/synapse_store_legacy_files";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  const auto legacy = make_profile("old cmd", {"legacy"}, 7, 5.0);
  synapse::json::save_file(dir + "/old_cmd.legacy.0.profile.json",
                           legacy.to_json(), 0);
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.size(), 1u);
    const auto hits = store.find("old cmd", {"legacy"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 7.0);
  }
  {
    // Still there after the one-time migration.
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("old cmd", {"legacy"}).size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, CorruptLegacyFileDoesNotHideTheOthers) {
  // One unreadable legacy file must neither abort the open nor stop the
  // remaining legacy profiles from being adopted — also on a SECOND
  // open (interrupted migrations are retried, not locked out by the
  // meta file).
  const std::string dir = "/tmp/synapse_store_legacy_corrupt";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  synapse::json::save_file(dir + "/good.x.0.profile.json",
                           make_profile("good", {"x"}, 1, 1.0).to_json(), 0);
  {
    std::ofstream broken(dir + "/broken.x.0.profile.json");
    broken << "{ not json";
  }
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("good", {"x"}).size(), 1u);
    EXPECT_EQ(store.size(), 1u);
  }
  // Simulate an interrupted first migration: drop another legacy file
  // into the root after the meta file exists.
  synapse::json::save_file(dir + "/late.x.0.profile.json",
                           make_profile("late", {"x"}, 2, 2.0).to_json(), 0);
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("late", {"x"}).size(), 1u);
    EXPECT_EQ(store.find("good", {"x"}).size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, MigratesLegacyDocstoreLayout) {
  const std::string dir = "/tmp/synapse_store_legacy_doc";
  std::system(("rm -rf " + dir).c_str());
  {
    // Pre-sharding layout: one docstore rooted at the store directory.
    synapse::docstore::Store legacy(dir);
    auto doc = make_profile("old doc cmd", {}, 3, 1.0).to_json();
    doc.as_object()["tags_key"] = "";
    legacy.collection("profiles").insert(std::move(doc));
    legacy.flush();
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("old doc cmd").size(), 1u);
    store.flush();
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("old doc cmd").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, ReopenWithWrongBackendIsRejected) {
  // A store directory is bound to the backend that created it; the
  // other backend would silently show zero profiles.
  const std::string dir = "/tmp/synapse_store_wrongbackend";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("cmd", {}, 1, 1.0));
    store.flush();
  }
  EXPECT_THROW(
      profile::ProfileStore("files", dir),
      synapse::sys::ConfigError);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, LegacyDirectoryOpenedWithWrongBackendIsRejected) {
  // A flat pre-sharding Files layout must not be stamped with a
  // docstore meta — that would hide the profiles forever.
  const std::string dir = "/tmp/synapse_store_legacy_wrong";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  synapse::json::save_file(dir + "/cmd..0.profile.json",
                           make_profile("cmd", {}, 1, 1.0).to_json(), 0);
  EXPECT_THROW(
      profile::ProfileStore("docstore", dir),
      synapse::sys::ConfigError);
  // The right backend still adopts the profile afterwards.
  profile::ProfileStore store("files", dir);
  EXPECT_EQ(store.find("cmd").size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, FilesCacheSeesWritesFromOtherStoreInstances) {
  // Two ProfileStore instances over the same directory model two
  // processes: instance A's read cache must not hide B's writes.
  const std::string dir = "/tmp/synapse_store_crossproc";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStore a("files", dir);
  profile::ProfileStore b("files", dir);

  a.put(make_profile("xp", {}, 1, 1.0));
  EXPECT_EQ(a.find("xp").size(), 1u);  // fills A's cache
  b.put(make_profile("xp", {}, 2, 2.0));
  EXPECT_EQ(a.find("xp").size(), 2u);  // stale entry detected via mtime
  const auto latest = a.find_latest("xp");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->created_at, 2.0);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, AsyncFlushPersistsDocstore) {
  const std::string dir = "/tmp/synapse_store_asyncflush";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("async", {}, 9, 1.0));
    store.flush_async();
    store.flush();  // synchronous flush is independent of the worker
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("async").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DestructorDrainsPendingAsyncFlush) {
  const std::string dir = "/tmp/synapse_store_asyncdrain";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("drain", {}, 1, 1.0));
    store.flush_async();
    // No explicit flush(): destruction must not lose the queued flush.
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("drain").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

// --- FlushPolicy (time/size-triggered background flushing) ------------------

namespace {

/// Profiles visible to a FRESH store opened over `dir` — i.e. actually
/// flushed to disk, not just resident in the writer's memory. Retries
/// around concurrent collection writes (docstore saves are not atomic).
size_t flushed_profiles(const std::string& dir, const std::string& cmd) {
  try {
    profile::ProfileStore reader("docstore",
                                 dir);
    return reader.find(cmd).size();
  } catch (const std::exception&) {
    return 0;  // mid-write collection file; caller polls again
  }
}

}  // namespace

TEST(ProfileStore, FlushPolicyAgeFlushesWithoutExplicitRequest) {
  const std::string dir = "/tmp/synapse_store_policy_age";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions options;
  options.flush_policy.max_age_s = 0.05;
  profile::ProfileStore store("docstore", dir,
                              options);
  store.put(make_profile("aged", {}, 1, 1.0));
  // No flush()/flush_async(): the worker must flush on its own once the
  // put is 50 ms old. Poll (bounded) for the background write.
  size_t seen = 0;
  for (int i = 0; i < 100 && seen == 0; ++i) {
    synapse::sys::sleep_for(0.05);
    seen = flushed_profiles(dir, "aged");
  }
  EXPECT_EQ(seen, 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, FlushPolicyMaxPendingFlushesAtThreshold) {
  const std::string dir = "/tmp/synapse_store_policy_size";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions options;
  options.flush_policy.max_pending = 3;
  profile::ProfileStore store("docstore", dir,
                              options);
  store.put(make_profile("sized", {}, 1, 1.0));
  store.put(make_profile("sized", {}, 2, 2.0));
  // Below the threshold, with no age trigger, nothing flushes.
  synapse::sys::sleep_for(0.15);
  EXPECT_EQ(flushed_profiles(dir, "sized"), 0u);
  store.put(make_profile("sized", {}, 3, 3.0));  // threshold reached
  size_t seen = 0;
  for (int i = 0; i < 100 && seen < 3; ++i) {
    synapse::sys::sleep_for(0.05);
    seen = flushed_profiles(dir, "sized");
  }
  EXPECT_EQ(seen, 3u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DestructorDrainsDirtyPutsWithoutAnyFlushCall) {
  const std::string dir = "/tmp/synapse_store_policy_drain";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStoreOptions options;
    options.flush_policy.max_age_s = 30.0;  // deadline far in the future
    profile::ProfileStore store("docstore",
                                dir, options);
    store.put(make_profile("undrained", {}, 1, 1.0));
    // Neither flush() nor flush_async(), and the age deadline has not
    // fired: destruction must still drain the dirty put.
  }
  EXPECT_EQ(flushed_profiles(dir, "undrained"), 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, PutManyReportsStoredFlags) {
  profile::ProfileStore store;  // memory backend
  std::vector<profile::Profile> batch;
  batch.push_back(make_profile("flags", {"a"}, 1, 1.0));
  batch.push_back(make_profile("flags", {"b"}, 2, 2.0));
  std::vector<bool> stored;
  store.put_many(batch, &stored);
  ASSERT_EQ(stored.size(), 2u);
  EXPECT_TRUE(stored[0]);
  EXPECT_TRUE(stored[1]);
}

TEST(ProfileStore, DetectBackendReadsMetaFile) {
  const std::string dir = "/tmp/synapse_store_detect";
  for (const auto backend : {"docstore",
                             "files"}) {
    std::system(("rm -rf " + dir).c_str());
    { profile::ProfileStore store(backend, dir); }
    EXPECT_EQ(profile::ProfileStore::detect_backend(dir), backend);
  }
  // Fresh (meta-less) directories default to Files.
  std::system(("rm -rf " + dir).c_str());
  EXPECT_EQ(profile::ProfileStore::detect_backend(dir),
            "files");
}

TEST(ProfileStore, CommandsWithShellCharsAreStorable) {
  const std::string dir = "/tmp/synapse_store_chars";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStore store("files", dir);
  const std::string cmd = "./mdsim --steps 100 | tee 'out file'";
  store.put(make_profile(cmd, {}, 1, 1.0));
  EXPECT_EQ(store.find(cmd).size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}

// ---------------------------------------------------------------------------
// Profile formats: SYNB binary vs JSON text, per-store format
// persistence, mixed stores, and in-place conversion (convert_all).

namespace {

/// A profile with real sample series, so format tests cover the data
/// that actually round-trips through the codecs (not just identity).
profile::Profile make_series_profile(const std::string& cmd, double cycles,
                                     double created_at) {
  profile::Profile p = make_profile(cmd, {"fmt"}, cycles, created_at);
  p.sample_rate_hz = 10.0;
  profile::TimeSeries ts;
  ts.watcher = "cpu";
  ts.sample_rate_hz = 10.0;
  for (int i = 0; i < 20; ++i) {
    profile::Sample s;
    s.timestamp = created_at + 0.1 * i;
    s.values[std::string(m::kCyclesUsed)] = cycles + i * 1e6;
    if (i % 4 == 0) s.values["io_wait"] = 0.01 * i;
    ts.samples.push_back(std::move(s));
  }
  p.series.push_back(std::move(ts));
  return p;
}

void expect_equal_profiles(const profile::Profile& a,
                           const profile::Profile& b) {
  EXPECT_EQ(synapse::json::dump(a.to_json()), synapse::json::dump(b.to_json()));
}

}  // namespace

TEST(ProfileStoreFormat, NewStoresDefaultToBinary) {
  const std::string dir = "/tmp/synapse_store_fmt_default";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.format(), "binary");
    store.put(make_series_profile("fmt-cmd", 100, 1.0));
    const auto entries = store.list();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].format, "binary");
    EXPECT_EQ(entries[0].command, "fmt-cmd");
    EXPECT_GT(entries[0].encoded_bytes, 0u);
  }
  EXPECT_EQ(profile::ProfileStore::detect_format(dir), "binary");
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStoreFormat, ExplicitFormatPersistsAcrossReopen) {
  const std::string dir = "/tmp/synapse_store_fmt_persist";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions options;
  options.format = "json";
  {
    profile::ProfileStore store("files", dir, options);
    EXPECT_EQ(store.format(), "json");
    store.put(make_series_profile("json-cmd", 7, 1.0));
  }
  EXPECT_EQ(profile::ProfileStore::detect_format(dir), "json");
  {
    // No format in the options: the store keeps what it was created
    // with, it does NOT silently upgrade to the binary default.
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.format(), "json");
    const auto entries = store.list();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].format, "json");
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStoreFormat, LegacyMetaWithoutFormatMeansJson) {
  // Stores written before SYNB existed have no "format" field in
  // store.meta.json; they must open as JSON stores with no data loss.
  const std::string dir = "/tmp/synapse_store_fmt_legacy";
  std::system(("rm -rf " + dir).c_str());
  const auto original = make_series_profile("legacy-cmd", 42, 2.0);
  profile::ProfileStoreOptions options;
  options.format = "json";
  {
    profile::ProfileStore store("files", dir, options);
    store.put(original);
  }
  {
    auto meta = synapse::json::load_file(dir + "/store.meta.json");
    meta.as_object().erase("format");
    synapse::json::save_file(dir + "/store.meta.json", meta);
  }
  EXPECT_EQ(profile::ProfileStore::detect_format(dir), "json");
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.format(), "json");
    const auto hits = store.find("legacy-cmd", {"fmt"});
    ASSERT_EQ(hits.size(), 1u);
    expect_equal_profiles(hits[0], original);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStoreFormat, MixedFormatStoreReadsBoth) {
  // Reads sniff each blob's magic, so a store written under both
  // formats (e.g. mid-conversion, or by old and new recorders) serves
  // every profile.
  const std::string dir = "/tmp/synapse_store_fmt_mixed";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions json_opts;
  json_opts.format = "json";
  {
    profile::ProfileStore store("files", dir, json_opts);
    store.put(make_series_profile("mixed-cmd", 1, 1.0));
  }
  profile::ProfileStoreOptions bin_opts;
  bin_opts.format = "binary";
  {
    profile::ProfileStore store("files", dir, bin_opts);
    store.put(make_series_profile("mixed-cmd", 2, 2.0));
    const auto hits = store.find("mixed-cmd", {"fmt"});
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 1.0);
    EXPECT_DOUBLE_EQ(hits[1].total(m::kCyclesUsed), 2.0);
    std::vector<std::string> formats;
    for (const auto& e : store.list()) formats.push_back(e.format);
    std::sort(formats.begin(), formats.end());
    EXPECT_EQ(formats, (std::vector<std::string>{"binary", "json"}));
  }
  std::system(("rm -rf " + dir).c_str());
}

class ProfileStoreConvert : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileStoreConvert, JsonStoreConvertsToBinaryWithoutDataLoss) {
  const std::string backend = GetParam();
  const std::string dir = "/tmp/synapse_store_fmt_convert_" + backend;
  std::system(("rm -rf " + dir).c_str());
  std::vector<profile::Profile> originals;
  for (int i = 0; i < 6; ++i) {
    originals.push_back(make_series_profile("conv-" + std::to_string(i % 3),
                                            i * 10.0, 1.0 + i));
  }
  profile::ProfileStoreOptions json_opts;
  json_opts.format = "json";
  {
    profile::ProfileStore store(backend, dir, json_opts);
    store.put_many(originals);
    store.flush();
  }
  {
    profile::ProfileStoreOptions bin_opts;
    bin_opts.format = "binary";
    profile::ProfileStore store(backend, dir, bin_opts);
    EXPECT_EQ(store.convert_all(), originals.size());
    store.flush();
  }
  EXPECT_EQ(profile::ProfileStore::detect_format(dir), "binary");
  {
    profile::ProfileStore store(backend, dir);
    EXPECT_EQ(store.format(), "binary");
    EXPECT_EQ(store.size(), originals.size());
    for (const auto& e : store.list()) EXPECT_EQ(e.format, "binary");
    for (const auto& original : originals) {
      const auto hits = store.find(original.command, original.tags);
      bool found = false;
      for (const auto& hit : hits) {
        if (hit.created_at != original.created_at) continue;
        found = true;
        expect_equal_profiles(hit, original);
        // The replay input survives the re-encoding bit for bit.
        const auto a = hit.sample_deltas();
        const auto b = original.sample_deltas();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].deltas, b[i].deltas);
        }
      }
      EXPECT_TRUE(found) << original.command << " @ " << original.created_at;
    }
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST_P(ProfileStoreConvert, BinaryStoreConvertsBackToJson) {
  const std::string backend = GetParam();
  const std::string dir = "/tmp/synapse_store_fmt_unconvert_" + backend;
  std::system(("rm -rf " + dir).c_str());
  const auto original = make_series_profile("unconv", 5, 3.0);
  {
    profile::ProfileStore store(backend, dir);  // binary by default
    store.put(original);
    store.flush();
  }
  {
    profile::ProfileStoreOptions json_opts;
    json_opts.format = "json";
    profile::ProfileStore store(backend, dir, json_opts);
    EXPECT_EQ(store.convert_all(), 1u);
    store.flush();
  }
  EXPECT_EQ(profile::ProfileStore::detect_format(dir), "json");
  {
    profile::ProfileStore store(backend, dir);
    const auto hits = store.find("unconv", {"fmt"});
    ASSERT_EQ(hits.size(), 1u);
    expect_equal_profiles(hits[0], original);
    for (const auto& e : store.list()) EXPECT_EQ(e.format, "json");
  }
  std::system(("rm -rf " + dir).c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, ProfileStoreConvert,
                         ::testing::Values("files", "docstore"));

TEST(ProfileStoreFormat, BinaryStoresAreSmallerOnDisk) {
  // Same stream, both formats: the files backend's on-disk footprint
  // (list() reports the encoded byte sizes) must at most halve.
  const std::string dir = "/tmp/synapse_store_fmt_size";
  size_t bytes[2] = {0, 0};
  int slot = 0;
  for (const std::string format : {"json", "binary"}) {
    std::system(("rm -rf " + dir).c_str());
    profile::ProfileStoreOptions options;
    options.format = format;
    profile::ProfileStore store("files", dir, options);
    for (int i = 0; i < 4; ++i) {
      store.put(make_series_profile("size-cmd", i * 100.0, 1.0 + i));
    }
    for (const auto& e : store.list()) bytes[slot] += e.encoded_bytes;
    ++slot;
  }
  std::system(("rm -rf " + dir).c_str());
  ASSERT_GT(bytes[0], 0u);
  EXPECT_LE(bytes[1] * 2, bytes[0])
      << bytes[1] << " binary vs " << bytes[0] << " JSON bytes";
}

TEST(ProfileStoreFormat, UnknownFormatIsRejected) {
  profile::ProfileStoreOptions options;
  options.format = "msgpack";
  EXPECT_THROW(profile::ProfileStore store(std::move(options)),
               synapse::sys::ConfigError);
}
