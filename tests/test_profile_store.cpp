#include "profile/profile_store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "docstore/docstore.hpp"
#include "json/json.hpp"
#include "profile/metrics.hpp"
#include "sys/clock.hpp"
#include "sys/error.hpp"

namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Profile make_profile(const std::string& cmd,
                              const std::vector<std::string>& tags,
                              double cycles, double created_at) {
  profile::Profile p;
  p.command = cmd;
  p.tags = tags;
  p.created_at = created_at;
  p.totals[std::string(m::kCyclesUsed)] = cycles;
  return p;
}

}  // namespace

class ProfileStoreAllBackends
    : public ::testing::TestWithParam<std::string> {
 protected:
  profile::ProfileStore make_store() {
    const std::string backend = GetParam();
    if (backend == "memory") {
      return profile::ProfileStore();
    }
    dir_ = "/tmp/synapse_store_test_" + backend;
    std::system(("rm -rf " + dir_).c_str());
    return profile::ProfileStore(backend, dir_);
  }

  void TearDown() override {
    if (!dir_.empty()) std::system(("rm -rf " + dir_).c_str());
  }

  std::string dir_;
};

TEST_P(ProfileStoreAllBackends, PutAndFind) {
  auto store = make_store();
  store.put(make_profile("cmd-a", {"t1"}, 100, 1.0));
  store.put(make_profile("cmd-a", {"t1"}, 120, 2.0));
  store.put(make_profile("cmd-a", {"t2"}, 999, 3.0));
  store.put(make_profile("cmd-b", {}, 5, 4.0));

  const auto hits = store.find("cmd-a", {"t1"});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 100.0);
  EXPECT_DOUBLE_EQ(hits[1].total(m::kCyclesUsed), 120.0);
  EXPECT_EQ(store.find("cmd-a", {"t2"}).size(), 1u);
  EXPECT_EQ(store.find("cmd-b").size(), 1u);
  EXPECT_TRUE(store.find("cmd-absent").empty());
  EXPECT_EQ(store.size(), 4u);
}

TEST_P(ProfileStoreAllBackends, TagOrderIsIrrelevant) {
  auto store = make_store();
  store.put(make_profile("cmd", {"a", "b"}, 1, 1.0));
  EXPECT_EQ(store.find("cmd", {"b", "a"}).size(), 1u);
}

TEST_P(ProfileStoreAllBackends, FindLatest) {
  auto store = make_store();
  EXPECT_FALSE(store.find_latest("cmd").has_value());
  store.put(make_profile("cmd", {}, 1, 10.0));
  store.put(make_profile("cmd", {}, 2, 20.0));
  const auto latest = store.find_latest("cmd");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->total(m::kCyclesUsed), 2.0);
}

TEST_P(ProfileStoreAllBackends, FindLatestOrdersByRecordedTimestamp) {
  // Concurrent shard writers may insert out of timestamp order; the
  // latest profile is the one with the newest created_at, not the last
  // insertion.
  auto store = make_store();
  store.put(make_profile("cmd", {}, 3, 30.0));
  store.put(make_profile("cmd", {}, 1, 10.0));
  store.put(make_profile("cmd", {}, 2, 20.0));
  const auto latest = store.find_latest("cmd");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->created_at, 30.0);
  EXPECT_DOUBLE_EQ(latest->total(m::kCyclesUsed), 3.0);

  const auto all = store.find("cmd");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[0].created_at, 10.0);
  EXPECT_DOUBLE_EQ(all[1].created_at, 20.0);
  EXPECT_DOUBLE_EQ(all[2].created_at, 30.0);
}

TEST_P(ProfileStoreAllBackends, PutManyBatchesAcrossShards) {
  auto store = make_store();
  std::vector<profile::Profile> batch;
  for (int i = 0; i < 24; ++i) {
    batch.push_back(make_profile("batch-cmd-" + std::to_string(i % 6),
                                 {"b"}, i, static_cast<double>(i)));
  }
  EXPECT_EQ(store.put_many(batch), 0u);
  EXPECT_EQ(store.size(), 24u);
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(store.find("batch-cmd-" + std::to_string(c), {"b"}).size(), 4u)
        << "command " << c;
  }
}

TEST_P(ProfileStoreAllBackends, ManyWorkloadsSpreadAcrossShards) {
  auto store = make_store();
  EXPECT_GT(store.shard_count(), 1u);
  for (int i = 0; i < 40; ++i) {
    store.put(make_profile("spread-" + std::to_string(i), {"t"}, i, 1.0));
  }
  EXPECT_EQ(store.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(store.find("spread-" + std::to_string(i), {"t"}).size(), 1u);
  }
}

TEST_P(ProfileStoreAllBackends, ReadCacheHitsAndInvalidatesOnWrite) {
  auto store = make_store();
  store.put(make_profile("cached", {}, 1, 1.0));

  ASSERT_EQ(store.find("cached").size(), 1u);  // miss, fills cache
  ASSERT_EQ(store.find("cached").size(), 1u);  // hit
  auto stats = store.cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);

  // A write to the same workload must not serve a stale cached read.
  store.put(make_profile("cached", {}, 2, 2.0));
  EXPECT_EQ(store.find("cached").size(), 2u);
  EXPECT_GE(store.cache_stats().invalidations, 1u);
}

TEST_P(ProfileStoreAllBackends, StatsAcrossRepetitions) {
  auto store = make_store();
  store.put(make_profile("cmd", {}, 10, 1.0));
  store.put(make_profile("cmd", {}, 12, 2.0));
  store.put(make_profile("cmd", {}, 14, 3.0));
  const auto stats = store.stats("cmd");
  ASSERT_TRUE(stats.count(std::string(m::kCyclesUsed)));
  EXPECT_DOUBLE_EQ(stats.at(std::string(m::kCyclesUsed)).mean, 12.0);
  EXPECT_EQ(stats.at(std::string(m::kCyclesUsed)).n, 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ProfileStoreAllBackends,
                         ::testing::Values("memory", "docstore", "files"));

TEST(ProfileStore, FilesBackendSurvivesReopen) {
  const std::string dir = "/tmp/synapse_store_reopen";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("files", dir);
    store.put(make_profile("persist me", {"x"}, 42, 1.0));
  }
  {
    profile::ProfileStore store("files", dir);
    const auto hits = store.find("persist me", {"x"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 42.0);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DocStoreBackendSurvivesFlushAndReopen) {
  const std::string dir = "/tmp/synapse_store_docflush";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore", dir);
    store.put(make_profile("cmd", {}, 7, 1.0));
    store.flush();
  }
  {
    profile::ProfileStore store("docstore", dir);
    EXPECT_EQ(store.find("cmd").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, ReopenWithDifferentShardOptionKeepsLayout) {
  // The shard count is part of the on-disk layout; a store reopened
  // with a different option must honour the persisted meta file and
  // still find every profile.
  const std::string dir = "/tmp/synapse_store_shardmeta";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions four;
  four.shards = 4;
  {
    profile::ProfileStore store("files", dir,
                                four);
    ASSERT_EQ(store.shard_count(), 4u);
    for (int i = 0; i < 12; ++i) {
      store.put(make_profile("meta-" + std::to_string(i), {}, i, 1.0));
    }
  }
  {
    profile::ProfileStoreOptions one;
    one.shards = 1;  // ignored: meta file wins
    profile::ProfileStore store("files", dir,
                                one);
    EXPECT_EQ(store.shard_count(), 4u);
    EXPECT_EQ(store.size(), 12u);
    for (int i = 0; i < 12; ++i) {
      EXPECT_EQ(store.find("meta-" + std::to_string(i)).size(), 1u);
    }
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, MigratesLegacyFlatFilesLayout) {
  // Pre-sharding stores kept *.profile.json directly in the store root;
  // first open with the sharded layout must adopt them, not hide them.
  const std::string dir = "/tmp/synapse_store_legacy_files";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  const auto legacy = make_profile("old cmd", {"legacy"}, 7, 5.0);
  synapse::json::save_file(dir + "/old_cmd.legacy.0.profile.json",
                           legacy.to_json(), 0);
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.size(), 1u);
    const auto hits = store.find("old cmd", {"legacy"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 7.0);
  }
  {
    // Still there after the one-time migration.
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("old cmd", {"legacy"}).size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, CorruptLegacyFileDoesNotHideTheOthers) {
  // One unreadable legacy file must neither abort the open nor stop the
  // remaining legacy profiles from being adopted — also on a SECOND
  // open (interrupted migrations are retried, not locked out by the
  // meta file).
  const std::string dir = "/tmp/synapse_store_legacy_corrupt";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  synapse::json::save_file(dir + "/good.x.0.profile.json",
                           make_profile("good", {"x"}, 1, 1.0).to_json(), 0);
  {
    std::ofstream broken(dir + "/broken.x.0.profile.json");
    broken << "{ not json";
  }
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("good", {"x"}).size(), 1u);
    EXPECT_EQ(store.size(), 1u);
  }
  // Simulate an interrupted first migration: drop another legacy file
  // into the root after the meta file exists.
  synapse::json::save_file(dir + "/late.x.0.profile.json",
                           make_profile("late", {"x"}, 2, 2.0).to_json(), 0);
  {
    profile::ProfileStore store("files", dir);
    EXPECT_EQ(store.find("late", {"x"}).size(), 1u);
    EXPECT_EQ(store.find("good", {"x"}).size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, MigratesLegacyDocstoreLayout) {
  const std::string dir = "/tmp/synapse_store_legacy_doc";
  std::system(("rm -rf " + dir).c_str());
  {
    // Pre-sharding layout: one docstore rooted at the store directory.
    synapse::docstore::Store legacy(dir);
    auto doc = make_profile("old doc cmd", {}, 3, 1.0).to_json();
    doc.as_object()["tags_key"] = "";
    legacy.collection("profiles").insert(std::move(doc));
    legacy.flush();
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("old doc cmd").size(), 1u);
    store.flush();
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("old doc cmd").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, ReopenWithWrongBackendIsRejected) {
  // A store directory is bound to the backend that created it; the
  // other backend would silently show zero profiles.
  const std::string dir = "/tmp/synapse_store_wrongbackend";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("cmd", {}, 1, 1.0));
    store.flush();
  }
  EXPECT_THROW(
      profile::ProfileStore("files", dir),
      synapse::sys::ConfigError);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, LegacyDirectoryOpenedWithWrongBackendIsRejected) {
  // A flat pre-sharding Files layout must not be stamped with a
  // docstore meta — that would hide the profiles forever.
  const std::string dir = "/tmp/synapse_store_legacy_wrong";
  std::system(("rm -rf " + dir).c_str());
  ::system(("mkdir -p " + dir).c_str());
  synapse::json::save_file(dir + "/cmd..0.profile.json",
                           make_profile("cmd", {}, 1, 1.0).to_json(), 0);
  EXPECT_THROW(
      profile::ProfileStore("docstore", dir),
      synapse::sys::ConfigError);
  // The right backend still adopts the profile afterwards.
  profile::ProfileStore store("files", dir);
  EXPECT_EQ(store.find("cmd").size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, FilesCacheSeesWritesFromOtherStoreInstances) {
  // Two ProfileStore instances over the same directory model two
  // processes: instance A's read cache must not hide B's writes.
  const std::string dir = "/tmp/synapse_store_crossproc";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStore a("files", dir);
  profile::ProfileStore b("files", dir);

  a.put(make_profile("xp", {}, 1, 1.0));
  EXPECT_EQ(a.find("xp").size(), 1u);  // fills A's cache
  b.put(make_profile("xp", {}, 2, 2.0));
  EXPECT_EQ(a.find("xp").size(), 2u);  // stale entry detected via mtime
  const auto latest = a.find_latest("xp");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->created_at, 2.0);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, AsyncFlushPersistsDocstore) {
  const std::string dir = "/tmp/synapse_store_asyncflush";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("async", {}, 9, 1.0));
    store.flush_async();
    store.flush();  // synchronous flush is independent of the worker
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("async").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DestructorDrainsPendingAsyncFlush) {
  const std::string dir = "/tmp/synapse_store_asyncdrain";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store("docstore",
                                dir);
    store.put(make_profile("drain", {}, 1, 1.0));
    store.flush_async();
    // No explicit flush(): destruction must not lose the queued flush.
  }
  {
    profile::ProfileStore store("docstore",
                                dir);
    EXPECT_EQ(store.find("drain").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

// --- FlushPolicy (time/size-triggered background flushing) ------------------

namespace {

/// Profiles visible to a FRESH store opened over `dir` — i.e. actually
/// flushed to disk, not just resident in the writer's memory. Retries
/// around concurrent collection writes (docstore saves are not atomic).
size_t flushed_profiles(const std::string& dir, const std::string& cmd) {
  try {
    profile::ProfileStore reader("docstore",
                                 dir);
    return reader.find(cmd).size();
  } catch (const std::exception&) {
    return 0;  // mid-write collection file; caller polls again
  }
}

}  // namespace

TEST(ProfileStore, FlushPolicyAgeFlushesWithoutExplicitRequest) {
  const std::string dir = "/tmp/synapse_store_policy_age";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions options;
  options.flush_policy.max_age_s = 0.05;
  profile::ProfileStore store("docstore", dir,
                              options);
  store.put(make_profile("aged", {}, 1, 1.0));
  // No flush()/flush_async(): the worker must flush on its own once the
  // put is 50 ms old. Poll (bounded) for the background write.
  size_t seen = 0;
  for (int i = 0; i < 100 && seen == 0; ++i) {
    synapse::sys::sleep_for(0.05);
    seen = flushed_profiles(dir, "aged");
  }
  EXPECT_EQ(seen, 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, FlushPolicyMaxPendingFlushesAtThreshold) {
  const std::string dir = "/tmp/synapse_store_policy_size";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStoreOptions options;
  options.flush_policy.max_pending = 3;
  profile::ProfileStore store("docstore", dir,
                              options);
  store.put(make_profile("sized", {}, 1, 1.0));
  store.put(make_profile("sized", {}, 2, 2.0));
  // Below the threshold, with no age trigger, nothing flushes.
  synapse::sys::sleep_for(0.15);
  EXPECT_EQ(flushed_profiles(dir, "sized"), 0u);
  store.put(make_profile("sized", {}, 3, 3.0));  // threshold reached
  size_t seen = 0;
  for (int i = 0; i < 100 && seen < 3; ++i) {
    synapse::sys::sleep_for(0.05);
    seen = flushed_profiles(dir, "sized");
  }
  EXPECT_EQ(seen, 3u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DestructorDrainsDirtyPutsWithoutAnyFlushCall) {
  const std::string dir = "/tmp/synapse_store_policy_drain";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStoreOptions options;
    options.flush_policy.max_age_s = 30.0;  // deadline far in the future
    profile::ProfileStore store("docstore",
                                dir, options);
    store.put(make_profile("undrained", {}, 1, 1.0));
    // Neither flush() nor flush_async(), and the age deadline has not
    // fired: destruction must still drain the dirty put.
  }
  EXPECT_EQ(flushed_profiles(dir, "undrained"), 1u);
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, PutManyReportsStoredFlags) {
  profile::ProfileStore store;  // memory backend
  std::vector<profile::Profile> batch;
  batch.push_back(make_profile("flags", {"a"}, 1, 1.0));
  batch.push_back(make_profile("flags", {"b"}, 2, 2.0));
  std::vector<bool> stored;
  store.put_many(batch, &stored);
  ASSERT_EQ(stored.size(), 2u);
  EXPECT_TRUE(stored[0]);
  EXPECT_TRUE(stored[1]);
}

TEST(ProfileStore, DetectBackendReadsMetaFile) {
  const std::string dir = "/tmp/synapse_store_detect";
  for (const auto backend : {"docstore",
                             "files"}) {
    std::system(("rm -rf " + dir).c_str());
    { profile::ProfileStore store(backend, dir); }
    EXPECT_EQ(profile::ProfileStore::detect_backend(dir), backend);
  }
  // Fresh (meta-less) directories default to Files.
  std::system(("rm -rf " + dir).c_str());
  EXPECT_EQ(profile::ProfileStore::detect_backend(dir),
            "files");
}

TEST(ProfileStore, CommandsWithShellCharsAreStorable) {
  const std::string dir = "/tmp/synapse_store_chars";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStore store("files", dir);
  const std::string cmd = "./mdsim --steps 100 | tee 'out file'";
  store.put(make_profile(cmd, {}, 1, 1.0));
  EXPECT_EQ(store.find(cmd).size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}
