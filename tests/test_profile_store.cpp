#include "profile/profile_store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "profile/metrics.hpp"

namespace profile = synapse::profile;
namespace m = synapse::metrics;

namespace {

profile::Profile make_profile(const std::string& cmd,
                              const std::vector<std::string>& tags,
                              double cycles, double created_at) {
  profile::Profile p;
  p.command = cmd;
  p.tags = tags;
  p.created_at = created_at;
  p.totals[std::string(m::kCyclesUsed)] = cycles;
  return p;
}

}  // namespace

class ProfileStoreAllBackends
    : public ::testing::TestWithParam<profile::ProfileStore::Backend> {
 protected:
  profile::ProfileStore make_store() {
    const auto backend = GetParam();
    if (backend == profile::ProfileStore::Backend::Memory) {
      return profile::ProfileStore();
    }
    dir_ = "/tmp/synapse_store_test_" +
           std::to_string(static_cast<int>(backend));
    std::system(("rm -rf " + dir_).c_str());
    return profile::ProfileStore(backend, dir_);
  }

  void TearDown() override {
    if (!dir_.empty()) std::system(("rm -rf " + dir_).c_str());
  }

  std::string dir_;
};

TEST_P(ProfileStoreAllBackends, PutAndFind) {
  auto store = make_store();
  store.put(make_profile("cmd-a", {"t1"}, 100, 1.0));
  store.put(make_profile("cmd-a", {"t1"}, 120, 2.0));
  store.put(make_profile("cmd-a", {"t2"}, 999, 3.0));
  store.put(make_profile("cmd-b", {}, 5, 4.0));

  const auto hits = store.find("cmd-a", {"t1"});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 100.0);
  EXPECT_DOUBLE_EQ(hits[1].total(m::kCyclesUsed), 120.0);
  EXPECT_EQ(store.find("cmd-a", {"t2"}).size(), 1u);
  EXPECT_EQ(store.find("cmd-b").size(), 1u);
  EXPECT_TRUE(store.find("cmd-absent").empty());
  EXPECT_EQ(store.size(), 4u);
}

TEST_P(ProfileStoreAllBackends, TagOrderIsIrrelevant) {
  auto store = make_store();
  store.put(make_profile("cmd", {"a", "b"}, 1, 1.0));
  EXPECT_EQ(store.find("cmd", {"b", "a"}).size(), 1u);
}

TEST_P(ProfileStoreAllBackends, FindLatest) {
  auto store = make_store();
  EXPECT_FALSE(store.find_latest("cmd").has_value());
  store.put(make_profile("cmd", {}, 1, 10.0));
  store.put(make_profile("cmd", {}, 2, 20.0));
  const auto latest = store.find_latest("cmd");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->total(m::kCyclesUsed), 2.0);
}

TEST_P(ProfileStoreAllBackends, StatsAcrossRepetitions) {
  auto store = make_store();
  store.put(make_profile("cmd", {}, 10, 1.0));
  store.put(make_profile("cmd", {}, 12, 2.0));
  store.put(make_profile("cmd", {}, 14, 3.0));
  const auto stats = store.stats("cmd");
  ASSERT_TRUE(stats.count(std::string(m::kCyclesUsed)));
  EXPECT_DOUBLE_EQ(stats.at(std::string(m::kCyclesUsed)).mean, 12.0);
  EXPECT_EQ(stats.at(std::string(m::kCyclesUsed)).n, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ProfileStoreAllBackends,
    ::testing::Values(profile::ProfileStore::Backend::Memory,
                      profile::ProfileStore::Backend::DocStore,
                      profile::ProfileStore::Backend::Files));

TEST(ProfileStore, FilesBackendSurvivesReopen) {
  const std::string dir = "/tmp/synapse_store_reopen";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store(profile::ProfileStore::Backend::Files, dir);
    store.put(make_profile("persist me", {"x"}, 42, 1.0));
  }
  {
    profile::ProfileStore store(profile::ProfileStore::Backend::Files, dir);
    const auto hits = store.find("persist me", {"x"});
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_DOUBLE_EQ(hits[0].total(m::kCyclesUsed), 42.0);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, DocStoreBackendSurvivesFlushAndReopen) {
  const std::string dir = "/tmp/synapse_store_docflush";
  std::system(("rm -rf " + dir).c_str());
  {
    profile::ProfileStore store(profile::ProfileStore::Backend::DocStore, dir);
    store.put(make_profile("cmd", {}, 7, 1.0));
    store.flush();
  }
  {
    profile::ProfileStore store(profile::ProfileStore::Backend::DocStore, dir);
    EXPECT_EQ(store.find("cmd").size(), 1u);
  }
  std::system(("rm -rf " + dir).c_str());
}

TEST(ProfileStore, CommandsWithShellCharsAreStorable) {
  const std::string dir = "/tmp/synapse_store_chars";
  std::system(("rm -rf " + dir).c_str());
  profile::ProfileStore store(profile::ProfileStore::Backend::Files, dir);
  const std::string cmd = "./mdsim --steps 100 | tee 'out file'";
  store.put(make_profile(cmd, {}, 1, 1.0));
  EXPECT_EQ(store.find(cmd).size(), 1u);
  std::system(("rm -rf " + dir).c_str());
}
